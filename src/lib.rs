//! # Oaken
//!
//! A full reproduction of *"Oaken: Fast and Efficient LLM Serving with
//! Online-Offline Hybrid KV Cache Quantization"* (ISCA 2025) as a Rust
//! workspace. This facade crate re-exports every subsystem:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`core`] | `oaken-core` | the paper's contribution: hybrid quantization |
//! | [`baselines`] | `oaken-baselines` | KVQuant/KIVI/Atom/QServe/Tender reimplementations |
//! | [`tensor`] | `oaken-tensor` | minimal f32 tensor substrate |
//! | [`model`] | `oaken-model` | from-scratch transformer inference engine |
//! | [`eval`] | `oaken-eval` | datasets, perplexity, zero-shot, distribution probes |
//! | [`mmu`] | `oaken-mmu` | page-based dense/sparse memory management unit |
//! | [`accel`] | `oaken-accel` | accelerator/GPU performance, area, power simulator |
//! | [`runtime`] | `oaken-runtime` | deterministic fork-join worker pool (bit-exact parallelism) |
//! | [`serving`] | `oaken-serving` | batch scheduling, traces, serving simulation, executed `BatchEngine` |
//! | [`service`] | `oaken-service` | streaming service frontend: batcher, sessions, open-loop workloads, tail latency |
//! | [`cluster`] | `oaken-cluster` | disaggregated prefill/decode replicas, prefix-affinity router, KV transfer link |
//!
//! # Quickstart
//!
//! ```
//! use oaken::core::{KvKind, OakenConfig, OakenQuantizer, OfflineProfiler};
//!
//! let config = OakenConfig::default();
//! let mut profiler = OfflineProfiler::new(config.clone(), 1);
//! let sample: Vec<f32> = (0..256).map(|i| ((i % 31) as f32 - 15.0) / 3.0).collect();
//! profiler.observe(0, KvKind::Key, &sample);
//! profiler.observe(0, KvKind::Value, &sample);
//! let quantizer = OakenQuantizer::new(config, profiler.finish());
//! let fused = quantizer.quantize_vector(&sample, 0, KvKind::Key)?;
//! assert!(fused.effective_bits() < 16.0);
//! # Ok::<(), oaken::core::OakenError>(())
//! ```

pub use oaken_accel as accel;
pub use oaken_baselines as baselines;
pub use oaken_cluster as cluster;
pub use oaken_core as core;
pub use oaken_eval as eval;
pub use oaken_mmu as mmu;
pub use oaken_model as model;
pub use oaken_runtime as runtime;
pub use oaken_service as service;
pub use oaken_serving as serving;
pub use oaken_tensor as tensor;

//! Minimal offline facade for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! just enough surface for `use serde::{Deserialize, Serialize};` and
//! `#[derive(Serialize, Deserialize)]` to compile. No serialization backend
//! exists in the workspace; swapping in the real serde is a one-line change
//! in the workspace `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

//! Minimal offline benchmarking harness mirroring the subset of the
//! `criterion` API this workspace uses: `criterion_group!`/`criterion_main!`
//! (struct-config form), `Criterion::benchmark_group`, `bench_function`,
//! `Bencher::iter`, and `black_box`.
//!
//! Measurement model: warm up for `warm_up_time`, then time batches of
//! iterations until `measurement_time` elapses and report the mean
//! per-iteration latency and throughput on stdout. There are no plots,
//! statistics files, or outlier analysis — this is a wall-clock harness
//! sized for CI smoke runs and the committed `BENCH_*.json` snapshots.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the nominal sample count (used to size measurement batches).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name}");
        BenchmarkGroup { c: self, name }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let stats = run_bench(self, &mut f);
        report(&id, &stats);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let stats = run_bench(self.c, &mut f);
        report(&id, &stats);
        self
    }

    /// Closes the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    mode: BenchMode,
    iters: u64,
    elapsed: Duration,
}

enum BenchMode {
    WarmUp { until: Instant },
    Measure { iters: u64 },
}

impl Bencher {
    /// Runs the benchmark body under the harness's current mode.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::WarmUp { until } => {
                let start = Instant::now();
                while Instant::now() < until {
                    black_box(routine());
                    self.iters += 1;
                }
                self.elapsed = start.elapsed();
            }
            BenchMode::Measure { iters } => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.elapsed = start.elapsed();
                self.iters = iters;
            }
        }
    }
}

/// Mean per-iteration timing for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Total measured iterations.
    pub iters: u64,
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, f: &mut F) -> BenchStats {
    // Warm-up phase also estimates the per-iteration cost.
    let mut b = Bencher {
        mode: BenchMode::WarmUp {
            until: Instant::now() + c.warm_up,
        },
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let warm_iters = b.iters.max(1);
    let per_iter = b.elapsed.as_secs_f64() / warm_iters as f64;

    // Size batches so sample_size batches fill the measurement window.
    let batch = ((c.measurement.as_secs_f64() / c.sample_size as f64 / per_iter.max(1e-9)).ceil()
        as u64)
        .max(1);
    let deadline = Instant::now() + c.measurement;
    let mut total_ns = 0.0f64;
    let mut total_iters = 0u64;
    while Instant::now() < deadline {
        let mut b = Bencher {
            mode: BenchMode::Measure { iters: batch },
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_ns += b.elapsed.as_nanos() as f64;
        total_iters += b.iters;
    }
    BenchStats {
        mean_ns: total_ns / total_iters.max(1) as f64,
        iters: total_iters,
    }
}

fn report(id: &str, stats: &BenchStats) {
    let (value, unit) = humanize_ns(stats.mean_ns);
    println!(
        "{id:<48} {value:>9.3} {unit}/iter   ({:.3e} iter/s, n={})",
        1e9 / stats.mean_ns.max(1e-9),
        stats.iters
    );
}

fn humanize_ns(ns: f64) -> (f64, &'static str) {
    if ns < 1e3 {
        (ns, "ns")
    } else if ns < 1e6 {
        (ns / 1e3, "us")
    } else if ns < 1e9 {
        (ns / 1e6, "ms")
    } else {
        (ns / 1e9, "s")
    }
}

/// Declares a benchmark group runner (struct-config and list forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; this harness has no
            // filtering, so arguments are accepted and ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("count", |b| {
                b.iter(|| {
                    ran += 1;
                    ran
                })
            });
            g.finish();
        }
        assert!(ran > 0);
    }

    #[test]
    fn humanize_scales() {
        assert_eq!(humanize_ns(500.0).1, "ns");
        assert_eq!(humanize_ns(5_000.0).1, "us");
        assert_eq!(humanize_ns(5_000_000.0).1, "ms");
        assert_eq!(humanize_ns(5e9).1, "s");
    }
}

//! Minimal offline stand-in for the subset of `rand` this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, and `Rng::gen_bool`.
//!
//! The generator is SplitMix64 — statistically solid for simulation and
//! synthetic-weight generation, deterministic across platforms, and
//! dependency-free. It intentionally does *not* promise the same streams as
//! the real `rand::rngs::StdRng` (ChaCha12); everything in this repository
//! treats seeds as opaque reproducibility handles, never as cross-library
//! golden values.

use std::ops::Range;

/// Types that can be drawn uniformly from `Rng::gen` (unit interval for
/// floats, full range for integers, fair coin for bool).
pub trait Standard: Sized {
    /// Draws one value from `bits`, a fresh uniform `u64`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (bits >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

/// Types drawable from a half-open `lo..hi` range by `Rng::gen_range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` given a fresh uniform `u64`.
    fn sample_half_open(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(bits: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                lo.wrapping_add((bits as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_half_open(bits: u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        lo + <f32 as Standard>::from_bits(bits) * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open(bits: u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        lo + <f64 as Standard>::from_bits(bits) * (hi - lo)
    }
}

/// The random-value interface (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit source all drawing methods derive from.
    fn next_u64(&mut self) -> u64;

    /// Draws one uniform value (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Draws uniformly from a half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_half_open(self.next_u64(), range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::from_bits(self.next_u64()) < p
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // One warm-up step decorrelates small adjacent seeds.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Test-runner plumbing: the deterministic per-test RNG and the case-level
//! error type the assertion macros return.

use rand::rngs::StdRng;
use rand::{Rng as _, SampleUniform, SeedableRng, Standard};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Why a single property case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; resample without counting.
    Reject,
    /// `prop_assert!`-family failure with a rendered message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic RNG handed to strategies; seeded from the test's path so
/// every `cargo test` run samples the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from an arbitrary label (the harness passes the test path).
    pub fn deterministic(label: &str) -> Self {
        let mut h = DefaultHasher::new();
        label.hash(&mut h);
        Self {
            inner: StdRng::seed_from_u64(h.finish()),
        }
    }

    /// Draws one uniform value (`[0, 1)` for floats).
    pub fn gen<T: Standard>(&mut self) -> T {
        self.inner.gen()
    }

    /// Draws uniformly from a half-open range.
    pub fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        self.inner.gen_range(range)
    }
}

//! Minimal offline property-testing harness mirroring the subset of the
//! `proptest` API this workspace uses.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), range strategies (`0usize..10`,
//! `-1.0f32..1.0`), tuple strategies, [`prop::collection::vec`],
//! [`prop::sample::select`], [`Strategy::prop_map`], [`any`],
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Unlike the real proptest there is **no shrinking**: a failing case
//! panics with its case index, and because every test's RNG stream is
//! deterministic (seeded from the test path), simply re-running the test
//! reproduces the identical failing inputs — instrument the body (or
//! count cases up to the reported index) to inspect them.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner;

pub use test_runner::{TestCaseError, TestRng};

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`;
/// no shrinking).
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical full-range strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy combinator namespaces (subset of `proptest::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// A size specification: exact (`8`) or half-open range (`1..20`).
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy for `Vec`s with element strategy `S`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = if self.size.hi - self.size.lo <= 1 {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..self.size.hi)
                };
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// Generates `Vec`s of `size` elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed pool.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            pool: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                self.pool[rng.gen_range(0..self.pool.len())].clone()
            }
        }

        /// Chooses uniformly from `pool`.
        ///
        /// # Panics
        ///
        /// Panics (at sample time) if `pool` is empty.
        pub fn select<T: Clone>(pool: Vec<T>) -> Select<T> {
            assert!(!pool.is_empty(), "select requires a non-empty pool");
            Select { pool }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// item expands to a `#[test]`-style function running `config.cases`
/// accepted cases with inputs sampled from the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(16) + 256,
                    "too many prop_assume rejections in {}",
                    stringify!($name)
                );
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed on case {} (deterministic stream; \
                             re-running reproduces this exact case): {}",
                            stringify!($name),
                            accepted,
                            msg
                        )
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) so the harness can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        left, right
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`: {}",
                        left,
                        right,
                        format!($($fmt)*)
                    )));
                }
            }
        }
    };
}

/// Rejects the current case (it is resampled and does not count toward the
/// configured case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u32..10, 4..9)) {
            prop_assert!(v.len() >= 4 && v.len() < 9);
            for e in &v {
                prop_assert!(*e < 10);
            }
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(0u32..10, 8)) {
            prop_assert_eq!(v.len(), 8);
        }

        #[test]
        fn map_and_select(
            n in prop::sample::select(vec![1usize, 2, 4]).prop_map(|n| n * 2),
            b in any::<bool>(),
        ) {
            prop_assert!(n == 2 || n == 4 || n == 8);
            // Rejected cases are resampled and do not count toward `cases`.
            prop_assume!(n != 2 || b);
        }

        #[test]
        fn tuples_sample_componentwise(p in (0u16..4, 1u32..200, 0.0f64..1.0)) {
            prop_assert!(p.0 < 4 && p.1 >= 1 && p.1 < 200);
            prop_assert!((0.0..1.0).contains(&p.2));
        }
    }
}

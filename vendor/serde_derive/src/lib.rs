//! No-op derive macros standing in for `serde_derive` in this offline
//! workspace.
//!
//! The repository's build environment has no network access to crates.io,
//! so `serde` is vendored as a minimal facade (see `vendor/serde`). Nothing
//! in the workspace serializes data — the derives exist only so that
//! `#[derive(Serialize, Deserialize)]` annotations on config/result types
//! keep compiling and can be switched to the real serde by editing one
//! workspace dependency line.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

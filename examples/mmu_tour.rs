//! A tour of the memory management unit (§5.2): write a request's
//! quantized KV stream through the page-based MMU, inspect the dense and
//! sparse management tables, plan the burst read that the generation
//! phase performs, and fork a stream copy-on-write — the page-sharing
//! primitive behind the pool's prefix cache.
//!
//! Run with: `cargo run --example mmu_tour`

use oaken::core::{KvKind, OakenConfig, OakenQuantizer, OfflineProfiler};
use oaken::mmu::{MmuSim, StreamClass, StreamKey};

fn kv_vector(n: usize, seed: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let u = ((i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed)
                >> 33) as f32
                / (1u64 << 31) as f32;
            let base = (u - 0.5) * 6.0;
            if i % 41 == 0 {
                base * 10.0
            } else {
                base
            }
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Quantizer for one layer.
    let config = OakenConfig::default();
    let mut profiler = OfflineProfiler::new(config.clone(), 1);
    for s in 0..64 {
        profiler.observe(0, KvKind::Key, &kv_vector(512, s));
        profiler.observe(0, KvKind::Value, &kv_vector(512, s));
    }
    let quantizer = OakenQuantizer::new(config, profiler.finish());

    // A small device: 64 pages of 4 KiB.
    let mut mmu = MmuSim::new(64, 4096);
    let head_dim = 128;
    let heads = 4;

    // Write 32 tokens of one request, split per head, dense and sparse
    // streams separately — the §5.2 write layout.
    println!("writing 32 tokens x {heads} heads (dense + sparse streams)...");
    for t in 0..32u64 {
        let fv =
            quantizer.quantize_vector(&kv_vector(head_dim * heads, 1000 + t), 0, KvKind::Key)?;
        // Per-head split of the encoded payload (model: equal shares of the
        // dense nibbles, sparse entries attributed to their head's blocks).
        let dense_per_head = (fv.dense_bytes().len() / heads) as u32;
        for head in 0..heads as u16 {
            mmu.write_token(
                StreamKey {
                    request: 7,
                    layer: 0,
                    head,
                    class: StreamClass::Dense,
                },
                dense_per_head,
            )?;
        }
        // Sparse bytes vary per token — the reason the sparse table exists.
        let sparse_bytes = (fv.sparse_bytes().len().max(1)) as u32;
        mmu.write_token(
            StreamKey {
                request: 7,
                layer: 0,
                head: 0,
                class: StreamClass::Sparse,
            },
            sparse_bytes,
        )?;
    }

    let dense_key = StreamKey {
        request: 7,
        layer: 0,
        head: 0,
        class: StreamClass::Dense,
    };
    let sparse_key = StreamKey {
        class: StreamClass::Sparse,
        ..dense_key
    };

    println!("\ndense management table (head 0, first 4 tokens):");
    let table = mmu.table(&dense_key).expect("stream exists");
    for (t, e) in table.iter().take(4).enumerate() {
        println!("  token {t}: addr {}, xfer {:#04x} bytes", e.addr, e.size);
    }
    println!("sparse management table (first 4 tokens, variable sizes):");
    let stable = mmu.table(&sparse_key).expect("stream exists");
    for (t, e) in stable.iter().take(4).enumerate() {
        println!("  token {t}: addr {}, xfer {:#04x} bytes", e.addr, e.size);
    }

    // The generation-phase read: all prior tokens of head 0, coalesced.
    let plan = mmu.read_plan(&dense_key, 64);
    println!("\nburst plan for the full dense history of head 0:");
    println!("  payload: {} bytes", plan.total_bytes);
    println!(
        "  bursts:  {} (mean {:.0} bytes)",
        plan.bursts.len(),
        plan.mean_burst()
    );
    println!(
        "  bus efficiency at 64B transactions: {:.1}%",
        100.0 * plan.efficiency(64)
    );
    println!(
        "\nallocator: {} of {} pages in use, internal fragmentation {:.1}%",
        mmu.allocator().allocated_pages(),
        mmu.allocator().capacity(),
        100.0 * mmu.internal_fragmentation()
    );

    // Copy-on-write fork: a second request adopts head 0's whole written
    // history by reference — the pages gain a refcount instead of being
    // copied, exactly how the serving pool shares a common prompt prefix.
    let forked_key = StreamKey {
        request: 8,
        ..dense_key
    };
    let shared = mmu
        .fork_stream(&dense_key, forked_key)
        .expect("source stream exists");
    println!(
        "\nforked head-0 stream into request 8: {shared} pages shared \
         (refcounted, {} shared device-wide)",
        mmu.shared_pages()
    );
    // The fork reads the same history; its first own write goes to a
    // fresh private page (the shared tail is immutable to it).
    let receipt = mmu.write_token(forked_key, 64)?;
    println!(
        "request 8 appends 64 bytes: new_page = {} (copy-on-write tail)",
        receipt.new_page
    );

    // Retire both requests; everything returns to the free pool (shared
    // pages only free when the last owner departs).
    let freed7 = mmu.free_request(7)?;
    let freed8 = mmu.free_request(8)?;
    println!(
        "requests retired: {freed7} + {freed8} pages freed, {} free",
        mmu.allocator().free_pages()
    );
    assert_eq!(mmu.allocator().free_pages(), mmu.allocator().capacity());
    Ok(())
}

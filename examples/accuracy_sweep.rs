//! Accuracy comparison on a Llama2-7B proxy: FP16 reference, KVQuant-style,
//! QServe-style, and Oaken — a compact version of Table 2, running real
//! quantized-KV inference on the synthetic transformer.
//!
//! Run with: `cargo run --release --example accuracy_sweep`

use oaken::baselines::{Fp16Reference, KvQuantStyle, QServeStyle};
use oaken::core::{KvQuantizer, OakenConfig};
use oaken::eval::harness::EvalSpec;
use oaken::eval::{profile_oaken, EvalHarness};
use oaken::model::{Model, ModelConfig};
use std::sync::Arc;

fn main() {
    let proxy = ModelConfig::llama2_7b().proxy(3, 48);
    let model = Model::synthetic(proxy, 314_159);
    let harness = EvalHarness::new(&model, &EvalSpec::quick());

    println!("Llama2-7B proxy — perplexity and zero-shot accuracy\n");
    println!(
        "{:>10} {:>9} {:>8} {:>8} {:>8} {:>9}",
        "method", "ppl", "piqa%", "wino%", "hella%", "eff-bits"
    );

    let oaken = profile_oaken(&model, OakenConfig::default(), 8, 32, 7);
    let methods: Vec<(&str, Option<Arc<dyn KvQuantizer>>)> = vec![
        ("fp32", None),
        ("fp16", Some(Arc::new(Fp16Reference::new()))),
        ("kvquant", Some(Arc::new(KvQuantStyle::default()))),
        ("qserve", Some(Arc::new(QServeStyle::default()))),
        ("oaken", Some(Arc::new(oaken))),
    ];
    for (name, method) in methods {
        let r = harness.evaluate(method);
        println!(
            "{:>10} {:>9.3} {:>8.1} {:>8.1} {:>8.1} {:>9.2}",
            name, r.perplexity, r.piqa, r.winogrande, r.hellaswag, r.effective_bits
        );
    }
    println!("\nExpected: Oaken tracks the FP16 reference closely at ~4.8");
    println!("effective bits; QServe's coarse per-group scales lose more.");
}

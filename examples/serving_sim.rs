//! Batched serving simulation: compare vLLM-on-A100, the plain LPU, and
//! the Oaken accelerators on Llama2-13B across batch sizes — a compact
//! version of Figure 11.
//!
//! Run with: `cargo run --example serving_sim`

use oaken::accel::{AcceleratorSpec, QuantPolicy, SystemModel, Workload};
use oaken::model::ModelConfig;

fn main() {
    let model = ModelConfig::llama2_13b();
    let systems = [
        SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::fp16()),
        SystemModel::new(AcceleratorSpec::a100(), QuantPolicy::qserve()),
        SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16()),
        SystemModel::new(AcceleratorSpec::oaken_hbm(), QuantPolicy::oaken()),
        SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken()),
    ];
    println!("Llama2-13B, 1K input : 1K output — throughput in tokens/s\n");
    print!("{:>6}", "batch");
    for s in &systems {
        print!("{:>20}", s.name());
    }
    println!();
    for batch in [16usize, 32, 64, 128, 256] {
        let w = Workload::one_k_one_k(batch);
        print!("{batch:>6}");
        for s in &systems {
            let r = s.run(&model, &w);
            if r.oom {
                print!("{:>20}", "OOM");
            } else {
                print!("{:>20.0}", r.throughput);
            }
        }
        println!();
    }
    println!("\nAt batch 256, Oaken-LPDDR should lead: its 4.8-bit KV cache");
    println!("stretches both the 1.1 TB/s bandwidth and the 256 GB capacity");
    println!("by 16/4.8 = 3.3x, while the GPU baselines saturate on capacity.");
}

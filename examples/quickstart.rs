//! Quickstart: profile outlier thresholds offline, quantize a KV vector
//! online with the fused dense-and-sparse encoding, and inspect the
//! compression arithmetic.
//!
//! Run with: `cargo run --example quickstart`

use oaken::core::{KvKind, OakenConfig, OakenError, OakenQuantizer, OfflineProfiler};

fn synthetic_kv_vector(n: usize, seed: u64) -> Vec<f32> {
    // A KV-like vector: mostly moderate values, a few big channel outliers,
    // a few near-zero values.
    (0..n)
        .map(|i| {
            let u = ((i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed)
                >> 33) as f32
                / (1u64 << 31) as f32;
            let base = (u - 0.5) * 6.0;
            match i % 47 {
                0 => base * 12.0, // outer outlier
                1 => base * 0.01, // inner outlier
                _ => base,
            }
        })
        .collect()
}

fn main() -> Result<(), OakenError> {
    // 1. Offline: profile thresholds from ~100 sample vectors (§4.3).
    let config = OakenConfig::default(); // 4% outer / 90% middle / 6% inner
    let mut profiler = OfflineProfiler::new(config.clone(), 1);
    for s in 0..100 {
        profiler.observe(0, KvKind::Key, &synthetic_kv_vector(4096, s));
        profiler.observe(0, KvKind::Value, &synthetic_kv_vector(4096, s + 1000));
    }
    let thresholds = profiler.try_finish()?;
    let t = thresholds.get(0, KvKind::Key)?;
    println!("profiled thresholds (layer 0, keys):");
    println!(
        "  outer_lo={:+.3}  inner_lo={:+.3}  inner_hi={:+.3}  outer_hi={:+.3}",
        t.outer_lo, t.inner_lo, t.inner_hi, t.outer_hi
    );

    // 2. Online: quantize an unseen vector.
    let quantizer = OakenQuantizer::new(config, thresholds);
    let x = synthetic_kv_vector(4096, 99_999);
    let fused = quantizer.quantize_vector(&x, 0, KvKind::Key)?;
    println!("\nfused encoding of a 4096-element vector:");
    println!("  dense bytes:   {}", fused.dense_bytes().len());
    println!(
        "  sparse bytes:  {} ({} outliers)",
        fused.sparse_bytes().len(),
        fused.num_outliers()
    );
    println!(
        "  table bytes:   {} (MMU transfer sizes)",
        fused.table_bytes()
    );
    println!(
        "  effective bits: {:.2} (FP16 = 16.00)",
        fused.effective_bits()
    );
    println!(
        "  compression:    {:.2}x vs FP16",
        16.0 / fused.effective_bits()
    );

    // 3. Dequantize and check the reconstruction error.
    let restored = quantizer.dequantize_vector(&fused, 0, KvKind::Key)?;
    let rms: f32 = (x
        .iter()
        .zip(&restored)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        / x.len() as f32)
        .sqrt();
    let range = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    println!(
        "\nreconstruction RMS error: {:.4} ({:.3}% of range)",
        rms,
        100.0 * rms / range
    );
    Ok(())
}

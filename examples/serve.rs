//! Serving-engine demo: replay a (scaled-down) Azure-style trace through
//! the *real* continuous-batching engine — actual token-by-token model
//! execution over the shared paged quantized KV pool, not the analytic
//! simulator — with chunked prefill and copy-on-write prefix sharing.
//!
//! Run with: `cargo run --release --example serve [-- --smoke]
//! [--prefix-overlap <0..100>] [--threads <N>] [--preempt restart|swap]
//! [--host-pages <N>]`
//!
//! * `--smoke` is the CI wiring: tiny workload, ~2 decode tokens per
//!   request.
//! * `--prefix-overlap P` prepends an identical system prompt covering
//!   `P%` of every request's input — the shared-prompt traffic shape the
//!   prefix trie deduplicates (default 50).
//! * `--threads N` sizes the engine's deterministic fork-join runtime
//!   (default: `OAKEN_THREADS` or the machine's available parallelism;
//!   `1` reproduces the single-threaded engine bit for bit).
//! * `--preempt {restart,swap}` picks the preemption policy: `restart`
//!   evicts and recomputes (vLLM-style), `swap` suspends to the host
//!   tier and resumes bit-exactly with zero recompute (default: the
//!   `OAKEN_PREEMPT` env knob, falling back to `restart`).
//! * `--host-pages N` sizes the host swap tier in pages (default: the
//!   device page count; `0` disables swapping entirely).
//! * `--fault-seed N` installs a deterministic fault-injection schedule
//!   seeded with `N` (page-allocation and swap-transfer failures; the
//!   engine absorbs them with retries, demotions, and request-scoped
//!   teardowns). Default: the `OAKEN_FAULTS` env knob, else no faults.
//! * `--deadline N` kills any request still in flight `N` iterations
//!   after its first admission (graceful degradation under overload).
//! * `--kernel {exact,fused}` picks the attention read path: `exact`
//!   dequantizes rows to f32 views, `fused` computes scores and weighted
//!   sums directly over the encoded 4-bit + outlier representation
//!   (default: the `OAKEN_KERNEL` env knob, falling back to `exact`).
//! * `--ranks N` runs the engine tensor-parallel over `N` ranks, each
//!   with a private KV pool shard and a deterministic all-reduce —
//!   logits bit-exact with `--ranks 1` under the exact kernel (default:
//!   the `OAKEN_RANKS` env knob, falling back to 1).
//! * `--open-loop` drives the workload through the streaming service
//!   frontend (`oaken-service`) on a seeded open-loop arrival schedule
//!   instead of submitting everything up front: per-request token
//!   streams, p50/p95/p99 TTFT and inter-token latency in service-clock
//!   ticks, and an on-line assertion that every stream is bit-identical
//!   to the same schedule replayed directly against the engine.
//! * `--arrival-rate R` sets the open-loop arrival rate in requests per
//!   service-clock tick (default 0.3).
//! * `--burst B` makes the open-loop arrivals bursty: groups of `B`
//!   requests landing together, same long-run rate.
//! * `--replicas N` runs the workload through the disaggregated cluster
//!   (`oaken-cluster`): `N` prefill/decode engine pairs behind the
//!   prefix-affinity router (`OAKEN_ROUTER` picks the policy), frozen KV
//!   shipped prefill→decode over a modeled link. Prints the router and
//!   transfer counters and checks every token stream against the
//!   monolithic comparator run (default: the `OAKEN_REPLICAS` env knob;
//!   values above 1 engage cluster mode, which ignores `--open-loop`,
//!   `--fault-seed`, and `--deadline`).
//! * `--transfer-cost B` sets the cluster link bandwidth in wire bytes
//!   per service-clock tick (0 = instantaneous; implies cluster mode).

use oaken::cluster::{run_cluster, run_monolithic, ClusterConfig, EngineRole, RouterPolicy};
use oaken::core::OakenConfig;
use oaken::eval::harness::profile_oaken;
use oaken::model::{Model, ModelConfig, PagedKvPool};
use oaken::service::{
    arrival_schedule, replay_open_loop_direct, serve, LatencyRecorder, OpenLoopSpec,
};
use oaken::serving::{
    synthesize_requests, AdmissionPolicy, BatchEngine, EngineConfig, EngineRequest, FaultPlan,
    KernelMode, PreemptPolicy, Request, TokenScheduler, TraceSpec,
};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let overlap_pct: usize = args
        .iter()
        .position(|a| a == "--prefix-overlap")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--prefix-overlap takes 0..100"))
        .unwrap_or(50);
    assert!(overlap_pct <= 100, "--prefix-overlap takes 0..100");
    let num_threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a positive integer"))
        .unwrap_or_else(oaken::runtime::default_threads);
    assert!(num_threads > 0, "--threads takes a positive integer");
    let preempt = args
        .iter()
        .position(|a| a == "--preempt")
        .and_then(|i| args.get(i + 1))
        .map(|v| match v.as_str() {
            "restart" => PreemptPolicy::RestartRecompute,
            "swap" => PreemptPolicy::SwapToHost,
            other => panic!("--preempt takes restart|swap, got {other:?}"),
        })
        .unwrap_or_else(PreemptPolicy::default_policy);
    let host_pages: Option<u32> = args
        .iter()
        .position(|a| a == "--host-pages")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--host-pages takes a page count"));
    let fault_plan: Option<FaultPlan> = args
        .iter()
        .position(|a| a == "--fault-seed")
        .and_then(|i| args.get(i + 1))
        .map(|v| FaultPlan::new(v.parse().expect("--fault-seed takes a u64 seed")))
        .or_else(FaultPlan::from_env);
    let deadline: Option<u64> = args
        .iter()
        .position(|a| a == "--deadline")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--deadline takes an iteration count"));
    let kernel = args
        .iter()
        .position(|a| a == "--kernel")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            KernelMode::parse(v).unwrap_or_else(|| panic!("--kernel takes exact|fused, got {v:?}"))
        })
        .unwrap_or_else(KernelMode::default_mode);
    let num_ranks: usize = args
        .iter()
        .position(|a| a == "--ranks")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--ranks takes a positive integer"))
        .unwrap_or_else(oaken::runtime::default_ranks);
    assert!(num_ranks > 0, "--ranks takes a positive integer");
    let open_loop = args.iter().any(|a| a == "--open-loop");
    let arrival_rate: f64 = args
        .iter()
        .position(|a| a == "--arrival-rate")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--arrival-rate takes requests per tick"))
        .unwrap_or(0.3);
    assert!(arrival_rate > 0.0, "--arrival-rate takes a positive rate");
    let burst: Option<usize> = args
        .iter()
        .position(|a| a == "--burst")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--burst takes a burst size"));
    let replicas: usize = args
        .iter()
        .position(|a| a == "--replicas")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--replicas takes a positive integer"))
        .unwrap_or_else(oaken::cluster::default_replicas);
    assert!(replicas > 0, "--replicas takes a positive integer");
    let transfer_cost: Option<u64> = args
        .iter()
        .position(|a| a == "--transfer-cost")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .expect("--transfer-cost takes wire bytes per tick")
        });
    let cluster_mode =
        replicas > 1 || transfer_cost.is_some() || args.iter().any(|a| a == "--replicas");
    let spec = TraceSpec::conversation();

    // A proxy model small enough to execute for real; trace lengths are
    // scaled to its sequence budget (the trace's input:output *ratio* is
    // what Figure 14 exercises, and scaling preserves it).
    let model = Model::synthetic(ModelConfig::llama2_7b().proxy(2, 64), 7);
    let vocab = model.config().vocab_size;
    let (n_requests, scale, max_out) = if smoke { (3, 256, 2) } else { (16, 64, 12) };
    let requests: Vec<EngineRequest> = synthesize_requests(&spec, n_requests, 42)
        .into_iter()
        .map(|r| {
            let scaled = Request {
                id: r.id,
                input_len: (r.input_len / scale).clamp(2, 48),
                output_len: (r.output_len / scale).clamp(1, max_out),
            };
            let shared = scaled.input_len * overlap_pct / 100;
            EngineRequest::from_lengths_with_shared_prefix(&scaled, vocab, 7, shared)
        })
        .collect();

    // Offline phase: profile Oaken's thresholds on this model's own KV
    // distribution (the same observer-hook recipe as the Table 2 harness).
    let quantizer = Arc::new(profile_oaken(&model, OakenConfig::default(), 4, 8, 7));

    // Online phase: the shared paged pool + continuous-batching engine.
    // Prefix sharing is on automatically (Oaken is prefix-deterministic);
    // 8-token blocks suit the scaled-down prompts.
    let pages = if smoke { 512 } else { 2048 };
    // The open-loop path needs two identical pools (one for the live
    // service, one for the direct replay it is checked against), so pool
    // construction is a closure.
    let build_pool = || {
        let mut pool =
            PagedKvPool::for_model(model.config(), Some(quantizer.clone() as _), pages, 1024);
        pool.set_block_tokens(8);
        if let Some(h) = host_pages {
            pool.set_host_pages(h);
        }
        pool
    };
    let pool = build_pool();
    println!(
        "replaying `{}` (scaled 1/{scale}, {overlap_pct}% shared prefix) through the executed engine:",
        spec.name
    );
    println!(
        "  model {} | pool {pages} pages x {} B | host tier {} pages | block {} tokens | {} requests\n  preempt {} | {num_threads} threads | kernel {} | {num_ranks} ranks\n",
        model.config().name,
        pool.page_size(),
        pool.host_capacity_pages(),
        pool.block_tokens(),
        requests.len(),
        match preempt {
            PreemptPolicy::RestartRecompute => "restart-recompute",
            PreemptPolicy::SwapToHost => "swap-to-host",
        },
        kernel.label(),
    );
    let cfg = EngineConfig {
        max_batch: if smoke { 2 } else { 8 },
        admission: AdmissionPolicy::PromptOnly,
        preempt,
        record_logits: false,
        prefill_token_budget: 16,
        num_threads,
        num_ranks,
        fault_plan,
        max_iterations: deadline,
        kernel,
    };

    if cluster_mode {
        run_cluster_mode(
            &model,
            &build_pool,
            cfg,
            requests,
            replicas,
            transfer_cost.unwrap_or(0),
        );
        return;
    }

    if open_loop {
        run_open_loop(
            &model,
            pool,
            build_pool(),
            cfg,
            requests,
            arrival_rate,
            burst,
            &spec,
        );
        return;
    }

    let mut engine = BatchEngine::new(&model, pool, TokenScheduler::new(8), cfg);
    assert_eq!(
        engine.kernel_mode(),
        kernel,
        "Oaken streams support the fused read path"
    );
    for r in requests {
        engine.submit(r);
    }
    let start = Instant::now();
    engine.run();
    let secs = start.elapsed().as_secs_f64();

    let stats = engine.stats().clone();
    println!("{:>22}  {}", "iterations", stats.iterations);
    println!("{:>22}  {}", "admitted", stats.admitted);
    println!("{:>22}  {}", "retired", stats.retired);
    println!("{:>22}  {}", "preemptions", stats.preemptions);
    println!("{:>22}  {}", "admission stalls", stats.admission_stalls);
    println!("{:>22}  {}", "peak concurrent", stats.peak_active);
    println!("{:>22}  {}", "prefill tokens", stats.prefill_tokens);
    println!("{:>22}  {}", "prefill chunks", stats.prefill_chunks);
    println!("{:>22}  {}", "decode tokens", stats.decode_tokens);
    println!("{:>22}  {}", "trie hits", stats.prefix.trie_hits);
    println!("{:>22}  {}", "seal dedups", stats.prefix.seal_dedups);
    println!("{:>22}  {}", "tokens reused", stats.prefix.tokens_reused);
    println!(
        "{:>22}  {}",
        "quant rows skipped", stats.prefix.quant_rows_skipped
    );
    println!(
        "{:>22}  {}",
        "bytes deduplicated", stats.prefix.bytes_deduplicated
    );
    println!("{:>22}  {}", "shared pages peak", stats.shared_pages_peak);
    println!("{:>22}  {}", "pages in use peak", stats.pages_in_use_peak);
    println!("{:>22}  {}", "swap outs", stats.swap_outs);
    println!("{:>22}  {}", "swap ins", stats.swap_ins);
    println!("{:>22}  {}", "swap bytes to host", stats.swap_bytes_to_host);
    println!(
        "{:>22}  {}",
        "swap bytes to device", stats.swap_bytes_to_device
    );
    println!(
        "{:>22}  {:.1} iters",
        "mean resume latency",
        stats.mean_resume_latency()
    );
    println!(
        "{:>22}  {}",
        "recomputed prefill", stats.recomputed_prefill_tokens
    );
    println!("{:>22}  {}", "fused rows read", stats.kv_reads.fused_rows);
    println!(
        "{:>22}  {} B",
        "fused bytes read", stats.kv_reads.fused_bytes
    );
    println!("{:>22}  {}", "exact rows read", stats.kv_reads.exact_rows);
    println!(
        "{:>22}  {} B",
        "exact bytes read", stats.kv_reads.exact_bytes
    );
    println!("{:>22}  {}", "engine ranks", stats.num_ranks);
    println!("{:>22}  {}", "all-reduce calls", stats.comm.allreduce_calls);
    println!(
        "{:>22}  {:.1} B/token",
        "all-reduce bytes",
        stats.comm_bytes_per_token()
    );
    println!("{:>22}  {:?}", "per-rank page peaks", stats.rank_page_peaks);
    println!("{:>22}  {}", "faults injected", stats.faults_injected);
    println!("{:>22}  {}", "faults absorbed", stats.faults_absorbed);
    println!("{:>22}  {}", "fault retries", stats.fault_retries);
    println!("{:>22}  {}", "demotions", stats.demotions);
    println!("{:>22}  {}", "deadline kills", stats.deadline_kills);
    println!(
        "{:>22}  {:.2}",
        "mean core util",
        stats.mean_core_utilization()
    );
    println!(
        "{:>22}  {:.1} tok/s",
        "gen throughput",
        stats.decode_tokens as f64 / secs.max(1e-9)
    );

    if let Some(sample) = engine.finished().iter().find(|f| f.completed) {
        println!(
            "\nrequest {}: prompt {} tokens -> {:?} (first token at iteration {})",
            sample.id,
            sample.prompt_len,
            &sample.generated[..sample.generated.len().min(8)],
            sample.ttft_iteration
        );
    }
    // Every request reaches exactly one terminal state; absent faults and
    // deadlines that state is always `Finished`.
    let total = stats.retired + stats.failed + stats.cancellations + stats.deadline_kills;
    assert_eq!(total as usize, engine.finished().len());
    assert_eq!(stats.faults_absorbed, stats.faults_injected);
    if fault_plan.is_none() && deadline.is_none() {
        assert_eq!(stats.retired as usize, engine.finished().len());
        println!("\nall {} requests served to completion.", stats.retired);
    } else {
        println!(
            "\n{} of {} requests served to completion ({} faults absorbed, {} deadline kills).",
            stats.retired,
            engine.finished().len(),
            stats.faults_absorbed,
            stats.deadline_kills
        );
    }
}

/// The `--replicas` path: the scaled trace as an open-loop schedule
/// through the disaggregated cluster — prefill/decode engine pairs
/// behind the prefix-affinity router with frozen-KV handoff over the
/// modeled link — checked token-exact against the monolithic comparator
/// run of the identical schedule.
fn run_cluster_mode(
    model: &Model,
    build_pool: &dyn Fn() -> PagedKvPool,
    mut cfg: EngineConfig,
    requests: Vec<EngineRequest>,
    replicas: usize,
    transfer_cost: u64,
) {
    // Fault injection and deadlines are per-engine knobs; their schedules
    // would differ between the cluster and the comparator, so cluster
    // mode pins both off to keep the bit-exactness check meaningful.
    cfg.fault_plan = None;
    cfg.max_iterations = None;
    let cluster_cfg = ClusterConfig {
        replicas,
        router: RouterPolicy::default_policy(),
        transfer_bytes_per_tick: transfer_cost,
        work_tokens_per_tick: 8,
        scheduler_cores: 8,
        engine: cfg,
    };
    let schedule: Vec<(EngineRequest, u64)> = requests
        .into_iter()
        .enumerate()
        .map(|(i, r)| (r, i as u64 * 3))
        .collect();
    println!(
        "cluster mode: {replicas} prefill/decode pair(s) | router {:?} | link {} | arrivals 3 ticks apart\n",
        cluster_cfg.router,
        if transfer_cost == 0 {
            "instantaneous".to_owned()
        } else {
            format!("{transfer_cost} B/tick")
        },
    );

    let start = Instant::now();
    let report = run_cluster(
        model,
        &cluster_cfg,
        &mut |_: EngineRole, _: usize| build_pool(),
        schedule.clone(),
        &[],
    );
    let secs = start.elapsed().as_secs_f64();
    let mono = run_monolithic(
        model,
        &cluster_cfg,
        &mut |_: EngineRole, _: usize| build_pool(),
        schedule,
        &[],
    );
    for rec in &report.requests {
        assert_eq!(
            rec.tokens,
            mono.request(rec.id).tokens,
            "request {}: cluster stream != monolithic comparator",
            rec.id
        );
    }

    let pctl = |samples: &[u64], q: f64| -> u64 {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64) * q).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    };
    let ttft = report.ttft_samples();
    let mono_ttft = mono.ttft_samples();
    let decode_tokens: u64 = report
        .prefill_stats
        .iter()
        .chain(&report.decode_stats)
        .map(|s| s.decode_tokens)
        .sum();
    println!(
        "{:>22}  {} (monolithic {})",
        "service clock", report.clock, mono.clock
    );
    println!("{:>22}  {}", "placements", report.router.placed);
    println!("{:>22}  {}", "affinity hits", report.router.affinity_hits);
    println!(
        "{:>22}  {}",
        "matched at placement", report.router.matched_tokens
    );
    println!("{:>22}  {}", "router fallbacks", report.router.fallbacks);
    println!("{:>22}  {}", "kv transfers", report.transfer.transfers);
    println!("{:>22}  {} B", "wire bytes", report.transfer.wire_bytes);
    println!(
        "{:>22}  {}",
        "wire delay ticks", report.transfer.delay_ticks
    );
    println!("{:>22}  {}", "bounced deliveries", report.transfer.retries);
    println!(
        "{:>22}  {} (monolithic {})",
        "tokens reused",
        report.tokens_reused(),
        mono.tokens_reused()
    );
    println!(
        "{:>22}  {}/{} ticks (monolithic {}/{})",
        "ttft p50/p99",
        pctl(&ttft, 0.50),
        pctl(&ttft, 0.99),
        pctl(&mono_ttft, 0.50),
        pctl(&mono_ttft, 0.99),
    );
    println!("{:>22}  {}", "decode tokens", decode_tokens);
    println!(
        "{:>22}  {:.1} tok/s",
        "gen throughput",
        decode_tokens as f64 / secs.max(1e-9)
    );
    println!(
        "\nall {} streams bit-exact with the monolithic comparator.",
        report.requests.len()
    );
}

/// The `--open-loop` path: the same scaled trace driven through the
/// streaming service frontend on a seeded arrival schedule, with
/// per-class percentile latency reporting and an on-line bit-exactness
/// check against the direct engine replay of the identical schedule.
#[allow(clippy::too_many_arguments)]
fn run_open_loop(
    model: &Model,
    pool: PagedKvPool,
    replay_pool: PagedKvPool,
    cfg: EngineConfig,
    requests: Vec<EngineRequest>,
    arrival_rate: f64,
    burst: Option<usize>,
    spec: &TraceSpec,
) {
    let mean = 1.0 / arrival_rate;
    let ol = match burst {
        Some(b) => OpenLoopSpec::bursty(mean, b, 11),
        None => OpenLoopSpec::poisson(mean, 11),
    };
    let arrivals = arrival_schedule(&ol, requests.len());
    let last = arrivals.last().copied().unwrap_or(0);
    let schedule: Vec<(EngineRequest, u64)> = requests.into_iter().zip(arrivals).collect();
    println!(
        "open-loop arrivals: {} requests at {arrival_rate:.2} req/tick ({}), last arrival at tick {last}\n",
        schedule.len(),
        match burst {
            Some(b) => format!("bursty x{b}"),
            None => "poisson".to_string(),
        },
    );

    let start = Instant::now();
    let (results, report) = serve(model, pool, TokenScheduler::new(8), cfg, |client| {
        let handles = client.submit_schedule(schedule.iter().cloned());
        handles.into_iter().map(|h| h.wait()).collect::<Vec<_>>()
    });
    let secs = start.elapsed().as_secs_f64();

    // The determinism contract, checked on every run: streams delivered
    // through the concurrent service are bit-identical — tokens, delivery
    // clocks, outcomes, aggregate stats — to the same seeded schedule fed
    // directly to the engine.
    let replay = replay_open_loop_direct(
        model,
        replay_pool,
        TokenScheduler::new(8),
        cfg,
        schedule.clone(),
        &[],
    );
    let mut recorder = LatencyRecorder::new();
    for res in &results {
        let timing = replay.timing_for(res.id);
        assert_eq!(
            res.tokens, timing.tokens,
            "request {}: service != direct",
            res.id
        );
        assert_eq!(
            res.token_clocks, timing.token_clocks,
            "request {}: delivery clocks != direct",
            res.id
        );
        assert_eq!(
            res.end.outcome,
            replay.finished_for(res.id).outcome,
            "request {}",
            res.id
        );
        recorder.record(spec.name, timing.arrival, &res.token_clocks);
    }
    let stats = &report.stats;
    assert_eq!(*stats, replay.stats, "service stats != direct replay stats");
    assert!(report.drained_empty(), "pool residue: {:?}", report.drain);
    assert_eq!(
        stats.retired + stats.failed + stats.cancellations + stats.deadline_kills,
        results.len() as u64
    );
    assert_eq!(stats.faults_absorbed, stats.faults_injected);

    for class in recorder.report() {
        println!(
            "  {:<14} {:>3} reqs | ttft p50/p95/p99/max {}/{}/{}/{} ticks | itl p50/p95/p99/max {}/{}/{}/{} ({} gaps)",
            class.class,
            class.requests,
            class.ttft.p50,
            class.ttft.p95,
            class.ttft.p99,
            class.ttft.max,
            class.itl.p50,
            class.itl.p95,
            class.itl.p99,
            class.itl.max,
            class.itl_samples,
        );
    }
    println!();
    println!("{:>22}  {}", "service clock", report.clock);
    println!("{:>22}  {}", "iterations", stats.iterations);
    println!("{:>22}  {}", "retired", stats.retired);
    println!("{:>22}  {}", "preemptions", stats.preemptions);
    println!("{:>22}  {}", "admission stalls", stats.admission_stalls);
    println!("{:>22}  {}", "swap outs", stats.swap_outs);
    println!("{:>22}  {}", "decode tokens", stats.decode_tokens);
    println!("{:>22}  {}", "faults absorbed", stats.faults_absorbed);
    println!("{:>22}  {}", "deadline kills", stats.deadline_kills);
    println!(
        "{:>22}  {:.1} tok/s",
        "gen throughput",
        stats.decode_tokens as f64 / secs.max(1e-9)
    );
    println!(
        "\nall {} streams bit-exact with the direct engine replay.",
        results.len()
    );
}

//! Serving-engine demo: replay a (scaled-down) Azure-style trace through
//! the *real* continuous-batching engine — actual token-by-token model
//! execution over the shared paged quantized KV pool, not the analytic
//! simulator.
//!
//! Run with: `cargo run --release --example serve [-- --smoke]`
//! (`--smoke` is the CI wiring: tiny workload, ~2 decode tokens per
//! request).

use oaken::core::OakenConfig;
use oaken::eval::harness::profile_oaken;
use oaken::model::{Model, ModelConfig, PagedKvPool};
use oaken::serving::{
    synthesize_requests, AdmissionPolicy, BatchEngine, EngineConfig, EngineRequest, Request,
    TokenScheduler, TraceSpec,
};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spec = TraceSpec::conversation();

    // A proxy model small enough to execute for real; trace lengths are
    // scaled to its sequence budget (the trace's input:output *ratio* is
    // what Figure 14 exercises, and scaling preserves it).
    let model = Model::synthetic(ModelConfig::llama2_7b().proxy(2, 64), 7);
    let vocab = model.config().vocab_size;
    let (n_requests, scale, max_out) = if smoke { (3, 256, 2) } else { (16, 64, 12) };
    let requests: Vec<EngineRequest> = synthesize_requests(&spec, n_requests, 42)
        .into_iter()
        .map(|r| {
            let scaled = Request {
                id: r.id,
                input_len: (r.input_len / scale).clamp(2, 48),
                output_len: (r.output_len / scale).clamp(1, max_out),
            };
            EngineRequest::from_lengths(&scaled, vocab, 7)
        })
        .collect();

    // Offline phase: profile Oaken's thresholds on this model's own KV
    // distribution (the same observer-hook recipe as the Table 2 harness).
    let quantizer = Arc::new(profile_oaken(&model, OakenConfig::default(), 4, 8, 7));

    // Online phase: the shared paged pool + continuous-batching engine.
    let pages = if smoke { 512 } else { 2048 };
    let pool = PagedKvPool::for_model(model.config(), Some(quantizer), pages, 1024);
    println!(
        "replaying `{}` (scaled 1/{scale}) through the executed engine:",
        spec.name
    );
    println!(
        "  model {} | pool {pages} pages x {} B | {} requests\n",
        model.config().name,
        pool.page_size(),
        requests.len()
    );
    let mut engine = BatchEngine::new(
        &model,
        pool,
        TokenScheduler::new(8),
        EngineConfig {
            max_batch: if smoke { 2 } else { 8 },
            admission: AdmissionPolicy::PromptOnly,
            record_logits: false,
        },
    );
    for r in requests {
        engine.submit(r);
    }
    let start = Instant::now();
    engine.run();
    let secs = start.elapsed().as_secs_f64();

    let stats = *engine.stats();
    println!("{:>22}  {}", "iterations", stats.iterations);
    println!("{:>22}  {}", "admitted", stats.admitted);
    println!("{:>22}  {}", "retired", stats.retired);
    println!("{:>22}  {}", "preemptions", stats.preemptions);
    println!("{:>22}  {}", "admission stalls", stats.admission_stalls);
    println!("{:>22}  {}", "peak concurrent", stats.peak_active);
    println!("{:>22}  {}", "prefill tokens", stats.prefill_tokens);
    println!("{:>22}  {}", "decode tokens", stats.decode_tokens);
    println!(
        "{:>22}  {:.2}",
        "mean core util",
        stats.mean_core_utilization()
    );
    println!(
        "{:>22}  {:.1} tok/s",
        "gen throughput",
        stats.decode_tokens as f64 / secs.max(1e-9)
    );

    let sample = engine
        .finished()
        .iter()
        .find(|f| f.completed)
        .expect("at least one request completes");
    println!(
        "\nrequest {}: prompt {} tokens -> {:?}",
        sample.id,
        sample.prompt_len,
        &sample.generated[..sample.generated.len().min(8)]
    );
    assert_eq!(stats.retired as usize, engine.finished().len());
    println!("\nall {} requests served to completion.", stats.retired);
}

//! Replay Azure-style production traces (Conversation, BurstGPT) through
//! the serving simulator — a compact version of Figure 14 showing how
//! output length drives the value of KV quantization.
//!
//! Run with: `cargo run --example trace_replay`

use oaken::accel::{AcceleratorSpec, QuantPolicy, SystemModel};
use oaken::model::ModelConfig;
use oaken::serving::{simulate_trace, synthesize_requests, TraceSpec};

fn main() {
    let model = ModelConfig::llama2_13b();
    let lpu = SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16());
    let oaken = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());

    println!("Llama2-13B, batch 64 — generation throughput (tokens/s)\n");
    println!(
        "{:>14} {:>12} {:>14} {:>8}",
        "trace", "LPU (FP16)", "Oaken (4.8b)", "gain"
    );
    for spec in [TraceSpec::conversation(), TraceSpec::burstgpt()] {
        let requests = synthesize_requests(&spec, 128, 42);
        let r_lpu = simulate_trace(&lpu, &model, &requests, 64);
        let r_oaken = simulate_trace(&oaken, &model, &requests, 64);
        println!(
            "{:>14} {:>12.0} {:>14.0} {:>7.2}x",
            spec.name,
            r_lpu.gen_throughput,
            r_oaken.gen_throughput,
            r_oaken.gen_throughput / r_lpu.gen_throughput
        );
    }
    println!("\nExpected: the BurstGPT trace (long outputs → generation-heavy)");
    println!("benefits more from KV quantization than Conversation (short");
    println!("outputs → prefill-heavy), matching Figure 14.");
}

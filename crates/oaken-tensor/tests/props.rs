//! Property tests for the tensor substrate: algebraic identities that must
//! hold for arbitrary shapes and values.

use oaken_tensor::{log_softmax, quantile, softmax_in_place, top_k, MinMax, Tensor};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0e3f32..1.0e3, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn matmul_identity(v in finite_vec(64)) {
        let n = v.len();
        let a = Tensor::from_vec(v.clone(), &[1, n]).unwrap();
        let id = Tensor::eye(n);
        let out = a.matmul(&id).unwrap();
        for (x, y) in v.iter().zip(out.as_slice()) {
            prop_assert!((x - y).abs() <= x.abs() * 1e-6 + 1e-6);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in finite_vec(16),
        b in finite_vec(16),
    ) {
        let n = a.len().min(b.len()).max(1);
        let a = Tensor::from_vec(a[..n].to_vec(), &[1, n]).unwrap();
        let b = Tensor::from_vec(b[..n].to_vec(), &[1, n]).unwrap();
        // (a + b) · I == a·I + b·I
        let id = Tensor::eye(n);
        let lhs = a.add(&b).unwrap().matmul(&id).unwrap();
        let rhs = a.matmul(&id).unwrap().add(&b.matmul(&id).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= x.abs() * 1e-5 + 1e-4);
        }
    }

    #[test]
    fn transpose_is_involution(v in finite_vec(48)) {
        let n = v.len();
        // Factor into a 2D shape.
        let rows = (1..=n).rev().find(|&r| n.is_multiple_of(r)).unwrap();
        let t = Tensor::from_vec(v, &[rows, n / rows]).unwrap();
        prop_assert_eq!(t.transpose().unwrap().transpose().unwrap(), t);
    }

    #[test]
    fn softmax_is_a_distribution(mut v in finite_vec(64)) {
        softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(v.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }

    #[test]
    fn softmax_invariant_to_shift(v in finite_vec(32), shift in -100.0f32..100.0) {
        let mut a = v.clone();
        let mut b: Vec<f32> = v.iter().map(|x| x + shift).collect();
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn log_softmax_exponentiates_to_distribution(v in finite_vec(32)) {
        let ls = log_softmax(&v);
        let sum: f32 = ls.iter().map(|l| l.exp()).sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn top_k_contains_the_maximum(v in finite_vec(64), k in 1usize..8) {
        let top = top_k(&v, k);
        let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(top[0], max);
        // Descending order.
        for w in top.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn quantile_monotone(v in finite_vec(64), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&v, lo).unwrap();
        let b = quantile(&v, hi).unwrap();
        prop_assert!(a <= b + 1e-6);
    }

    #[test]
    fn minmax_brackets_every_element(v in finite_vec(64)) {
        let mm = MinMax::of(&v).unwrap();
        for &x in &v {
            prop_assert!(mm.min <= x && x <= mm.max);
        }
    }
}

//! Free functions on slices shared by the higher-level modules: numerically
//! stable softmax and log-softmax.

/// Numerically stable in-place softmax.
///
/// Subtracts the maximum before exponentiation so that large attention
/// logits (common with long contexts) do not overflow.
///
/// An empty slice is left untouched.
pub fn softmax_in_place(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in x.iter_mut() {
            *v *= inv;
        }
    }
}

/// Numerically stable log-softmax, returning a new vector.
///
/// Used by the perplexity harness: `log p(token) = logit - logsumexp`.
pub fn log_softmax(x: &[f32]) -> Vec<f32> {
    if x.is_empty() {
        return Vec::new();
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let lse = max + x.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
    x.iter().map(|&v| v - lse).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut x = vec![1.0, 2.0, 3.0];
        softmax_in_place(&mut x);
        let s: f32 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut x = vec![1000.0, 1001.0];
        softmax_in_place(&mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_noop() {
        let mut x: Vec<f32> = vec![];
        softmax_in_place(&mut x);
        assert!(x.is_empty());
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = vec![0.5, -1.0, 2.0];
        let ls = log_softmax(&x);
        let mut sm = x.clone();
        softmax_in_place(&mut sm);
        for (l, s) in ls.iter().zip(&sm) {
            assert!((l.exp() - s).abs() < 1e-5);
        }
    }
}

//! Order statistics used by Oaken's offline threshold profiler (§4.3 of the
//! paper): top-k / bottom-k selection and quantiles.
//!
//! The paper points out that computing topK *online* costs `O(n log n)` and
//! ruins the speedup of quantization — which is exactly why Oaken moves this
//! computation offline. These helpers are therefore used only during offline
//! profiling and evaluation, never on the quantization hot path.

/// A `(min, max)` pair, the only statistics Oaken's online quantizer needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMax {
    /// Smallest observed value.
    pub min: f32,
    /// Largest observed value.
    pub max: f32,
}

impl MinMax {
    /// Scans a slice, returning `None` when it is empty. NaNs are ignored.
    pub fn of(values: &[f32]) -> Option<Self> {
        let mut it = values.iter().copied().filter(|v| !v.is_nan());
        let first = it.next()?;
        let mut mm = MinMax {
            min: first,
            max: first,
        };
        for v in it {
            if v < mm.min {
                mm.min = v;
            }
            if v > mm.max {
                mm.max = v;
            }
        }
        Some(mm)
    }

    /// Width of the interval, `max - min`.
    pub fn range(&self) -> f32 {
        self.max - self.min
    }

    /// Expands this interval so it also covers `other`.
    pub fn merge(&self, other: &MinMax) -> MinMax {
        MinMax {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

impl Default for MinMax {
    fn default() -> Self {
        MinMax {
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
        }
    }
}

/// Returns the `k` largest values, descending. `k` is clamped to `len`.
///
/// Uses `select_nth_unstable` (average `O(n)`) followed by a sort of the
/// selected prefix — profiling happens on whole KV vectors, so this is the
/// same asymptotic cost the paper attributes to topK.
pub fn top_k(values: &[f32], k: usize) -> Vec<f32> {
    let k = k.min(values.len());
    if k == 0 {
        return Vec::new();
    }
    let mut v: Vec<f32> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    let k = k.min(v.len());
    if k == 0 {
        return Vec::new();
    }
    let n = v.len();
    v.select_nth_unstable_by(n - k, |a, b| a.partial_cmp(b).unwrap());
    let mut top: Vec<f32> = v.split_off(n - k);
    top.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
    top
}

/// Returns the `k` smallest values, ascending. `k` is clamped to `len`.
pub fn bottom_k(values: &[f32], k: usize) -> Vec<f32> {
    let k = k.min(values.len());
    if k == 0 {
        return Vec::new();
    }
    let mut v: Vec<f32> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    let k = k.min(v.len());
    if k == 0 {
        return Vec::new();
    }
    v.select_nth_unstable_by(k - 1, |a, b| a.partial_cmp(b).unwrap());
    let mut bot: Vec<f32> = v;
    bot.truncate(k);
    bot.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    bot
}

/// Linear-interpolation quantile, `q` in `[0, 1]`. Returns `None` for empty
/// input or out-of-range `q`.
pub fn quantile(values: &[f32], q: f64) -> Option<f32> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut v: Vec<f32> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = (pos - lo as f64) as f32;
    Some(v[lo] + (v[hi] - v[lo]) * frac)
}

/// Index of the maximum element, or `None` for empty input.
pub fn argmax(values: &[f32]) -> Option<usize> {
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_nan())
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_basic() {
        let mm = MinMax::of(&[3.0, -1.0, 2.0]).unwrap();
        assert_eq!(mm.min, -1.0);
        assert_eq!(mm.max, 3.0);
        assert_eq!(mm.range(), 4.0);
        assert!(MinMax::of(&[]).is_none());
    }

    #[test]
    fn minmax_merge() {
        let a = MinMax { min: 0.0, max: 1.0 };
        let b = MinMax {
            min: -2.0,
            max: 0.5,
        };
        let m = a.merge(&b);
        assert_eq!(m.min, -2.0);
        assert_eq!(m.max, 1.0);
    }

    #[test]
    fn minmax_skips_nan() {
        let mm = MinMax::of(&[f32::NAN, 1.0, 2.0]).unwrap();
        assert_eq!(mm.min, 1.0);
        assert_eq!(mm.max, 2.0);
    }

    #[test]
    fn top_k_descending() {
        let v = [1.0, 5.0, 3.0, 2.0, 4.0];
        assert_eq!(top_k(&v, 2), vec![5.0, 4.0]);
        assert_eq!(top_k(&v, 0), Vec::<f32>::new());
        assert_eq!(top_k(&v, 10).len(), 5);
    }

    #[test]
    fn bottom_k_ascending() {
        let v = [1.0, 5.0, 3.0, 2.0, 4.0];
        assert_eq!(bottom_k(&v, 2), vec![1.0, 2.0]);
        assert_eq!(bottom_k(&v, 10).len(), 5);
    }

    #[test]
    fn quantile_endpoints() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&v, 1.5), None);
    }

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }
}

//! Rotary position embeddings (RoPE), used by Llama2, Mistral, and Mixtral.
//!
//! The KV-distribution observations of the paper (§4.1) are made on keys
//! *after* RoPE for Llama-family models — the rotation mixes channel pairs
//! but per-channel magnitude structure survives, which is what Oaken's
//! offline thresholds capture.

/// Applies RoPE in place to a head vector of even length at position `pos`.
///
/// Channel pairs `(2i, 2i+1)` are rotated by `pos * theta^(-2i/d)`.
///
/// # Panics
///
/// Panics in debug builds if `head.len()` is odd.
pub fn apply_rope(head: &mut [f32], pos: usize, theta: f32) {
    debug_assert!(
        head.len().is_multiple_of(2),
        "RoPE requires an even head dimension"
    );
    let d = head.len();
    for i in 0..d / 2 {
        let freq = theta.powf(-2.0 * i as f32 / d as f32);
        let angle = pos as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        let a = head[2 * i];
        let b = head[2 * i + 1];
        head[2 * i] = a * cos - b * sin;
        head[2 * i + 1] = a * sin + b * cos;
    }
}

/// The default RoPE base used by Llama2 and Mistral.
pub const DEFAULT_THETA: f32 = 10_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rope_at_position_zero_is_identity() {
        let mut h = vec![1.0, 2.0, 3.0, 4.0];
        let orig = h.clone();
        apply_rope(&mut h, 0, DEFAULT_THETA);
        for (a, b) in h.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rope_preserves_norm() {
        let mut h = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let norm_before: f32 = h.iter().map(|v| v * v).sum();
        apply_rope(&mut h, 17, DEFAULT_THETA);
        let norm_after: f32 = h.iter().map(|v| v * v).sum();
        assert!((norm_before - norm_after).abs() < 1e-3);
    }

    #[test]
    fn rope_distinct_positions_differ() {
        let base = vec![1.0, 0.0, 1.0, 0.0];
        let mut a = base.clone();
        let mut b = base;
        apply_rope(&mut a, 1, DEFAULT_THETA);
        apply_rope(&mut b, 2, DEFAULT_THETA);
        assert!(a.iter().zip(&b).any(|(x, y)| (x - y).abs() > 1e-4));
    }
}

//! The [`Tensor`] type: a row-major, heap-allocated, dense `f32` tensor.

use std::fmt;

/// Error type for all fallible tensor operations.
///
/// The `Display` representation is lowercase without trailing punctuation,
/// per the Rust API guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The product of the requested dimensions does not match the length of
    /// the provided data buffer.
    ShapeMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors were combined with incompatible shapes.
    IncompatibleShapes {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor's shape.
        shape: Vec<usize>,
    },
    /// A tensor with zero elements was passed to an operation that requires
    /// at least one element (e.g. min/max reduction).
    Empty,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape expects {expected} elements but data has {actual}")
            }
            TensorError::IncompatibleShapes { lhs, rhs, op } => {
                write!(f, "incompatible shapes {lhs:?} and {rhs:?} for {op}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::Empty => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense, row-major `f32` tensor of arbitrary rank.
///
/// `Tensor` deliberately stays small: it is the numeric substrate for the
/// transformer inference engine and the quantization pipeline, not a general
/// autodiff framework. All operations are implemented in safe Rust.
///
/// # Example
///
/// ```
/// use oaken_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from a data buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying buffer in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        Ok(Self {
            data: self.data.clone(),
            shape: shape.to_vec(),
        })
    }

    /// Returns the element at a fully-specified index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank differs
    /// from the tensor rank or any coordinate exceeds its dimension.
    pub fn get(&self, index: &[usize]) -> Result<f32, TensorError> {
        let off = self.offset(index)?;
        Ok(self.data[off])
    }

    /// Sets the element at a fully-specified index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on an invalid index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.shape.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            });
        }
        let mut off = 0usize;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            if ix >= dim {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.shape.clone(),
                });
            }
            off = off * dim + ix;
            debug_assert!(i < self.shape.len());
        }
        Ok(off)
    }

    /// Borrows row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `r` is out of bounds; rows are a
    /// hot-path accessor so the check is an assertion rather than a `Result`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutably borrows row `r` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.rank(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.shape[1];
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op,
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            data,
            shape: self.shape.clone(),
        })
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| x * s).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for empty tensors.
    pub fn min(&self) -> Result<f32, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        Ok(self.data.iter().copied().fold(f32::INFINITY, f32::min))
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for empty tensors.
    pub fn max(&self) -> Result<f32, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        Ok(self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max))
    }

    /// Arithmetic mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for empty tensors.
    pub fn mean(&self) -> Result<f32, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty);
        }
        Ok(self.data.iter().sum::<f32>() / self.data.len() as f32)
    }

    /// Matrix multiplication of two rank-2 tensors: `(m,k) × (k,n) → (m,n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] unless both operands are
    /// rank 2 and the inner dimensions agree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || other.rank() != 2 || self.shape[1] != other.shape[0] {
            return Err(TensorError::IncompatibleShapes {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op: "matmul",
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        let mut out = vec![0.0f32; m * n];
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // rows of `other`, which matters for the larger model configs.
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[p * n..(p + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix-vector product of a rank-2 tensor with a vector: `(m,k) × (k,) → (m,)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] unless `self` is rank 2
    /// and `v.len()` equals the column count.
    pub fn matvec(&self, v: &[f32]) -> Result<Vec<f32>, TensorError> {
        if self.rank() != 2 || self.shape[1] != v.len() {
            return Err(TensorError::IncompatibleShapes {
                lhs: self.shape.clone(),
                rhs: vec![v.len()],
                op: "matvec",
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * k..(i + 1) * k];
            *o = dot(row, v);
        }
        Ok(out)
    }

    /// Matrix-vector product against *several* vectors at once:
    /// `(m,k) × n·(k,) → n·(m,)` — the batched-decode primitive.
    ///
    /// Each weight row is loaded once and dotted against every input
    /// before moving on, so (a) the row stays in L1 across the batch and
    /// (b) the `n` accumulator chains are independent, letting the FP
    /// adders pipeline instead of serializing on one dot's dependency
    /// chain. This is where batched decode gets its measured throughput:
    /// one weight sweep serves the whole batch, exactly like a GEMV
    /// widened into a GEMM on real hardware.
    ///
    /// Per input, the accumulation order is identical to
    /// [`Tensor::matvec`], so `matvec_batch(&[x])[0]` is bit-exact with
    /// `matvec(x)` and results never depend on the co-batched vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] unless `self` is rank 2
    /// and every vector's length equals the column count.
    pub fn matvec_batch(&self, xs: &[&[f32]]) -> Result<Vec<Vec<f32>>, TensorError> {
        for v in xs {
            if self.rank() != 2 || self.shape[1] != v.len() {
                return Err(TensorError::IncompatibleShapes {
                    lhs: self.shape.clone(),
                    rhs: vec![v.len()],
                    op: "matvec_batch",
                });
            }
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let mut outs = vec![vec![0.0f32; m]; xs.len()];
        let mut start = 0usize;
        while start < xs.len() {
            let n = (xs.len() - start).min(MATVEC_CHUNK);
            if n == 1 {
                // A lone vector gains nothing from interleaving; take the
                // single-sequence dot path (identical accumulation order).
                let x = xs[start];
                for (i, o) in outs[start].iter_mut().enumerate() {
                    *o = dot(&self.data[i * k..(i + 1) * k], x);
                }
                start += 1;
                continue;
            }
            // Re-slice each input to exactly `k` elements so the indexed
            // loads below are provably in bounds and check-free.
            let mut chunk = [&[] as &[f32]; MATVEC_CHUNK];
            for (c, x) in chunk[..n].iter_mut().zip(&xs[start..start + n]) {
                *c = &x[..k];
            }
            for i in 0..m {
                let row = &self.data[i * k..(i + 1) * k];
                let mut acc = [0.0f32; MATVEC_CHUNK];
                for (j, &w) in row.iter().enumerate() {
                    for (a, x) in acc[..n].iter_mut().zip(&chunk[..n]) {
                        *a += w * x[j];
                    }
                }
                for (s, &a) in acc[..n].iter().enumerate() {
                    outs[start + s][i] = a;
                }
            }
            start += n;
        }
        Ok(outs)
    }

    /// [`Tensor::matvec_batch`] sharded across output rows on `rt` —
    /// the parallel form of the batched-decode primitive.
    ///
    /// The decomposition follows the runtime's determinism discipline:
    /// each task owns a contiguous, fixed range of output rows
    /// ([`oaken_runtime::chunk_range`]) and replicates the serial kernel's
    /// arithmetic for exactly those rows — every accumulation chain is
    /// row-local, so no reassociation is possible and the result is
    /// **bit-exact** with the serial [`Tensor::matvec_batch`] for every
    /// thread count and every scheduling order. Per-task partial outputs
    /// are merged in index order.
    ///
    /// Small products (or a serial `rt`) take the serial path directly;
    /// the crossover is sized so the fork-join overhead never dominates.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] under the same
    /// conditions as [`Tensor::matvec_batch`].
    pub fn matvec_batch_on(
        &self,
        rt: &oaken_runtime::Runtime,
        xs: &[&[f32]],
    ) -> Result<Vec<Vec<f32>>, TensorError> {
        let (m, k) = (
            *self.shape.first().unwrap_or(&0),
            *self.shape.get(1).unwrap_or(&0),
        );
        // The fork-join pays off only when every thread gets real work.
        let flops = m * k * xs.len();
        if rt.is_serial() || m < 2 || flops < PAR_MATVEC_MIN_FLOPS {
            return self.matvec_batch(xs);
        }
        for v in xs {
            if self.rank() != 2 || self.shape[1] != v.len() {
                return Err(TensorError::IncompatibleShapes {
                    lhs: self.shape.clone(),
                    rhs: vec![v.len()],
                    op: "matvec_batch",
                });
            }
        }
        let n_tasks = m.min(rt.threads() * PAR_MATVEC_TASKS_PER_THREAD);
        // Each task computes its own row range for the whole batch,
        // laid out `[seq][local_row]`; the merge scatters in index order.
        let partials = rt.map(n_tasks, |t| {
            let rows = oaken_runtime::chunk_range(t, m, n_tasks);
            let rows_len = rows.len();
            let mut local = vec![0.0f32; rows_len * xs.len()];
            let mut start = 0usize;
            while start < xs.len() {
                let n = (xs.len() - start).min(MATVEC_CHUNK);
                if n == 1 {
                    // Same lone-vector fast path as the serial kernel.
                    let x = &xs[start][..k];
                    for (li, i) in rows.clone().enumerate() {
                        local[start * rows_len + li] = dot(&self.data[i * k..(i + 1) * k], x);
                    }
                    start += 1;
                    continue;
                }
                let mut chunk = [&[] as &[f32]; MATVEC_CHUNK];
                for (c, x) in chunk[..n].iter_mut().zip(&xs[start..start + n]) {
                    *c = &x[..k];
                }
                for (li, i) in rows.clone().enumerate() {
                    let row = &self.data[i * k..(i + 1) * k];
                    let mut acc = [0.0f32; MATVEC_CHUNK];
                    for (j, &w) in row.iter().enumerate() {
                        for (a, x) in acc[..n].iter_mut().zip(&chunk[..n]) {
                            *a += w * x[j];
                        }
                    }
                    for (s, &a) in acc[..n].iter().enumerate() {
                        local[(start + s) * rows_len + li] = a;
                    }
                }
                start += n;
            }
            local
        });
        let mut outs = vec![vec![0.0f32; m]; xs.len()];
        for (t, local) in partials.iter().enumerate() {
            let rows = oaken_runtime::chunk_range(t, m, n_tasks);
            let rows_len = rows.len();
            for (s, out) in outs.iter_mut().enumerate() {
                out[rows.clone()].copy_from_slice(&local[s * rows_len..(s + 1) * rows_len]);
            }
        }
        Ok(outs)
    }

    /// [`Tensor::matvec_batch`] restricted to a contiguous row range:
    /// `rows.len()` outputs per input, `outs[s][li] == matvec(xs[s])[rows.start + li]`.
    ///
    /// This is the tensor-parallel rank's shard kernel: each rank owns a
    /// row range of every projection and computes exactly these outputs.
    /// The per-row arithmetic replicates [`Tensor::matvec_batch`] —
    /// including the lone-vector dot fast path and the
    /// `MATVEC_CHUNK`-interleaved accumulators — and every accumulation
    /// chain is row-local, so each produced element is **bit-exact** with
    /// the corresponding element of the full product. Concatenating the
    /// ranks' shards in rank order therefore reproduces the unsharded
    /// result bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] unless `self` is rank 2,
    /// every vector's length equals the column count, and `rows` is within
    /// the row count.
    pub fn matvec_batch_rows(
        &self,
        xs: &[&[f32]],
        rows: std::ops::Range<usize>,
    ) -> Result<Vec<Vec<f32>>, TensorError> {
        let m = *self.shape.first().unwrap_or(&0);
        if self.rank() != 2 || rows.start > rows.end || rows.end > m {
            return Err(TensorError::IncompatibleShapes {
                lhs: self.shape.clone(),
                rhs: vec![rows.start, rows.end],
                op: "matvec_batch_rows",
            });
        }
        for v in xs {
            if self.shape[1] != v.len() {
                return Err(TensorError::IncompatibleShapes {
                    lhs: self.shape.clone(),
                    rhs: vec![v.len()],
                    op: "matvec_batch_rows",
                });
            }
        }
        let k = self.shape[1];
        let rows_len = rows.len();
        let mut outs = vec![vec![0.0f32; rows_len]; xs.len()];
        let mut start = 0usize;
        while start < xs.len() {
            let n = (xs.len() - start).min(MATVEC_CHUNK);
            if n == 1 {
                // Same lone-vector fast path as the full kernel.
                let x = &xs[start][..k];
                for (li, i) in rows.clone().enumerate() {
                    outs[start][li] = dot(&self.data[i * k..(i + 1) * k], x);
                }
                start += 1;
                continue;
            }
            let mut chunk = [&[] as &[f32]; MATVEC_CHUNK];
            for (c, x) in chunk[..n].iter_mut().zip(&xs[start..start + n]) {
                *c = &x[..k];
            }
            for (li, i) in rows.clone().enumerate() {
                let row = &self.data[i * k..(i + 1) * k];
                let mut acc = [0.0f32; MATVEC_CHUNK];
                for (j, &w) in row.iter().enumerate() {
                    for (a, x) in acc[..n].iter_mut().zip(&chunk[..n]) {
                        *a += w * x[j];
                    }
                }
                for (s, &a) in acc[..n].iter().enumerate() {
                    outs[start + s][li] = a;
                }
            }
            start += n;
        }
        Ok(outs)
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] for non-rank-2 tensors.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::IncompatibleShapes {
                lhs: self.shape.clone(),
                rhs: vec![],
                op: "transpose",
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }
}

impl Default for Tensor {
    /// The default tensor is a rank-1 empty tensor.
    fn default() -> Self {
        Tensor {
            data: Vec::new(),
            shape: vec![0],
        }
    }
}

/// Sequences interleaved per weight row by [`Tensor::matvec_batch`]:
/// enough independent FP-add chains to hide the add latency, few enough
/// that the accumulators stay in registers.
const MATVEC_CHUNK: usize = 8;

/// Minimum `m × k × batch` product for [`Tensor::matvec_batch_on`] to
/// shard: below this the fork-join round trip costs more than the
/// multiply loop it would split.
const PAR_MATVEC_MIN_FLOPS: usize = 16 * 1024;

/// Row-range tasks per thread for the sharded matvec: enough slack that a
/// thread finishing early steals remaining chunks instead of idling.
const PAR_MATVEC_TASKS_PER_THREAD: usize = 4;

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics (via `debug_assert!`) in debug builds when lengths differ; in
/// release builds the shorter length wins.
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_shape() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 2]);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[2, 2], 3.5);
        assert!(f.as_slice().iter().all(|&x| x == 3.5));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let i3 = Tensor::eye(3);
        let c = a.matmul(&i3).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::IncompatibleShapes { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let v = vec![1.0, 0.5, -1.0];
        let got = a.matvec(&v).unwrap();
        let vm = Tensor::from_vec(v.clone(), &[3, 1]).unwrap();
        let want = a.matmul(&vm).unwrap();
        assert_eq!(got, want.as_slice());
    }

    #[test]
    fn matvec_batch_rows_bit_exact_with_full_product() {
        // Row shards concatenated in rank order must reproduce the full
        // batched product bit-for-bit — the tensor-parallel invariant.
        let (m, k) = (13, 29);
        let data: Vec<f32> = (0..m * k)
            .map(|i| ((i * 2654435761) % 991) as f32 / 127.0 - 3.9)
            .collect();
        let a = Tensor::from_vec(data, &[m, k]).unwrap();
        for n in [1usize, 2, 9] {
            let xs: Vec<Vec<f32>> = (0..n)
                .map(|s| {
                    (0..k)
                        .map(|j| ((s * 37 + j * 11) % 29) as f32 / 9.0 - 1.4)
                        .collect()
                })
                .collect();
            let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
            let full = a.matvec_batch(&refs).unwrap();
            for ranks in [1usize, 2, 3, 5] {
                for r in 0..ranks {
                    let rows = oaken_runtime::chunk_range(r, m, ranks);
                    let shard = a.matvec_batch_rows(&refs, rows.clone()).unwrap();
                    for s in 0..n {
                        for (li, i) in rows.clone().enumerate() {
                            assert_eq!(
                                shard[s][li].to_bits(),
                                full[s][i].to_bits(),
                                "seq {s} row {i} rank {r}/{ranks}"
                            );
                        }
                    }
                }
            }
        }
        // Range validation.
        let x = vec![0.0f32; k];
        assert!(a.matvec_batch_rows(&[&x], 5..20).is_err());
    }

    #[test]
    fn matvec_batch_bit_exact_with_matvec() {
        // 3 rows × 17 cols with awkward values so any reassociation of the
        // accumulation order would change the bits.
        let k = 17;
        let data: Vec<f32> = (0..3 * k)
            .map(|i| ((i * 2654435761) % 997) as f32 / 131.0 - 3.7)
            .collect();
        let a = Tensor::from_vec(data, &[3, k]).unwrap();
        // 11 vectors crosses the interleave-chunk boundary.
        let xs: Vec<Vec<f32>> = (0..11)
            .map(|s| {
                (0..k)
                    .map(|j| ((s * 31 + j * 7) % 23) as f32 / 7.0 - 1.5)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let batch = a.matvec_batch(&refs).unwrap();
        assert_eq!(batch.len(), 11);
        for (s, x) in xs.iter().enumerate() {
            let single = a.matvec(x).unwrap();
            let sb: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = batch[s].iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, bb, "sequence {s} diverged");
        }
    }

    /// The row-sharded parallel kernel must reproduce the serial kernel's
    /// bits for every thread count: all accumulation chains are row-local,
    /// so the decomposition cannot reassociate anything.
    #[test]
    fn matvec_batch_on_bit_exact_with_serial_for_any_thread_count() {
        let (m, k) = (67, 33); // awkward odd shapes, above the crossover
        let data: Vec<f32> = (0..m * k)
            .map(|i| ((i * 2654435761) % 1009) as f32 / 97.0 - 5.1)
            .collect();
        let a = Tensor::from_vec(data, &[m, k]).unwrap();
        let xs: Vec<Vec<f32>> = (0..13)
            .map(|s| {
                (0..k)
                    .map(|j| ((s * 13 + j * 5) % 37) as f32 / 9.0 - 2.0)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let serial = a.matvec_batch(&refs).unwrap();
        for threads in [2usize, 3, 4, 8] {
            let rt = oaken_runtime::Runtime::new(threads);
            let par = a.matvec_batch_on(&rt, &refs).unwrap();
            for (s, (x, y)) in serial.iter().zip(&par).enumerate() {
                let xb: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
                let yb: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
                assert_eq!(xb, yb, "sequence {s} diverged at {threads} threads");
            }
        }
        // The serial runtime goes through the serial kernel verbatim.
        let rt1 = oaken_runtime::Runtime::serial();
        assert_eq!(a.matvec_batch_on(&rt1, &refs).unwrap(), serial);
    }

    #[test]
    fn matvec_batch_on_checks_shapes() {
        let a = Tensor::zeros(&[64, 64]);
        let good = [0.0f32; 64];
        let bad = [0.0f32; 63];
        let rt = oaken_runtime::Runtime::new(2);
        let xs: Vec<&[f32]> = (0..7)
            .map(|i| if i == 5 { &bad[..] } else { &good[..] })
            .collect();
        assert!(a.matvec_batch_on(&rt, &xs).is_err());
        assert!(a.matvec_batch_on(&rt, &[]).unwrap().is_empty());
    }

    #[test]
    fn matvec_batch_checks_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let good = [0.0f32; 3];
        let bad = [0.0f32; 2];
        assert!(a.matvec_batch(&[&good, &bad]).is_err());
        assert!(a.matvec_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2, 3]).unwrap(), 9.0);
        assert!(t.get(&[2, 0, 0]).is_err());
        assert!(t.get(&[0, 0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 4.0, 2.0], &[3]).unwrap();
        assert_eq!(t.min().unwrap(), -1.0);
        assert_eq!(t.max().unwrap(), 4.0);
        assert!((t.mean().unwrap() - 5.0 / 3.0).abs() < 1e-6);
        let e = Tensor::default();
        assert!(matches!(e.min(), Err(TensorError::Empty)));
    }

    #[test]
    fn rows_of_rank2() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn error_display_is_lowercase() {
        let e = TensorError::Empty.to_string();
        assert!(e.starts_with(|c: char| c.is_lowercase()));
        assert!(!e.ends_with('.'));
    }
}

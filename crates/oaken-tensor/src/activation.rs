//! Activation functions used by the transformer substrate.
//!
//! Llama2/Mistral/Mixtral use SwiGLU (SiLU-gated) feed-forward networks;
//! OPT uses ReLU. GELU is provided for completeness with encoder-style
//! models.

/// Sigmoid Linear Unit, `x * sigmoid(x)`.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Rectified Linear Unit.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Gaussian Error Linear Unit (tanh approximation).
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Which activation a feed-forward network uses.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum Activation {
    /// SiLU-gated (SwiGLU) — Llama2, Mistral, Mixtral.
    #[default]
    Silu,
    /// ReLU — OPT.
    Relu,
    /// GELU — encoder-style transformers.
    Gelu,
}

impl Activation {
    /// Applies the activation to a single value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Silu => silu(x),
            Activation::Relu => relu(x),
            Activation::Gelu => gelu(x),
        }
    }

    /// Applies the activation to every element of a slice in place.
    pub fn apply_in_place(self, xs: &mut [f32]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silu_known_points() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.731_058_6).abs() < 1e-5);
        assert!(silu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.5), 2.5);
    }

    #[test]
    fn gelu_is_monotone_near_origin() {
        assert!(gelu(1.0) > gelu(0.0));
        assert!(gelu(0.0) > gelu(-1.0));
        assert!(gelu(0.0).abs() < 1e-6);
    }

    #[test]
    fn activation_dispatch() {
        let mut v = vec![-1.0, 0.0, 1.0];
        Activation::Relu.apply_in_place(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 1.0]);
        assert_eq!(Activation::Silu.apply(0.0), 0.0);
        assert_eq!(Activation::default(), Activation::Silu);
    }
}

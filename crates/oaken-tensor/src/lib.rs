//! Minimal dense `f32` tensor library used as the numeric substrate for the
//! Oaken reproduction.
//!
//! The Oaken paper evaluates KV-cache quantization inside real transformer
//! inference. This crate provides just enough linear algebra to run a
//! from-scratch transformer ([`oaken-model`]) without any external BLAS:
//! row-major tensors, matrix multiplication, softmax, normalisation layers,
//! activations, rotary position embeddings, and the order statistics
//! (top-k, quantiles) that Oaken's offline profiler relies on.
//!
//! The serving hot path is [`Tensor::matvec_batch`] — one weight-row sweep
//! dotted against a whole decode batch — and its row-sharded parallel form
//! [`Tensor::matvec_batch_on`], which fans the rows out across an
//! `oaken-runtime` worker pool while staying **bit-exact** with the serial
//! kernel (every accumulation chain is row-local, so no thread count or
//! schedule can reassociate it).
//!
//! # Example
//!
//! ```
//! use oaken_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok::<(), oaken_tensor::TensorError>(())
//! ```
//!
//! [`oaken-model`]: https://docs.rs/oaken-model

mod stats;
mod tensor;

pub mod activation;
pub mod norm;
pub mod ops;
pub mod rope;

pub use ops::{log_softmax, softmax_in_place};
pub use stats::{argmax, bottom_k, quantile, top_k, MinMax};
pub use tensor::{Tensor, TensorError};

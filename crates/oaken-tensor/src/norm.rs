//! Normalisation layers: RMSNorm (Llama2/Mistral/Mixtral) and LayerNorm (OPT).

/// Root-mean-square normalisation with a learned gain vector.
///
/// `y_i = x_i / rms(x) * weight_i`, `rms(x) = sqrt(mean(x²) + eps)`.
///
/// # Panics
///
/// Panics in debug builds if `x.len() != weight.len()`.
pub fn rmsnorm(x: &[f32], weight: &[f32], eps: f32) -> Vec<f32> {
    debug_assert_eq!(x.len(), weight.len());
    let ms = x.iter().map(|&v| v * v).sum::<f32>() / x.len().max(1) as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    x.iter().zip(weight).map(|(&v, &w)| v * inv * w).collect()
}

/// Standard layer normalisation with learned gain and bias.
///
/// # Panics
///
/// Panics in debug builds if the three slices differ in length.
pub fn layernorm(x: &[f32], weight: &[f32], bias: &[f32], eps: f32) -> Vec<f32> {
    debug_assert_eq!(x.len(), weight.len());
    debug_assert_eq!(x.len(), bias.len());
    let n = x.len().max(1) as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + eps).sqrt();
    x.iter()
        .zip(weight.iter().zip(bias))
        .map(|(&v, (&w, &b))| (v - mean) * inv * w + b)
        .collect()
}

/// Which normalisation a decoder layer uses.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum NormKind {
    /// RMSNorm — Llama-family models.
    #[default]
    Rms,
    /// LayerNorm — OPT-family models.
    Layer,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmsnorm_unit_gain() {
        let x = vec![3.0, 4.0];
        let w = vec![1.0, 1.0];
        let y = rmsnorm(&x, &w, 0.0);
        // rms = sqrt((9+16)/2) = sqrt(12.5)
        let rms = 12.5f32.sqrt();
        assert!((y[0] - 3.0 / rms).abs() < 1e-6);
        assert!((y[1] - 4.0 / rms).abs() < 1e-6);
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let w = vec![1.0; 4];
        let b = vec![0.0; 4];
        let y = layernorm(&x, &w, &b, 1e-6);
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_applies_bias() {
        let x = vec![1.0, -1.0];
        let w = vec![1.0, 1.0];
        let b = vec![10.0, 10.0];
        let y = layernorm(&x, &w, &b, 1e-6);
        assert!(y.iter().all(|&v| v > 8.0));
    }
}

//! Sharding helpers for deterministic task decompositions: balanced index
//! ranges and a disjoint-write slice wrapper for merging per-task results
//! in index order without a gather copy.

use std::marker::PhantomData;
use std::ops::Range;

/// The index range task `task` of `n_tasks` owns when `n_items` items are
/// split into contiguous, balanced chunks (sizes differ by at most one,
/// earlier tasks get the larger chunks).
///
/// The decomposition is a pure function of `(n_items, n_tasks)` — no
/// thread count, no scheduling — so a parallel loop built on it touches
/// exactly the same `(task, index)` pairs on every run.
///
/// # Panics
///
/// Panics if `n_tasks == 0`.
pub fn chunk_range(task: usize, n_items: usize, n_tasks: usize) -> Range<usize> {
    assert!(n_tasks > 0, "decomposition needs at least one task");
    if task >= n_tasks {
        return n_items..n_items;
    }
    let base = n_items / n_tasks;
    let extra = n_items % n_tasks;
    let start = task * base + task.min(extra);
    let len = base + usize::from(task < extra);
    start..(start + len)
}

/// A shared view of a mutable slice that allows concurrent writes to
/// **disjoint** indices — the merge-in-index-order primitive parallel
/// stages use to publish per-task results without locks or gather copies.
///
/// All methods are `unsafe`: the caller promises that no index is written
/// by more than one task of the same fork-join job (reads are not
/// supported at all while the job runs).
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the wrapper only hands out writes, and the caller contract
// (disjoint indices per job) makes those writes race-free; `T: Send`
// because values are written from other threads.
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps a mutable slice for the duration of one fork-join job.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the wrapped slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wrapped slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds, and no other task of the same job may
    /// read or write it.
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).write(value) }
    }

    /// Exclusive reference to the element at `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds, and no other task of the same job may
    /// hold a reference to it.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, index: usize) -> &mut T {
        debug_assert!(index < self.len);
        unsafe { &mut *self.ptr.add(index) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_tile_the_items_exactly() {
        for n_items in 0..40usize {
            for n_tasks in 1..10usize {
                let mut covered = vec![0u8; n_items];
                let mut sizes = Vec::new();
                for t in 0..n_tasks {
                    let r = chunk_range(t, n_items, n_tasks);
                    sizes.push(r.len());
                    for i in r {
                        covered[i] += 1;
                    }
                }
                assert!(
                    covered.iter().all(|&c| c == 1),
                    "{n_items} items / {n_tasks} tasks"
                );
                let (min, max) = (
                    sizes.iter().min().copied().unwrap(),
                    sizes.iter().max().copied().unwrap(),
                );
                assert!(max - min <= 1, "balanced split: {sizes:?}");
            }
        }
    }

    #[test]
    fn out_of_range_task_gets_empty_range() {
        assert!(chunk_range(5, 3, 2).is_empty());
    }

    #[test]
    fn unsafe_slice_disjoint_writes_land() {
        let mut data = vec![0usize; 16];
        {
            let view = UnsafeSlice::new(&mut data);
            assert_eq!(view.len(), 16);
            assert!(!view.is_empty());
            for i in 0..16 {
                // Single-threaded here, but exercises the write path.
                unsafe { view.write(i, i * i) };
            }
        }
        assert_eq!(data[3], 9);
        assert_eq!(data[15], 225);
    }
}

//! The hand-rolled scoped worker pool behind [`crate::Runtime`].
//!
//! Design constraints (see the crate docs for the determinism argument):
//!
//! * **std only** — no rayon/crossbeam in the offline vendor tree, so the
//!   pool is a `Mutex` + two `Condvar`s and plain `std::thread` workers.
//! * **Scoped borrows** — a fork-join call borrows its closure (and
//!   everything the closure captures) only for the duration of
//!   [`WorkerPool::run`]; the lifetime is erased into a raw pointer while
//!   the job is in flight and `run` does not return until every task has
//!   finished, so the borrow can never dangle.
//! * **Claim-under-lock scheduling** — a worker claims `(job pointer,
//!   task index)` together under the job mutex, so a late-waking worker
//!   can never pair a fresh index with a stale closure. Task bodies run
//!   outside the lock; with task granularities of microseconds and up the
//!   per-claim lock cost is noise.
//! * **Allocation-free dispatch** — publishing a job stores one raw fat
//!   pointer and three counters; no per-call boxing, so hot paths that
//!   must stay allocation-free in steady state (the paged pool's batch
//!   append) can fork-join freely.
//! * **Panic propagation** — a panicking task is caught in the worker,
//!   the job still drains, and the first payload is re-thrown from `run`
//!   on the calling thread (so `should_panic` tests and engine assertions
//!   behave identically under any thread count).

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The type-erased fork-join task: invoked once per index in `0..n_tasks`.
type RawTask = *const (dyn Fn(usize) + Sync);

/// Shared pool state guarded by [`Shared::state`].
struct JobState {
    /// The in-flight job's closure, while one is active.
    task: Option<RawTask>,
    /// Next unclaimed task index of the in-flight job.
    next: usize,
    /// Total tasks of the in-flight job.
    n_tasks: usize,
    /// Tasks claimed but not yet finished plus tasks not yet claimed.
    remaining: usize,
    /// Id of the most recently published job (monotonic). Claim loops and
    /// completion waits are keyed on it, so a caller can never claim
    /// indices of — or wait on, or take panics from — someone else's job
    /// when multiple threads share one pool.
    job_id: u64,
    /// Highest job id that has fully drained.
    completed_id: u64,
    /// First panic payload of each drained-with-panic job, keyed by job
    /// id; the publishing caller removes and re-throws its own entry.
    panics: Vec<(u64, Box<dyn Any + Send>)>,
    /// Tells workers to exit (pool drop).
    shutdown: bool,
}

// SAFETY: the raw task pointer is only dereferenced while the publishing
// `run` call is blocked waiting for the job to drain, so the pointee (a
// caller-stack closure) is alive for every dereference; the closure itself
// is `Sync`, making concurrent shared calls sound.
unsafe impl Send for JobState {}

struct Shared {
    state: Mutex<JobState>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The publishing caller parks here until `remaining == 0`.
    done: Condvar,
}

/// A fixed-size pool of parked worker threads executing deterministic
/// fork-join jobs. Construct through [`crate::Runtime`] unless you need
/// the pool directly.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool that executes jobs on `threads` threads total: the
    /// calling thread participates, so `threads - 1` workers are spawned.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least the calling thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState {
                task: None,
                next: 0,
                n_tasks: 0,
                remaining: 0,
                job_id: 0,
                completed_id: 0,
                panics: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("oaken-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// Threads that execute a job (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `task(i)` for every `i in 0..n_tasks` across the pool and the
    /// calling thread, returning when all tasks have finished.
    ///
    /// The task decomposition is part of the caller's contract: tasks must
    /// be independent (disjoint effects), and each `task(i)` must compute
    /// the same values regardless of which thread runs it — under that
    /// discipline the result is bit-identical to the serial loop
    /// `for i in 0..n_tasks { task(i) }` for every thread count and every
    /// scheduling order.
    ///
    /// Reentrancy: if a job is already in flight on this pool (a task that
    /// itself forks, or a second thread sharing the pool), the call simply
    /// degrades to the serial loop on the calling thread — same bits, no
    /// deadlock.
    ///
    /// # Panics
    ///
    /// Re-throws the first panic raised by any task, after the job drains.
    pub fn run(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        let shared = &self.shared;
        let mut state = shared.state.lock().expect("pool mutex");
        if state.task.is_some() {
            // Busy pool: degrade to the serial loop (bit-identical).
            drop(state);
            for i in 0..n_tasks {
                task(i);
            }
            return;
        }
        // SAFETY (lifetime erasure): the pointer is dereferenced only while
        // this call is blocked draining the job, which keeps `task` alive.
        let raw: RawTask =
            unsafe { std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), RawTask>(task) };
        state.task = Some(raw);
        state.next = 0;
        state.n_tasks = n_tasks;
        state.remaining = n_tasks;
        state.job_id += 1;
        let my_id = state.job_id;
        shared.work.notify_all();
        // The caller participates: claim and execute until no unclaimed
        // task of *its own* job is left, then wait for the stragglers.
        // The job-id guard matters when clones share the pool: once this
        // job drains, another thread may publish a new job before we
        // re-acquire the lock, and we must not claim its indices.
        loop {
            if state.job_id != my_id || state.next >= state.n_tasks {
                break;
            }
            let idx = state.next;
            state.next += 1;
            drop(state);
            let result = catch_unwind(AssertUnwindSafe(|| task(idx)));
            state = shared.state.lock().expect("pool mutex");
            finish_task(&mut state, result, &shared.done);
        }
        while state.completed_id < my_id {
            state = shared.done.wait(state).expect("pool mutex");
        }
        let panic = state
            .panics
            .iter()
            .position(|(id, _)| *id == my_id)
            .map(|pos| state.panics.swap_remove(pos).1);
        drop(state);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

/// Book-keeping after one task body returns: record a panic, decrement the
/// drain counter, and on the last task retire the job and wake the caller.
///
/// Runs strictly before the job drains (`remaining > 0` on entry), and a
/// new job cannot be published until the drain, so `state.job_id` is
/// always the id of the job this task belonged to.
fn finish_task(state: &mut JobState, result: Result<(), Box<dyn Any + Send>>, done: &Condvar) {
    if let Err(payload) = result {
        let id = state.job_id;
        if !state.panics.iter().any(|(j, _)| *j == id) {
            state.panics.push((id, payload));
        }
    }
    state.remaining -= 1;
    if state.remaining == 0 {
        state.task = None;
        state.completed_id = state.job_id;
        done.notify_all();
    }
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("pool mutex");
    loop {
        if state.shutdown {
            return;
        }
        match state.task {
            // Claim the job pointer and an index *together* under the
            // lock: a stale pointer can never meet a fresh index.
            Some(task) if state.next < state.n_tasks => {
                let idx = state.next;
                state.next += 1;
                drop(state);
                // SAFETY: `remaining` cannot hit zero until this task
                // finishes, and the publishing `run` call does not return
                // before `remaining == 0`, so the closure is alive.
                let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*task)(idx) }));
                state = shared.state.lock().expect("pool mutex");
                finish_task(&mut state, result, &shared.done);
            }
            _ => {
                state = shared.work.wait(state).expect("pool mutex");
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex");
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = WorkerPool::new(3);
        for round in 0..50usize {
            let sum = AtomicUsize::new(0);
            pool.run(round + 1, &|i| {
                sum.fetch_add(i + 1, Ordering::Relaxed);
            });
            let n = round + 1;
            assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = WorkerPool::new(2);
        pool.run(0, &|_| panic!("must not run"));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let sum = AtomicUsize::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn nested_run_degrades_to_serial() {
        let pool = WorkerPool::new(4);
        let count = AtomicUsize::new(0);
        pool.run(4, &|_| {
            pool.run(4, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    /// Two threads hammering one shared pool concurrently: each caller
    /// must execute exactly its own tasks and see exactly its own panics
    /// (regression test for the job-identity race where a second
    /// publisher could capture a draining job's indices or panic).
    #[test]
    fn concurrent_callers_never_cross_jobs() {
        let pool = std::sync::Arc::new(WorkerPool::new(3));
        let mut handles = Vec::new();
        for caller in 0..2u64 {
            let pool = std::sync::Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for round in 0..200usize {
                    let sum = AtomicUsize::new(0);
                    let n = 1 + (round + caller as usize) % 7;
                    pool.run(n, &|i| {
                        sum.fetch_add(i + 1, Ordering::Relaxed);
                    });
                    assert_eq!(
                        sum.load(Ordering::Relaxed),
                        n * (n + 1) / 2,
                        "caller {caller} round {round}"
                    );
                    // Odd callers also throw periodically; the panic must
                    // come back to *this* caller, never the other one.
                    if caller == 1 && round % 10 == 0 {
                        let err = catch_unwind(AssertUnwindSafe(|| {
                            pool.run(4, &|i| {
                                if i == 3 {
                                    panic!("caller-one panic");
                                }
                            });
                        }));
                        assert!(err.is_err(), "round {round}: panic must propagate");
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no caller may observe a foreign panic");
        }
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let pool = WorkerPool::new(4);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                if i == 7 {
                    panic!("task seven failed");
                }
            });
        }))
        .expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "task seven failed");
        // The pool survives a panicked job.
        let sum = AtomicUsize::new(0);
        pool.run(8, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }
}

//! Deterministic fork-join parallelism for the Oaken reproduction — the
//! software analogue of the paper's many parallel quantization engines
//! (§5.2: one quantize/dequantize unit per memory channel, all working on
//! independent shards of the same iteration).
//!
//! Oaken's hardware gets throughput by pointing many small engines at
//! disjoint pieces of work — heads, channels, batch slots — and merging the
//! results in a fixed order. This crate reproduces that execution model on
//! CPU threads without giving up the repository's central invariant,
//! **bit-exactness**: a parallel run must produce exactly the bits of the
//! serial run, for every thread count, every time.
//!
//! # The determinism discipline
//!
//! [`Runtime::run`] executes a *fixed task decomposition*: `n_tasks` tasks,
//! each a pure function of its index with effects disjoint from every other
//! task (disjoint output rows, disjoint batch slots, disjoint accumulators).
//! Scheduling — which thread runs which task, in which order — is the only
//! nondeterministic ingredient, and under that discipline it is
//! unobservable:
//!
//! * floating-point results are fixed because every accumulation chain
//!   lives *inside* one task (the same per-row / per-head chains the serial
//!   code uses — no cross-task reductions, no atomics on floats);
//! * merged outputs are fixed because tasks write disjoint index ranges
//!   that are concatenated in index order ([`UnsafeSlice`],
//!   [`chunk_range`]);
//! * control flow is fixed because the decomposition depends only on the
//!   problem shape, never on timing.
//!
//! `Runtime::new(1)` (or [`Runtime::serial`]) runs every task inline on the
//! calling thread — byte-for-byte the pre-parallel code path — so
//! `OAKEN_THREADS=1` reproduces single-threaded behaviour exactly, and the
//! serving engine's property tests can diff any thread count against it.
//!
//! # Usage
//!
//! ```
//! use oaken_runtime::Runtime;
//!
//! let rt = Runtime::new(4);
//! // Each task owns one output slot: deterministic under any schedule.
//! let squares = rt.map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```
//!
//! The thread count for the serving stack defaults to
//! [`default_threads`]: the `OAKEN_THREADS` environment variable when set,
//! otherwise [`std::thread::available_parallelism`].

pub mod comm;
mod pool;
mod shard;

pub use comm::{default_ranks, Comm, CommStats};
pub use pool::WorkerPool;
pub use shard::{chunk_range, UnsafeSlice};

use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::Arc;

/// The default worker count for parallel stages: the `OAKEN_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism (and `1` when even that is unknown).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("OAKEN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A cheap, cloneable handle to a fork-join execution context: either the
/// serial inline executor or a shared [`WorkerPool`].
///
/// Clones share the same pool, so one engine-owned runtime can be handed
/// down through the forward pass, the tensor kernels, and the paged pool
/// without re-spawning threads.
#[derive(Clone, Debug, Default)]
pub struct Runtime {
    pool: Option<Arc<WorkerPool>>,
}

impl Runtime {
    /// The serial runtime: every task runs inline on the calling thread,
    /// in index order — exactly the loop the parallel path shards.
    pub fn serial() -> Self {
        Self { pool: None }
    }

    /// A runtime executing on `threads` threads (the calling thread
    /// participates). `threads <= 1` yields the serial runtime; worker
    /// threads are spawned eagerly and parked between jobs.
    pub fn new(threads: usize) -> Self {
        if threads <= 1 {
            Self::serial()
        } else {
            Self {
                pool: Some(Arc::new(WorkerPool::new(threads))),
            }
        }
    }

    /// A runtime with [`default_threads`] threads.
    pub fn from_env() -> Self {
        Self::new(default_threads())
    }

    /// Threads that execute a job (1 for the serial runtime).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.threads())
    }

    /// Whether this is the serial inline executor.
    pub fn is_serial(&self) -> bool {
        self.pool.is_none()
    }

    /// Runs `task(i)` for every `i in 0..n_tasks` and returns when all
    /// have finished. Serial runtimes run the plain `for` loop; pooled
    /// runtimes fork-join across the workers. Under the crate's task
    /// discipline (independent tasks, disjoint effects) both produce
    /// identical bits.
    ///
    /// # Panics
    ///
    /// Re-throws the first panic raised by any task.
    pub fn run(&self, n_tasks: usize, task: impl Fn(usize) + Sync) {
        match &self.pool {
            None => {
                for i in 0..n_tasks {
                    task(i);
                }
            }
            Some(pool) => pool.run(n_tasks, &task),
        }
    }

    /// Runs `task(i)` for every `i in 0..n_tasks` and collects the results
    /// **in index order** — the deterministic merge for stages whose tasks
    /// produce owned values.
    ///
    /// # Panics
    ///
    /// Re-throws the first panic raised by any task; already-produced
    /// results are leaked (not dropped) in that case.
    pub fn map<T: Send>(&self, n_tasks: usize, task: impl Fn(usize) -> T + Sync) -> Vec<T> {
        match &self.pool {
            None => (0..n_tasks).map(task).collect(),
            Some(pool) => {
                let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n_tasks);
                out.resize_with(n_tasks, MaybeUninit::uninit);
                let slots = UnsafeSlice::new(&mut out);
                pool.run(n_tasks, &|i| {
                    let value = task(i);
                    // SAFETY: each task writes only its own slot.
                    unsafe { slots.write(i, MaybeUninit::new(value)) };
                });
                // Every task completed, so every slot is initialized.
                let mut out = ManuallyDrop::new(out);
                let (ptr, len, cap) = (out.as_mut_ptr(), out.len(), out.capacity());
                // SAFETY: `MaybeUninit<T>` has the same layout as `T` and
                // all `len` elements were written above.
                unsafe { Vec::from_raw_parts(ptr.cast::<T>(), len, cap) }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_runtime_runs_inline_in_order() {
        let rt = Runtime::serial();
        assert!(rt.is_serial());
        assert_eq!(rt.threads(), 1);
        let order = std::sync::Mutex::new(Vec::new());
        rt.run(5, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn one_thread_is_serial() {
        assert!(Runtime::new(1).is_serial());
        assert!(Runtime::new(0).is_serial());
        assert!(!Runtime::new(2).is_serial());
    }

    #[test]
    fn map_preserves_index_order_under_any_schedule() {
        let rt = Runtime::new(4);
        for _ in 0..20 {
            let v = rt.map(97, |i| i * 3 + 1);
            assert_eq!(v, (0..97).map(|i| i * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_non_copy_values() {
        let rt = Runtime::new(3);
        let v = rt.map(10, |i| vec![i; i]);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(x.len(), i);
        }
    }

    #[test]
    fn clones_share_one_pool() {
        let rt = Runtime::new(4);
        let rt2 = rt.clone();
        let count = AtomicUsize::new(0);
        rt.run(8, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        rt2.run(8, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
        assert_eq!(rt2.threads(), 4);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}

//! Deterministic collective communication for rank-sharded execution.
//!
//! Tensor-parallel ranks in this repository are simulated: all ranks live in
//! one process and "communication" is a memcpy plus byte accounting. What the
//! module pins down is the *arithmetic* of the collectives, because that is
//! where real tensor-parallel systems lose bit-exactness. A floating-point
//! all-reduce is only deterministic if the combine order is fixed; ours is a
//! binomial tree over rank indices with a pinned gap-doubling schedule, so the
//! reduction order for N ranks is a pure function of N — independent of thread
//! count, scheduling, and timing.
//!
//! # Bit-exactness with 1 rank
//!
//! The serving engine shards every projection by *rows*: rank `r` computes a
//! disjoint row-range of each output vector and contributes a full-width
//! buffer that is **zero outside its owned range**. Summing zero-padded
//! disjoint-support buffers would already be value-exact, but `x + 0.0` is not
//! always bit-exact (`-0.0 + 0.0 == +0.0` flips the sign bit of a legitimate
//! `-0.0` output). The combine therefore treats bitwise `+0.0` — the padding
//! value, produced only by `vec![0.0; n]` — as the identity and returns the
//! other operand *unchanged*:
//!
//! * element owned by exactly one rank → that rank's bits pass through
//!   untouched (even `-0.0` and NaN payloads);
//! * element owned by no rank → stays `+0.0`, as in the serial run.
//!
//! Under the disjoint-support discipline no element is owned by two ranks, so
//! the `a + b` branch never fires for padded reductions; it exists so the
//! all-reduce is still a correct (tree-ordered) sum for overlapping inputs.
//!
//! # Accounting
//!
//! [`CommStats`] records what a real interconnect would move. Each all-reduce
//! of a length-`L` buffer across `N` ranks is modeled as a reduce +
//! broadcast costing `2·(N−1)·L·4` bytes (ring/tree all-reduce lower bound,
//! up to the `N/(N−1)` factor). Side-channel synchronisations that move
//! metadata rather than activations — e.g. sharing per-row quantizer scales
//! so every rank encodes its KV slice against the global min/max — are
//! charged via [`Comm::account_sync`].

use crate::chunk_range;

/// Counters for the simulated interconnect, reported in engine stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of all-reduce collectives executed.
    pub allreduce_calls: u64,
    /// Number of side-channel synchronisations (e.g. quantizer scale syncs).
    pub sync_calls: u64,
    /// Total modeled bytes moved across ranks, collectives plus syncs.
    pub bytes_moved: u64,
}

/// A deterministic all-reduce context for a fixed rank count.
///
/// With one rank every operation is a no-op and nothing is accounted: a
/// 1-rank group has no interconnect.
#[derive(Debug, Clone)]
pub struct Comm {
    ranks: usize,
    stats: CommStats,
}

impl Comm {
    /// A communicator for `ranks` ranks (`ranks >= 1`).
    pub fn new(ranks: usize) -> Self {
        assert!(ranks >= 1, "Comm requires at least one rank");
        Self {
            ranks,
            stats: CommStats::default(),
        }
    }

    /// The rank count this communicator was built for.
    pub fn num_ranks(&self) -> usize {
        self.ranks
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Reset counters (e.g. between warmup and a measured run).
    pub fn reset(&mut self) {
        self.stats = CommStats::default();
    }

    /// Sum `parts` element-wise across ranks and broadcast the result back to
    /// every rank, in a fixed binomial-tree order.
    ///
    /// `parts[r]` is rank `r`'s full-width contribution; all parts must have
    /// equal length. After the call every `parts[r]` holds the identical
    /// reduced buffer. The combine order is gap-doubling over rank indices
    /// (`1, 2, 4, …`), so for a given rank count the floating-point reduction
    /// tree is fixed regardless of threads or timing.
    ///
    /// Bitwise `+0.0` acts as the identity (see module docs), which makes the
    /// reduction lossless for the zero-padded disjoint-support buffers the
    /// ranked forward pass produces.
    ///
    /// # Panics
    ///
    /// Panics if `parts.len()` differs from the rank count or the buffers
    /// have unequal lengths.
    pub fn all_reduce(&mut self, parts: &mut [&mut [f32]]) {
        assert_eq!(parts.len(), self.ranks, "one part per rank");
        if self.ranks == 1 {
            return;
        }
        let len = parts[0].len();
        for p in parts.iter() {
            assert_eq!(p.len(), len, "all-reduce parts must have equal length");
        }
        // Reduce: binomial tree, fixed gap-doubling order. After the loop,
        // parts[0] holds the tree-ordered sum.
        let mut gap = 1;
        while gap < self.ranks {
            let mut i = 0;
            while i + gap < self.ranks {
                let (lo, hi) = parts.split_at_mut(i + gap);
                let dst = &mut lo[i];
                let src = &hi[0];
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d = combine(*d, s);
                }
                i += gap * 2;
            }
            gap *= 2;
        }
        // Broadcast: copy rank 0's reduced buffer to every other rank.
        let (head, tail) = parts.split_at_mut(1);
        for p in tail.iter_mut() {
            p.copy_from_slice(head[0]);
        }
        self.stats.allreduce_calls += 1;
        self.stats.bytes_moved += 2 * (self.ranks as u64 - 1) * len as u64 * 4;
    }

    /// Account a metadata synchronisation of `floats` f32 values per call,
    /// repeated `calls` times (no data movement happens; the values are
    /// already shared in-process).
    pub fn account_sync(&mut self, calls: u64, floats: u64) {
        if self.ranks == 1 {
            return;
        }
        self.stats.sync_calls += calls;
        self.stats.bytes_moved += 2 * (self.ranks as u64 - 1) * floats * 4 * calls;
    }
}

/// Tree-combine two elements with bitwise `+0.0` as the identity.
#[inline]
fn combine(a: f32, b: f32) -> f32 {
    if a.to_bits() == 0 {
        b
    } else if b.to_bits() == 0 {
        a
    } else {
        a + b
    }
}

/// The default rank count for the serving stack: the `OAKEN_RANKS`
/// environment variable when set to a positive integer, otherwise `1`.
///
/// Unlike [`default_threads`](crate::default_threads) this does not consult
/// the machine shape: ranks model a cluster topology, not local parallelism,
/// so they are opt-in.
pub fn default_ranks() -> usize {
    if let Ok(v) = std::env::var("OAKEN_RANKS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    1
}

/// The contiguous KV-head range owned by `rank` out of `ranks`, balanced for
/// uneven divisions via [`chunk_range`] (earlier ranks take the larger
/// shares, e.g. 7 heads over 2 ranks split 4 + 3).
pub fn rank_head_range(rank: usize, num_kv_heads: usize, ranks: usize) -> std::ops::Range<usize> {
    chunk_range(rank, num_kv_heads, ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reduce(ranks: usize, mk: impl Fn(usize) -> Vec<f32>) -> (Vec<Vec<f32>>, Comm) {
        let mut bufs: Vec<Vec<f32>> = (0..ranks).map(mk).collect();
        let mut comm = Comm::new(ranks);
        {
            let mut parts: Vec<&mut [f32]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
            comm.all_reduce(&mut parts);
        }
        (bufs, comm)
    }

    #[test]
    fn single_rank_is_a_free_no_op() {
        let (bufs, comm) = reduce(1, |_| vec![1.5, -0.0, 3.0]);
        assert_eq!(bufs[0], vec![1.5, -0.0, 3.0]);
        assert_eq!(comm.stats(), CommStats::default());
    }

    #[test]
    fn disjoint_padded_parts_pass_bits_through() {
        // Rank 0 owns [0,2), rank 1 owns [2,4); padding is +0.0.
        let vals = [1.25f32, -0.0, -7.5, f32::MIN_POSITIVE];
        let (bufs, comm) = reduce(2, |r| {
            let mut b = vec![0.0f32; 4];
            let rg = chunk_range(r, 4, 2);
            for i in rg {
                b[i] = vals[i];
            }
            b
        });
        for b in &bufs {
            for (got, want) in b.iter().zip(vals.iter()) {
                assert_eq!(got.to_bits(), want.to_bits(), "bitwise pass-through");
            }
        }
        assert_eq!(comm.stats().allreduce_calls, 1);
        // 2·(N−1)·len·4 with N=2, len=4.
        assert_eq!(comm.stats().bytes_moved, 32);
    }

    #[test]
    fn negative_zero_survives_the_identity() {
        // -0.0 owned by rank 1, padding +0.0 elsewhere: a plain sum would
        // turn it into +0.0.
        let (bufs, _) = reduce(3, |r| {
            let mut b = vec![0.0f32; 1];
            if r == 1 {
                b[0] = -0.0;
            }
            b
        });
        for b in &bufs {
            assert_eq!(b[0].to_bits(), (-0.0f32).to_bits());
        }
    }

    #[test]
    fn all_ranks_see_the_same_bits() {
        for ranks in [2usize, 3, 4, 5, 8] {
            let (bufs, _) = reduce(ranks, |r| {
                (0..17).map(|i| (r * 31 + i) as f32 * 0.37 - 2.0).collect()
            });
            for r in 1..ranks {
                assert_eq!(bufs[0], bufs[r], "rank {r} diverged at N={ranks}");
            }
        }
    }

    #[test]
    fn tree_order_is_a_function_of_rank_count_only() {
        // Same inputs, reduced twice: identical bits (determinism), and the
        // result equals the explicit gap-doubling tree evaluation.
        let mk = |r: usize| vec![(r as f32 + 1.0) * 1e-3, (r as f32) * 7.25];
        let (a, _) = reduce(4, mk);
        let (b, _) = reduce(4, mk);
        assert_eq!(a, b);
        // Explicit tree for N=4: ((r0+r1) + (r2+r3)).
        let v: Vec<Vec<f32>> = (0..4).map(mk).collect();
        for i in 0..2 {
            let want = (v[0][i] + v[1][i]) + (v[2][i] + v[3][i]);
            assert_eq!(a[0][i].to_bits(), want.to_bits());
        }
    }

    #[test]
    fn sync_accounting_scales_with_ranks() {
        let mut comm = Comm::new(4);
        comm.account_sync(10, 4);
        assert_eq!(comm.stats().sync_calls, 10);
        assert_eq!(comm.stats().bytes_moved, 2 * 3 * 4 * 4 * 10);
        let mut one = Comm::new(1);
        one.account_sync(10, 4);
        assert_eq!(one.stats(), CommStats::default());
    }

    #[test]
    fn default_ranks_is_positive() {
        assert!(default_ranks() >= 1);
    }

    #[test]
    fn head_ranges_balance_odd_counts() {
        // 7 heads over 2 ranks: 4 + 3, contiguous, covering.
        assert_eq!(rank_head_range(0, 7, 2), 0..4);
        assert_eq!(rank_head_range(1, 7, 2), 4..7);
        // 5 heads over 4 ranks: 2 + 1 + 1 + 1.
        let lens: Vec<usize> = (0..4).map(|r| rank_head_range(r, 5, 4).len()).collect();
        assert_eq!(lens, vec![2, 1, 1, 1]);
        assert_eq!(rank_head_range(3, 5, 4).end, 5);
    }
}

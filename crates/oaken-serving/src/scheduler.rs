//! Token-level batch scheduling (§5.3): prefill tokens fan out across all
//! compute cores; in the generation phase each core owns one request's
//! token, and quantization/dequantization overlap with DMA reads and
//! attention computation from other requests.

use crate::request::Request;

/// Assignment of requests to compute cores for one generation iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreAssignment {
    /// `core_of[i]` = core executing request `i` of the active set.
    pub core_of: Vec<usize>,
    /// Number of physical cores.
    pub num_cores: usize,
}

impl CoreAssignment {
    /// Fraction of cores with at least one request this iteration —
    /// the generation-phase utilization picture of Figure 3(b).
    pub fn core_utilization(&self) -> f64 {
        let mut busy = vec![false; self.num_cores];
        for &c in &self.core_of {
            busy[c] = true;
        }
        busy.iter().filter(|&&b| b).count() as f64 / self.num_cores.max(1) as f64
    }

    /// Maximum requests multiplexed onto one core (>1 means the iteration
    /// serializes).
    pub fn max_per_core(&self) -> usize {
        let mut counts = vec![0usize; self.num_cores];
        for &c in &self.core_of {
            counts[c] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }
}

/// The token-level scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenScheduler {
    /// Physical compute cores.
    pub num_cores: usize,
}

impl TokenScheduler {
    /// Creates a scheduler for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one core");
        Self { num_cores }
    }

    /// Round-robin generation assignment: request `i` → core `i % cores`.
    pub fn assign_generation(&self, active: usize) -> CoreAssignment {
        CoreAssignment {
            core_of: (0..active).map(|i| i % self.num_cores).collect(),
            num_cores: self.num_cores,
        }
    }

    /// Least-loaded generation assignment: requests are placed on the core
    /// with the smallest accumulated load, heaviest requests first (LPT
    /// scheduling). `loads[i]` is request `i`'s per-iteration cost — in
    /// generation that is its context length, since attention reads the
    /// whole cached prefix — so long-context requests stop piling onto the
    /// same core the way position-based round-robin lets them.
    pub fn assign_generation_least_loaded(&self, loads: &[f64]) -> CoreAssignment {
        let mut order: Vec<usize> = (0..loads.len()).collect();
        // Heaviest first; ties broken by request index for determinism.
        order.sort_by(|&a, &b| {
            loads[b]
                .partial_cmp(&loads[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut core_load = vec![0.0f64; self.num_cores];
        let mut core_of = vec![0usize; loads.len()];
        for req in order {
            let core = core_load
                .iter()
                .enumerate()
                .min_by(|(ca, la), (cb, lb)| {
                    la.partial_cmp(lb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(ca.cmp(cb))
                })
                .map(|(c, _)| c)
                .expect("at least one core");
            core_of[req] = core;
            core_load[core] += loads[req];
        }
        CoreAssignment {
            core_of,
            num_cores: self.num_cores,
        }
    }

    /// Number of sequential core-rounds one generation iteration takes
    /// (`ceil(active/cores)`): beyond one round, per-core serialization
    /// stretches the iteration.
    pub fn generation_rounds(&self, active: usize) -> usize {
        active.div_ceil(self.num_cores)
    }

    /// Prefill parallelism: the fraction of cores kept busy by a batch of
    /// prompts with `total_tokens` prefill tokens (all cores busy as soon
    /// as there are at least as many tokens as cores).
    pub fn prefill_utilization(&self, total_tokens: usize) -> f64 {
        (total_tokens as f64 / self.num_cores as f64).min(1.0)
    }

    /// Overlap model (§5.3): given per-iteration times for attention/DMA
    /// work and (de)quantization work on *different* requests, returns the
    /// exposed extra time — zero while quantization fits inside the
    /// other requests' DMA/attention window.
    pub fn overlapped_exposure(&self, dma_attention_s: f64, quant_s: f64) -> f64 {
        (quant_s - dma_attention_s).max(0.0)
    }

    /// Splits a batch into admission waves of at most `max_batch` requests
    /// (capacity-limited admission).
    pub fn admission_waves<'r>(
        &self,
        requests: &'r [Request],
        max_batch: usize,
    ) -> Vec<&'r [Request]> {
        if max_batch == 0 {
            return Vec::new();
        }
        requests.chunks(max_batch).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_batches_underutilize_cores() {
        let s = TokenScheduler::new(256);
        let a = s.assign_generation(16);
        assert!((a.core_utilization() - 16.0 / 256.0).abs() < 1e-9);
        assert_eq!(a.max_per_core(), 1);
        assert_eq!(s.generation_rounds(16), 1);
    }

    #[test]
    fn oversubscription_serializes() {
        let s = TokenScheduler::new(256);
        let a = s.assign_generation(512);
        assert_eq!(a.core_utilization(), 1.0);
        assert_eq!(a.max_per_core(), 2);
        assert_eq!(s.generation_rounds(512), 2);
    }

    #[test]
    fn prefill_fills_cores_quickly() {
        let s = TokenScheduler::new(256);
        assert!(s.prefill_utilization(64) < 1.0);
        assert_eq!(s.prefill_utilization(1024), 1.0);
    }

    #[test]
    fn quant_hidden_while_smaller_than_dma_window() {
        let s = TokenScheduler::new(4);
        assert_eq!(s.overlapped_exposure(10.0, 3.0), 0.0);
        assert_eq!(s.overlapped_exposure(10.0, 12.0), 2.0);
    }

    #[test]
    fn admission_waves_chunk_requests() {
        let s = TokenScheduler::new(4);
        let reqs: Vec<Request> = (0..10)
            .map(|id| Request {
                id,
                input_len: 10,
                output_len: 10,
            })
            .collect();
        let waves = s.admission_waves(&reqs, 4);
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[2].len(), 2);
        assert!(s.admission_waves(&reqs, 0).is_empty());
    }

    #[test]
    fn least_loaded_beats_round_robin_on_skewed_contexts() {
        let s = TokenScheduler::new(2);
        // Index-based round-robin stacks the long contexts (even indices)
        // onto core 0; least-loaded must split them and never finish later
        // than round-robin's slowest core.
        let loads = [800.0, 100.0, 700.0, 90.0, 600.0, 80.0];
        let max_core_load = |a: &CoreAssignment| {
            let mut per_core = vec![0.0f64; a.num_cores];
            for (i, &c) in a.core_of.iter().enumerate() {
                per_core[c] += loads[i];
            }
            per_core.into_iter().fold(0.0f64, f64::max)
        };
        let rr = s.assign_generation(loads.len());
        let ll = s.assign_generation_least_loaded(&loads);
        assert!(ll.core_of.iter().all(|&c| c < 2));
        assert_ne!(ll.core_of[0], ll.core_of[2], "two heaviest must split");
        assert!(
            max_core_load(&ll) <= max_core_load(&rr),
            "least-loaded {} vs round-robin {}",
            max_core_load(&ll),
            max_core_load(&rr)
        );
        assert_eq!(ll.core_utilization(), 1.0);
    }

    /// Regression: on *shrinking* active sets (requests completing during
    /// generation, Figure 3b), the utilization picture reported by
    /// round-robin and least-loaded must agree — both fill `min(active,
    /// cores)` cores with at most `ceil(active/cores)` requests each.
    #[test]
    fn utilization_agrees_between_strategies_on_shrinking_sets() {
        let s = TokenScheduler::new(16);
        for active in (0..=48).rev() {
            let rr = s.assign_generation(active);
            let loads: Vec<f64> = (0..active).map(|i| 64.0 + i as f64).collect();
            let ll = s.assign_generation_least_loaded(&loads);
            let expected_util = (active.min(16)) as f64 / 16.0;
            assert!(
                (rr.core_utilization() - expected_util).abs() < 1e-9,
                "rr at {active}"
            );
            assert!(
                (ll.core_utilization() - expected_util).abs() < 1e-9,
                "ll at {active}"
            );
            assert_eq!(
                rr.max_per_core(),
                active.div_ceil(16),
                "rr rounds at {active}"
            );
            assert_eq!(
                ll.max_per_core(),
                rr.max_per_core(),
                "ll rounds at {active}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn rejects_zero_cores() {
        TokenScheduler::new(0);
    }
}

//! Statistical synthesizers for the two Azure production traces of §6.1.
//!
//! * **Conversation** (Splitwise / AzurePublicDataset): chat traffic with
//!   long prompts and *short* outputs — the generation phase is brief, so
//!   KV-quantization gains are muted (Figure 14a/c).
//! * **BurstGPT**: longer outputs relative to prompts — generation
//!   dominates and Oaken's advantage widens (Figure 14b/d).
//!
//! Lengths are drawn from clamped log-normal distributions whose medians
//! match the published trace statistics.

use crate::request::Request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Length-distribution parameters of one trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Trace name as used in Figure 14.
    pub name: &'static str,
    /// Median prompt length (tokens).
    pub input_median: f64,
    /// Log-space sigma of prompt lengths.
    pub input_sigma: f64,
    /// Median output length (tokens).
    pub output_median: f64,
    /// Log-space sigma of output lengths.
    pub output_sigma: f64,
    /// Hard clamp on either length.
    pub max_len: usize,
}

impl TraceSpec {
    /// The Azure `Conversation` trace: median prompt ≈ 1020 tokens, median
    /// output ≈ 130 tokens (Splitwise Table 1).
    pub fn conversation() -> Self {
        Self {
            name: "Conversation",
            input_median: 1020.0,
            input_sigma: 0.7,
            output_median: 130.0,
            output_sigma: 0.6,
            max_len: 4096,
        }
    }

    /// BurstGPT: shorter prompts, substantially longer outputs
    /// (median output ≈ 350 tokens).
    pub fn burstgpt() -> Self {
        Self {
            name: "BurstGPT",
            input_median: 620.0,
            input_sigma: 0.8,
            output_median: 350.0,
            output_sigma: 0.7,
            max_len: 4096,
        }
    }

    /// Output-to-input length ratio at the medians — the quantity that
    /// separates the two traces' behaviour in Figure 14.
    pub fn output_input_ratio(&self) -> f64 {
        self.output_median / self.input_median
    }
}

/// Approximate standard normal from summed uniforms.
fn normal(rng: &mut StdRng) -> f64 {
    let s: f64 = (0..6).map(|_| rng.gen::<f64>()).sum();
    (s - 3.0) * (2.0f64).sqrt()
}

fn lognormal_len(rng: &mut StdRng, median: f64, sigma: f64, max_len: usize) -> usize {
    let v = median * (sigma * normal(rng)).exp();
    (v.round() as usize).clamp(8, max_len)
}

/// Synthesizes `n` requests from a trace's length distributions.
pub fn synthesize_requests(spec: &TraceSpec, n: usize, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_7ACE);
    (0..n as u64)
        .map(|id| Request {
            id,
            input_len: lognormal_len(&mut rng, spec.input_median, spec.input_sigma, spec.max_len),
            output_len: lognormal_len(
                &mut rng,
                spec.output_median,
                spec.output_sigma,
                spec.max_len,
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median(mut v: Vec<usize>) -> f64 {
        v.sort_unstable();
        v[v.len() / 2] as f64
    }

    #[test]
    fn conversation_has_short_outputs() {
        let reqs = synthesize_requests(&TraceSpec::conversation(), 500, 1);
        let in_med = median(reqs.iter().map(|r| r.input_len).collect());
        let out_med = median(reqs.iter().map(|r| r.output_len).collect());
        assert!((700.0..1400.0).contains(&in_med), "input median {in_med}");
        assert!((90.0..190.0).contains(&out_med), "output median {out_med}");
        assert!(out_med < in_med / 3.0);
    }

    #[test]
    fn burstgpt_has_longer_outputs_than_conversation() {
        let conv = synthesize_requests(&TraceSpec::conversation(), 500, 2);
        let burst = synthesize_requests(&TraceSpec::burstgpt(), 500, 2);
        let conv_out = median(conv.iter().map(|r| r.output_len).collect());
        let burst_out = median(burst.iter().map(|r| r.output_len).collect());
        assert!(
            burst_out > conv_out * 1.8,
            "burst {burst_out} vs conv {conv_out}"
        );
        assert!(
            TraceSpec::burstgpt().output_input_ratio()
                > TraceSpec::conversation().output_input_ratio() * 3.0
        );
    }

    #[test]
    fn synthesis_is_deterministic_and_bounded() {
        let spec = TraceSpec::conversation();
        let a = synthesize_requests(&spec, 100, 7);
        let b = synthesize_requests(&spec, 100, 7);
        assert_eq!(a, b);
        assert!(a
            .iter()
            .all(|r| r.input_len <= spec.max_len && r.input_len >= 8));
    }
}

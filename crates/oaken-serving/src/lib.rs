//! Batched LLM serving: request synthesis from production-trace
//! statistics, token-level batch scheduling (§5.3), trace-driven
//! throughput measurement (Figure 14), and — in [`engine`] — a
//! continuous-batching engine that *executes* the model over a shared
//! paged quantized KV pool rather than estimating throughput analytically,
//! with Sarathi-style chunked prefill and copy-on-write prefix sharing
//! (admission reserves only a request's non-trie-shared pages).
//!
//! Each engine iteration runs on a deterministic fork-join runtime
//! ([`EngineConfig::num_threads`], default `OAKEN_THREADS` or the host's
//! available parallelism): weight sweeps shard across output rows,
//! quantize+append across sequences, attention across `(step, KV head)`
//! tasks — and the output is **bit-exact** with `num_threads = 1` for
//! every schedule, enforced by `tests/parallel_props.rs`.
//!
//! The paper's real-world benchmark follows the NeuPIMs methodology:
//! requests are sampled from two Azure production traces — *Conversation*
//! (chat: long prompts, short outputs) and *BurstGPT* (longer outputs) —
//! batches are synthesized from the sampled length pairs, and throughput is
//! averaged over batches. The actual traces are external downloads, so
//! [`traces`] provides statistical synthesizers matched to the published
//! length distributions; what Figure 14 exercises is precisely the
//! input/output length *ratio*, which the synthesizers preserve.

pub mod engine;
pub mod request;
pub mod scheduler;
pub mod simulate;
pub mod traces;

pub use engine::{
    AdmissionPolicy, BatchEngine, EngineConfig, EngineRequest, EngineStats, FinishedRequest,
    KvExport, PreemptPolicy, RequestFailure, RequestOutcome, TokenEvent,
};
pub use oaken_model::{FaultKind, FaultOp, FaultPlan, FaultStats, KernelMode, KvReadStats};
pub use request::Request;
pub use scheduler::{CoreAssignment, TokenScheduler};
pub use simulate::{simulate_trace, TraceResult};
pub use traces::{synthesize_requests, TraceSpec};

//! Serving requests.

use serde::{Deserialize, Serialize};

/// One inference request: a prompt of `input_len` tokens that generates
/// `output_len` tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Unique request id.
    pub id: u64,
    /// Prompt length in tokens.
    pub input_len: usize,
    /// Output length in tokens.
    pub output_len: usize,
}

impl Request {
    /// Total sequence length at completion.
    pub fn total_len(&self) -> usize {
        self.input_len + self.output_len
    }
}

/// Aggregate length statistics of a batch (drives the padding penalty for
/// systolic platforms and the capacity check).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Requests in the batch.
    pub count: usize,
    /// Mean prompt length.
    pub mean_input: f64,
    /// Longest prompt (padding target).
    pub max_input: usize,
    /// Mean output length.
    pub mean_output: f64,
    /// Longest output.
    pub max_output: usize,
}

impl BatchStats {
    /// Computes statistics over a batch.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch.
    pub fn of(batch: &[Request]) -> Self {
        assert!(!batch.is_empty(), "batch must not be empty");
        let count = batch.len();
        BatchStats {
            count,
            mean_input: batch.iter().map(|r| r.input_len as f64).sum::<f64>() / count as f64,
            max_input: batch.iter().map(|r| r.input_len).max().unwrap_or(0),
            mean_output: batch.iter().map(|r| r.output_len as f64).sum::<f64>() / count as f64,
            max_output: batch.iter().map(|r| r.output_len).max().unwrap_or(0),
        }
    }

    /// Padding waste factor: how much longer the padded prompt matrix is
    /// than the real one (1.0 = no variance).
    pub fn padding_factor(&self) -> f64 {
        if self.mean_input <= 0.0 {
            return 1.0;
        }
        self.max_input as f64 / self.mean_input
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_mixed_batch() {
        let batch = [
            Request {
                id: 0,
                input_len: 100,
                output_len: 10,
            },
            Request {
                id: 1,
                input_len: 300,
                output_len: 30,
            },
        ];
        let s = BatchStats::of(&batch);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean_input, 200.0);
        assert_eq!(s.max_input, 300);
        assert_eq!(s.max_output, 30);
        assert!((s.padding_factor() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_batch_has_no_padding() {
        let batch = [Request {
            id: 0,
            input_len: 128,
            output_len: 128,
        }; 4];
        assert_eq!(BatchStats::of(&batch).padding_factor(), 1.0);
    }

    #[test]
    fn total_len_adds_both_phases() {
        let r = Request {
            id: 9,
            input_len: 7,
            output_len: 5,
        };
        assert_eq!(r.total_len(), 12);
    }
}

//! Trace-driven serving simulation (Figure 14): sample requests from a
//! trace, synthesize batches, run each batch through the system model, and
//! average generation throughput — the methodology of §6.1's real-world
//! benchmark.

use crate::request::{BatchStats, Request};
use oaken_accel::{CapacityPolicy, SystemModel};
use oaken_model::ModelConfig;

/// Result of replaying a trace on one system.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceResult {
    /// System name.
    pub system: String,
    /// Generated tokens per second across the whole replay.
    pub gen_throughput: f64,
    /// Total simulated seconds.
    pub total_time: f64,
    /// Output tokens produced.
    pub output_tokens: u64,
    /// Batches that could not run at all (capacity).
    pub oom_batches: usize,
}

/// Replays `requests` in synthesized batches of `batch` on a system model.
///
/// Per batch:
/// 1. a capacity check admits the batch (or sub-batches for waving
///    systems; hard-fails for fixed-allocation NPUs);
/// 2. prefill runs — padded to the longest prompt on systolic platforms
///    (`pads_to_max_prompt`), which is Tender's Figure 14 weakness;
/// 3. generation iterates with the active request count shrinking as short
///    outputs complete.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn simulate_trace(
    sys: &SystemModel,
    model: &ModelConfig,
    requests: &[Request],
    batch: usize,
) -> TraceResult {
    assert!(batch > 0, "batch size must be positive");
    let mut total_time = 0.0f64;
    let mut output_tokens = 0u64;
    let mut oom_batches = 0usize;

    for chunk in requests.chunks(batch) {
        let longest = chunk.iter().map(Request::total_len).max().unwrap_or(0);
        let fits = sys.max_concurrent_batch(model, longest);
        let sub_batches: Vec<&[Request]> = if fits >= chunk.len() {
            vec![chunk]
        } else {
            match sys.capacity {
                CapacityPolicy::Fail => {
                    oom_batches += 1;
                    continue;
                }
                CapacityPolicy::Waves => {
                    if fits == 0 {
                        oom_batches += 1;
                        continue;
                    }
                    chunk.chunks(fits).collect()
                }
            }
        };

        let mut prefill_time = 0.0f64;
        let mut gen_time = 0.0f64;
        for sub in sub_batches {
            let s = BatchStats::of(sub);
            // Prefill, padded on systolic platforms; prefill is one fused
            // launch and does not pay the per-token serving-stack tax.
            let prefill_len = if sys.accel.pads_to_max_prompt {
                s.max_input
            } else {
                s.mean_input.round() as usize
            };
            prefill_time += sys.prefill_time(model, sub.len(), prefill_len.max(1));

            // Generation: active set shrinks as outputs complete.
            let mut outputs: Vec<usize> = sub.iter().map(|r| r.output_len).collect();
            outputs.sort_unstable();
            let max_out = *outputs.last().unwrap_or(&0);
            // Sample the shrinking schedule at up to 32 points.
            let samples = max_out.clamp(1, 32);
            let step = max_out as f64 / samples as f64;
            for i in 0..samples {
                let t = ((i as f64 + 0.5) * step) as usize;
                let active = outputs.iter().filter(|&&o| o > t).count();
                if active == 0 {
                    continue;
                }
                let ctx = s.mean_input.round() as usize + t;
                let it = sys.generation_iteration(model, active, ctx);
                gen_time += it.total() * step;
            }
            output_tokens += sub.iter().map(|r| r.output_len as u64).sum::<u64>();
        }
        total_time += prefill_time + gen_time / sys.accel.framework_efficiency;
    }

    TraceResult {
        system: sys.name(),
        gen_throughput: if total_time > 0.0 {
            output_tokens as f64 / total_time
        } else {
            0.0
        },
        total_time,
        output_tokens,
        oom_batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::{synthesize_requests, TraceSpec};
    use oaken_accel::{AcceleratorSpec, QuantPolicy};

    fn llama13b() -> ModelConfig {
        ModelConfig::llama2_13b()
    }

    fn reqs(spec: &TraceSpec) -> Vec<Request> {
        synthesize_requests(spec, 64, 42)
    }

    #[test]
    fn oaken_beats_lpu_on_burstgpt() {
        // Figure 14(b): long outputs → generation dominates → KV quant wins.
        let m = llama13b();
        let burst = reqs(&TraceSpec::burstgpt());
        let oaken = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
        let lpu = SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16());
        let to = simulate_trace(&oaken, &m, &burst, 64).gen_throughput;
        let tl = simulate_trace(&lpu, &m, &burst, 64).gen_throughput;
        assert!(to > tl * 1.1, "oaken {to} vs lpu {tl}");
    }

    #[test]
    fn oaken_advantage_larger_on_burstgpt_than_conversation() {
        // Figure 14(a) vs (b): short Conversation outputs mute the gain.
        let m = llama13b();
        let oaken = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
        let lpu = SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16());
        let gain = |trace: &TraceSpec| {
            let r = reqs(trace);
            simulate_trace(&oaken, &m, &r, 64).gen_throughput
                / simulate_trace(&lpu, &m, &r, 64).gen_throughput
        };
        let conv_gain = gain(&TraceSpec::conversation());
        let burst_gain = gain(&TraceSpec::burstgpt());
        assert!(
            burst_gain > conv_gain,
            "burst {burst_gain} vs conv {conv_gain}"
        );
    }

    #[test]
    fn tender_suffers_padding_on_traces() {
        // Figure 14: varying prompt lengths waste systolic cycles.
        let m = llama13b();
        let trace = reqs(&TraceSpec::conversation());
        let tender = SystemModel::new(AcceleratorSpec::tender(), QuantPolicy::tender());
        let r = simulate_trace(&tender, &m, &trace, 32);
        // Compare against the same system forced to no padding.
        let mut no_pad_spec = AcceleratorSpec::tender();
        no_pad_spec.pads_to_max_prompt = false;
        let no_pad = SystemModel::new(no_pad_spec, QuantPolicy::tender());
        let r2 = simulate_trace(&no_pad, &m, &trace, 32);
        assert!(
            r.gen_throughput < r2.gen_throughput,
            "padding should cost throughput: {} vs {}",
            r.gen_throughput,
            r2.gen_throughput
        );
    }

    #[test]
    fn throughput_counts_all_outputs() {
        let m = llama13b();
        let trace = reqs(&TraceSpec::conversation());
        let sys = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
        let r = simulate_trace(&sys, &m, &trace, 16);
        let expected: u64 = trace.iter().map(|q| q.output_len as u64).sum();
        assert_eq!(r.output_tokens, expected);
        assert_eq!(r.oom_batches, 0);
        assert!(r.gen_throughput > 0.0);
    }

    #[test]
    fn gqa_model_narrows_quantization_gain() {
        // Figure 14(c,d): Mixtral's GQA shrinks the KV cache 4×, so
        // quantization helps less than on MHA Llama2-13B.
        let burst = reqs(&TraceSpec::burstgpt());
        let oaken = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
        let lpu = SystemModel::new(AcceleratorSpec::lpu(), QuantPolicy::fp16());
        let gain = |m: &ModelConfig| {
            simulate_trace(&oaken, m, &burst, 64).gen_throughput
                / simulate_trace(&lpu, m, &burst, 64).gen_throughput
        };
        let mha_gain = gain(&ModelConfig::llama2_13b());
        let gqa_gain = gain(&ModelConfig::mixtral_8x7b());
        assert!(
            gqa_gain < mha_gain,
            "GQA should mute the gain: {gqa_gain} vs {mha_gain}"
        );
    }
}

//! The continuous-batching serving engine: real token-by-token execution
//! of many concurrent requests over a shared [`PagedKvPool`].
//!
//! This is the executed counterpart of the analytic serving simulator in
//! [`crate::simulate`]. Scheduling follows the Orca/vLLM shape the paper's
//! §5.3 token-level scheduler assumes:
//!
//! * **iteration-level scheduling** — every engine step advances each
//!   active sequence by exactly one token (prefill tokens and decode
//!   tokens interleave freely in the same batch), through the model's
//!   layer-major [`Model::forward_batch`] pass;
//! * **admission control** — a queued request is admitted the moment the
//!   pool has pages for it (policy-selectable: prompt-only or full
//!   sequence reservation), and retired sequences free their pages
//!   *within the same step*, so their slots refill immediately;
//! * **preemption by eviction** — when the pool cannot guarantee the next
//!   token for every active sequence, the newest sequences are evicted
//!   (pages freed, request re-queued at the front for restart) until the
//!   remaining batch is safe — the recompute-on-restart strategy of
//!   vLLM's PagedAttention scheduler.
//!
//! Per-sequence arithmetic is bit-exact with a legacy single-sequence
//! [`oaken_model::Session`] run over the same quantizer, for every
//! admission/retire interleaving — enforced by `tests/engine_props.rs`.

use crate::scheduler::TokenScheduler;
use oaken_model::{sample_greedy, BatchStep, Model, PagedKvPool, PoolBatchView, SeqId};
use std::collections::VecDeque;

/// One serving request with real token content: a prompt to prefill and a
/// number of tokens to greedily decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineRequest {
    /// Request id (unique per engine run).
    pub id: u64,
    /// Prompt tokens.
    pub prompt: Vec<u32>,
    /// Tokens to generate after the prompt.
    pub max_new_tokens: usize,
}

impl EngineRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics on an empty prompt or zero output budget.
    pub fn new(id: u64, prompt: Vec<u32>, max_new_tokens: usize) -> Self {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        assert!(max_new_tokens > 0, "must generate at least one token");
        Self {
            id,
            prompt,
            max_new_tokens,
        }
    }

    /// Synthesizes deterministic prompt content for a length-only
    /// [`crate::Request`] (trace replays carry lengths, not tokens).
    pub fn from_lengths(req: &crate::Request, vocab_size: usize, seed: u64) -> Self {
        let prompt = (0..req.input_len.max(1))
            .map(|i| {
                let x = (req.id ^ seed)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xD134_2543_DE82_EF95);
                ((x >> 33) % vocab_size as u64) as u32
            })
            .collect();
        Self::new(req.id, prompt, req.output_len.max(1))
    }

    /// Tokens the pool holds when the request completes (the final sampled
    /// token is returned, never fed back).
    pub fn total_tokens(&self) -> usize {
        self.prompt.len() + self.max_new_tokens - 1
    }
}

/// How much pool capacity admission reserves per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Admit as soon as the *prompt* fits; decode growth is absorbed by
    /// preemption under pressure (vLLM-style optimistic admission —
    /// maximizes batch occupancy, exercises eviction).
    #[default]
    PromptOnly,
    /// Admit only when the full `prompt + output` footprint fits
    /// (conservative; preemption becomes a fragmentation-only edge case).
    FullSequence,
}

/// Engine knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum concurrent sequences per iteration.
    pub max_batch: usize,
    /// Admission reservation policy.
    pub admission: AdmissionPolicy,
    /// Record every decode-phase logits vector per request (for the
    /// bit-exactness tests; memory-heavy on real vocabularies).
    pub record_logits: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            admission: AdmissionPolicy::default(),
            record_logits: false,
        }
    }
}

/// A completed (or failed) request.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedRequest {
    /// Request id.
    pub id: u64,
    /// Prompt length.
    pub prompt_len: usize,
    /// Greedily decoded tokens (empty for failed requests).
    pub generated: Vec<u32>,
    /// Decode-phase logits, present when `record_logits` was set.
    pub logits: Vec<Vec<f32>>,
    /// `false` when the request could never fit the pool and was dropped.
    pub completed: bool,
    /// Times the request was evicted and restarted.
    pub preemptions: usize,
}

/// Aggregate counters over one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Engine iterations executed.
    pub iterations: u64,
    /// Admissions (restarts after preemption count again).
    pub admitted: u64,
    /// Requests retired complete.
    pub retired: u64,
    /// Requests dropped as impossible (footprint exceeds the pool).
    pub failed: u64,
    /// Evictions under page pressure.
    pub preemptions: u64,
    /// Iterations where a queued request could not be admitted for lack
    /// of pages (the capacity-stall signal of Figures 4/11).
    pub admission_stalls: u64,
    /// Largest concurrent batch observed.
    pub peak_active: usize,
    /// Prompt tokens fed.
    pub prefill_tokens: u64,
    /// Tokens generated.
    pub decode_tokens: u64,
    /// Sum over iterations of the generation core utilization.
    utilization_sum: f64,
}

impl EngineStats {
    /// Mean generation-phase core utilization across iterations.
    pub fn mean_core_utilization(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.utilization_sum / self.iterations as f64
        }
    }
}

struct QueuedRequest {
    req: EngineRequest,
    preemptions: usize,
}

struct ActiveSeq {
    req: EngineRequest,
    seq: SeqId,
    /// Tokens fed so far (prompt cursor while < prompt.len()).
    pos: usize,
    generated: Vec<u32>,
    logits: Vec<Vec<f32>>,
    preemptions: usize,
}

impl ActiveSeq {
    fn next_token(&self) -> u32 {
        if self.pos < self.req.prompt.len() {
            self.req.prompt[self.pos]
        } else {
            *self
                .generated
                .last()
                .expect("decode phase implies at least one generated token")
        }
    }

    fn finished(&self) -> bool {
        self.generated.len() >= self.req.max_new_tokens
    }
}

/// The continuous-batching engine. See the module docs.
pub struct BatchEngine<'m> {
    model: &'m Model,
    pool: PagedKvPool,
    scheduler: TokenScheduler,
    config: EngineConfig,
    queue: VecDeque<QueuedRequest>,
    active: Vec<ActiveSeq>,
    finished: Vec<FinishedRequest>,
    stats: EngineStats,
}

impl<'m> BatchEngine<'m> {
    /// Creates an engine over a model, a shared pool (whose geometry must
    /// match the model), and a core scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(
        model: &'m Model,
        pool: PagedKvPool,
        scheduler: TokenScheduler,
        config: EngineConfig,
    ) -> Self {
        assert!(config.max_batch > 0, "need at least one batch slot");
        Self {
            model,
            pool,
            scheduler,
            config,
            queue: VecDeque::new(),
            active: Vec::new(),
            finished: Vec::new(),
            stats: EngineStats::default(),
        }
    }

    /// Enqueues a request.
    pub fn submit(&mut self, req: EngineRequest) {
        assert!(
            req.prompt
                .iter()
                .all(|&t| (t as usize) < self.model.config().vocab_size),
            "prompt tokens must be in-vocabulary"
        );
        self.queue.push_back(QueuedRequest {
            req,
            preemptions: 0,
        });
    }

    /// Requests finished so far.
    pub fn finished(&self) -> &[FinishedRequest] {
        &self.finished
    }

    /// Run counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The shared pool (read-only).
    pub fn pool(&self) -> &PagedKvPool {
        &self.pool
    }

    /// Currently active sequences.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Queued (not yet admitted) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Runs one engine iteration: admit, reserve capacity (possibly
    /// preempting), advance every active sequence one token, retire
    /// finished sequences, and refill their slots. Returns `false` once no
    /// work remains.
    pub fn step(&mut self) -> bool {
        if self.active.is_empty() && self.queue.is_empty() {
            return false;
        }
        self.stats.iterations += 1;
        let mut stalled = self.admit();
        self.reserve_capacity();
        if self.active.is_empty() {
            // Only impossible requests were queued and all got dropped.
            if stalled {
                self.stats.admission_stalls += 1;
            }
            return !self.queue.is_empty();
        }

        // Advance the whole batch one token (layer-major under the hood).
        let seqs: Vec<SeqId> = self.active.iter().map(|a| a.seq).collect();
        let steps: Vec<BatchStep> = self
            .active
            .iter()
            .enumerate()
            .map(|(slot, a)| BatchStep {
                slot,
                pos: a.pos,
                token: a.next_token(),
            })
            .collect();
        let mut view = PoolBatchView::new(&mut self.pool, &seqs);
        let logits = self.model.forward_batch(&mut view, &steps, None);

        for (a, lg) in self.active.iter_mut().zip(logits) {
            let fed_prompt = a.pos < a.req.prompt.len();
            a.pos += 1;
            if fed_prompt {
                self.stats.prefill_tokens += 1;
            }
            if a.pos < a.req.prompt.len() {
                continue; // still prefilling: logits are not sampled
            }
            a.generated.push(sample_greedy(&lg));
            self.stats.decode_tokens += 1;
            if self.config.record_logits {
                a.logits.push(lg);
            }
        }

        // §5.3 generation-phase core picture for this iteration.
        let ctx: Vec<f64> = self.active.iter().map(|a| a.pos as f64).collect();
        let assignment = self.scheduler.assign_generation_least_loaded(&ctx);
        self.stats.utilization_sum += assignment.core_utilization();

        self.retire();
        // Freed pages refill their slots in the same step.
        stalled |= self.admit();
        if stalled {
            self.stats.admission_stalls += 1;
        }
        !self.active.is_empty() || !self.queue.is_empty()
    }

    /// Runs until every submitted request is finished or dropped.
    pub fn run(&mut self) -> &[FinishedRequest] {
        while self.step() {}
        &self.finished
    }

    /// Pages the admission policy has promised to active sequences but
    /// that are not yet physically allocated. Admission must leave this
    /// headroom untouched, otherwise "reserving" would be a no-op until
    /// the pages actually allocate and `FullSequence` would over-admit.
    fn committed_pages(&self) -> u64 {
        self.active
            .iter()
            .map(|a| {
                let promised = match self.config.admission {
                    AdmissionPolicy::PromptOnly => self.pool.pages_for_tokens(a.req.prompt.len()),
                    AdmissionPolicy::FullSequence => {
                        self.pool.pages_for_tokens(a.req.total_tokens())
                    }
                };
                promised.saturating_sub(u64::from(self.pool.seq_pages(a.seq)))
            })
            .sum()
    }

    /// Drops a request that can never (or can no longer) complete.
    fn fail(&mut self, req: EngineRequest, preemptions: usize) {
        self.stats.failed += 1;
        self.finished.push(FinishedRequest {
            id: req.id,
            prompt_len: req.prompt.len(),
            generated: Vec::new(),
            logits: Vec::new(),
            completed: false,
            preemptions,
        });
    }

    /// Admits queue-front requests while the pool has pages and batch
    /// slots. Requests that can never complete — footprint beyond the
    /// whole pool, or sequence length beyond the model's `max_seq_len` —
    /// are dropped as failed. Returns whether a possible request was left
    /// waiting for pages (an admission stall).
    fn admit(&mut self) -> bool {
        let mut stalled = false;
        while self.active.len() < self.config.max_batch {
            let Some(front) = self.queue.front() else {
                break;
            };
            let full = self.pool.pages_for_tokens(front.req.total_tokens());
            if full > u64::from(self.pool.capacity_pages())
                || front.req.total_tokens() > self.model.config().max_seq_len
            {
                let q = self.queue.pop_front().expect("front exists");
                self.fail(q.req, q.preemptions);
                continue;
            }
            let reserve = match self.config.admission {
                AdmissionPolicy::PromptOnly => self.pool.pages_for_tokens(front.req.prompt.len()),
                AdmissionPolicy::FullSequence => full,
            };
            if reserve + self.committed_pages() > u64::from(self.pool.free_pages()) {
                stalled = true;
                break;
            }
            let q = self.queue.pop_front().expect("front exists");
            let seq = self.pool.alloc_seq();
            self.stats.admitted += 1;
            self.active.push(ActiveSeq {
                req: q.req,
                seq,
                pos: 0,
                generated: Vec::new(),
                logits: Vec::new(),
                preemptions: q.preemptions,
            });
        }
        self.stats.peak_active = self.stats.peak_active.max(self.active.len());
        stalled
    }

    /// Guarantees the pool can absorb one token from every active
    /// sequence, evicting the newest sequences (restart-on-preempt) until
    /// it can. A sequence that cannot proceed even alone is dropped.
    fn reserve_capacity(&mut self) {
        loop {
            let needed: u32 = self
                .active
                .iter()
                .map(|a| {
                    self.pool
                        .pages_possibly_needed(a.seq)
                        .expect("active sequences are live in the pool")
                })
                .sum();
            if needed <= self.pool.free_pages() {
                return;
            }
            let a = self.active.pop().expect("pressure implies active seqs");
            self.pool
                .free_seq(a.seq)
                .expect("active sequences are live in the pool");
            if self.active.is_empty() {
                // Even alone, the *worst-case* bound says the sequence
                // cannot take one more token. The bound is deliberately
                // conservative (appends must never fail mid-forward), so
                // at the extreme margin this can drop a request whose
                // actual encoded rows would still have squeezed into the
                // page tails — safety over utilization.
                self.fail(a.req, a.preemptions);
                return;
            }
            self.stats.preemptions += 1;
            self.queue.push_front(QueuedRequest {
                req: a.req,
                preemptions: a.preemptions + 1,
            });
        }
    }

    /// Retires finished sequences, freeing their pages immediately.
    fn retire(&mut self) {
        let mut i = 0;
        while i < self.active.len() {
            if !self.active[i].finished() {
                i += 1;
                continue;
            }
            let a = self.active.remove(i);
            self.pool
                .free_seq(a.seq)
                .expect("active sequences are live in the pool");
            self.stats.retired += 1;
            self.finished.push(FinishedRequest {
                id: a.req.id,
                prompt_len: a.req.prompt.len(),
                generated: a.generated,
                logits: a.logits,
                completed: true,
                preemptions: a.preemptions,
            });
        }
    }
}

impl std::fmt::Debug for BatchEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEngine")
            .field("active", &self.active.len())
            .field("queued", &self.queue.len())
            .field("finished", &self.finished.len())
            .field("free_pages", &self.pool.free_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaken_model::{ModelConfig, PagedKvPool};

    fn tiny_model() -> Model {
        Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 42)
    }

    fn engine_with_pages<'m>(
        model: &'m Model,
        pages: u32,
        config: EngineConfig,
    ) -> BatchEngine<'m> {
        let pool = PagedKvPool::for_model(model.config(), None, pages, 512);
        BatchEngine::new(model, pool, TokenScheduler::new(4), config)
    }

    fn req(id: u64, prompt_len: usize, out: usize) -> EngineRequest {
        EngineRequest::new(
            id,
            (0..prompt_len as u32)
                .map(|i| (i * 7 + id as u32) % 256)
                .collect(),
            out,
        )
    }

    #[test]
    fn single_request_completes() {
        let m = tiny_model();
        let mut e = engine_with_pages(&m, 512, EngineConfig::default());
        e.submit(req(0, 4, 3));
        let fin = e.run().to_vec();
        assert_eq!(fin.len(), 1);
        assert!(fin[0].completed);
        assert_eq!(fin[0].generated.len(), 3);
        assert_eq!(e.stats().retired, 1);
        assert_eq!(e.stats().prefill_tokens, 4);
        assert_eq!(e.stats().decode_tokens, 3);
        // All pages returned.
        assert_eq!(e.pool().free_pages(), e.pool().capacity_pages());
    }

    #[test]
    fn retired_slots_refill_immediately() {
        let m = tiny_model();
        let mut e = engine_with_pages(
            &m,
            512,
            EngineConfig {
                max_batch: 2,
                ..EngineConfig::default()
            },
        );
        for id in 0..5 {
            e.submit(req(id, 2, 2));
        }
        e.run();
        assert_eq!(e.stats().retired, 5);
        assert_eq!(e.stats().peak_active, 2);
        // 5 requests × 3 steps each (2 prefill-ish + decode), two at a
        // time: the run cannot have taken 5 × 3 sequential iterations.
        assert!(e.stats().iterations < 15, "{:?}", e.stats());
    }

    #[test]
    fn impossible_request_fails_cleanly() {
        let m = tiny_model();
        // 36 pages: enough for one short sequence (this geometry's page
        // floor is 32 streams × 1 page), far too small for request 0.
        let mut e = engine_with_pages(&m, 36, EngineConfig::default());
        e.submit(req(0, 200, 100));
        e.submit(req(1, 2, 2));
        let fin = e.run().to_vec();
        assert_eq!(fin.len(), 2);
        let failed = fin.iter().find(|f| f.id == 0).unwrap();
        assert!(!failed.completed);
        assert!(failed.generated.is_empty());
        let ok = fin.iter().find(|f| f.id == 1).unwrap();
        assert!(ok.completed);
        assert_eq!(e.stats().failed, 1);
    }

    #[test]
    fn tight_pool_stalls_admission_but_completes_everything() {
        let m = tiny_model();
        // 40 pages holds exactly one 32-page sequence at a time.
        let mut e = engine_with_pages(
            &m,
            40,
            EngineConfig {
                max_batch: 4,
                admission: AdmissionPolicy::FullSequence,
                ..EngineConfig::default()
            },
        );
        for id in 0..4 {
            e.submit(req(id, 6, 4));
        }
        let fin = e.run().to_vec();
        assert_eq!(fin.len(), 4);
        assert!(fin.iter().all(|f| f.completed), "{fin:?}");
        assert!(
            e.stats().admission_stalls > 0,
            "a 16-page pool must stall admission: {:?}",
            e.stats()
        );
    }

    #[test]
    fn optimistic_admission_preempts_under_pressure() {
        let m = tiny_model();
        // 70 pages: prompt-only admission packs two sequences (32 pages
        // promised each), but their decode growth to 64 pages each must
        // overflow and evict.
        let mut e = engine_with_pages(
            &m,
            70,
            EngineConfig {
                max_batch: 4,
                admission: AdmissionPolicy::PromptOnly,
                ..EngineConfig::default()
            },
        );
        for id in 0..4 {
            e.submit(req(id, 4, 40));
        }
        let fin = e.run().to_vec();
        assert_eq!(fin.len(), 4);
        assert!(fin.iter().all(|f| f.completed), "{fin:?}");
        assert!(
            e.stats().preemptions > 0,
            "long decodes over an optimistically packed pool must evict: {:?}",
            e.stats()
        );
        assert!(fin.iter().any(|f| f.preemptions > 0));
    }

    #[test]
    fn over_long_request_fails_instead_of_panicking() {
        let m = tiny_model(); // proxy max_seq_len = 512
        let mut e = engine_with_pages(&m, 100_000, EngineConfig::default());
        e.submit(req(0, 200, 400)); // 599 cached tokens > 512
        e.submit(req(1, 3, 3));
        let fin = e.run().to_vec();
        assert!(!fin.iter().find(|f| f.id == 0).unwrap().completed);
        assert!(fin.iter().find(|f| f.id == 1).unwrap().completed);
    }

    #[test]
    fn utilization_is_tracked() {
        let m = tiny_model();
        let mut e = engine_with_pages(&m, 256, EngineConfig::default());
        e.submit(req(0, 3, 3));
        e.run();
        let u = e.stats().mean_core_utilization();
        assert!(u > 0.0 && u <= 1.0, "{u}");
    }
}

//! The continuous-batching serving engine: real token-by-token execution
//! of many concurrent requests over a shared [`PagedKvPool`].
//!
//! This is the executed counterpart of the analytic serving simulator in
//! [`crate::simulate`]. Scheduling follows the Orca/vLLM shape the paper's
//! §5.3 token-level scheduler assumes, extended with the two levers
//! high-QPS shared-prompt traffic rewards:
//!
//! * **iteration-level scheduling with chunked prefill** — every engine
//!   step advances each decoding sequence by exactly one token, while
//!   prompt ingestion is split into chunks under a per-iteration
//!   [token budget](EngineConfig::prefill_token_budget) (Sarathi-style):
//!   a single long prompt no longer monopolizes iterations, decode and
//!   prefill interleave inside one layer-major
//!   [`Model::forward_batch`] pass, and every prefilling sequence is
//!   guaranteed at least one token per iteration so nothing starves;
//! * **prefix-aware admission control** — a queued request is probed
//!   against the pool's prefix trie ([`PagedKvPool::probe_prefix`]) and
//!   reserves pages only for its *non-shared* tokens, so a cache-hot
//!   request admits under page pressure that would stall a cold one;
//!   retired sequences free their pages *within the same step*, so their
//!   slots refill immediately;
//! * **preemption, by eviction or by swap** — when the pool cannot
//!   guarantee the next chunk for every active sequence, the engine first
//!   degrades to single-token steps, then preempts the newest sequences
//!   until the remaining batch is safe. What "preempt" means is the
//!   [`PreemptPolicy`] knob: [`PreemptPolicy::RestartRecompute`] evicts
//!   (pages freed, request re-queued at the front, the whole prefix
//!   recomputed on restart — vLLM's PagedAttention strategy; a restarted
//!   request re-walks the trie, so previously sealed prefix blocks are
//!   re-adopted instead of re-quantized), while
//!   [`PreemptPolicy::SwapToHost`] *suspends* the sequence to the pool's
//!   host tier ([`PagedKvPool::suspend_seq`]) and later resumes it
//!   bit-exactly — zero recomputed tokens, at the cost of the (quantized,
//!   3-4× smaller) transfer bytes. Suspended requests wait in a resume
//!   queue with **priority over fresh admissions**, so swapped work can
//!   never starve behind new arrivals.
//!
//! Per-sequence arithmetic is bit-exact with a legacy single-sequence
//! [`oaken_model::Session`] run over the same quantizer, for every
//! admission/retire interleaving and every chunk schedule — enforced by
//! `tests/engine_props.rs` and `tests/prefix_props.rs`.

use crate::scheduler::TokenScheduler;
use oaken_model::{
    forward_batch_ranked, sample_greedy, BatchStep, FaultKind, FaultPlan, KernelMode, KvReadStats,
    KvTransfer, Model, PagedKvPool, PoolBatchView, PoolError, PrefixStats, RankedPools, SeqId,
};
use oaken_runtime::{Comm, CommStats, Runtime};
use std::collections::{HashSet, VecDeque};

/// Times a swap-out is retried after an injected transient fault before
/// the victim demotes to evict-and-restart. Persistent faults demote
/// immediately (retrying inside the burst is futile by construction).
const SWAP_OUT_RETRY_LIMIT: u32 = 3;

/// Failed resume attempts a suspended sequence may accumulate before it
/// demotes to evict-and-restart. Between attempts the sequence backs off
/// for `2^attempts` iterations — deterministic scheduler time, never
/// wall-clock, so runs replay bit-exactly.
const SWAP_IN_RETRY_LIMIT: u32 = 3;

/// Times a request may be torn down and restarted after transient append
/// faults before it fails for good.
const FAULT_RESTART_LIMIT: u32 = 3;

/// One serving request with real token content: a prompt to prefill and a
/// number of tokens to greedily decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineRequest {
    /// Request id (unique per engine run).
    pub id: u64,
    /// Prompt tokens.
    pub prompt: Vec<u32>,
    /// Tokens to generate after the prompt.
    pub max_new_tokens: usize,
}

impl EngineRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics on an empty prompt or zero output budget.
    pub fn new(id: u64, prompt: Vec<u32>, max_new_tokens: usize) -> Self {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        assert!(max_new_tokens > 0, "must generate at least one token");
        Self {
            id,
            prompt,
            max_new_tokens,
        }
    }

    /// Synthesizes deterministic prompt content for a length-only
    /// [`crate::Request`] (trace replays carry lengths, not tokens).
    pub fn from_lengths(req: &crate::Request, vocab_size: usize, seed: u64) -> Self {
        Self::from_lengths_with_shared_prefix(req, vocab_size, seed, 0)
    }

    /// Like [`from_lengths`](Self::from_lengths), but the first
    /// `shared_prefix` prompt tokens are derived from `seed` alone — every
    /// request synthesized with the same `(seed, shared_prefix)` starts
    /// with the identical system prompt, the traffic shape prefix caching
    /// deduplicates. The remainder stays request-unique.
    pub fn from_lengths_with_shared_prefix(
        req: &crate::Request,
        vocab_size: usize,
        seed: u64,
        shared_prefix: usize,
    ) -> Self {
        fn tok(salt: u64, i: usize, vocab_size: usize) -> u32 {
            let x = salt
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xD134_2543_DE82_EF95);
            ((x >> 33) % vocab_size as u64) as u32
        }
        let len = req.input_len.max(1);
        let shared = shared_prefix.min(len);
        let prompt = (0..len)
            .map(|i| {
                if i < shared {
                    tok(seed ^ 0x5EED_5EED, i, vocab_size)
                } else {
                    tok(req.id ^ seed, i, vocab_size)
                }
            })
            .collect();
        Self::new(req.id, prompt, req.output_len.max(1))
    }

    /// Tokens the pool holds when the request completes (the final sampled
    /// token is returned, never fed back).
    pub fn total_tokens(&self) -> usize {
        self.prompt.len() + self.max_new_tokens - 1
    }
}

/// How much pool capacity admission reserves per request (always net of
/// the request's trie-shared prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Admit as soon as the *prompt* fits; decode growth is absorbed by
    /// preemption under pressure (vLLM-style optimistic admission —
    /// maximizes batch occupancy, exercises eviction).
    #[default]
    PromptOnly,
    /// Admit only when the full `prompt + output` footprint fits
    /// (conservative; preemption becomes a fragmentation-only edge case).
    FullSequence,
}

/// What happens to a preemption victim under page pressure.
///
/// Victims are always selected **newest admission first** (LIFO over the
/// active set, see [`EngineConfig::preempt`]); the policy decides what
/// preempting costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreemptPolicy {
    /// Evict-and-restart: free the victim's pages and re-queue it at the
    /// queue front; the restart recomputes every previously cached token
    /// through the model (vLLM's recompute strategy — cheap in memory,
    /// expensive in compute).
    #[default]
    RestartRecompute,
    /// Suspend-and-resume: move the victim's private pages to the pool's
    /// host tier and park it in the resume queue; the resume transfers
    /// the (quantized) bytes back and continues bit-exactly with **zero**
    /// recomputed tokens. Falls back to [`RestartRecompute`] for a victim
    /// the host tier cannot hold.
    ///
    /// [`RestartRecompute`]: PreemptPolicy::RestartRecompute
    SwapToHost,
}

impl PreemptPolicy {
    /// The process-wide default: `OAKEN_PREEMPT=swap` selects
    /// [`PreemptPolicy::SwapToHost`], anything else (or unset) selects
    /// [`PreemptPolicy::RestartRecompute`]. This is the CI knob that runs
    /// the whole test suite — every bit-exactness property included —
    /// under swap-based preemption.
    pub fn default_policy() -> Self {
        match std::env::var("OAKEN_PREEMPT") {
            Ok(v) if v.eq_ignore_ascii_case("swap") => PreemptPolicy::SwapToHost,
            _ => PreemptPolicy::RestartRecompute,
        }
    }
}

/// Engine knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum concurrent sequences per iteration.
    pub max_batch: usize,
    /// Admission reservation policy.
    pub admission: AdmissionPolicy,
    /// Preemption policy under page pressure. Victim ordering is
    /// **newest-first** regardless of policy: the most recently admitted
    /// sequence is preempted first, because it has the least cached work
    /// to move (swap) or redo (restart) and the oldest sequences — closest
    /// to retiring and releasing their pages for good — keep running.
    /// Defaults to [`PreemptPolicy::default_policy`] (the `OAKEN_PREEMPT`
    /// environment knob).
    pub preempt: PreemptPolicy,
    /// Record every decode-phase logits vector per request (for the
    /// bit-exactness tests; memory-heavy on real vocabularies).
    pub record_logits: bool,
    /// Target prompt tokens ingested per iteration across the whole batch
    /// (the Sarathi-style chunked-prefill budget). Decoding sequences
    /// consume one token each first; the remainder is handed to
    /// prefilling sequences in admission order. Soft: every prefilling
    /// sequence still receives at least one token per iteration, so the
    /// classic one-token-per-step schedule is the `1` setting.
    pub prefill_token_budget: usize,
    /// Threads executing each engine iteration (the deterministic
    /// fork-join runtime: weight sweeps, per-sequence quantize+append,
    /// and per-`(step, KV head)` attention all shard across them).
    /// Parallel execution is **bit-exact** with `1`, which reproduces the
    /// single-threaded engine exactly. Defaults to
    /// [`oaken_runtime::default_threads`] (`OAKEN_THREADS` or the
    /// machine's available parallelism).
    pub num_threads: usize,
    /// Tensor-parallel engine ranks. `1` (the default) is the unsharded
    /// engine, byte for byte. `N > 1` splits the pool into `N` private
    /// per-rank shards (contiguous KV-head slices, device/host capacity
    /// divided evenly) and runs every forward pass rank-sharded with a
    /// deterministic all-reduce ([`oaken_model::forward_batch_ranked`]) —
    /// logits stay **bit-exact** with the 1-rank engine in
    /// [`KernelMode::Exact`] for every thread count. The request is
    /// capability-gated like [`EngineConfig::kernel`]: clamped to the
    /// model's KV-head count, and downgraded to `1` for a pool whose
    /// quantizer cannot stream encoded rows (sharding slices the encoded
    /// form). Defaults to [`oaken_runtime::default_ranks`] (the
    /// `OAKEN_RANKS` environment knob).
    pub num_ranks: usize,
    /// Deterministic fault schedule installed into the pool's MMU at
    /// engine construction (see [`oaken_model::FaultPlan`]). **Always
    /// `None` by default** — including under the `OAKEN_FAULTS` env knob,
    /// which only the serve example and the chaos tests consult — so the
    /// hooks are inert and the engine is bit-identical to a build without
    /// them unless a plan is passed explicitly.
    pub fault_plan: Option<FaultPlan>,
    /// Per-request deadline: a request that has been in flight (active,
    /// suspended, or requeued after preemption) for this many engine
    /// iterations since its first admission is killed with
    /// [`RequestOutcome::DeadlineExceeded`], its resources torn down
    /// through the same audited path as retirement. `None` (the default)
    /// disables the sweep.
    pub max_iterations: Option<u64>,
    /// Requested attention read path, installed into the pool at engine
    /// construction ([`PagedKvPool::set_kernel_mode`]). The request is
    /// capability-gated: a pool whose quantizer has no encoded read path
    /// stays [`KernelMode::Exact`] (see [`BatchEngine::kernel_mode`] for
    /// the installed answer). Defaults to [`KernelMode::default_mode`]
    /// (the `OAKEN_KERNEL` environment knob).
    pub kernel: KernelMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            admission: AdmissionPolicy::default(),
            preempt: PreemptPolicy::default_policy(),
            record_logits: false,
            prefill_token_budget: 16,
            num_threads: oaken_runtime::default_threads(),
            num_ranks: oaken_runtime::default_ranks(),
            fault_plan: None,
            max_iterations: None,
            kernel: KernelMode::default_mode(),
        }
    }
}

/// Why a request failed — the payload of [`RequestOutcome::Failed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestFailure {
    /// The request can never complete: its non-shared footprint exceeds
    /// the whole pool, its total length exceeds the model's
    /// `max_seq_len`, or even alone it cannot take one more token.
    Impossible,
    /// A pool operation failed mid-flight and the retry/demotion budget
    /// is exhausted; carries the final error.
    Pool(PoolError),
}

impl std::fmt::Display for RequestFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestFailure::Impossible => write!(f, "request can never fit the pool"),
            RequestFailure::Pool(e) => write!(f, "pool operation failed: {e}"),
        }
    }
}

/// Terminal state of a request. Every submitted request reaches exactly
/// one of these — the containment guarantee the chaos property tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Every requested token was generated.
    Finished,
    /// Dropped: impossible, or a contained failure out of retries.
    Failed(RequestFailure),
    /// Cancelled via [`BatchEngine::cancel`].
    Cancelled,
    /// Killed by the [`EngineConfig::max_iterations`] deadline sweep.
    DeadlineExceeded,
}

/// One decode token produced by an engine step — the streaming handoff
/// surface a service frontend drains after each iteration (see
/// [`BatchEngine::take_token_events`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenEvent {
    /// Request id the token belongs to.
    pub id: u64,
    /// 0-based decode index of the token within its request's output. A
    /// request evicted and restarted mid-decode re-emits the indices it
    /// recomputes — with identical token values, by the determinism
    /// contract — so a consumer resuming a stream drops events whose
    /// index is below what it already delivered.
    pub index: usize,
    /// The sampled token.
    pub token: u32,
    /// Engine iteration (1-based) that produced the token.
    pub iteration: u64,
}

/// A completed (or failed) request.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedRequest {
    /// Request id.
    pub id: u64,
    /// Prompt length.
    pub prompt_len: usize,
    /// Greedily decoded tokens (empty for requests that never decoded;
    /// partial for requests cancelled or killed mid-decode).
    pub generated: Vec<u32>,
    /// Decode-phase logits, present when `record_logits` was set.
    pub logits: Vec<Vec<f32>>,
    /// `true` exactly when `outcome` is [`RequestOutcome::Finished`]
    /// (kept alongside it for callers that only care about success).
    pub completed: bool,
    /// Times the request was evicted and restarted.
    pub preemptions: usize,
    /// Engine iteration (1-based) that produced the request's first
    /// decode token — the time-to-first-token in iterations. 0 for
    /// requests that never decoded.
    pub ttft_iteration: u64,
    /// How the request ended.
    pub outcome: RequestOutcome,
}

/// A retired request's frozen KV plus everything a peer engine needs to
/// continue decoding it — the unit a disaggregated cluster ships from a
/// prefill engine to a decode engine (one [`KvTransfer`] per rank shard).
///
/// Produced by [`BatchEngine::take_exports`] for requests previously
/// tagged with [`BatchEngine::mark_for_export`]; consumed by
/// [`BatchEngine::ingest_frozen`] on the destination. The destination
/// continues bit-exactly: the KV holds exactly `request.prompt.len()`
/// rows (the first decode token was sampled but never fed), so decoding
/// picks up at the same position a monolithic engine would.
#[derive(Debug)]
pub struct KvExport {
    /// The request as the exporting engine ran it. A disaggregating
    /// caller typically truncated `max_new_tokens` to 1 for the prefill
    /// leg and restores the original before ingesting.
    pub request: EngineRequest,
    /// Tokens decoded before export (the prefill leg's first token).
    pub generated: Vec<u32>,
    /// Decode-phase logits, present when `record_logits` was set.
    pub logits: Vec<Vec<f32>>,
    /// Exporting engine's iteration of the first decode token.
    pub ttft_iteration: u64,
    /// One flattened KV transfer per rank shard, in rank order.
    pub transfers: Vec<KvTransfer>,
}

impl KvExport {
    /// Total bytes on the modeled wire: every shard's payload plus its
    /// self-describing size tables.
    pub fn wire_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.wire_bytes()).sum()
    }
}

/// Aggregate counters over one engine run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Engine iterations executed.
    pub iterations: u64,
    /// Admissions (restarts after preemption count again).
    pub admitted: u64,
    /// Requests retired complete.
    pub retired: u64,
    /// Requests dropped as impossible (footprint exceeds the pool).
    pub failed: u64,
    /// Evictions under page pressure.
    pub preemptions: u64,
    /// Iterations where a queued request could not be admitted for lack
    /// of pages (the capacity-stall signal of Figures 4/11).
    pub admission_stalls: u64,
    /// Largest concurrent batch observed.
    pub peak_active: usize,
    /// Prompt tokens actually fed through the model (trie-reused tokens
    /// are *not* fed and not counted here).
    pub prefill_tokens: u64,
    /// Tokens generated.
    pub decode_tokens: u64,
    /// Per-sequence prompt chunks executed (a chunk is one iteration's
    /// prompt feed for one sequence, of any length ≥ 1).
    pub prefill_chunks: u64,
    /// Prefix-cache counters mirrored from the pool (trie hits, reused
    /// tokens, skipped quantizations, deduplicated bytes).
    pub prefix: PrefixStats,
    /// Peak pages held by sealed shared blocks over the run.
    pub shared_pages_peak: u32,
    /// Peak allocated pages over the run (the high-water capacity mark
    /// prefix dedup lowers).
    pub pages_in_use_peak: u32,
    /// Sequences suspended to the host tier ([`PreemptPolicy::SwapToHost`]
    /// preemptions that found host headroom).
    pub swap_outs: u64,
    /// Suspended sequences resumed from the host tier.
    pub swap_ins: u64,
    /// Payload bytes moved device → host by suspensions.
    pub swap_bytes_to_host: u64,
    /// Payload bytes moved host → device by resumes.
    pub swap_bytes_to_device: u64,
    /// Sum over resumes of the iterations each sequence spent suspended
    /// (see [`EngineStats::mean_resume_latency`]).
    pub resume_latency_iters: u64,
    /// Prompt tokens fed through the model that an earlier incarnation of
    /// the same request had already computed — the restart-recompute waste
    /// [`PreemptPolicy::SwapToHost`] eliminates (always 0 when every
    /// preemption swaps and every suspension resumes).
    pub recomputed_prefill_tokens: u64,
    /// Suspended sequences converted back to evict-and-restart because
    /// their resume could provably never fit (nothing active to free
    /// pages, newly sealed trie blocks pinning the device) — the liveness
    /// escape hatch of the resume queue. 0 on sanely provisioned pools.
    pub resume_restarts: u64,
    /// Faults injected by the configured [`FaultPlan`] (mirrored from the
    /// pool's injector; 0 with no plan).
    pub faults_injected: u64,
    /// Injected faults absorbed by the containment layer — handled by a
    /// retry, a demotion, or a request-scoped teardown instead of a
    /// panic. Equals [`faults_injected`](Self::faults_injected) at the
    /// end of a run.
    pub faults_absorbed: u64,
    /// Operations retried after a transient fault: same-iteration
    /// swap-out retries, backed-off resume attempts, and whole-request
    /// restarts after an append fault.
    pub fault_retries: u64,
    /// Victims demoted from suspend-and-resume to evict-and-restart —
    /// because the host tier was full, a swap fault exhausted its
    /// retries, or a persistent fault made retrying futile.
    pub demotions: u64,
    /// Requests retired as [`KvExport`]s instead of finishing locally
    /// (disaggregated prefill legs).
    pub exports: u64,
    /// Frozen KV handoffs accepted via [`BatchEngine::ingest_frozen`].
    pub imports: u64,
    /// Modeled wire bytes across all exports (payload + size tables).
    pub export_wire_bytes: u64,
    /// Requests cancelled via [`BatchEngine::cancel`].
    pub cancellations: u64,
    /// Requests killed by the [`EngineConfig::max_iterations`] deadline.
    pub deadline_kills: u64,
    /// Cumulative KV read-path traffic mirrored from the pool: encoded
    /// rows/bytes streamed by the fused kernels vs dequantized f32
    /// rows/bytes streamed by the exact kernels — the serving-level view
    /// of the fused read path's bandwidth saving.
    pub kv_reads: KvReadStats,
    /// Tensor-parallel ranks the engine actually ran with (after
    /// capability gating; 1 for the unsharded engine).
    pub num_ranks: usize,
    /// Cross-rank communication mirrored from the engine's [`Comm`]:
    /// all-reduce calls, scale syncs, and total bytes moved. All zero for
    /// a 1-rank engine.
    pub comm: CommStats,
    /// Peak allocated pages **per rank shard** over the run (one entry
    /// per rank; sums to at least [`pages_in_use_peak`] when page use
    /// peaked simultaneously).
    ///
    /// [`pages_in_use_peak`]: Self::pages_in_use_peak
    pub rank_page_peaks: Vec<u32>,
    /// Sum over generation iterations of the core utilization.
    utilization_sum: f64,
    /// Iterations with at least one decoding sequence — the denominator
    /// for the utilization mean. Pure-prefill and fully stalled
    /// iterations (both common under chunked prefill) are excluded
    /// instead of diluting the mean toward zero.
    utilization_iters: u64,
}

impl EngineStats {
    /// Mean generation-phase core utilization across the iterations that
    /// actually decoded (pure-prefill/stalled iterations are ignored).
    pub fn mean_core_utilization(&self) -> f64 {
        if self.utilization_iters == 0 {
            0.0
        } else {
            self.utilization_sum / self.utilization_iters as f64
        }
    }

    /// All-reduce bytes moved per model-fed token (prefill + decode) —
    /// the per-token communication cost of tensor parallelism; 0.0 for a
    /// 1-rank engine.
    pub fn comm_bytes_per_token(&self) -> f64 {
        let tokens = self.prefill_tokens + self.decode_tokens;
        if tokens == 0 {
            0.0
        } else {
            self.comm.bytes_moved as f64 / tokens as f64
        }
    }

    /// Mean iterations a swapped-out sequence waited before resuming (0.0
    /// when nothing was resumed) — the suspend/resume round-trip latency
    /// in scheduler time.
    pub fn mean_resume_latency(&self) -> f64 {
        if self.swap_ins == 0 {
            0.0
        } else {
            self.resume_latency_iters as f64 / self.swap_ins as f64
        }
    }
}

struct QueuedRequest {
    req: EngineRequest,
    preemptions: usize,
    /// Iteration of the request's first decode token, carried across
    /// preemption restarts (the token was already produced — and in a
    /// real deployment streamed to the user — before the eviction; the
    /// restart merely recomputes the identical suffix).
    ttft_iteration: u64,
    /// Prompt positions an earlier incarnation already computed (0 for
    /// fresh requests): model-fed prompt tokens below this mark are
    /// recomputation, the waste `recomputed_prefill_tokens` counts.
    reached: usize,
    /// Iteration of the request's *first* admission (0 until admitted),
    /// carried across restarts — the deadline clock.
    born: u64,
    /// Teardown-and-restart cycles caused by transient append faults
    /// (bounded by `FAULT_RESTART_LIMIT`).
    fault_restarts: u32,
}

/// A sequence suspended to the host tier, waiting in the resume queue.
/// Unlike a restart, *everything* is retained — position, generated
/// tokens, logits — because the resume continues bit-exactly.
struct SuspendedReq {
    req: EngineRequest,
    seq: SeqId,
    pos: usize,
    generated: Vec<u32>,
    logits: Vec<Vec<f32>>,
    preemptions: usize,
    ttft_iteration: u64,
    reached: usize,
    /// Iteration the suspension happened in (resume-latency accounting).
    suspended_at: u64,
    /// See [`QueuedRequest::born`].
    born: u64,
    /// See [`QueuedRequest::fault_restarts`].
    fault_restarts: u32,
    /// Failed resume attempts so far (injected swap-in faults).
    retries: u32,
    /// Earliest iteration the next resume attempt may run: after a
    /// failed attempt the sequence backs off `2^retries` iterations —
    /// deterministic scheduler time, so runs replay bit-exactly.
    retry_at: u64,
}

struct ActiveSeq {
    req: EngineRequest,
    seq: SeqId,
    /// Tokens cached so far (prompt cursor while < prompt.len()); starts
    /// at the trie-matched prefix length — adopted tokens are never fed.
    pos: usize,
    generated: Vec<u32>,
    logits: Vec<Vec<f32>>,
    preemptions: usize,
    ttft_iteration: u64,
    /// See [`QueuedRequest::reached`].
    reached: usize,
    /// See [`QueuedRequest::born`].
    born: u64,
    /// See [`QueuedRequest::fault_restarts`].
    fault_restarts: u32,
}

impl ActiveSeq {
    fn decoding(&self) -> bool {
        self.pos >= self.req.prompt.len()
    }

    fn finished(&self) -> bool {
        self.generated.len() >= self.req.max_new_tokens
    }
}

/// The continuous-batching engine. See the module docs.
pub struct BatchEngine<'m> {
    model: &'m Model,
    /// The KV pool, split into one private shard per tensor-parallel rank
    /// (a single unsharded pool for the 1-rank engine).
    pools: RankedPools,
    /// The deterministic all-reduce context shared by every iteration
    /// (a no-op accounting shell for the 1-rank engine).
    comm: Comm,
    scheduler: TokenScheduler,
    config: EngineConfig,
    runtime: Runtime,
    queue: VecDeque<QueuedRequest>,
    /// Suspended sequences waiting to thaw, oldest suspension first.
    /// Strict priority over `queue`: fresh admissions wait while a resume
    /// is pending, so swapped work cannot starve.
    resume: VecDeque<SuspendedReq>,
    active: Vec<ActiveSeq>,
    finished: Vec<FinishedRequest>,
    /// Request ids to retire as [`KvExport`]s instead of finishing.
    export_marks: HashSet<u64>,
    /// Exports produced but not yet drained by [`take_exports`].
    ///
    /// [`take_exports`]: Self::take_exports
    exports: Vec<KvExport>,
    /// Decode tokens emitted since the last [`take_token_events`] drain
    /// (bounded by the workload's total decode tokens when never drained).
    ///
    /// [`take_token_events`]: Self::take_token_events
    emitted: Vec<TokenEvent>,
    stats: EngineStats,
}

impl<'m> BatchEngine<'m> {
    /// Creates an engine over a model, a shared pool (whose geometry must
    /// match the model), and a core scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `prefill_token_budget` is zero.
    pub fn new(
        model: &'m Model,
        pool: PagedKvPool,
        scheduler: TokenScheduler,
        config: EngineConfig,
    ) -> Self {
        assert!(config.max_batch > 0, "need at least one batch slot");
        assert!(
            config.prefill_token_budget > 0,
            "need at least one prefill token per iteration"
        );
        assert!(config.num_threads > 0, "need at least one thread");
        assert!(config.num_ranks > 0, "need at least one rank");
        // Capability-gate the rank request: sharding stores each rank's
        // KV-head slice as encoded row *slices*, which requires the
        // pool's quantizer to stream encoded rows (the same capability
        // the fused kernels need). A pool without it runs unsharded.
        let ranks = if config.num_ranks > 1 && pool.append_only_views() {
            config.num_ranks.min(model.config().num_kv_heads)
        } else {
            1
        };
        let mut pools = if ranks > 1 {
            RankedPools::split(model.config(), pool, ranks)
        } else {
            RankedPools::single(model.config(), pool)
        };
        if let Some(plan) = config.fault_plan {
            pools.install_faults(plan);
        }
        if config.kernel != pools.kernel_mode() {
            pools.set_kernel_mode(config.kernel);
        }
        let stats = EngineStats {
            num_ranks: ranks,
            rank_page_peaks: vec![0; ranks],
            ..EngineStats::default()
        };
        Self {
            model,
            pools,
            comm: Comm::new(ranks),
            scheduler,
            runtime: Runtime::new(config.num_threads),
            config,
            queue: VecDeque::new(),
            resume: VecDeque::new(),
            active: Vec::new(),
            finished: Vec::new(),
            export_marks: HashSet::new(),
            exports: Vec::new(),
            emitted: Vec::new(),
            stats,
        }
    }

    /// The engine's fork-join runtime (shared by every iteration).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The attention read path actually installed in the pool —
    /// [`KernelMode::Exact`] when the configured request could not be
    /// honored (quantizer without an encoded read path).
    pub fn kernel_mode(&self) -> KernelMode {
        self.pools.kernel_mode()
    }

    /// Tensor-parallel ranks the engine actually runs with, after
    /// capability gating — 1 when the request was downgraded (see
    /// [`EngineConfig::num_ranks`]).
    pub fn num_ranks(&self) -> usize {
        self.pools.num_ranks()
    }

    /// Enqueues a request.
    pub fn submit(&mut self, req: EngineRequest) {
        assert!(
            req.prompt
                .iter()
                .all(|&t| (t as usize) < self.model.config().vocab_size),
            "prompt tokens must be in-vocabulary"
        );
        self.queue.push_back(QueuedRequest {
            req,
            preemptions: 0,
            ttft_iteration: 0,
            reached: 0,
            born: 0,
            fault_restarts: 0,
        });
    }

    /// Cancels a request wherever it is parked — queued, active,
    /// suspended on host, or waiting in the resume queue — releasing
    /// every pool resource it owns (private pages, pending blocks, trie
    /// refcounts, host pages) through the same audited teardown path
    /// retirement uses. The request finishes with
    /// [`RequestOutcome::Cancelled`], keeping the tokens it generated so
    /// far. Returns `false` when `id` is not in flight (unknown or
    /// already finished).
    pub fn cancel(&mut self, id: u64) -> bool {
        if let Some(i) = self.active.iter().position(|a| a.req.id == id) {
            let a = self.active.remove(i);
            self.teardown_seq(a.seq, false);
            self.finish_request(
                a.req,
                a.generated,
                a.logits,
                a.preemptions,
                a.ttft_iteration,
                RequestOutcome::Cancelled,
            );
            return true;
        }
        if let Some(i) = self.resume.iter().position(|s| s.req.id == id) {
            let s = self.resume.remove(i).expect("index from position");
            self.teardown_seq(s.seq, true);
            self.finish_request(
                s.req,
                s.generated,
                s.logits,
                s.preemptions,
                s.ttft_iteration,
                RequestOutcome::Cancelled,
            );
            return true;
        }
        if let Some(i) = self.queue.iter().position(|q| q.req.id == id) {
            let q = self.queue.remove(i).expect("index from position");
            self.finish_request(
                q.req,
                Vec::new(),
                Vec::new(),
                q.preemptions,
                q.ttft_iteration,
                RequestOutcome::Cancelled,
            );
            return true;
        }
        false
    }

    /// Requests finished so far.
    pub fn finished(&self) -> &[FinishedRequest] {
        &self.finished
    }

    /// Run counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The shared pool (read-only): the sole pool for a 1-rank engine,
    /// rank 0's shard otherwise.
    pub fn pool(&self) -> &PagedKvPool {
        self.pools.lead()
    }

    /// The per-rank pool shards (one entry for a 1-rank engine).
    pub fn rank_pools(&self) -> &[PagedKvPool] {
        self.pools.ranks()
    }

    /// Currently active sequences.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Queued (not yet admitted) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Suspended requests waiting in the resume queue.
    pub fn resume_len(&self) -> usize {
        self.resume.len()
    }

    /// Drains the decode tokens emitted since the last drain, in the order
    /// they were sampled. This is the per-token streaming handoff for a
    /// service frontend: drained after every [`step`](Self::step), the
    /// events reconstruct each request's output stream incrementally
    /// without waiting for retirement. Restarted requests re-emit the
    /// decode indices they recompute (identical values — see
    /// [`TokenEvent::index`]), so stream consumers dedup by index.
    pub fn take_token_events(&mut self) -> Vec<TokenEvent> {
        std::mem::take(&mut self.emitted)
    }

    /// Ids of queued (not yet admitted) requests, queue order.
    pub fn queued_ids(&self) -> Vec<u64> {
        self.queue.iter().map(|q| q.req.id).collect()
    }

    /// Ids of currently active sequences, admission (slot) order.
    pub fn active_ids(&self) -> Vec<u64> {
        self.active.iter().map(|a| a.req.id).collect()
    }

    /// Ids of sequences suspended to the host tier, oldest suspension
    /// first — index 0 is the resume-queue head.
    pub fn suspended_ids(&self) -> Vec<u64> {
        self.resume.iter().map(|s| s.req.id).collect()
    }

    /// `(tokens_cached, prompt_len)` of an *active* request: mid-chunked
    /// prefill exactly when `0 < tokens_cached < prompt_len` (the cursor
    /// starts at the trie-matched prefix, so a fully shared prompt can
    /// skip the window). `None` for requests parked anywhere else.
    pub fn active_progress(&self, id: u64) -> Option<(usize, usize)> {
        self.active
            .iter()
            .find(|a| a.req.id == id)
            .map(|a| (a.pos, a.req.prompt.len()))
    }

    /// Tags request `id` to retire as a [`KvExport`] instead of entering
    /// the finished list — the prefill leg of a disaggregated cluster
    /// marks each request at submit time and drains
    /// [`take_exports`](Self::take_exports) after each step. A mark on a
    /// request that ends any other way (failed, cancelled, deadline) is
    /// simply never consumed: those requests finish locally.
    pub fn mark_for_export(&mut self, id: u64) {
        self.export_marks.insert(id);
    }

    /// Drains the [`KvExport`]s produced by marked requests since the
    /// last call (in retirement order).
    pub fn take_exports(&mut self) -> Vec<KvExport> {
        std::mem::take(&mut self.exports)
    }

    /// Accepts a peer engine's [`KvExport`]: each rank shard lands in
    /// this engine's host tier, and the request parks in the resume
    /// queue — strict priority over fresh admissions, identical to a
    /// locally suspended sequence — to thaw and continue decoding
    /// bit-exactly where the exporter stopped. If the resume later
    /// demotes to evict-and-restart (capacity pressure, injected swap
    /// faults), the request re-prefills here and regenerates the same
    /// tokens; consumers dedupe the re-emitted indices as usual.
    ///
    /// # Errors
    ///
    /// Hands the export back untouched when a rank's host tier lacks room
    /// ([`PoolError::OutOfHostPages`] — retry after pages free) or the
    /// injected fault schedule rejects the landing ([`PoolError::Fault`]).
    ///
    /// # Panics
    ///
    /// Panics when the export does not match this engine (rank count,
    /// layer count, kernel mode, or a row count disagreeing with the
    /// prompt), or fails its payload checksum — a corrupted or truncated
    /// transfer never lands silently.
    #[allow(clippy::result_large_err)]
    pub fn ingest_frozen(&mut self, export: KvExport) -> Result<(), (KvExport, PoolError)> {
        assert_eq!(
            export.transfers.len(),
            self.pools.num_ranks(),
            "an export carries one transfer per rank"
        );
        assert!(
            !export.generated.is_empty(),
            "an export continues decoding: the prefill leg samples at least one token"
        );
        let pos = export.request.prompt.len();
        for t in &export.transfers {
            assert_eq!(
                t.tokens(),
                pos,
                "an export's KV holds exactly the prompt rows on every shard"
            );
        }
        let KvExport {
            request,
            generated,
            logits,
            ttft_iteration,
            transfers,
        } = export;
        match self.pools.import_seq(transfers) {
            Ok((seq, _receipt)) => {
                self.stats.imports += 1;
                self.resume.push_back(SuspendedReq {
                    req: request,
                    seq,
                    pos,
                    generated,
                    logits,
                    preemptions: 0,
                    ttft_iteration,
                    reached: pos,
                    suspended_at: self.stats.iterations,
                    born: self.stats.iterations,
                    fault_restarts: 0,
                    retries: 0,
                    retry_at: 0,
                });
                Ok(())
            }
            Err((transfers, e)) => Err((
                KvExport {
                    request,
                    generated,
                    logits,
                    ttft_iteration,
                    transfers,
                },
                e,
            )),
        }
    }

    /// Runs one engine iteration: admit (prefix-probed), reserve capacity
    /// for the iteration's chunk plan (possibly degrading to single-token
    /// steps, then preempting), advance every active sequence by its
    /// chunk, retire finished sequences, and refill their slots. Returns
    /// `false` once no work remains.
    pub fn step(&mut self) -> bool {
        if self.active.is_empty() && self.queue.is_empty() && self.resume.is_empty() {
            return false;
        }
        self.stats.iterations += 1;
        self.enforce_deadlines();
        let mut stalled = self.admit();
        let plan = self.reserve_capacity();
        if self.active.is_empty() {
            // Only impossible requests were queued and all got dropped,
            // or every live sequence sits suspended waiting for pages.
            if stalled {
                self.stats.admission_stalls += 1;
            }
            self.sync_prefix_stats();
            return !self.queue.is_empty() || !self.resume.is_empty();
        }

        // Advance the whole batch by its chunk plan (layer-major under
        // the hood; a chunk's steps attend causally within the same
        // forward pass).
        let seqs: Vec<SeqId> = self.active.iter().map(|a| a.seq).collect();
        let mut steps = Vec::new();
        for (slot, (a, &n)) in self.active.iter().zip(&plan).enumerate() {
            for j in 0..n {
                let pos = a.pos + j;
                let token = if pos < a.req.prompt.len() {
                    a.req.prompt[pos]
                } else {
                    *a.generated
                        .last()
                        .expect("decode phase implies a generated token")
                };
                steps.push(BatchStep { slot, pos, token });
            }
        }
        let (logits, poisoned) = if self.pools.num_ranks() == 1 {
            // The unsharded engine, byte for byte: the legacy batched
            // forward over the sole pool.
            let mut view = PoolBatchView::new(self.pools.lead_mut(), &seqs);
            let logits = self
                .model
                .forward_batch_on(&self.runtime, &mut view, &steps, None);
            // Slots whose append failed mid-forward (injected fault or —
            // never on the fault-free path — exhaustion despite the
            // reservation): their forward output is discarded below and
            // the sequences are quarantined after the batch bookkeeping.
            let poisoned = view.take_poisoned();
            (logits, poisoned)
        } else {
            forward_batch_ranked(
                self.model,
                &self.runtime,
                &mut self.comm,
                &mut self.pools,
                &seqs,
                &steps,
            )
        };
        self.pools.note_page_peaks();
        self.stats.pages_in_use_peak = self.stats.pages_in_use_peak.max(self.pools.pages_in_use());

        let iteration = self.stats.iterations;
        let mut decode_ctx: Vec<f64> = Vec::new();
        let mut idx = 0usize;
        for (slot, (a, &n)) in self.active.iter_mut().zip(&plan).enumerate() {
            let last = &logits[idx + n - 1];
            idx += n;
            if poisoned.iter().any(|&(s, _)| s == slot) {
                // The slot's cached state stops at the failure point; do
                // not advance its cursor or sample from garbage logits.
                continue;
            }
            let prompt_len = a.req.prompt.len();
            let fed_prompt = prompt_len.saturating_sub(a.pos).min(n);
            if fed_prompt > 0 {
                self.stats.prefill_tokens += fed_prompt as u64;
                self.stats.prefill_chunks += 1;
                // Prompt positions below the restart mark were already
                // computed by an earlier incarnation: pure recompute.
                self.stats.recomputed_prefill_tokens +=
                    a.reached.saturating_sub(a.pos).min(fed_prompt) as u64;
            }
            a.pos += n;
            a.reached = a.reached.max(a.pos);
            if a.pos < prompt_len {
                continue; // still prefilling: logits are not sampled
            }
            let token = sample_greedy(last);
            a.generated.push(token);
            self.emitted.push(TokenEvent {
                id: a.req.id,
                index: a.generated.len() - 1,
                token,
                iteration,
            });
            self.stats.decode_tokens += 1;
            if a.generated.len() == 1 && a.ttft_iteration == 0 {
                a.ttft_iteration = iteration;
            }
            if self.config.record_logits {
                a.logits.push(last.clone());
            }
            decode_ctx.push(a.pos as f64);
        }

        // §5.3 generation-phase core picture for this iteration: only the
        // sequences that decoded occupy generation cores; pure-prefill
        // iterations are skipped rather than diluting the mean.
        if !decode_ctx.is_empty() {
            let assignment = self.scheduler.assign_generation_least_loaded(&decode_ctx);
            self.stats.utilization_sum += assignment.core_utilization();
            self.stats.utilization_iters += 1;
        }

        self.quarantine_poisoned(&poisoned);
        self.retire();
        // Freed pages refill their slots in the same step.
        stalled |= self.admit();
        if stalled {
            self.stats.admission_stalls += 1;
        }
        self.sync_prefix_stats();
        !self.active.is_empty() || !self.queue.is_empty() || !self.resume.is_empty()
    }

    /// Runs until every submitted request is finished or dropped.
    pub fn run(&mut self) -> &[FinishedRequest] {
        while self.step() {}
        &self.finished
    }

    fn sync_prefix_stats(&mut self) {
        self.stats.prefix = self.pools.prefix_stats();
        self.stats.shared_pages_peak = self
            .stats
            .shared_pages_peak
            .max(self.pools.shared_block_pages());
        self.stats.faults_injected = self.pools.fault_stats().injected;
        self.stats.kv_reads = self.pools.kv_read_stats();
        self.stats.comm = self.comm.stats();
        self.stats.rank_page_peaks.clear();
        self.stats
            .rank_page_peaks
            .extend_from_slice(self.pools.page_peaks());
    }

    /// Tokens each active sequence feeds this iteration: decoding
    /// sequences take exactly one; the remaining prefill budget is dealt
    /// to prefilling sequences in admission order, at least one each.
    fn chunk_plan(&self) -> Vec<usize> {
        let decoding = self.active.iter().filter(|a| a.decoding()).count();
        let mut left = self.config.prefill_token_budget.saturating_sub(decoding);
        self.active
            .iter()
            .map(|a| {
                if a.decoding() {
                    1
                } else {
                    let n = (a.req.prompt.len() - a.pos).min(left.max(1));
                    left = left.saturating_sub(n);
                    n
                }
            })
            .collect()
    }

    /// Whether the pool can absorb `plan` in the worst case. With ranked
    /// shards **every** rank must have the headroom — shards grow in
    /// lockstep (one row-slice per appended token each), so the tightest
    /// shard bounds the whole batch.
    fn plan_fits(&self, plan: &[usize]) -> bool {
        self.pools.ranks().iter().all(|pool| {
            let needed: u32 = self
                .active
                .iter()
                .zip(plan)
                .map(|(a, &n)| {
                    let p = pool.pages_possibly_needed_n(a.seq, n);
                    debug_assert!(p.is_ok(), "active sequences are live in the pool");
                    p.unwrap_or(0)
                })
                .sum();
            needed <= pool.free_pages()
        })
    }

    /// Pages the admission policy has promised to active sequences but
    /// that are not yet ingested: the analytic footprint of each
    /// sequence's remaining promised tokens (net of its trie-shared
    /// prefix, which is part of `pos` from admission). Admission must
    /// leave this headroom untouched, otherwise "reserving" would be a
    /// no-op until the pages actually allocate and `FullSequence` would
    /// over-admit.
    fn committed_pages_on(&self, pool: &PagedKvPool) -> u64 {
        self.active
            .iter()
            .map(|a| {
                let promised_tokens = match self.config.admission {
                    AdmissionPolicy::PromptOnly => a.req.prompt.len(),
                    AdmissionPolicy::FullSequence => a.req.total_tokens(),
                };
                pool.pages_for_tokens(promised_tokens.saturating_sub(a.pos))
            })
            .sum()
    }

    /// The single audited teardown path: releases every pool resource a
    /// sequence owns. `suspended` selects the pool-side entry point
    /// (host-tier drop vs. device free). Teardown is best-effort by
    /// design — a sequence the pool no longer knows is already torn down,
    /// which only happens on paths that raced a prior teardown; the
    /// invariant is asserted in debug builds and ignored in release so a
    /// double-free can never cascade into a panic mid-run.
    fn teardown_seq(&mut self, seq: SeqId, suspended: bool) {
        let r = if suspended {
            self.pools.drop_suspended_seq(seq)
        } else {
            self.pools.free_seq(seq)
        };
        debug_assert!(r.is_ok(), "teardown of a tracked sequence failed: {r:?}");
    }

    /// Records a request's terminal state. Every request leaves the engine
    /// through this single path, whatever the outcome — the bookkeeping
    /// (`retired`/`failed`/`cancellations`/`deadline_kills`) can therefore
    /// never drift from the `finished` list.
    fn finish_request(
        &mut self,
        req: EngineRequest,
        generated: Vec<u32>,
        logits: Vec<Vec<f32>>,
        preemptions: usize,
        ttft_iteration: u64,
        outcome: RequestOutcome,
    ) {
        match outcome {
            RequestOutcome::Finished => self.stats.retired += 1,
            RequestOutcome::Failed(_) => self.stats.failed += 1,
            RequestOutcome::Cancelled => self.stats.cancellations += 1,
            RequestOutcome::DeadlineExceeded => self.stats.deadline_kills += 1,
        }
        self.finished.push(FinishedRequest {
            id: req.id,
            prompt_len: req.prompt.len(),
            generated,
            logits,
            completed: outcome == RequestOutcome::Finished,
            preemptions,
            ttft_iteration,
            outcome,
        });
    }

    /// Kills every in-flight request whose deadline clock
    /// ([`EngineConfig::max_iterations`] iterations since first admission)
    /// has expired — wherever it is parked. Queued requests that were
    /// never admitted (`born == 0`) are exempt: their clock has not
    /// started.
    fn enforce_deadlines(&mut self) {
        let Some(limit) = self.config.max_iterations else {
            return;
        };
        let now = self.stats.iterations;
        let expired = |born: u64| born > 0 && now - born >= limit;
        let mut i = 0;
        while i < self.active.len() {
            if expired(self.active[i].born) {
                let a = self.active.remove(i);
                self.teardown_seq(a.seq, false);
                self.finish_request(
                    a.req,
                    a.generated,
                    a.logits,
                    a.preemptions,
                    a.ttft_iteration,
                    RequestOutcome::DeadlineExceeded,
                );
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.resume.len() {
            if expired(self.resume[i].born) {
                let s = self.resume.remove(i).expect("index in bounds");
                self.teardown_seq(s.seq, true);
                self.finish_request(
                    s.req,
                    s.generated,
                    s.logits,
                    s.preemptions,
                    s.ttft_iteration,
                    RequestOutcome::DeadlineExceeded,
                );
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.queue.len() {
            if expired(self.queue[i].born) {
                let q = self.queue.remove(i).expect("index in bounds");
                self.finish_request(
                    q.req,
                    Vec::new(),
                    Vec::new(),
                    q.preemptions,
                    q.ttft_iteration,
                    RequestOutcome::DeadlineExceeded,
                );
            } else {
                i += 1;
            }
        }
    }

    /// Quarantines the sequences whose in-forward append failed: the
    /// poisoned slot is torn down and — for a transient fault within the
    /// restart budget — requeued at the front to restart, otherwise
    /// failed for good. Only the offending sequences are touched; the
    /// rest of the batch already advanced normally.
    fn quarantine_poisoned(&mut self, poisoned: &[(usize, PoolError)]) {
        // Highest slot first so earlier removals don't shift later ones.
        let mut order: Vec<usize> = (0..poisoned.len()).collect();
        order.sort_by(|&x, &y| poisoned[y].0.cmp(&poisoned[x].0));
        for &p in &order {
            let (slot, ref err) = poisoned[p];
            let a = self.active.remove(slot);
            self.teardown_seq(a.seq, false);
            self.stats.faults_absorbed += 1;
            let transient = matches!(
                err,
                PoolError::Fault {
                    kind: FaultKind::Transient,
                    ..
                }
            );
            if transient && a.fault_restarts < FAULT_RESTART_LIMIT {
                self.stats.fault_retries += 1;
                self.queue.push_front(QueuedRequest {
                    req: a.req,
                    preemptions: a.preemptions,
                    ttft_iteration: a.ttft_iteration,
                    reached: a.reached,
                    born: a.born,
                    fault_restarts: a.fault_restarts + 1,
                });
            } else {
                self.finish_request(
                    a.req,
                    a.generated,
                    a.logits,
                    a.preemptions,
                    a.ttft_iteration,
                    RequestOutcome::Failed(RequestFailure::Pool(*err)),
                );
            }
        }
    }

    /// Resumes suspended sequences from the front of the resume queue
    /// while device pages and batch slots allow. Returns `Some(stalled)`
    /// when fresh admission must wait — either because a resume is still
    /// pending (strict priority: swapped work never starves behind new
    /// arrivals; `stalled` is true when it was pages, not slots, that
    /// blocked it) — or `None` when the resume queue drained.
    ///
    /// Liveness escape hatch: with *nothing active*, no future retirement
    /// can free device pages, so a resume head that does not fit then can
    /// never fit — other suspended sequences may have sealed new trie
    /// blocks after it froze, pinning device pages it used to occupy. The
    /// head is converted back to an evict-and-restart (suspended state
    /// discarded, request re-queued at the front; counted in
    /// [`EngineStats::resume_restarts`]), which releases its trie pins
    /// and unwedges the hierarchy at the price of recompute.
    fn resume_suspended(&mut self) -> Option<bool> {
        while self.active.len() < self.config.max_batch {
            let front = self.resume.front()?;
            if front.retry_at > self.stats.iterations {
                // Backing off after a failed resume attempt: the head
                // holds its queue position (strict priority stands) but
                // fresh admission is not page-stalled by it.
                return Some(false);
            }
            let front_seq = front.seq;
            // Resuming materializes the frozen pages on *every* rank
            // shard simultaneously; the tightest shard gates the resume.
            let fits = (0..self.pools.num_ranks()).all(|r| {
                let pool = &self.pools.ranks()[r];
                let frozen = u64::from(self.pools.suspended_seq_pages(r, front_seq));
                frozen + self.committed_pages_on(pool) <= u64::from(pool.free_pages())
            });
            if !fits {
                if !self.active.is_empty() {
                    return Some(true);
                }
                let s = self.resume.pop_front().expect("front exists");
                self.teardown_seq(s.seq, true);
                self.stats.resume_restarts += 1;
                self.queue.push_front(QueuedRequest {
                    req: s.req,
                    preemptions: s.preemptions,
                    ttft_iteration: s.ttft_iteration,
                    reached: s.reached,
                    born: s.born,
                    fault_restarts: s.fault_restarts,
                });
                continue;
            }
            let s = self.resume.pop_front().expect("front exists");
            let receipt = match self.pools.resume_seq(s.seq) {
                Ok(receipt) => receipt,
                Err(PoolError::Fault { op, kind }) => {
                    // Injected swap-in fault: the sequence stays frozen on
                    // the host. Retry after a deterministic exponential
                    // backoff (scheduler iterations, never wall-clock);
                    // out of retries, demote to evict-and-restart.
                    self.stats.faults_absorbed += 1;
                    let mut s = s;
                    s.retries += 1;
                    if s.retries > SWAP_IN_RETRY_LIMIT {
                        self.teardown_seq(s.seq, true);
                        self.stats.demotions += 1;
                        self.stats.resume_restarts += 1;
                        self.queue.push_front(QueuedRequest {
                            req: s.req,
                            preemptions: s.preemptions,
                            ttft_iteration: s.ttft_iteration,
                            reached: s.reached,
                            born: s.born,
                            fault_restarts: s.fault_restarts,
                        });
                        continue;
                    }
                    self.stats.fault_retries += 1;
                    s.retry_at = self.stats.iterations + (1u64 << s.retries);
                    let _ = (op, kind);
                    self.resume.push_front(s);
                    return Some(false);
                }
                Err(e) => {
                    // Resume of a headroom-checked suspended sequence can
                    // only fail via injection; anything else is an engine
                    // bug. Contain it as a request failure rather than
                    // panicking the loop.
                    debug_assert!(false, "unexpected resume failure: {e}");
                    self.teardown_seq(s.seq, true);
                    self.finish_request(
                        s.req,
                        s.generated,
                        s.logits,
                        s.preemptions,
                        s.ttft_iteration,
                        RequestOutcome::Failed(RequestFailure::Pool(e)),
                    );
                    continue;
                }
            };
            self.stats.swap_ins += 1;
            self.stats.swap_bytes_to_device += receipt.bytes;
            self.stats.resume_latency_iters += self.stats.iterations - s.suspended_at;
            self.active.push(ActiveSeq {
                req: s.req,
                seq: s.seq,
                pos: s.pos,
                generated: s.generated,
                logits: s.logits,
                preemptions: s.preemptions,
                ttft_iteration: s.ttft_iteration,
                reached: s.reached,
                born: s.born,
                fault_restarts: s.fault_restarts,
            });
        }
        if self.resume.is_empty() {
            None
        } else {
            // Out of batch slots, not pages: no admission stall, but
            // fresh requests still wait behind the pending resumes.
            Some(false)
        }
    }

    /// Admits requests while the pool has pages and batch slots: first
    /// the resume queue (strict priority — see
    /// [`resume_suspended`](Self::resume_suspended)), then queue-front
    /// fresh requests, probing each prompt against the prefix trie so
    /// only *non-shared* pages are reserved. Under
    /// [`PreemptPolicy::SwapToHost`] the fresh-admission headroom also
    /// counts free *host* pages: overflow is survivable by swapping, so
    /// the effective capacity is the whole hierarchy, not one tier.
    /// Requests that can never complete — non-shared footprint beyond the
    /// whole pool, or sequence length beyond the model's `max_seq_len` —
    /// are dropped as failed. Returns whether a possible request was left
    /// waiting for pages (an admission stall).
    fn admit(&mut self) -> bool {
        let mut stalled = false;
        let pending_resumes = self.resume_suspended();
        self.stats.peak_active = self.stats.peak_active.max(self.active.len());
        if let Some(resume_stalled) = pending_resumes {
            return resume_stalled;
        }
        while self.active.len() < self.config.max_batch {
            let Some(front) = self.queue.front() else {
                break;
            };
            let matched = self.pools.probe_prefix(&front.req.prompt);
            // Every rank shard must hold the request (its slice of every
            // row), so both the impossibility and the reservation checks
            // quantify over all shards — the tightest one decides.
            let impossible = front.req.total_tokens() > self.model.config().max_seq_len
                || self.pools.ranks().iter().any(|pool| {
                    pool.pages_for_tokens(front.req.total_tokens() - matched)
                        > u64::from(pool.capacity_pages())
                });
            if impossible {
                let q = self.queue.pop_front().expect("front exists");
                self.finish_request(
                    q.req,
                    Vec::new(),
                    Vec::new(),
                    q.preemptions,
                    q.ttft_iteration,
                    RequestOutcome::Failed(RequestFailure::Impossible),
                );
                continue;
            }
            let fits = self.pools.ranks().iter().all(|pool| {
                let reserve = match self.config.admission {
                    AdmissionPolicy::PromptOnly => {
                        pool.pages_for_tokens(front.req.prompt.len() - matched)
                    }
                    AdmissionPolicy::FullSequence => {
                        pool.pages_for_tokens(front.req.total_tokens() - matched)
                    }
                };
                let host_headroom = match self.config.preempt {
                    PreemptPolicy::SwapToHost => u64::from(pool.host_free_pages()),
                    PreemptPolicy::RestartRecompute => 0,
                };
                reserve + self.committed_pages_on(pool)
                    <= u64::from(pool.free_pages()) + host_headroom
            });
            if !fits {
                stalled = true;
                break;
            }
            let q = self.queue.pop_front().expect("front exists");
            let alloc = self.pools.alloc_seq_with_prefix(&q.req.prompt);
            debug_assert_eq!(alloc.matched_tokens, matched, "probe/alloc agree");
            self.stats.admitted += 1;
            self.active.push(ActiveSeq {
                req: q.req,
                seq: alloc.seq,
                pos: alloc.matched_tokens,
                generated: Vec::new(),
                logits: Vec::new(),
                preemptions: q.preemptions,
                ttft_iteration: q.ttft_iteration,
                reached: q.reached,
                // The deadline clock starts at the *first* admission and
                // survives restarts.
                born: if q.born == 0 {
                    self.stats.iterations
                } else {
                    q.born
                },
                fault_restarts: q.fault_restarts,
            });
        }
        self.stats.peak_active = self.stats.peak_active.max(self.active.len());
        stalled
    }

    /// Index of the next preemption victim: the **newest admission**
    /// (the last slot of the active set). The newest sequence has the
    /// least cached work to move or redo, and the oldest — closest to
    /// retiring for good — keep their pages; `tests::victim_ordering`
    /// pins this choice.
    fn victim_slot(&self) -> usize {
        self.active.len() - 1
    }

    /// Guarantees the pool can absorb this iteration's chunk plan,
    /// degrading to single-token steps under pressure and then preempting
    /// the newest sequences (restart or swap, per
    /// [`EngineConfig::preempt`]) until it fits. A sequence that cannot
    /// proceed even alone is dropped. Returns the reserved plan.
    fn reserve_capacity(&mut self) -> Vec<usize> {
        loop {
            let plan = self.chunk_plan();
            if self.plan_fits(&plan) {
                return plan;
            }
            // Budgeted chunks do not fit: try the classic one-token-each
            // schedule before preempting anyone.
            let fallback = vec![1usize; self.active.len()];
            if self.plan_fits(&fallback) {
                return fallback;
            }
            let a = self.active.remove(self.victim_slot());
            if self.active.is_empty() {
                // Even alone, the *worst-case* bound says the sequence
                // cannot take one more token. The bound is deliberately
                // conservative (appends must never fail mid-forward), so
                // at the extreme margin this can drop a request whose
                // actual encoded rows would still have squeezed into the
                // page tails — safety over utilization.
                self.teardown_seq(a.seq, false);
                self.finish_request(
                    a.req,
                    a.generated,
                    a.logits,
                    a.preemptions,
                    a.ttft_iteration,
                    RequestOutcome::Failed(RequestFailure::Impossible),
                );
                return Vec::new();
            }
            self.stats.preemptions += 1;
            if self.config.preempt == PreemptPolicy::SwapToHost {
                // Transient swap faults are retried in place (bounded);
                // a persistent fault, an exhausted budget, or a full host
                // tier demotes this victim to evict-and-restart.
                let mut swapped = None;
                for attempt in 0..=SWAP_OUT_RETRY_LIMIT {
                    match self.pools.suspend_seq(a.seq) {
                        Ok(receipt) => {
                            swapped = Some(receipt);
                            break;
                        }
                        Err(PoolError::Fault { kind, .. }) => {
                            self.stats.faults_absorbed += 1;
                            if kind == FaultKind::Persistent || attempt == SWAP_OUT_RETRY_LIMIT {
                                self.stats.demotions += 1;
                                break;
                            }
                            self.stats.fault_retries += 1;
                        }
                        // Host tier full: this victim falls back to
                        // evict-and-restart (the recompute cost shows up
                        // in `recomputed_prefill_tokens`).
                        Err(PoolError::OutOfHostPages { .. }) => {
                            self.stats.demotions += 1;
                            break;
                        }
                        Err(e) => {
                            debug_assert!(false, "unexpected suspend failure: {e}");
                            break;
                        }
                    }
                }
                if let Some(receipt) = swapped {
                    self.stats.swap_outs += 1;
                    self.stats.swap_bytes_to_host += receipt.bytes;
                    self.resume.push_back(SuspendedReq {
                        req: a.req,
                        seq: a.seq,
                        pos: a.pos,
                        generated: a.generated,
                        logits: a.logits,
                        preemptions: a.preemptions + 1,
                        ttft_iteration: a.ttft_iteration,
                        reached: a.reached,
                        suspended_at: self.stats.iterations,
                        born: a.born,
                        fault_restarts: a.fault_restarts,
                        retries: 0,
                        retry_at: 0,
                    });
                    continue;
                }
            }
            self.teardown_seq(a.seq, false);
            self.queue.push_front(QueuedRequest {
                req: a.req,
                preemptions: a.preemptions + 1,
                ttft_iteration: a.ttft_iteration,
                reached: a.reached,
                born: a.born,
                fault_restarts: a.fault_restarts,
            });
        }
    }

    /// Retires finished sequences, freeing their private pages and
    /// releasing their shared blocks immediately.
    fn retire(&mut self) {
        let mut i = 0;
        while i < self.active.len() {
            if !self.active[i].finished() {
                i += 1;
                continue;
            }
            let a = self.active.remove(i);
            if self.export_marks.remove(&a.req.id) {
                // Export *is* the teardown: every rank pool flattens and
                // frees the sequence, and the request leaves through the
                // export drain instead of the finished list — a peer
                // engine finishes it.
                let transfers = self
                    .pools
                    .export_seq(a.seq)
                    .expect("retiring sequences are live in every rank pool");
                let export = KvExport {
                    request: a.req,
                    generated: a.generated,
                    logits: a.logits,
                    ttft_iteration: a.ttft_iteration,
                    transfers,
                };
                self.stats.exports += 1;
                self.stats.export_wire_bytes += export.wire_bytes();
                self.exports.push(export);
                continue;
            }
            self.teardown_seq(a.seq, false);
            self.finish_request(
                a.req,
                a.generated,
                a.logits,
                a.preemptions,
                a.ttft_iteration,
                RequestOutcome::Finished,
            );
        }
    }
}

impl std::fmt::Debug for BatchEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEngine")
            .field("active", &self.active.len())
            .field("queued", &self.queue.len())
            .field("resume_queued", &self.resume.len())
            .field("finished", &self.finished.len())
            .field("num_ranks", &self.pools.num_ranks())
            .field("free_pages", &self.pools.free_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaken_model::{ModelConfig, PagedKvPool};

    fn tiny_model() -> Model {
        Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 42)
    }

    fn engine_with_pages<'m>(
        model: &'m Model,
        pages: u32,
        config: EngineConfig,
    ) -> BatchEngine<'m> {
        let pool = PagedKvPool::for_model(model.config(), None, pages, 512);
        BatchEngine::new(model, pool, TokenScheduler::new(4), config)
    }

    fn req(id: u64, prompt_len: usize, out: usize) -> EngineRequest {
        EngineRequest::new(
            id,
            (0..prompt_len as u32)
                .map(|i| (i * 7 + id as u32) % 256)
                .collect(),
            out,
        )
    }

    #[test]
    fn single_request_completes() {
        let m = tiny_model();
        let mut e = engine_with_pages(&m, 512, EngineConfig::default());
        e.submit(req(0, 4, 3));
        let fin = e.run().to_vec();
        assert_eq!(fin.len(), 1);
        assert!(fin[0].completed);
        assert_eq!(fin[0].generated.len(), 3);
        assert!(fin[0].ttft_iteration >= 1);
        assert_eq!(e.stats().retired, 1);
        assert_eq!(e.stats().prefill_tokens, 4);
        assert_eq!(e.stats().decode_tokens, 3);
        // All pages returned.
        assert_eq!(e.pool().free_pages(), e.pool().capacity_pages());
    }

    #[test]
    fn chunked_prefill_compresses_prompt_iterations() {
        let m = tiny_model();
        let mut chunked = engine_with_pages(
            &m,
            2048,
            EngineConfig {
                prefill_token_budget: 16,
                ..EngineConfig::default()
            },
        );
        let mut classic = engine_with_pages(
            &m,
            2048,
            EngineConfig {
                prefill_token_budget: 1,
                ..EngineConfig::default()
            },
        );
        chunked.submit(req(0, 40, 3));
        classic.submit(req(0, 40, 3));
        chunked.run();
        classic.run();
        // Same tokens, same outputs...
        assert_eq!(
            chunked.finished()[0].generated,
            classic.finished()[0].generated
        );
        assert_eq!(chunked.stats().prefill_tokens, 40);
        // ...but the 40-token prompt takes 40 iterations classically vs
        // ceil(40/16) + decode with the budget.
        assert!(
            chunked.stats().iterations * 3 < classic.stats().iterations,
            "chunked {} vs classic {}",
            chunked.stats().iterations,
            classic.stats().iterations
        );
        assert!(chunked.stats().prefill_chunks < classic.stats().prefill_chunks);
    }

    #[test]
    fn disaggregated_handoff_matches_monolithic_tokens() {
        let m = tiny_model();
        // Monolithic reference: one engine runs the request end to end.
        let mut mono = engine_with_pages(&m, 512, EngineConfig::default());
        mono.submit(req(7, 12, 5));
        mono.run();
        let want = mono.finished()[0].generated.clone();
        assert_eq!(want.len(), 5);

        // Prefill leg: same request truncated to one decode token,
        // marked so it retires as an export instead of finishing.
        let mut prefill = engine_with_pages(&m, 512, EngineConfig::default());
        let mut r = req(7, 12, 5);
        r.max_new_tokens = 1;
        prefill.submit(r);
        prefill.mark_for_export(7);
        prefill.run();
        assert!(
            prefill.finished().is_empty(),
            "exported requests do not finish locally"
        );
        assert_eq!(prefill.stats().exports, 1);
        assert_eq!(
            prefill.pool().free_pages(),
            prefill.pool().capacity_pages(),
            "export is teardown: every source page freed"
        );
        let mut exports = prefill.take_exports();
        assert_eq!(exports.len(), 1);
        assert!(prefill.take_exports().is_empty(), "drain empties");
        let mut export = exports.pop().unwrap();
        assert_eq!(export.generated, want[..1], "first token rides along");
        assert!(export.wire_bytes() > 0);
        assert_eq!(prefill.stats().export_wire_bytes, export.wire_bytes());
        export.request.max_new_tokens = 5;

        // Decode leg: ingest the frozen KV and finish the request
        // without refeeding a single prompt token.
        let mut decode = engine_with_pages(&m, 512, EngineConfig::default());
        decode.ingest_frozen(export).unwrap();
        decode.run();
        let fin = decode.finished();
        assert_eq!(fin.len(), 1);
        assert!(fin[0].completed);
        assert_eq!(fin[0].generated, want, "handoff is bit-exact");
        assert_eq!(decode.stats().imports, 1);
        assert_eq!(
            decode.stats().swap_ins,
            1,
            "thawed through the resume queue"
        );
        assert_eq!(
            decode.stats().prefill_tokens,
            0,
            "no prompt recompute on the decode leg"
        );
        assert_eq!(decode.pool().free_pages(), decode.pool().capacity_pages());
    }

    #[test]
    fn retired_slots_refill_immediately() {
        let m = tiny_model();
        let mut e = engine_with_pages(
            &m,
            512,
            EngineConfig {
                max_batch: 2,
                ..EngineConfig::default()
            },
        );
        for id in 0..5 {
            e.submit(req(id, 2, 2));
        }
        e.run();
        assert_eq!(e.stats().retired, 5);
        assert_eq!(e.stats().peak_active, 2);
        // 5 requests × 3 steps each (2 prefill-ish + decode), two at a
        // time: the run cannot have taken 5 × 3 sequential iterations.
        assert!(e.stats().iterations < 15, "{:?}", e.stats());
    }

    #[test]
    fn impossible_request_fails_cleanly() {
        let m = tiny_model();
        // 36 pages: enough for one short sequence (this geometry's page
        // floor is 32 streams × 1 page), far too small for request 0.
        let mut e = engine_with_pages(&m, 36, EngineConfig::default());
        e.submit(req(0, 200, 100));
        e.submit(req(1, 2, 2));
        let fin = e.run().to_vec();
        assert_eq!(fin.len(), 2);
        let failed = fin.iter().find(|f| f.id == 0).unwrap();
        assert!(!failed.completed);
        assert!(failed.generated.is_empty());
        let ok = fin.iter().find(|f| f.id == 1).unwrap();
        assert!(ok.completed);
        assert_eq!(e.stats().failed, 1);
    }

    #[test]
    fn tight_pool_stalls_admission_but_completes_everything() {
        let m = tiny_model();
        // 40 pages holds exactly one 32-page sequence at a time.
        let mut e = engine_with_pages(
            &m,
            40,
            EngineConfig {
                max_batch: 4,
                admission: AdmissionPolicy::FullSequence,
                ..EngineConfig::default()
            },
        );
        for id in 0..4 {
            e.submit(req(id, 6, 4));
        }
        let fin = e.run().to_vec();
        assert_eq!(fin.len(), 4);
        assert!(fin.iter().all(|f| f.completed), "{fin:?}");
        assert!(
            e.stats().admission_stalls > 0,
            "a 16-page pool must stall admission: {:?}",
            e.stats()
        );
    }

    #[test]
    fn optimistic_admission_preempts_under_pressure() {
        let m = tiny_model();
        // 70 pages: prompt-only admission packs two sequences (32 pages
        // promised each), but their decode growth to 64 pages each must
        // overflow and evict.
        let mut e = engine_with_pages(
            &m,
            70,
            EngineConfig {
                max_batch: 4,
                admission: AdmissionPolicy::PromptOnly,
                // Pinned unsharded: the 70-page geometry is calibrated so
                // decode growth evicts exactly here; rank-sharded pools
                // round pages per shard and shift the eviction schedule.
                num_ranks: 1,
                ..EngineConfig::default()
            },
        );
        for id in 0..4 {
            e.submit(req(id, 4, 40));
        }
        let fin = e.run().to_vec();
        assert_eq!(fin.len(), 4);
        assert!(fin.iter().all(|f| f.completed), "{fin:?}");
        assert!(
            e.stats().preemptions > 0,
            "long decodes over an optimistically packed pool must evict: {:?}",
            e.stats()
        );
        assert!(fin.iter().any(|f| f.preemptions > 0));
        // TTFT survives preemption: the first-wave requests (4-token
        // prompts, 16-token budget) sample their first token in the very
        // first iterations, long before page growth evicts one of them —
        // the preserved value must not be overwritten by the restart.
        assert!(fin.iter().all(|f| f.ttft_iteration >= 1));
        assert!(
            fin.iter()
                .any(|f| f.preemptions > 0 && f.ttft_iteration <= 10),
            "a preempted first-wave request must keep its early TTFT: {:?}",
            fin.iter()
                .map(|f| (f.id, f.preemptions, f.ttft_iteration))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn over_long_request_fails_instead_of_panicking() {
        let m = tiny_model(); // proxy max_seq_len = 512
        let mut e = engine_with_pages(&m, 100_000, EngineConfig::default());
        e.submit(req(0, 200, 400)); // 599 cached tokens > 512
        e.submit(req(1, 3, 3));
        let fin = e.run().to_vec();
        assert!(!fin.iter().find(|f| f.id == 0).unwrap().completed);
        assert!(fin.iter().find(|f| f.id == 1).unwrap().completed);
    }

    #[test]
    fn utilization_is_tracked() {
        let m = tiny_model();
        let mut e = engine_with_pages(&m, 256, EngineConfig::default());
        e.submit(req(0, 3, 3));
        e.run();
        let u = e.stats().mean_core_utilization();
        assert!(u > 0.0 && u <= 1.0, "{u}");
    }

    /// Pure-prefill iterations must not drag the generation-phase
    /// utilization mean toward zero: a long prompt followed by a short
    /// decode reports the decode iterations' utilization only.
    #[test]
    fn utilization_ignores_pure_prefill_iterations() {
        let m = tiny_model();
        // Budget 1: a 30-token prompt takes 30 pure-prefill iterations
        // before 3 decode iterations on a single sequence.
        let mut e = engine_with_pages(
            &m,
            2048,
            EngineConfig {
                prefill_token_budget: 1,
                ..EngineConfig::default()
            },
        );
        e.submit(req(0, 30, 3));
        e.run();
        // One sequence on 4 cores decodes at utilization 0.25 exactly;
        // counting the 29 empty iterations would report ~0.02.
        let u = e.stats().mean_core_utilization();
        assert!((u - 0.25).abs() < 1e-9, "{u}");
    }

    /// Pins the preemption victim ordering in isolation: the victim slot
    /// is always the *newest admission* (the last active slot), so under
    /// pressure the engine sheds the sequence with the least cached work
    /// while the oldest sequences run on toward retirement.
    #[test]
    fn victim_ordering_is_newest_admission_first() {
        let m = tiny_model();
        let mut e = engine_with_pages(
            &m,
            70,
            EngineConfig {
                max_batch: 2,
                admission: AdmissionPolicy::PromptOnly,
                preempt: PreemptPolicy::RestartRecompute,
                // Pinned unsharded: fixed 70-page eviction geometry.
                num_ranks: 1,
                ..EngineConfig::default()
            },
        );
        e.submit(req(0, 4, 40));
        e.submit(req(1, 4, 40));
        // Drive until the first preemption.
        while e.stats().preemptions == 0 && e.step() {}
        assert!(e.stats().preemptions > 0, "pressure must preempt");
        // The victim slot is the last active index by definition...
        assert_eq!(e.victim_slot(), e.active.len() - 1);
        // ...and the preempted request was the newest admission (request
        // 1 was admitted second): request 0 survived in slot 0. (The
        // victim may already have been re-admitted by the end of the
        // step, so the durable evidence is who was *never* shed.)
        assert_eq!(e.active[0].req.id, 0, "oldest admission keeps running");
        e.run();
        assert!(e.finished().iter().all(|f| f.completed));
        let fin1 = e.finished().iter().find(|f| f.id == 1).unwrap();
        assert!(fin1.preemptions > 0);
        let fin0 = e.finished().iter().find(|f| f.id == 0).unwrap();
        assert_eq!(fin0.preemptions, 0, "the oldest sequence was never shed");
    }

    /// The acceptance bar of the two-tier refactor: on a pool sized to
    /// force preemption, `SwapToHost` retires the identical workload with
    /// **zero** recomputed prefill tokens, while `RestartRecompute` pays
    /// a nonzero recompute bill — and both produce the same tokens.
    #[test]
    fn swap_policy_eliminates_recompute_on_the_same_workload() {
        let m = tiny_model();
        let run = |preempt: PreemptPolicy| {
            let mut e = engine_with_pages(
                &m,
                70,
                EngineConfig {
                    max_batch: 4,
                    admission: AdmissionPolicy::PromptOnly,
                    preempt,
                    // Pinned unsharded: fixed 70-page eviction geometry.
                    num_ranks: 1,
                    ..EngineConfig::default()
                },
            );
            for id in 0..4 {
                e.submit(req(id, 4, 40));
            }
            let mut fin = e.run().to_vec();
            fin.sort_by_key(|f| f.id);
            (fin, e.stats().clone())
        };
        let (fin_restart, restart) = run(PreemptPolicy::RestartRecompute);
        let (fin_swap, swap) = run(PreemptPolicy::SwapToHost);
        assert!(restart.preemptions > 0, "pool must be tight: {restart:?}");
        assert!(swap.preemptions > 0, "swap run preempts too: {swap:?}");
        assert!(
            restart.recomputed_prefill_tokens > 0,
            "restart must pay recompute: {restart:?}"
        );
        assert_eq!(
            swap.recomputed_prefill_tokens, 0,
            "swap must never recompute: {swap:?}"
        );
        assert!(swap.swap_outs > 0 && swap.swap_ins > 0);
        assert_eq!(swap.swap_outs, swap.swap_ins, "everything resumed");
        assert!(swap.swap_bytes_to_host > 0);
        assert_eq!(swap.swap_bytes_to_host, swap.swap_bytes_to_device);
        assert!(swap.mean_resume_latency() >= 1.0, "{swap:?}");
        assert_eq!(restart.swap_outs, 0, "restart never touches the host tier");
        // Same workload, same tokens, either way.
        assert!(fin_swap.iter().all(|f| f.completed));
        for (a, b) in fin_swap.iter().zip(&fin_restart) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.generated, b.generated, "policies must agree on tokens");
        }
    }

    /// A host tier too small for a loaded victim degrades to restart
    /// instead of wedging: the workload still completes and the recompute
    /// bill is paid. (Victims with *nothing cached yet* still "suspend" —
    /// zero pages move, so a 0-page host holds them — which is strictly
    /// better than restarting them.)
    #[test]
    fn swap_policy_falls_back_to_restart_when_host_is_full() {
        let m = tiny_model();
        let mut pool = PagedKvPool::for_model(m.config(), None, 70, 512);
        pool.set_host_pages(0);
        let mut e = BatchEngine::new(
            &m,
            pool,
            TokenScheduler::new(4),
            EngineConfig {
                max_batch: 4,
                admission: AdmissionPolicy::PromptOnly,
                preempt: PreemptPolicy::SwapToHost,
                // Pinned unsharded: fixed 70-page swap geometry.
                num_ranks: 1,
                ..EngineConfig::default()
            },
        );
        for id in 0..4 {
            e.submit(req(id, 4, 40));
        }
        e.run();
        assert!(e.finished().iter().all(|f| f.completed));
        let s = e.stats();
        assert!(s.preemptions > 0);
        assert_eq!(s.swap_bytes_to_host, 0, "no host pages, no bytes move");
        assert!(s.recomputed_prefill_tokens > 0, "fallback pays recompute");
    }

    /// Every tier of the hierarchy is empty: all device pages free, no
    /// private or shared pages outstanding, nothing live or frozen, no
    /// host pages held.
    fn assert_pool_empty(e: &BatchEngine<'_>) {
        let acct = e.pool().page_accounting();
        assert_eq!(acct.free, e.pool().capacity_pages(), "device pages leak");
        assert_eq!(acct.private, 0, "private pages leak");
        assert_eq!(acct.shared_blocks, 0, "trie blocks leak");
        assert_eq!(e.pool().host_pages_used(), 0, "host pages leak");
        assert_eq!(e.pool().active_seqs(), 0, "live sequences leak");
        assert_eq!(e.pool().suspended_seqs(), 0, "suspended sequences leak");
    }

    #[test]
    fn cancel_during_prefill_chunk_leaves_no_residue() {
        let m = tiny_model();
        let mut e = engine_with_pages(
            &m,
            512,
            EngineConfig {
                prefill_token_budget: 8,
                ..EngineConfig::default()
            },
        );
        e.submit(req(0, 40, 3));
        // Two steps ingest 16 of 40 prompt tokens: mid-chunked-prefill,
        // with a partially filled pending block in the pool.
        assert!(e.step());
        assert!(e.step());
        let a = &e.active[0];
        assert!(a.pos > 0 && a.pos < a.req.prompt.len(), "mid-prefill");
        assert!(e.cancel(0));
        assert_pool_empty(&e);
        assert!(!e.step(), "no work left");
        let fin = &e.finished()[0];
        assert_eq!(fin.outcome, RequestOutcome::Cancelled);
        assert!(!fin.completed);
        assert!(fin.generated.is_empty(), "never reached decode");
        assert_eq!(e.stats().cancellations, 1);
    }

    #[test]
    fn cancel_during_decode_keeps_partial_output() {
        let m = tiny_model();
        let mut e = engine_with_pages(&m, 512, EngineConfig::default());
        e.submit(req(0, 4, 50));
        while e.finished().is_empty() {
            e.step();
            if e.active.first().is_some_and(|a| a.generated.len() >= 3) {
                break;
            }
        }
        let already = e.active[0].generated.clone();
        assert!(already.len() >= 3, "decoding");
        assert!(e.cancel(0));
        assert_pool_empty(&e);
        let fin = &e.finished()[0];
        assert_eq!(fin.outcome, RequestOutcome::Cancelled);
        assert_eq!(fin.generated, already, "partial output is kept");
    }

    #[test]
    fn cancel_while_suspended_on_host_releases_host_pages() {
        let m = tiny_model();
        let mut pool = PagedKvPool::for_model(m.config(), None, 70, 512);
        pool.set_host_pages(70);
        let mut e = BatchEngine::new(
            &m,
            pool,
            TokenScheduler::new(4),
            EngineConfig {
                max_batch: 4,
                admission: AdmissionPolicy::PromptOnly,
                preempt: PreemptPolicy::SwapToHost,
                // Pinned unsharded: fixed 70-page swap geometry.
                num_ranks: 1,
                ..EngineConfig::default()
            },
        );
        for id in 0..4 {
            e.submit(req(id, 4, 40));
        }
        while e.resume.is_empty() && e.step() {}
        let frozen = e.resume.front().expect("a sequence was swapped out");
        assert!(e.pool().host_pages_used() > 0 || e.pool().suspended_seqs() > 0);
        let id = frozen.req.id;
        assert!(e.cancel(id));
        assert_eq!(
            e.finished().iter().find(|f| f.id == id).unwrap().outcome,
            RequestOutcome::Cancelled
        );
        // The survivors run to completion and drain the pool to empty —
        // the cancelled sequence's host pages went with it.
        e.run();
        assert!(e.finished().iter().all(|f| f.completed || f.id == id));
        assert_pool_empty(&e);
    }

    #[test]
    fn cancel_while_queued_never_touches_the_pool() {
        let m = tiny_model();
        let mut e = engine_with_pages(
            &m,
            512,
            EngineConfig {
                max_batch: 1,
                ..EngineConfig::default()
            },
        );
        e.submit(req(0, 4, 20));
        e.submit(req(1, 4, 20));
        assert!(e.step());
        assert_eq!(e.queue_len(), 1, "slot pressure parks request 1");
        assert!(e.cancel(1));
        let fin = e.finished().iter().find(|f| f.id == 1).unwrap();
        assert_eq!(fin.outcome, RequestOutcome::Cancelled);
        assert!(fin.generated.is_empty());
        e.run();
        assert!(e.finished().iter().find(|f| f.id == 0).unwrap().completed);
        assert_pool_empty(&e);
    }

    #[test]
    fn cancel_unknown_or_finished_id_is_a_noop() {
        let m = tiny_model();
        let mut e = engine_with_pages(&m, 512, EngineConfig::default());
        e.submit(req(0, 4, 2));
        assert!(!e.cancel(99), "never submitted");
        e.run();
        assert!(!e.cancel(0), "already finished");
        assert_eq!(e.stats().cancellations, 0);
    }

    /// Adversarial abort points: cancel every request at a different
    /// phase of its life and require the pool to drain to *exactly*
    /// empty — the leak regression for the audited teardown path.
    #[test]
    fn drain_to_exactly_empty_after_mixed_aborts() {
        let m = tiny_model();
        let mut pool = PagedKvPool::for_model(m.config(), None, 70, 512);
        pool.set_host_pages(70);
        pool.set_block_tokens(8);
        let mut e = BatchEngine::new(
            &m,
            pool,
            TokenScheduler::new(4),
            EngineConfig {
                max_batch: 3,
                admission: AdmissionPolicy::PromptOnly,
                preempt: PreemptPolicy::SwapToHost,
                prefill_token_budget: 8,
                ..EngineConfig::default()
            },
        );
        // Shared prefixes so sealed trie blocks are in play too.
        for id in 0..6 {
            let mut prompt: Vec<u32> = (0..12).collect();
            prompt.extend((0..8).map(|i| 100 + id as u32 * 16 + i));
            e.submit(EngineRequest::new(id, prompt, 30));
        }
        // Drive until the hierarchy is fully loaded: actives, a swapped
        // victim, and a queued request all coexist.
        for _ in 0..12 {
            e.step();
        }
        // Cancel one request per parking spot, whatever is there now.
        if let Some(a) = e.active.first() {
            let id = a.req.id;
            assert!(e.cancel(id));
        }
        if let Some(s) = e.resume.front() {
            let id = s.req.id;
            assert!(e.cancel(id));
        }
        if let Some(q) = e.queue.front() {
            let id = q.req.id;
            assert!(e.cancel(id));
        }
        // Mid-flight the books must still balance...
        assert_eq!(
            e.pool().page_accounting().total(),
            e.pool().capacity_pages()
        );
        // ...then cancel everything else and require exact emptiness.
        for id in 0..6 {
            e.cancel(id);
        }
        assert_eq!(e.finished().len(), 6);
        assert!(!e.step());
        assert_pool_empty(&e);
    }

    #[test]
    fn deadline_kills_overdue_requests_only() {
        let m = tiny_model();
        let mut e = engine_with_pages(
            &m,
            512,
            EngineConfig {
                max_iterations: Some(3),
                ..EngineConfig::default()
            },
        );
        e.submit(req(0, 4, 100)); // needs ~100 iterations: doomed
        e.submit(req(1, 2, 2)); // finishes within the deadline
        e.run();
        let doomed = e.finished().iter().find(|f| f.id == 0).unwrap();
        assert_eq!(doomed.outcome, RequestOutcome::DeadlineExceeded);
        assert!(!doomed.completed);
        let ok = e.finished().iter().find(|f| f.id == 1).unwrap();
        assert_eq!(ok.outcome, RequestOutcome::Finished);
        assert_eq!(e.stats().deadline_kills, 1);
        assert_pool_empty(&e);
    }

    /// The deadline clock starts at first admission: a request that waits
    /// in the queue forever (never admitted) is not killed by it.
    #[test]
    fn deadline_spares_never_admitted_requests() {
        let m = tiny_model();
        let mut e = engine_with_pages(
            &m,
            512,
            EngineConfig {
                max_batch: 1,
                max_iterations: Some(4),
                ..EngineConfig::default()
            },
        );
        e.submit(req(0, 4, 6));
        e.submit(req(1, 4, 3));
        e.run();
        // Request 1 waited out request 0's whole run in the queue, longer
        // than the deadline, but its clock only started on admission.
        let fin1 = e.finished().iter().find(|f| f.id == 1).unwrap();
        assert_eq!(fin1.outcome, RequestOutcome::Finished);
        assert_pool_empty(&e);
    }

    #[test]
    fn injected_device_faults_are_absorbed_not_propagated() {
        let m = tiny_model();
        let mut e = engine_with_pages(
            &m,
            512,
            EngineConfig {
                fault_plan: Some(FaultPlan::new(7).with_rate_permille(200)),
                ..EngineConfig::default()
            },
        );
        for id in 0..4 {
            e.submit(req(id, 6, 8));
        }
        e.run();
        let s = e.stats().clone();
        assert!(s.faults_injected > 0, "rate 20% over this workload");
        assert_eq!(s.faults_absorbed, s.faults_injected);
        assert_eq!(e.finished().len(), 4, "every request reached an outcome");
        assert_pool_empty(&e);
    }

    #[test]
    fn shared_prefix_synthesis_is_shared_exactly() {
        let mk = |id, shared| {
            EngineRequest::from_lengths_with_shared_prefix(
                &crate::Request {
                    id,
                    input_len: 12,
                    output_len: 2,
                },
                256,
                7,
                shared,
            )
        };
        let a = mk(0, 8);
        let b = mk(1, 8);
        assert_eq!(a.prompt[..8], b.prompt[..8], "system prompt shared");
        assert_ne!(a.prompt[8..], b.prompt[8..], "tails unique");
        let c = mk(2, 0);
        let d = mk(3, 0);
        assert_ne!(c.prompt, d.prompt);
    }
}

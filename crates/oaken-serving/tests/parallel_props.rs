//! Determinism guard for the parallel runtime: the engine's output —
//! every generated token, every recorded logit bit, every completion and
//! preemption count — must be **identical** at any `num_threads` to the
//! single-threaded run, over random chunk budgets, shared-prefix
//! overlaps, and preemption-inducing pool sizes.
//!
//! This is the repository's standing bit-exactness discipline extended to
//! threads: the fork-join runtime executes a fixed task decomposition
//! whose accumulation chains are all task-local, so scheduling (the only
//! nondeterminism threads introduce) is unobservable in the output.

use oaken_core::{KvQuantizer, OakenConfig};
use oaken_eval::harness::profile_oaken;
use oaken_model::{Model, ModelConfig, PagedKvPool};
use oaken_serving::{
    AdmissionPolicy, BatchEngine, EngineConfig, EngineRequest, FinishedRequest, TokenScheduler,
};
use proptest::prelude::*;
use std::sync::Arc;

fn tiny_model() -> Model {
    Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 7)
}

fn profiled_oaken(model: &Model) -> Arc<dyn KvQuantizer> {
    Arc::new(profile_oaken(model, OakenConfig::default(), 6, 8, 5))
}

/// Runs one full engine schedule at a given thread count and returns the
/// finished requests sorted by id.
#[allow(clippy::too_many_arguments)]
fn run_engine(
    model: &Model,
    quantizer: Option<Arc<dyn KvQuantizer>>,
    requests: &[EngineRequest],
    num_threads: usize,
    max_batch: usize,
    num_pages: u32,
    prefill_token_budget: usize,
    block_tokens: usize,
    num_ranks: usize,
) -> Vec<FinishedRequest> {
    let mut pool = PagedKvPool::for_model(model.config(), quantizer, num_pages, 512);
    pool.set_block_tokens(block_tokens);
    let mut engine = BatchEngine::new(
        model,
        pool,
        TokenScheduler::new(4),
        EngineConfig {
            max_batch,
            admission: AdmissionPolicy::PromptOnly,
            record_logits: true,
            prefill_token_budget,
            num_threads,
            num_ranks,
            ..EngineConfig::default()
        },
    );
    for r in requests {
        engine.submit(r.clone());
    }
    engine.run();
    let mut fin = engine.finished().to_vec();
    fin.sort_by_key(|f| f.id);
    fin
}

/// Every observable field must match bit for bit.
fn assert_runs_identical(serial: &[FinishedRequest], parallel: &[FinishedRequest], ctx: &str) {
    assert_eq!(serial.len(), parallel.len(), "{ctx}: request count");
    for (s, p) in serial.iter().zip(parallel) {
        assert_eq!(s.id, p.id, "{ctx}");
        assert_eq!(s.completed, p.completed, "{ctx}: request {}", s.id);
        assert_eq!(s.generated, p.generated, "{ctx}: request {} tokens", s.id);
        assert_eq!(s.preemptions, p.preemptions, "{ctx}: request {}", s.id);
        assert_eq!(
            s.ttft_iteration, p.ttft_iteration,
            "{ctx}: request {}",
            s.id
        );
        assert_eq!(s.logits.len(), p.logits.len(), "{ctx}: request {}", s.id);
        for (step, (a, b)) in s.logits.iter().zip(&p.logits).enumerate() {
            let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                ab, bb,
                "{ctx}: request {} logits diverged at decode step {step}",
                s.id
            );
        }
    }
}

/// Requests where the first `shared` tokens are a common system prompt
/// (exercising trie adoption and seal dedup under parallel appends).
fn requests_with_overlap(shapes: &[(usize, usize, u32)], shared: usize) -> Vec<EngineRequest> {
    shapes
        .iter()
        .enumerate()
        .map(|(id, &(plen, max_new, salt))| {
            let prompt = (0..plen as u32)
                .map(|i| {
                    if (i as usize) < shared.min(plen.saturating_sub(1)) {
                        (7 + i * 3) % 256
                    } else {
                        (salt + i * 13) % 256
                    }
                })
                .collect();
            EngineRequest::new(id as u64, prompt, max_new)
        })
        .collect()
}

/// The acceptance bar: 8 concurrent requests, chunked prefill, shared
/// prefixes — identical output at 2, 4, and 8 threads vs 1.
#[test]
fn eight_requests_bit_exact_across_thread_counts() {
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    let shapes: Vec<(usize, usize, u32)> = (0..8u32)
        .map(|r| (6 + (r as usize % 5), 3 + (r as usize % 3), r * 37))
        .collect();
    let requests = requests_with_overlap(&shapes, 4);
    let serial = run_engine(
        &model,
        Some(quantizer.clone()),
        &requests,
        1,
        8,
        4096,
        16,
        4,
        EngineConfig::default().num_ranks,
    );
    for threads in [2usize, 4, 8] {
        let par = run_engine(
            &model,
            Some(quantizer.clone()),
            &requests,
            threads,
            8,
            4096,
            16,
            4,
            EngineConfig::default().num_ranks,
        );
        assert_runs_identical(&serial, &par, &format!("{threads} threads"));
    }
}

/// Preemption-inducing pool: evictions and restarts must replay
/// identically under any thread count.
#[test]
fn preemption_schedule_bit_exact_across_thread_counts() {
    let model = tiny_model();
    // Exact-f32 pool (still append-only, so still the parallel path):
    // its fat rows make decode growth collide with the worst-case page
    // bound, the geometry the engine's own preemption unit test uses.
    let shapes: Vec<(usize, usize, u32)> = (0..4u32).map(|r| (4, 40, r * 41)).collect();
    let requests = requests_with_overlap(&shapes, 0);
    let pages = 70;
    // Pinned unsharded (last arg): rank-splitting the 70-page pool shifts
    // the per-shard worst-case bounds and this geometry stops preempting;
    // cross-rank preemption pressure is covered by tp_props.
    let serial = run_engine(&model, None, &requests, 1, 4, pages, 16, 16, 1);
    assert!(
        serial.iter().any(|f| f.preemptions > 0),
        "workload must actually preempt: {:?}",
        serial
            .iter()
            .map(|f| (f.id, f.completed, f.preemptions))
            .collect::<Vec<_>>()
    );
    for threads in [2usize, 4, 8] {
        let par = run_engine(&model, None, &requests, threads, 4, pages, 16, 16, 1);
        assert_runs_identical(&serial, &par, &format!("{threads} threads (preempting)"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random request mixes, chunk budgets, prefix overlaps, block sizes,
    /// and batch limits: `num_threads ∈ {2, 4, 8}` reproduces the serial
    /// engine bit for bit, per sequence.
    #[test]
    fn random_schedules_bit_exact_across_thread_counts(
        shapes in prop::collection::vec((2usize..10, 1usize..6, 0u32..1000), 1..6),
        max_batch in 1usize..5,
        budget in 1usize..24,
        overlap in 0usize..8,
        block_tokens in 2usize..6,
        tight in any::<bool>(),
    ) {
        let model = tiny_model();
        let quantizer = profiled_oaken(&model);
        let requests = requests_with_overlap(&shapes, overlap);
        // Tight pools exercise degradation to single-token steps and
        // eviction; ample pools exercise the full chunk plans. Both must
        // stay deterministic.
        let pages = if tight { 160 } else { 2048 };
        let num_ranks = EngineConfig::default().num_ranks;
        let serial = run_engine(
            &model, Some(quantizer.clone()), &requests, 1, max_batch, pages, budget, block_tokens,
            num_ranks,
        );
        for threads in [2usize, 4, 8] {
            let par = run_engine(
                &model, Some(quantizer.clone()), &requests, threads, max_batch, pages, budget,
                block_tokens, num_ranks,
            );
            assert_runs_identical(&serial, &par, &format!("{threads} threads"));
        }
    }
}

//! Kernel-mode guarantees of the serving engine: a fused-kernel engine
//! serves every request reading **only encoded rows** (no dequantized f32
//! views anywhere on the attention path), an exact-kernel engine reads
//! only f32 views, and the fused read path's per-token traffic is a small
//! fraction of the exact path's — the storage win carried through to read
//! bandwidth.

use oaken_core::{KvQuantizer, OakenConfig};
use oaken_eval::harness::profile_oaken;
use oaken_model::{KernelMode, Model, ModelConfig, PagedKvPool};
use oaken_serving::{AdmissionPolicy, BatchEngine, EngineConfig, EngineRequest, TokenScheduler};
use std::sync::Arc;

fn tiny_model() -> Model {
    Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 7)
}

fn run_with_kernel(kernel: KernelMode) -> oaken_serving::EngineStats {
    let model = tiny_model();
    let quantizer: Arc<dyn KvQuantizer> =
        Arc::new(profile_oaken(&model, OakenConfig::default(), 6, 8, 5));
    let pool = PagedKvPool::for_model(model.config(), Some(quantizer), 1024, 512);
    let mut engine = BatchEngine::new(
        &model,
        pool,
        TokenScheduler::new(4),
        EngineConfig {
            max_batch: 3,
            admission: AdmissionPolicy::PromptOnly,
            kernel,
            // Pinned unsharded: this test calibrates the encoded row's
            // per-row byte traffic against full-width f32 rows. Sharding
            // splits each row across ranks and re-pays the fixed encoding
            // header per slice, which shifts the ratio without changing
            // the representation under test.
            num_ranks: 1,
            ..EngineConfig::default()
        },
    );
    assert_eq!(engine.kernel_mode(), kernel, "oaken streams support fused");
    for (id, prompt) in [vec![1, 2, 3, 4, 5], vec![9, 8, 7], vec![20, 21, 22, 23]]
        .into_iter()
        .enumerate()
    {
        engine.submit(EngineRequest::new(id as u64, prompt, 6));
    }
    engine.run();
    let stats = engine.stats().clone();
    assert_eq!(stats.retired, 3, "all requests served under {kernel:?}");
    stats
}

#[test]
fn fused_engine_reads_encoded_rows_only() {
    let fused = run_with_kernel(KernelMode::Fused);
    assert!(fused.kv_reads.fused_rows > 0, "fused engine reads encoded");
    assert_eq!(
        fused.kv_reads.exact_rows, 0,
        "fused engine must never materialize f32 views"
    );

    let exact = run_with_kernel(KernelMode::Exact);
    assert!(
        exact.kv_reads.exact_rows > 0,
        "exact engine reads f32 views"
    );
    assert_eq!(
        exact.kv_reads.fused_rows, 0,
        "exact engine must not touch the encoded read path"
    );

    // Same schedule, same rows read — the fused path just reads them in
    // their encoded form, at a fraction of the f32 byte traffic.
    assert_eq!(fused.kv_reads.fused_rows, exact.kv_reads.exact_rows);
    let per_row_fused = fused.kv_reads.fused_bytes as f64 / fused.kv_reads.fused_rows as f64;
    let per_row_exact = exact.kv_reads.exact_bytes as f64 / exact.kv_reads.exact_rows as f64;
    assert!(
        per_row_fused < 0.25 * per_row_exact,
        "fused rows must stream <25% of the f32 bytes \
         (fused {per_row_fused:.1} B/row vs exact {per_row_exact:.1} B/row)"
    );
}

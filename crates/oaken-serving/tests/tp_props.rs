//! Determinism guard for tensor-parallel execution: an engine running
//! `N` ranks — private per-rank KV pool shards, rank-sharded forward
//! passes, a deterministic all-reduce — must generate **identical token
//! streams and logit bits** to the 1-rank engine, in both kernel modes,
//! at every thread count, under both preemption policies, and with an
//! armed fault plan.
//!
//! Two tiers of equality are pinned:
//!
//! * **Ample pool** (no page pressure): *everything* matches — tokens,
//!   logits bit for bit, preemption counts (zero), and TTFT iterations.
//! * **Tight pool** (preemption-inducing): per-rank page budgets shift
//!   *when* preemption fires relative to the aggregate 1-rank pool, but
//!   restart and swap preemption are both bit-exact, so the generated
//!   tokens and logits still match bit for bit — only the scheduling
//!   counters may differ.

use oaken_core::{KvQuantizer, OakenConfig};
use oaken_eval::harness::profile_oaken;
use oaken_model::{FaultPlan, KernelMode, Model, ModelConfig, PagedKvPool};
use oaken_serving::{
    AdmissionPolicy, BatchEngine, EngineConfig, EngineRequest, EngineStats, FinishedRequest,
    PreemptPolicy, TokenScheduler,
};
use proptest::prelude::*;
use std::sync::Arc;

fn tiny_model() -> Model {
    // 8 KV heads: rank counts 2, 3, and 4 all divide or split unevenly.
    Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 7)
}

fn profiled_oaken(model: &Model) -> Arc<dyn KvQuantizer> {
    Arc::new(profile_oaken(model, OakenConfig::default(), 6, 8, 5))
}

#[derive(Clone, Copy)]
struct RunKnobs {
    num_ranks: usize,
    num_threads: usize,
    max_batch: usize,
    num_pages: u32,
    prefill_token_budget: usize,
    block_tokens: usize,
    preempt: PreemptPolicy,
    kernel: KernelMode,
    fault_plan: Option<FaultPlan>,
}

impl Default for RunKnobs {
    fn default() -> Self {
        Self {
            num_ranks: 1,
            num_threads: 1,
            max_batch: 8,
            num_pages: 4096,
            prefill_token_budget: 16,
            block_tokens: 4,
            preempt: PreemptPolicy::RestartRecompute,
            kernel: KernelMode::Exact,
            fault_plan: None,
        }
    }
}

/// Runs one full engine schedule and returns the finished requests
/// (sorted by id) plus the run stats.
fn run_engine(
    model: &Model,
    quantizer: Option<Arc<dyn KvQuantizer>>,
    requests: &[EngineRequest],
    knobs: &RunKnobs,
) -> (Vec<FinishedRequest>, EngineStats) {
    let mut pool = PagedKvPool::for_model(model.config(), quantizer, knobs.num_pages, 512);
    pool.set_block_tokens(knobs.block_tokens);
    let mut engine = BatchEngine::new(
        model,
        pool,
        TokenScheduler::new(4),
        EngineConfig {
            max_batch: knobs.max_batch,
            admission: AdmissionPolicy::PromptOnly,
            preempt: knobs.preempt,
            record_logits: true,
            prefill_token_budget: knobs.prefill_token_budget,
            num_threads: knobs.num_threads,
            num_ranks: knobs.num_ranks,
            fault_plan: knobs.fault_plan,
            max_iterations: None,
            kernel: knobs.kernel,
        },
    );
    assert_eq!(
        engine.num_ranks(),
        knobs.num_ranks.min(model.config().num_kv_heads),
        "Oaken streams support sharding; the rank request must be honored"
    );
    for r in requests {
        engine.submit(r.clone());
    }
    engine.run();
    let stats = engine.stats().clone();
    let mut fin = engine.finished().to_vec();
    fin.sort_by_key(|f| f.id);
    (fin, stats)
}

/// The content tier: generated tokens and logit bits must match. Holds
/// under page pressure too (preemption is bit-exact either way).
fn assert_tokens_identical(base: &[FinishedRequest], tp: &[FinishedRequest], ctx: &str) {
    assert_eq!(base.len(), tp.len(), "{ctx}: request count");
    for (s, p) in base.iter().zip(tp) {
        assert_eq!(s.id, p.id, "{ctx}");
        assert_eq!(s.completed, p.completed, "{ctx}: request {}", s.id);
        assert_eq!(s.generated, p.generated, "{ctx}: request {} tokens", s.id);
        assert_eq!(s.logits.len(), p.logits.len(), "{ctx}: request {}", s.id);
        for (step, (a, b)) in s.logits.iter().zip(&p.logits).enumerate() {
            let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                ab, bb,
                "{ctx}: request {} logits diverged at decode step {step}",
                s.id
            );
        }
    }
}

/// The scheduling tier on top: preemption counts and TTFT iterations
/// match too (only guaranteed without page pressure).
fn assert_schedules_identical(base: &[FinishedRequest], tp: &[FinishedRequest], ctx: &str) {
    assert_tokens_identical(base, tp, ctx);
    for (s, p) in base.iter().zip(tp) {
        assert_eq!(s.preemptions, p.preemptions, "{ctx}: request {}", s.id);
        assert_eq!(
            s.ttft_iteration, p.ttft_iteration,
            "{ctx}: request {}",
            s.id
        );
    }
}

/// Requests where the first `shared` tokens are a common system prompt.
fn requests_with_overlap(shapes: &[(usize, usize, u32)], shared: usize) -> Vec<EngineRequest> {
    shapes
        .iter()
        .enumerate()
        .map(|(id, &(plen, max_new, salt))| {
            let prompt = (0..plen as u32)
                .map(|i| {
                    if (i as usize) < shared.min(plen.saturating_sub(1)) {
                        (7 + i * 3) % 256
                    } else {
                        (salt + i * 13) % 256
                    }
                })
                .collect();
            EngineRequest::new(id as u64, prompt, max_new)
        })
        .collect()
}

fn acceptance_shapes() -> Vec<(usize, usize, u32)> {
    (0..8u32)
        .map(|r| (6 + (r as usize % 5), 3 + (r as usize % 3), r * 37))
        .collect()
}

/// The acceptance bar: 2-rank and 4-rank engines reproduce the 1-rank
/// engine *completely* — tokens, logit bits, zero preemptions, TTFT —
/// in both kernel modes, at 1 and 4 threads, on an ample pool.
#[test]
fn ranked_engines_bit_exact_with_single_rank() {
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    let requests = requests_with_overlap(&acceptance_shapes(), 4);
    for kernel in [KernelMode::Exact, KernelMode::Fused] {
        let (base, base_stats) = run_engine(
            &model,
            Some(quantizer.clone()),
            &requests,
            &RunKnobs {
                kernel,
                ..RunKnobs::default()
            },
        );
        assert_eq!(base_stats.preemptions, 0, "ample pool must not preempt");
        assert_eq!(base_stats.num_ranks, 1);
        assert_eq!(base_stats.comm.bytes_moved, 0, "1 rank moves no bytes");
        for ranks in [2usize, 4] {
            for threads in [1usize, 4] {
                let ctx = format!("{ranks} ranks, {threads} threads, {kernel:?}");
                let (tp, stats) = run_engine(
                    &model,
                    Some(quantizer.clone()),
                    &requests,
                    &RunKnobs {
                        num_ranks: ranks,
                        num_threads: threads,
                        kernel,
                        ..RunKnobs::default()
                    },
                );
                assert_schedules_identical(&base, &tp, &ctx);
                assert_eq!(stats.num_ranks, ranks, "{ctx}");
                assert!(stats.comm.allreduce_calls > 0, "{ctx}: ranks must reduce");
                assert!(stats.comm.bytes_moved > 0, "{ctx}");
                assert_eq!(stats.rank_page_peaks.len(), ranks, "{ctx}");
                assert!(
                    stats.rank_page_peaks.iter().all(|&p| p > 0),
                    "{ctx}: every rank shard must hold pages: {:?}",
                    stats.rank_page_peaks
                );
            }
        }
    }
}

/// Preemption-inducing pools: per-rank budgets may shift *when* the
/// engine preempts, but restart and swap preemption are bit-exact, so
/// the generated content still matches the 1-rank engine exactly.
#[test]
fn ranked_engines_match_content_under_page_pressure() {
    let model = tiny_model();
    // Exact-f32 pool (still sharding-capable): its fat rows make decode
    // growth collide with the worst-case page bound — the same geometry
    // the thread-determinism preemption test uses.
    let shapes: Vec<(usize, usize, u32)> = (0..4u32).map(|r| (4, 40, r * 41)).collect();
    let requests = requests_with_overlap(&shapes, 0);
    for preempt in [PreemptPolicy::RestartRecompute, PreemptPolicy::SwapToHost] {
        let tight = RunKnobs {
            max_batch: 4,
            num_pages: 70,
            block_tokens: 16,
            preempt,
            ..RunKnobs::default()
        };
        let (base, base_stats) = run_engine(&model, None, &requests, &tight);
        assert!(
            base_stats.preemptions > 0,
            "workload must actually preempt ({preempt:?})"
        );
        for ranks in [2usize, 4] {
            let ctx = format!("{ranks} ranks under pressure, {preempt:?}");
            let (tp, _) = run_engine(
                &model,
                None,
                &requests,
                &RunKnobs {
                    num_ranks: ranks,
                    ..tight
                },
            );
            assert_tokens_identical(&base, &tp, &ctx);
        }
    }
}

/// An armed fault plan on a ranked engine: every injected fault is
/// absorbed (retry, demotion, or request-scoped teardown — never a
/// panic), every request reaches a terminal state, and the fault-free
/// requests still match the 1-rank fault-free run.
#[test]
fn ranked_engine_absorbs_injected_faults() {
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    let requests = requests_with_overlap(&acceptance_shapes(), 4);
    for seed in [3u64, 11, 29] {
        let (fin, stats) = run_engine(
            &model,
            Some(quantizer.clone()),
            &requests,
            &RunKnobs {
                num_ranks: 2,
                num_threads: 4,
                preempt: PreemptPolicy::SwapToHost,
                fault_plan: Some(FaultPlan::new(seed)),
                ..RunKnobs::default()
            },
        );
        assert_eq!(fin.len(), requests.len(), "seed {seed}: containment");
        assert_eq!(
            stats.faults_absorbed, stats.faults_injected,
            "seed {seed}: every injected fault must be absorbed"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random request mixes × rank counts (including a non-dividing 3)
    /// × thread counts × preemption policies × kernel modes: the ranked
    /// engine reproduces the 1-rank engine's content bit for bit; on
    /// ample pools the whole schedule matches.
    #[test]
    fn random_schedules_bit_exact_across_rank_counts(
        shapes in prop::collection::vec((2usize..10, 1usize..6, 0u32..1000), 1..6),
        ranks in prop::sample::select(vec![2usize, 3, 4]),
        threads in prop::sample::select(vec![1usize, 4]),
        overlap in 0usize..8,
        budget in 1usize..24,
        swap in any::<bool>(),
        fused in any::<bool>(),
        tight in any::<bool>(),
    ) {
        let model = tiny_model();
        let quantizer = profiled_oaken(&model);
        let requests = requests_with_overlap(&shapes, overlap);
        let knobs = RunKnobs {
            num_pages: if tight { 640 } else { 4096 },
            prefill_token_budget: budget,
            preempt: if swap { PreemptPolicy::SwapToHost } else { PreemptPolicy::RestartRecompute },
            kernel: if fused { KernelMode::Fused } else { KernelMode::Exact },
            ..RunKnobs::default()
        };
        let (base, _) = run_engine(&model, Some(quantizer.clone()), &requests, &knobs);
        let (tp, stats) = run_engine(
            &model,
            Some(quantizer.clone()),
            &requests,
            &RunKnobs { num_ranks: ranks, num_threads: threads, ..knobs },
        );
        let ctx = format!("{ranks} ranks, {threads} threads, tight={tight}");
        if tight {
            assert_tokens_identical(&base, &tp, &ctx);
        } else {
            assert_schedules_identical(&base, &tp, &ctx);
        }
        prop_assert_eq!(stats.num_ranks, ranks);
        prop_assert_eq!(stats.rank_page_peaks.len(), ranks);
    }
}

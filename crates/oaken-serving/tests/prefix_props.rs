//! Prefix-sharing and chunked-prefill guards for the serving engine:
//!
//! * the acceptance scenario — 8 concurrent requests sharing a 1024-token
//!   prompt store the prefix roughly once, skip its quantization on trie
//!   hits, and stay bit-exact with independent `Session` runs;
//! * preemption/eviction of a sharer never corrupts the survivors;
//! * the page-ownership invariant (free + Σ private + shared = capacity)
//!   holds after every engine step;
//! * shared-prompt traffic admits with strictly fewer stalls than the
//!   unshared baseline on a shrinking pool.

use oaken_core::{KvQuantizer, OakenConfig};
use oaken_eval::harness::profile_oaken;
use oaken_model::{sample_greedy, Model, ModelConfig, PagedKvPool, QuantizedCache, Session};
use oaken_serving::{
    AdmissionPolicy, BatchEngine, EngineConfig, EngineRequest, EngineStats, PreemptPolicy, Request,
    TokenScheduler,
};
use proptest::prelude::*;
use std::sync::Arc;

fn tiny_model() -> Model {
    Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 7)
}

/// A two-KV-head proxy: fewer per-head page streams, so block page
/// rounding does not swamp the payload in small-scale sharing tests.
fn narrow_model(layers: usize) -> Model {
    let mut cfg = ModelConfig::llama2_7b().proxy(layers, 32);
    cfg.num_heads = 2;
    cfg.num_kv_heads = 2;
    Model::synthetic(cfg, 7)
}

/// A proxy model whose sequence budget fits a 1024-token system prompt.
fn long_context_model() -> Model {
    let mut cfg = ModelConfig::llama2_7b().proxy(1, 32);
    cfg.num_heads = 2;
    cfg.num_kv_heads = 2;
    cfg.max_seq_len = 2048;
    Model::synthetic(cfg, 7)
}

fn profiled_oaken(model: &Model) -> Arc<dyn KvQuantizer> {
    Arc::new(profile_oaken(model, OakenConfig::default(), 6, 8, 5))
}

/// Greedy reference decode through the legacy single-sequence `Session`.
fn reference_decode(
    model: &Model,
    quantizer: Arc<dyn KvQuantizer>,
    prompt: &[u32],
    max_new: usize,
) -> Vec<u32> {
    let mut session: Session = model.session(Box::new(QuantizedCache::new(quantizer)));
    // Mirror the engine's env-driven kernel mode (`OAKEN_KERNEL`): the
    // fused engine is bit-exact with a fused Session, not an exact one.
    session.set_kernel_mode(oaken_model::KernelMode::default_mode());
    let mut logits = session.prefill(prompt);
    let mut tokens = Vec::new();
    for _ in 0..max_new {
        let tok = sample_greedy(&logits);
        tokens.push(tok);
        if tokens.len() == max_new {
            break;
        }
        logits = session.advance(tok);
    }
    tokens
}

fn assert_accounting_balanced(engine: &BatchEngine<'_>) {
    let acc = engine.pool().page_accounting();
    assert_eq!(
        acc.total(),
        engine.pool().capacity_pages(),
        "page-ownership invariant violated: {acc:?}"
    );
}

/// Runs an engine to completion, checking the page-ownership invariant
/// after every step, and returns its stats.
fn run_checked(engine: &mut BatchEngine<'_>) -> EngineStats {
    while engine.step() {
        assert_accounting_balanced(engine);
    }
    assert_accounting_balanced(engine);
    engine.stats().clone()
}

fn shared_prompt_requests(
    n: usize,
    vocab: usize,
    prompt_len: usize,
    shared: usize,
    out: usize,
) -> Vec<EngineRequest> {
    (0..n as u64)
        .map(|id| {
            EngineRequest::from_lengths_with_shared_prefix(
                &Request {
                    id,
                    input_len: prompt_len,
                    output_len: out,
                },
                vocab,
                0xC0FFEE,
                shared,
            )
        })
        .collect()
}

/// The acceptance bar: 8 concurrent requests over one 1024-token system
/// prompt (1025 prompt tokens: the 1024-token shared prefix is
/// block-aligned, the final token is always fed live).
///
/// Request 0 is submitted first; the moment its prefill completes (all
/// prefix blocks sealed, request still active and decoding) the other
/// seven arrive and hit the trie. Checks, against a sharing-disabled A/B
/// run of the identical staged workload:
///
/// * prefix pages are stored ~once instead of 8× (the unshared run's peak
///   page usage is many multiples of the single shared copy);
/// * trie hits skipped the sharers' prefix quantization entirely
///   (stats counters);
/// * every request's decoded tokens are bit-exact with an independent
///   `Session` run.
#[test]
fn eight_sharers_dedupe_the_kilotoken_prompt() {
    let model = long_context_model();
    let vocab = model.config().vocab_size;
    let quantizer = profiled_oaken(&model);
    let prompt_len = 1025usize;
    let block_tokens = 128usize;
    let out = 3usize;
    let requests = shared_prompt_requests(8, vocab, prompt_len, prompt_len, out);
    assert!(requests.iter().all(|r| r.prompt == requests[0].prompt));

    // `sharing = false` also drops to a one-token prefill budget: exactly
    // the PR-2 engine's lockstep schedule, whose peak really does hold
    // every private prompt copy simultaneously.
    let run = |sharing: bool| -> (EngineStats, Vec<(u64, Vec<u32>)>) {
        let mut pool = PagedKvPool::for_model(model.config(), Some(quantizer.clone()), 8192, 256);
        pool.set_block_tokens(block_tokens);
        pool.set_prefix_sharing(sharing);
        let mut engine = BatchEngine::new(
            &model,
            pool,
            TokenScheduler::new(8),
            EngineConfig {
                max_batch: 8,
                admission: AdmissionPolicy::PromptOnly,
                record_logits: false,
                prefill_token_budget: if sharing { 64 } else { 1 },
                ..EngineConfig::default()
            },
        );
        let mut reqs = requests.clone().into_iter();
        engine.submit(reqs.next().expect("8 requests"));
        // Run until request 0's prefill is done (its first decode token
        // sampled — at which point every prefix block is sealed but the
        // request is still active, holding the blocks alive), then let
        // the seven sharers arrive.
        while engine.stats().decode_tokens == 0 {
            assert!(engine.step(), "request 0 must make progress");
            assert_accounting_balanced(&engine);
        }
        for r in reqs {
            engine.submit(r);
        }
        let stats = run_checked(&mut engine);
        let outs = engine
            .finished()
            .iter()
            .map(|f| {
                assert!(f.completed, "request {} must complete", f.id);
                (f.id, f.generated.clone())
            })
            .collect();
        (stats, outs)
    };

    let (shared, shared_outs) = run(true);
    let (unshared, unshared_outs) = run(false);

    // The seven sharers matched the full 1024-token prefix and skipped
    // its quantization: 7 × 1024 tokens × 1 layer × 2 kinds.
    let reusable = (prompt_len - 1) / block_tokens * block_tokens;
    assert_eq!(reusable, 1024);
    assert_eq!(
        shared.prefix.trie_hits,
        7 * (reusable / block_tokens) as u64
    );
    assert_eq!(shared.prefix.tokens_reused, 7 * reusable as u64);
    assert_eq!(
        shared.prefix.quant_rows_skipped,
        shared.prefix.tokens_reused * 2
    );
    assert!(shared.prefix.bytes_deduplicated > 0);
    // Reused tokens are never fed: prefill compute drops accordingly.
    assert_eq!(
        shared.prefill_tokens + shared.prefix.tokens_reused,
        unshared.prefill_tokens
    );

    // Prefix storage is deduplicated: the shared run keeps ONE copy of
    // the 1024-token prefix (shared_pages_peak) plus tiny private tails,
    // while the PR-2 baseline's lockstep prefill holds a private copy per
    // concurrent sequence (request 0 retires first, so 7 copies at peak)
    // — the prefix pages consumed collapse by roughly the sharer count.
    assert!(shared.shared_pages_peak > 0);
    let one_prefix_copy = u64::from(shared.shared_pages_peak);
    let unshared_peak = u64::from(unshared.pages_in_use_peak);
    let shared_peak = u64::from(shared.pages_in_use_peak);
    eprintln!(
        "prefix copy {one_prefix_copy} pages | peak shared {shared_peak} vs unshared {unshared_peak}"
    );
    assert!(
        unshared_peak >= one_prefix_copy * 5,
        "7 private copies ({unshared_peak} pages) must dwarf one shared copy ({one_prefix_copy})"
    );
    assert!(
        shared_peak * 2 <= unshared_peak,
        "dedup must collapse peak usage: shared {shared_peak} vs unshared {unshared_peak}"
    );

    // Bit-exactness: engine outputs (shared and unshared) match an
    // independent single-sequence Session run on the same prompt.
    let reference = reference_decode(&model, quantizer.clone(), &requests[0].prompt, out);
    for (id, tokens) in shared_outs.iter().chain(&unshared_outs) {
        assert_eq!(
            tokens, &reference,
            "request {id}: shared decode must match the private Session"
        );
    }
}

/// Eviction of a sharer must not disturb the survivors, and a restarted
/// request re-walks the trie, re-adopting any still-sealed prefix blocks
/// instead of re-quantizing them.
#[test]
fn evicting_a_sharer_preserves_the_survivors() {
    let model = narrow_model(2);
    let vocab = model.config().vocab_size;
    let quantizer = profiled_oaken(&model);
    // 24-token shared prompt over 8-token blocks: 2 shareable blocks.
    let requests = shared_prompt_requests(4, vocab, 24, 24, 30);
    // A pool tight enough that optimistic admission must evict during the
    // long decode phase, but ample for any sequence alone.
    let mut pool = PagedKvPool::for_model(model.config(), Some(quantizer.clone()), 70, 512);
    pool.set_block_tokens(8);
    let mut engine = BatchEngine::new(
        &model,
        pool,
        TokenScheduler::new(4),
        EngineConfig {
            max_batch: 4,
            admission: AdmissionPolicy::PromptOnly,
            record_logits: false,
            prefill_token_budget: 8,
            ..EngineConfig::default()
        },
    );
    for r in &requests {
        engine.submit(r.clone());
    }
    let stats = run_checked(&mut engine);
    assert!(
        stats.preemptions > 0,
        "the tight pool must evict at least one sharer: {stats:?}"
    );
    let reference = reference_decode(&model, quantizer, &requests[0].prompt, 30);
    for f in engine.finished() {
        assert!(f.completed, "request {} must survive eviction", f.id);
        assert_eq!(
            f.generated, reference,
            "request {} diverged after preemption",
            f.id
        );
    }
    assert_eq!(
        engine.pool().free_pages(),
        engine.pool().capacity_pages(),
        "all pages return after the run"
    );
    assert_eq!(engine.pool().trie_blocks(), 0);
}

/// On a shrinking pool, ≥50% prompt overlap admits with strictly fewer
/// stalls than the sharing-disabled baseline (PR 2 behaviour): cache-hot
/// requests reserve only their non-shared pages.
#[test]
fn shared_prompts_stall_strictly_less_on_a_shrinking_pool() {
    let model = narrow_model(2);
    let vocab = model.config().vocab_size;
    let quantizer = profiled_oaken(&model);
    let prompt_len = 64usize;
    let run = |pages: u32, shared_tokens: usize, sharing: bool| -> EngineStats {
        let requests = shared_prompt_requests(8, vocab, prompt_len, shared_tokens, 4);
        let mut pool = PagedKvPool::for_model(model.config(), Some(quantizer.clone()), pages, 256);
        pool.set_block_tokens(16);
        pool.set_prefix_sharing(sharing);
        let mut engine = BatchEngine::new(
            &model,
            pool,
            TokenScheduler::new(4),
            EngineConfig {
                max_batch: 8,
                admission: AdmissionPolicy::FullSequence,
                // Pinned: this test compares admission-stall counts, and
                // SwapToHost deliberately changes admission headroom (free
                // host pages count), which would distort the sharing-on vs
                // sharing-off comparison under the OAKEN_PREEMPT env knob.
                preempt: PreemptPolicy::RestartRecompute,
                record_logits: false,
                prefill_token_budget: 16,
                ..EngineConfig::default()
            },
        );
        // Stagger: request 0 prefills (sealing the prefix blocks) and is
        // still decoding when the other seven arrive to probe the trie.
        let mut reqs = requests.into_iter();
        engine.submit(reqs.next().expect("8 requests"));
        while engine.stats().decode_tokens == 0 && engine.step() {}
        for r in reqs {
            engine.submit(r);
        }
        let stats = run_checked(&mut engine);
        for f in engine.finished() {
            assert!(f.completed, "pool {pages}: request {} must complete", f.id);
        }
        stats
    };

    let mut strictly_fewer_somewhere = false;
    for pages in [260u32, 200, 160] {
        let cold = run(pages, 0, true); // 0% overlap: nothing to share
        let half = run(pages, prompt_len / 2, true); // 50% overlap
        let full = run(pages, prompt_len, true); // 100% overlap
                                                 // PR-2 baselines: the same traces with sharing disabled.
        let half_off = run(pages, prompt_len / 2, false);
        let full_off = run(pages, prompt_len, false);
        eprintln!(
            "pages {pages}: stalls cold {} | half {} (off {}) | full {} (off {})",
            cold.admission_stalls,
            half.admission_stalls,
            half_off.admission_stalls,
            full.admission_stalls,
            full_off.admission_stalls
        );
        assert!(
            half.admission_stalls <= half_off.admission_stalls,
            "pages {pages}: sharing must not stall more at 50% overlap"
        );
        assert!(
            full.admission_stalls <= full_off.admission_stalls,
            "pages {pages}: sharing must not stall more at 100% overlap"
        );
        assert!(
            full.admission_stalls <= cold.admission_stalls,
            "pages {pages}: overlap must not add stalls (full {} vs cold {})",
            full.admission_stalls,
            cold.admission_stalls
        );
        strictly_fewer_somewhere |= half.admission_stalls < half_off.admission_stalls
            && full.admission_stalls < full_off.admission_stalls;
    }
    assert!(
        strictly_fewer_somewhere,
        "at least one shrinking-pool point must show strictly fewer stalls at ≥50% overlap"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random shared-prefix workloads under random chunk budgets: decode
    /// with a trie-shared prefix is logit-bit-exact with fully private
    /// sequences, and the page-ownership invariant holds after every
    /// step.
    #[test]
    fn shared_prefix_decode_is_bit_exact_under_random_schedules(
        n_requests in 2usize..5,
        prompt_len in 17usize..40,
        shared_frac in 0u32..5,
        block_tokens in 4usize..10,
        budget in 1usize..32,
        out in 1usize..5,
        stagger in any::<bool>(),
    ) {
        let model = tiny_model();
        let vocab = model.config().vocab_size;
        let quantizer = profiled_oaken(&model);
        let shared = prompt_len * shared_frac as usize / 4;
        let requests = shared_prompt_requests(n_requests, vocab, prompt_len, shared, out);
        let mut pool = PagedKvPool::for_model(model.config(), Some(quantizer.clone()), 4096, 512);
        pool.set_block_tokens(block_tokens);
        let mut engine = BatchEngine::new(
            &model,
            pool,
            TokenScheduler::new(4),
            EngineConfig {
                max_batch: 4,
                admission: AdmissionPolicy::PromptOnly,
                record_logits: true,
                prefill_token_budget: budget,
                ..EngineConfig::default()
            },
        );
        let mut reqs = requests.clone().into_iter();
        engine.submit(reqs.next().expect("at least two requests"));
        if stagger {
            while engine.stats().retired == 0 && engine.step() {
                assert_accounting_balanced(&engine);
            }
        }
        for r in reqs {
            engine.submit(r);
        }
        run_checked(&mut engine);
        prop_assert_eq!(engine.finished().len(), requests.len());
        for f in engine.finished() {
            prop_assert!(f.completed);
            let req = &requests[f.id as usize];
            let reference = reference_decode(&model, quantizer.clone(), &req.prompt, req.max_new_tokens);
            prop_assert_eq!(&f.generated, &reference, "request {} diverged", f.id);
        }
    }
}

//! Property tests for the serving layer: scheduler conservation laws and
//! trace-simulation sanity under arbitrary request mixes.

use oaken_accel::{AcceleratorSpec, QuantPolicy, SystemModel};
use oaken_model::ModelConfig;
use oaken_serving::{simulate_trace, Request, TokenScheduler};
use proptest::prelude::*;

fn requests(max: usize) -> impl Strategy<Value = Vec<Request>> {
    prop::collection::vec((8usize..2048, 8usize..512), 1..max).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(id, (input_len, output_len))| Request {
                id: id as u64,
                input_len,
                output_len,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every request lands on exactly one core and cores are balanced to
    /// within one request.
    #[test]
    fn generation_assignment_is_balanced(active in 1usize..600, cores in 1usize..300) {
        let s = TokenScheduler::new(cores);
        let a = s.assign_generation(active);
        prop_assert_eq!(a.core_of.len(), active);
        let mut counts = vec![0usize; cores];
        for &c in &a.core_of {
            prop_assert!(c < cores);
            counts[c] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "imbalance: {min}..{max}");
        prop_assert_eq!(s.generation_rounds(active), max);
    }

    /// Admission waves partition the request list exactly.
    #[test]
    fn admission_waves_partition(reqs in requests(64), cap in 1usize..40) {
        let s = TokenScheduler::new(8);
        let waves = s.admission_waves(&reqs, cap);
        let total: usize = waves.iter().map(|w| w.len()).sum();
        prop_assert_eq!(total, reqs.len());
        for w in &waves {
            prop_assert!(w.len() <= cap);
        }
        // Order preserved.
        let flat: Vec<u64> = waves.iter().flat_map(|w| w.iter().map(|r| r.id)).collect();
        let orig: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        prop_assert_eq!(flat, orig);
    }

    /// The trace simulator accounts every output token exactly once and
    /// produces finite positive throughput whenever anything ran.
    #[test]
    fn trace_sim_conserves_tokens(reqs in requests(24), batch in 1usize..16) {
        let m = ModelConfig::llama2_7b();
        let sys = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
        let r = simulate_trace(&sys, &m, &reqs, batch);
        let expected: u64 = reqs.iter().map(|q| q.output_len as u64).sum();
        prop_assert_eq!(r.output_tokens, expected);
        prop_assert!(r.total_time.is_finite() && r.total_time > 0.0);
        prop_assert!(r.gen_throughput > 0.0);
    }

    /// A faster memory system never lowers trace throughput.
    #[test]
    fn more_bandwidth_never_hurts(reqs in requests(16)) {
        let m = ModelConfig::llama2_7b();
        let lpddr = SystemModel::new(AcceleratorSpec::oaken_lpddr(), QuantPolicy::oaken());
        let mut fast_spec = AcceleratorSpec::oaken_lpddr();
        fast_spec.mem.bandwidth *= 2.0;
        let fast = SystemModel::new(fast_spec, QuantPolicy::oaken());
        let slow_t = simulate_trace(&lpddr, &m, &reqs, 8).gen_throughput;
        let fast_t = simulate_trace(&fast, &m, &reqs, 8).gen_throughput;
        prop_assert!(fast_t >= slow_t * 0.999, "{fast_t} < {slow_t}");
    }
}

//! Bit-exactness guard for swap-based preemption: a sequence suspended to
//! the host tier and resumed must produce **bit-identical tokens and
//! logits** to an uninterrupted legacy `Session` run — across random
//! preemption points (driven by pool pressure), shared-prefix sharers
//! among the victims, and both runtime thread counts — while recomputing
//! **zero** prefill tokens (the waste `RestartRecompute` pays).

use oaken_core::{KvQuantizer, OakenConfig};
use oaken_eval::harness::profile_oaken;
use oaken_model::{sample_greedy, Model, ModelConfig, PagedKvPool, QuantizedCache, Session};
use oaken_serving::{
    AdmissionPolicy, BatchEngine, EngineConfig, EngineRequest, EngineStats, PreemptPolicy,
    TokenScheduler,
};
use proptest::prelude::*;
use std::sync::Arc;

fn tiny_model() -> Model {
    Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 7)
}

fn profiled_oaken(model: &Model) -> Arc<dyn KvQuantizer> {
    Arc::new(profile_oaken(model, OakenConfig::default(), 6, 8, 5))
}

/// Greedy reference decode through the legacy single-sequence `Session` —
/// the never-preempted run every engine output is held against.
fn reference_decode(
    model: &Model,
    quantizer: Option<Arc<dyn KvQuantizer>>,
    prompt: &[u32],
    max_new: usize,
) -> (Vec<u32>, Vec<Vec<f32>>) {
    let mut session: Session = match quantizer {
        Some(q) => model.session(Box::new(QuantizedCache::new(q))),
        None => model.session(Box::new(oaken_model::ExactCache::new())),
    };
    // Mirror the engine's env-driven kernel mode (`OAKEN_KERNEL`): the
    // fused engine is bit-exact with a fused Session, not an exact one.
    session.set_kernel_mode(oaken_model::KernelMode::default_mode());
    let mut logits = session.prefill(prompt);
    let mut tokens = Vec::new();
    let mut all_logits = Vec::new();
    for _ in 0..max_new {
        let tok = sample_greedy(&logits);
        tokens.push(tok);
        all_logits.push(logits.clone());
        if tokens.len() == max_new {
            break;
        }
        logits = session.advance(tok);
    }
    (tokens, all_logits)
}

#[allow(clippy::too_many_arguments)]
fn run_swap_engine(
    model: &Model,
    quantizer: Option<Arc<dyn KvQuantizer>>,
    requests: &[(Vec<u32>, usize)],
    max_batch: usize,
    num_pages: u32,
    host_pages: u32,
    block_tokens: usize,
    num_threads: usize,
    num_ranks: usize,
) -> (Vec<oaken_serving::FinishedRequest>, EngineStats) {
    let mut pool = PagedKvPool::for_model(model.config(), quantizer, num_pages, 512);
    pool.set_block_tokens(block_tokens);
    pool.set_host_pages(host_pages);
    let mut engine = BatchEngine::new(
        model,
        pool,
        TokenScheduler::new(4),
        EngineConfig {
            max_batch,
            admission: AdmissionPolicy::PromptOnly,
            preempt: PreemptPolicy::SwapToHost,
            record_logits: true,
            prefill_token_budget: 16,
            num_threads,
            num_ranks,
            ..EngineConfig::default()
        },
    );
    for (id, (prompt, max_new)) in requests.iter().enumerate() {
        engine.submit(EngineRequest::new(id as u64, prompt.clone(), *max_new));
    }
    engine.run();
    let mut fin = engine.finished().to_vec();
    fin.sort_by_key(|f| f.id);
    (fin, engine.stats().clone())
}

/// Checks every *completed* request against an uninterrupted `Session`
/// run. `require_complete` additionally demands that nothing was dropped
/// (fixed-geometry tests); random tight pools may legitimately shed a
/// request whose worst-case one-token bound exceeds even an empty device
/// (the conservative safety drop inherited from the restart engine).
fn assert_matches_reference(
    model: &Model,
    quantizer: &Option<Arc<dyn KvQuantizer>>,
    requests: &[(Vec<u32>, usize)],
    fin: &[oaken_serving::FinishedRequest],
    require_complete: bool,
    ctx: &str,
) {
    for f in fin {
        let (prompt, max_new) = &requests[f.id as usize];
        if !f.completed {
            assert!(
                !require_complete,
                "{ctx}: request {} must complete (prompt {}, max_new {})",
                f.id,
                prompt.len(),
                max_new
            );
            continue;
        }
        let (ref_tokens, ref_logits) = reference_decode(model, quantizer.clone(), prompt, *max_new);
        assert_eq!(
            f.generated, ref_tokens,
            "{ctx}: request {} tokens diverged from the uninterrupted Session",
            f.id
        );
        assert_eq!(f.logits.len(), ref_logits.len(), "{ctx}: logits count");
        for (i, (x, y)) in f.logits.iter().zip(&ref_logits).enumerate() {
            let xb: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
            let yb: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                xb, yb,
                "{ctx}: request {} logits diverged at decode step {i}",
                f.id
            );
        }
    }
}

/// The acceptance test of the two-tier refactor: a pool sized to force
/// preemption, victims that *share trie prefixes*, both thread counts.
/// The swap run must (a) actually swap, (b) recompute zero prefill
/// tokens, (c) stay bit-exact with never-preempted `Session` runs — and
/// the same workload under `RestartRecompute` must pay a nonzero
/// recompute bill.
#[test]
fn swapped_sharers_resume_bit_exactly_with_zero_recompute() {
    let model = tiny_model();
    let quantizer = Some(profiled_oaken(&model));
    // Four requests sharing one 8-token system prompt (two 4-token trie
    // blocks, ~50 pinned pages once sealed) with unique tails and long
    // decodes. The 230-page pool holds roughly two decoding sequences
    // next to the shared blocks: admission overcommits (host headroom),
    // and decode growth preempts *loaded* victims mid-stream while their
    // shared blocks are live — the exact interleaving suspend/resume must
    // survive bit-exactly.
    let shared: Vec<u32> = (0..8).map(|i| 100 + i).collect();
    let requests: Vec<(Vec<u32>, usize)> = (0..4u32)
        .map(|r| {
            let mut p = shared.clone();
            p.extend((0..3).map(|i| (r * 31 + i * 7) % 256));
            (p, 160)
        })
        .collect();
    for threads in [1usize, 4] {
        // Pinned unsharded: the 230-page pool is calibrated so decode
        // growth preempts *loaded* mid-stream victims. Rank-sharded page
        // math shifts which sequence preempts when (still bit-exact, but
        // the victims may freeze before carrying payload), so the
        // payload-size assertions below only hold on this geometry.
        let (fin, stats) = run_swap_engine(
            &model,
            quantizer.clone(),
            &requests,
            4,
            230,
            460,
            4,
            threads,
            1,
        );
        assert!(
            stats.preemptions > 0,
            "{threads} threads: the pool must be tight enough to preempt: {stats:?}"
        );
        assert!(stats.swap_outs > 0, "{threads} threads: {stats:?}");
        assert_eq!(
            stats.swap_outs, stats.swap_ins,
            "{threads} threads: every suspension resumed"
        );
        assert_eq!(
            stats.recomputed_prefill_tokens, 0,
            "{threads} threads: swap must never recompute: {stats:?}"
        );
        // The victims genuinely share prefix storage: concurrent prefills
        // dedup at seal time (or later admissions hit the trie outright).
        assert!(
            stats.prefix.trie_hits + stats.prefix.seal_dedups > 0,
            "victims must share trie prefixes: {stats:?}"
        );
        assert_eq!(stats.resume_restarts, 0, "no resume may wedge: {stats:?}");
        assert!(
            stats.swap_bytes_to_host > 0,
            "mid-decode victims carry real payload: {stats:?}"
        );
        assert_matches_reference(
            &model,
            &quantizer,
            &requests,
            &fin,
            true,
            &format!("{threads} threads"),
        );
    }
    // The restart policy on the identical workload pays recompute.
    let mut pool = PagedKvPool::for_model(model.config(), quantizer.clone(), 230, 512);
    pool.set_block_tokens(4);
    let mut engine = BatchEngine::new(
        &model,
        pool,
        TokenScheduler::new(4),
        EngineConfig {
            max_batch: 4,
            admission: AdmissionPolicy::PromptOnly,
            preempt: PreemptPolicy::RestartRecompute,
            record_logits: false,
            prefill_token_budget: 16,
            ..EngineConfig::default()
        },
    );
    for (id, (prompt, max_new)) in requests.iter().enumerate() {
        engine.submit(EngineRequest::new(id as u64, prompt.clone(), *max_new));
    }
    engine.run();
    let restart = engine.stats();
    assert!(restart.preemptions > 0, "{restart:?}");
    assert!(
        restart.recomputed_prefill_tokens > 0,
        "restart must recompute what swap moves: {restart:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random workloads over tight pools: random request shapes, shared
    /// overlaps, pool/host sizes, and thread counts (1 and 4) drive
    /// preemption at arbitrary points — prefill, decode, multiple times
    /// per request — and every completed output must be bit-identical to
    /// an uninterrupted `Session` run, with zero recomputed prefill
    /// tokens and balanced page accounting.
    #[test]
    fn random_swap_schedules_stay_bit_exact(
        shapes in prop::collection::vec((2usize..10, 4usize..24, 0u32..1000), 2..5),
        shared_len in 0usize..8,
        pages in 72u32..160,
        threads in prop::sample::select(vec![1usize, 4]),
    ) {
        // Host sized so no suspension ever falls back to restart (the
        // fallback path is covered by the engine's unit tests; here the
        // zero-recompute claim must hold unconditionally).
        let host_pages = 2 * pages;
        let model = tiny_model();
        let quantizer = Some(profiled_oaken(&model));
        let shared: Vec<u32> = (0..shared_len as u32).map(|i| 200 + i).collect();
        let requests: Vec<(Vec<u32>, usize)> = shapes
            .iter()
            .map(|&(plen, max_new, salt)| {
                let mut p = shared.clone();
                p.extend((0..plen as u32).map(|i| (salt + i * 13) % 256));
                (p, max_new)
            })
            .collect();
        let (fin, stats) = run_swap_engine(
            &model,
            quantizer.clone(),
            &requests,
            3,
            pages,
            host_pages,
            4,
            threads,
            EngineConfig::default().num_ranks,
        );
        // Zero-recompute holds exactly when every preemption swapped
        // (host never filled: preemptions == swap_outs) and no resume had
        // to be converted back to a restart (the liveness escape hatch on
        // pathologically tight pools, where tiny-block trie pins exceed
        // the device).
        if stats.preemptions == stats.swap_outs && stats.resume_restarts == 0 {
            prop_assert_eq!(
                stats.recomputed_prefill_tokens,
                0,
                "pure-swap schedules must never recompute prefill (stats {:?})",
                stats
            );
        }
        // The hard contract is unconditional: whatever mix of swap,
        // fallback restart, and resume conversion the schedule produced,
        // every completed request is bit-identical to an uninterrupted
        // Session run.
        assert_matches_reference(
            &model,
            &quantizer,
            &requests,
            &fin,
            false,
            &format!("pages {pages}, host {host_pages}, {threads} threads"),
        );
    }
}

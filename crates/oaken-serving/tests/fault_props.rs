//! Chaos property tests for the fault-injection harness: random
//! workloads crossed with random deterministic fault plans, thread
//! counts, preemption policies, and deadlines must never panic, never
//! leak a page, always drive every request to a terminal state, and
//! leave every *surviving* request token- and logit-identical to an
//! uninterrupted legacy `Session` run.

use oaken_core::{KvQuantizer, OakenConfig};
use oaken_eval::harness::profile_oaken;
use oaken_model::{sample_greedy, Model, ModelConfig, PagedKvPool, QuantizedCache, Session};
use oaken_serving::{
    AdmissionPolicy, BatchEngine, EngineConfig, EngineRequest, FaultPlan, PreemptPolicy,
    RequestOutcome, TokenScheduler,
};
use proptest::prelude::*;
use std::sync::Arc;

fn tiny_model() -> Model {
    Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 7)
}

fn profiled_oaken(model: &Model) -> Arc<dyn KvQuantizer> {
    Arc::new(profile_oaken(model, OakenConfig::default(), 6, 8, 5))
}

/// Greedy reference decode through the legacy single-sequence `Session` —
/// the uninterrupted run survivors are compared against.
fn reference_decode(
    model: &Model,
    quantizer: Arc<dyn KvQuantizer>,
    prompt: &[u32],
    max_new: usize,
) -> (Vec<u32>, Vec<Vec<f32>>) {
    let mut session: Session = model.session(Box::new(QuantizedCache::new(quantizer)));
    // Mirror the engine's env-driven kernel mode (`OAKEN_KERNEL`): the
    // fused engine is bit-exact with a fused Session, not an exact one.
    session.set_kernel_mode(oaken_model::KernelMode::default_mode());
    let mut logits = session.prefill(prompt);
    let mut tokens = Vec::new();
    let mut all_logits = Vec::new();
    for _ in 0..max_new {
        let tok = sample_greedy(&logits);
        tokens.push(tok);
        all_logits.push(logits.clone());
        if tokens.len() == max_new {
            break;
        }
        logits = session.advance(tok);
    }
    (tokens, all_logits)
}

fn assert_bit_identical(a: &[Vec<f32>], b: &[Vec<f32>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: logits count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let xb: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb, "{ctx}: logits diverged at decode step {i}");
    }
}

/// Runs the workload under the fault plan, checking the containment
/// contract at every single iteration, and verifies the survivors
/// against uninterrupted references at the end.
#[allow(clippy::too_many_arguments)]
fn run_chaos(
    model: &Model,
    quantizer: Arc<dyn KvQuantizer>,
    requests: &[(Vec<u32>, usize)],
    plan: FaultPlan,
    num_threads: usize,
    preempt: PreemptPolicy,
    max_iterations: Option<u64>,
) -> u64 {
    let mut pool = PagedKvPool::for_model(model.config(), Some(quantizer.clone()), 256, 512);
    pool.set_host_pages(128);
    pool.set_block_tokens(8);
    let mut engine = BatchEngine::new(
        model,
        pool,
        TokenScheduler::new(4),
        EngineConfig {
            max_batch: 4,
            admission: AdmissionPolicy::PromptOnly,
            preempt,
            record_logits: true,
            prefill_token_budget: 8,
            num_threads,
            fault_plan: Some(plan),
            max_iterations,
            ..EngineConfig::default()
        },
    );
    for (id, (prompt, max_new)) in requests.iter().enumerate() {
        engine.submit(EngineRequest::new(id as u64, prompt.clone(), *max_new));
    }
    let mut iters = 0u64;
    while engine.step() {
        iters += 1;
        assert!(iters < 20_000, "engine failed to terminate under faults");
        // The books balance after *every* iteration, on *every* rank
        // shard (one unsharded pool unless OAKEN_RANKS splits it): free
        // + private + shared pages always sum to the shard's capacity,
        // whatever was injected, torn down, retried, or demoted.
        for (r, pool) in engine.rank_pools().iter().enumerate() {
            let acct = pool.page_accounting();
            assert_eq!(
                acct.total(),
                pool.capacity_pages(),
                "rank {r} page accounting leaked at iteration {iters}: {acct:?}"
            );
        }
    }

    // Containment: every request reached exactly one terminal state, and
    // every injected fault was absorbed by the engine rather than
    // escaping as a panic or a wedged sequence.
    assert_eq!(engine.finished().len(), requests.len());
    let stats = engine.stats();
    assert_eq!(stats.faults_absorbed, stats.faults_injected);

    // Nothing residual: every rank shard drained to exactly empty.
    for (r, pool) in engine.rank_pools().iter().enumerate() {
        let acct = pool.page_accounting();
        assert_eq!(
            acct.free,
            pool.capacity_pages(),
            "rank {r} device pages leaked: {acct:?}"
        );
        assert_eq!(pool.host_pages_used(), 0, "rank {r} host pages leaked");
        assert_eq!(pool.active_seqs(), 0);
        assert_eq!(pool.suspended_seqs(), 0);
    }

    // Survivors are bit-exact with uninterrupted Session runs: faults
    // absorbed around them never perturbed their arithmetic.
    for fin in engine.finished() {
        if fin.outcome != RequestOutcome::Finished {
            continue;
        }
        let (prompt, max_new) = &requests[fin.id as usize];
        let (ref_tokens, ref_logits) = reference_decode(model, quantizer.clone(), prompt, *max_new);
        assert_eq!(
            fin.generated, ref_tokens,
            "surviving request {}: tokens differ from the uninterrupted run",
            fin.id
        );
        assert_bit_identical(&fin.logits, &ref_logits, &format!("survivor {}", fin.id));
    }
    stats.faults_injected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The capstone: random workloads x random fault plans x {1, 4}
    /// threads x both preemption policies x optional deadlines.
    #[test]
    fn chaos_random_workloads_survive_random_fault_plans(
        shapes in prop::collection::vec((1usize..10, 1usize..6, 0u32..1000), 1..6),
        seed in any::<u64>(),
        rate in 5u16..150,
        four_threads in any::<bool>(),
        swap in any::<bool>(),
        with_deadline in any::<bool>(),
        deadline_iters in 5u64..60,
    ) {
        let deadline = with_deadline.then_some(deadline_iters);
        let model = tiny_model();
        let quantizer = profiled_oaken(&model);
        let requests: Vec<(Vec<u32>, usize)> = shapes
            .iter()
            .map(|&(plen, max_new, salt)| {
                let prompt = (0..plen as u32).map(|i| (salt + i * 13) % 256).collect();
                (prompt, max_new)
            })
            .collect();
        run_chaos(
            &model,
            quantizer,
            &requests,
            FaultPlan::new(seed).with_rate_permille(rate),
            if four_threads { 4 } else { 1 },
            if swap { PreemptPolicy::SwapToHost } else { PreemptPolicy::RestartRecompute },
            deadline,
        );
    }
}

/// The CI wiring: when `OAKEN_FAULTS` is set this runs the whole chaos
/// contract under the env-seeded schedule (the suite's 4th pass sets it
/// together with `OAKEN_THREADS=4` and `OAKEN_PREEMPT=swap`); unset, it
/// still runs under a fixed seed so the path is always covered.
#[test]
fn env_seeded_fault_schedule_is_contained() {
    let plan = FaultPlan::from_env()
        .unwrap_or_else(|| FaultPlan::new(0xC0FFEE))
        .with_rate_permille(100);
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    let requests: Vec<(Vec<u32>, usize)> = (0..6u32)
        .map(|r| {
            let prompt: Vec<u32> = (0..4 + r % 5).map(|i| (r * 37 + i * 11) % 256).collect();
            (prompt, 3 + (r as usize % 4))
        })
        .collect();
    run_chaos(
        &model,
        quantizer,
        &requests,
        plan,
        oaken_runtime::default_threads(),
        PreemptPolicy::default_policy(),
        None,
    );
}

/// A plan so hostile it is mostly failure — 80% of fallible ops fault,
/// long persistent bursts — must still terminate with balanced books;
/// under it most requests die, which is exactly the graceful-degradation
/// contract (fail requests, never the engine).
#[test]
fn pathological_fault_rate_degrades_gracefully() {
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    let requests: Vec<(Vec<u32>, usize)> = (0..5u32)
        .map(|r| ((0..6).map(|i| (r * 53 + i * 29) % 256).collect(), 4))
        .collect();
    let injected = run_chaos(
        &model,
        quantizer,
        &requests,
        FaultPlan::new(99).with_rate_permille(800),
        2,
        PreemptPolicy::SwapToHost,
        Some(200),
    );
    assert!(injected > 0, "an 80% rate must actually inject");
}

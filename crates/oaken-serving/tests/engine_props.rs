//! Bit-exactness guard for the continuous-batching engine: batched decode
//! over the shared paged pool must be indistinguishable — token for token,
//! logit bit for logit bit — from independent legacy `Session` runs, for
//! any admission/retire interleaving.

use oaken_core::{KvQuantizer, OakenConfig};
use oaken_eval::harness::profile_oaken;
use oaken_model::{sample_greedy, Model, ModelConfig, PagedKvPool, QuantizedCache, Session};
use oaken_serving::{AdmissionPolicy, BatchEngine, EngineConfig, EngineRequest, TokenScheduler};
use proptest::prelude::*;
use std::sync::Arc;

fn tiny_model() -> Model {
    Model::synthetic(ModelConfig::llama2_7b().proxy(2, 32), 7)
}

/// Profiles an Oaken quantizer on the model's *actual* KV distribution via
/// the observer hook (the paper's offline phase, shared with the Table 2
/// harness), so the online thresholds are realistic for these weights.
fn profiled_oaken(model: &Model) -> Arc<dyn KvQuantizer> {
    Arc::new(profile_oaken(model, OakenConfig::default(), 6, 8, 5))
}

/// Greedy reference decode through the legacy single-sequence `Session`.
fn reference_decode(
    model: &Model,
    quantizer: Option<Arc<dyn KvQuantizer>>,
    prompt: &[u32],
    max_new: usize,
) -> (Vec<u32>, Vec<Vec<f32>>) {
    let mut session: Session = match quantizer {
        Some(q) => model.session(Box::new(QuantizedCache::new(q))),
        None => model.session(Box::new(oaken_model::ExactCache::new())),
    };
    // Mirror the engine's env-driven kernel mode (`OAKEN_KERNEL`): the
    // fused engine is bit-exact with a fused Session, not an exact one.
    session.set_kernel_mode(oaken_model::KernelMode::default_mode());
    let mut logits = session.prefill(prompt);
    let mut tokens = Vec::new();
    let mut all_logits = Vec::new();
    for _ in 0..max_new {
        let tok = sample_greedy(&logits);
        tokens.push(tok);
        all_logits.push(logits.clone());
        if tokens.len() == max_new {
            break;
        }
        logits = session.advance(tok);
    }
    (tokens, all_logits)
}

fn assert_bit_identical(a: &[Vec<f32>], b: &[Vec<f32>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: logits count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let xb: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
        let yb: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xb, yb, "{ctx}: logits diverged at decode step {i}");
    }
}

fn run_engine_and_compare(
    model: &Model,
    quantizer: Option<Arc<dyn KvQuantizer>>,
    requests: &[(Vec<u32>, usize)],
    max_batch: usize,
    num_pages: u32,
    admission: AdmissionPolicy,
) {
    let num_ranks = EngineConfig::default().num_ranks;
    run_engine_and_compare_budget(
        model, quantizer, requests, max_batch, num_pages, admission, 16, num_ranks,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_engine_and_compare_budget(
    model: &Model,
    quantizer: Option<Arc<dyn KvQuantizer>>,
    requests: &[(Vec<u32>, usize)],
    max_batch: usize,
    num_pages: u32,
    admission: AdmissionPolicy,
    prefill_token_budget: usize,
    num_ranks: usize,
) {
    let pool = PagedKvPool::for_model(model.config(), quantizer.clone(), num_pages, 512);
    let mut engine = BatchEngine::new(
        model,
        pool,
        TokenScheduler::new(4),
        EngineConfig {
            max_batch,
            admission,
            record_logits: true,
            prefill_token_budget,
            num_ranks,
            ..EngineConfig::default()
        },
    );
    for (id, (prompt, max_new)) in requests.iter().enumerate() {
        engine.submit(EngineRequest::new(id as u64, prompt.clone(), *max_new));
    }
    engine.run();
    assert_eq!(engine.finished().len(), requests.len());
    for fin in engine.finished() {
        let (prompt, max_new) = &requests[fin.id as usize];
        assert!(
            fin.completed,
            "request {} must complete (pool {num_pages} pages)",
            fin.id
        );
        let (ref_tokens, ref_logits) = reference_decode(model, quantizer.clone(), prompt, *max_new);
        assert_eq!(
            fin.generated, ref_tokens,
            "request {}: generated tokens differ from the legacy Session",
            fin.id
        );
        assert_bit_identical(&fin.logits, &ref_logits, &format!("request {}", fin.id));
    }
}

/// The acceptance bar: 8 concurrent sequences through one engine are
/// bit-identical, per sequence, to 8 independent legacy `Session` runs.
#[test]
fn eight_concurrent_sequences_match_eight_sessions_bitwise() {
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    let requests: Vec<(Vec<u32>, usize)> = (0..8u32)
        .map(|r| {
            let prompt: Vec<u32> = (0..4 + r % 5).map(|i| (r * 37 + i * 11) % 256).collect();
            (prompt, 3 + (r as usize % 4))
        })
        .collect();
    run_engine_and_compare(
        &model,
        Some(quantizer),
        &requests,
        8,
        4096,
        AdmissionPolicy::FullSequence,
    );
}

#[test]
fn exact_pool_matches_exact_cache_sessions() {
    let model = tiny_model();
    let requests: Vec<(Vec<u32>, usize)> = (0..4u32)
        .map(|r| ((0..6).map(|i| (r * 53 + i * 29) % 256).collect(), 4))
        .collect();
    run_engine_and_compare(
        &model,
        None,
        &requests,
        4,
        4096,
        AdmissionPolicy::FullSequence,
    );
}

/// Preempted-and-restarted sequences must still match the reference: the
/// restart recomputes the prefix through the same streams.
#[test]
fn preemption_preserves_bit_exactness() {
    let model = tiny_model();
    let quantizer = profiled_oaken(&model);
    let requests: Vec<(Vec<u32>, usize)> = (0..4u32)
        .map(|r| ((0..4).map(|i| (r * 41 + i * 17) % 256).collect(), 40))
        .collect();
    // 70 pages with optimistic admission: decode growth forces eviction
    // (same shape as the engine's unit test, which asserts preemptions).
    // Pinned unsharded: uneven rank splits of the 70-page pool shift the
    // per-shard worst-case bounds enough to shed a request outright
    // (cross-rank page pressure is covered by tp_props).
    run_engine_and_compare_budget(
        &model,
        Some(quantizer),
        &requests,
        4,
        70,
        AdmissionPolicy::PromptOnly,
        16,
        1,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random admission/retire schedules: arbitrary request mixes, batch
    /// limits, prefill-chunk budgets, and pool sizes (large enough that
    /// every request *can* complete) never cross-contaminate sequences.
    #[test]
    fn random_schedules_never_cross_contaminate(
        shapes in prop::collection::vec((1usize..10, 1usize..6, 0u32..1000), 1..6),
        max_batch in 1usize..5,
        optimistic in any::<bool>(),
        budget in 1usize..24,
    ) {
        let model = tiny_model();
        let quantizer = profiled_oaken(&model);
        let requests: Vec<(Vec<u32>, usize)> = shapes
            .iter()
            .map(|&(plen, max_new, salt)| {
                let prompt = (0..plen as u32).map(|i| (salt + i * 13) % 256).collect();
                (prompt, max_new)
            })
            .collect();
        let admission = if optimistic {
            AdmissionPolicy::PromptOnly
        } else {
            AdmissionPolicy::FullSequence
        };
        let num_ranks = EngineConfig::default().num_ranks;
        run_engine_and_compare_budget(
            &model, Some(quantizer), &requests, max_batch, 2048, admission, budget, num_ranks,
        );
    }
}

//! Property tests for the MMU: allocation safety and address-translation
//! laws under arbitrary interleaved workloads.

use oaken_mmu::{MmuSim, PageAllocator, StreamClass, StreamKey};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No page is ever handed out twice while allocated.
    #[test]
    fn allocator_never_double_allocates(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut alloc = PageAllocator::new(32, 4096);
        let mut held = Vec::new();
        let mut seen = HashSet::new();
        for op in ops {
            if op || held.is_empty() {
                if let Ok(p) = alloc.alloc() {
                    prop_assert!(seen.insert(p), "page {p:?} double-allocated");
                    held.push(p);
                }
            } else {
                let p = held.swap_remove(0);
                alloc.free(p).unwrap();
                seen.remove(&p);
            }
        }
        prop_assert_eq!(
            alloc.allocated_pages() as usize,
            held.len(),
            "book-keeping must match"
        );
    }

    /// Streams never overlap in physical memory: every (addr, size) range
    /// of one stream is disjoint from every range of every other stream.
    #[test]
    fn streams_are_physically_disjoint(
        writes in prop::collection::vec((0u32..3, 0u16..3, 1u32..200), 1..120),
    ) {
        let mut mmu = MmuSim::new(256, 512);
        let mut keys = HashSet::new();
        for (request, head, bytes) in writes {
            let key = StreamKey { request, layer: 0, head, class: StreamClass::Dense };
            if mmu.write_token(key, bytes).is_ok() {
                keys.insert(key);
            }
        }
        let mut occupied: Vec<(u64, u64, StreamKey)> = Vec::new();
        for key in &keys {
            let table = mmu.table(key).unwrap();
            for e in table.iter() {
                let start = e.addr.0;
                let end = start + u64::from(e.size);
                for &(s, e2, other) in &occupied {
                    let overlap = start < e2 && s < end;
                    prop_assert!(
                        !overlap,
                        "ranges [{start},{end}) of {key:?} and [{s},{e2}) of {other:?} overlap"
                    );
                }
                occupied.push((start, end, *key));
            }
        }
    }

    /// Burst plans are exact: coalesced ranges cover exactly the written
    /// bytes, in order, without overlap.
    #[test]
    fn burst_plan_partitions_the_stream(
        sizes in prop::collection::vec(1u32..300, 1..80),
    ) {
        let mut mmu = MmuSim::new(512, 1024);
        let key = StreamKey { request: 1, layer: 0, head: 0, class: StreamClass::Sparse };
        let mut total = 0u64;
        for s in &sizes {
            mmu.write_token(key, *s).unwrap();
            total += u64::from(*s);
        }
        let plan = mmu.read_plan(&key, 64);
        prop_assert_eq!(plan.total_bytes, total);
        let burst_sum: u64 = plan.bursts.iter().map(|&(_, len)| len).sum();
        prop_assert_eq!(burst_sum, total);
        // Bursts strictly ordered and non-overlapping.
        for w in plan.bursts.windows(2) {
            prop_assert!(w[0].0 + w[0].1 <= w[1].0);
        }
        // Transactions at least cover the payload.
        prop_assert!(plan.transactions * 64 >= total);
    }

    /// Fragmentation is always in [0, 1) and free restores it to zero for
    /// a fully-retired MMU.
    #[test]
    fn fragmentation_bounded_and_recoverable(
        sizes in prop::collection::vec(1u32..512, 1..60),
    ) {
        let mut mmu = MmuSim::new(256, 512);
        let key = StreamKey { request: 3, layer: 1, head: 2, class: StreamClass::Dense };
        for s in sizes {
            let _ = mmu.write_token(key, s);
        }
        let frag = mmu.internal_fragmentation();
        prop_assert!((0.0..1.0).contains(&frag), "{frag}");
        mmu.free_request(3).unwrap();
        prop_assert_eq!(mmu.internal_fragmentation(), 0.0);
        prop_assert_eq!(mmu.allocator().free_pages(), 256);
    }

    /// A freeze/thaw round trip through the host tier preserves every
    /// stream's semantics for arbitrary multi-stream workloads: same
    /// per-token sizes, same page count, same tail headroom, device and
    /// host occupancy balanced at every point.
    #[test]
    fn swap_roundtrip_preserves_streams(
        writes in prop::collection::vec((0u16..2, 0u16..3, 1u32..400), 1..80),
    ) {
        let mut mmu = MmuSim::new(256, 512);
        mmu.attach_host_tier(256);
        let mut keys = std::collections::HashSet::new();
        for &(layer, head, bytes) in &writes {
            let key = StreamKey { request: 9, layer, head, class: StreamClass::Dense };
            mmu.write_token(key, bytes).unwrap();
            keys.insert(key);
        }
        let pages_before = mmu.request_pages(9);
        let bytes_before = mmu.request_bytes(9);
        let tails_before: Vec<(StreamKey, usize)> =
            keys.iter().map(|k| (*k, mmu.tail_free(k))).collect();
        let sizes_before: Vec<(StreamKey, Vec<u32>)> = keys
            .iter()
            .map(|k| (*k, mmu.table(k).unwrap().iter().map(|e| e.size).collect()))
            .collect();

        let out = mmu.swap_out_request(9).unwrap();
        prop_assert_eq!(out.pages, pages_before);
        prop_assert_eq!(out.bytes, bytes_before);
        prop_assert_eq!(mmu.allocator().free_pages(), 256);
        prop_assert_eq!(mmu.host_tier().unwrap().used_pages(), pages_before);

        let back = mmu.swap_in_request(9).unwrap();
        prop_assert_eq!(back.pages, pages_before, "no-CoW replay is exact");
        prop_assert_eq!(back.bytes, bytes_before);
        prop_assert_eq!(mmu.host_tier().unwrap().used_pages(), 0);
        prop_assert_eq!(mmu.request_pages(9), pages_before);
        prop_assert_eq!(mmu.request_bytes(9), bytes_before);
        for (k, tail) in tails_before {
            prop_assert_eq!(mmu.tail_free(&k), tail, "tail headroom of {:?}", k);
        }
        for (k, sizes) in sizes_before {
            let now: Vec<u32> = mmu.table(&k).unwrap().iter().map(|e| e.size).collect();
            prop_assert_eq!(now, sizes, "per-token sizes of {:?}", k);
        }
        mmu.free_request(9).unwrap();
        prop_assert_eq!(mmu.allocator().free_pages(), 256);
    }
}

//! Management tables: per-token physical addresses and transfer sizes
//! (Figure 10's "Dense Management Table" and "Sparse Management Table").

use crate::PhysAddr;

/// One table row: where a token's data starts and how many bytes to
/// transfer. Dense streams have constant sizes; sparse streams vary per
//  token with the outlier count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableEntry {
    /// Physical start address.
    pub addr: PhysAddr,
    /// Transfer size in bytes.
    pub size: u32,
}

/// The per-stream management table: one entry per cached token, in token
/// order, "considering up to the maximum sequence length per attention
/// head" (§5.2).
#[derive(Debug, Clone, Default)]
pub struct StreamTable {
    entries: Vec<TableEntry>,
}

impl StreamTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the entry for a newly written token.
    pub fn push(&mut self, entry: TableEntry) {
        self.entries.push(entry);
    }

    /// Number of cached tokens.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stream has no tokens.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry for token `t`.
    pub fn get(&self, t: usize) -> Option<&TableEntry> {
        self.entries.get(t)
    }

    /// Iterates entries in token order — the read plan for a full-history
    /// generation-phase fetch.
    pub fn iter(&self) -> impl Iterator<Item = &TableEntry> {
        self.entries.iter()
    }

    /// Total bytes the stream occupies.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.size)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_tracks_tokens_in_order() {
        let mut t = StreamTable::new();
        assert!(t.is_empty());
        t.push(TableEntry {
            addr: PhysAddr(0),
            size: 32,
        });
        t.push(TableEntry {
            addr: PhysAddr(32),
            size: 40,
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1).unwrap().size, 40);
        assert_eq!(t.total_bytes(), 72);
        let addrs: Vec<u64> = t.iter().map(|e| e.addr.0).collect();
        assert_eq!(addrs, vec![0, 32]);
    }
}

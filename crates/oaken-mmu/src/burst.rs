//! Burst planning: coalescing per-token reads into long contiguous memory
//! transactions (§5.2 challenge 2, "read-write granularity and order
//! determination").
//!
//! Because the MMU writes each head's KV history sequentially, the read
//! plan for a generation-phase attention fetch is mostly contiguous; the
//! planner merges adjacent ranges and reports how efficiently the resulting
//! bursts use the memory bus.

use crate::table::TableEntry;

/// The result of coalescing a read plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurstPlan {
    /// Coalesced `(start_address, length)` bursts in issue order.
    pub bursts: Vec<(u64, u64)>,
    /// Total payload bytes.
    pub total_bytes: u64,
    /// Bus transactions needed at the given transaction granularity.
    pub transactions: u64,
}

impl BurstPlan {
    /// Mean burst length in bytes (0 for an empty plan).
    pub fn mean_burst(&self) -> f64 {
        if self.bursts.is_empty() {
            0.0
        } else {
            self.total_bytes as f64 / self.bursts.len() as f64
        }
    }

    /// Bus efficiency: payload bytes over bytes actually moved
    /// (`transactions × granularity`). 1.0 means every transaction is full.
    pub fn efficiency(&self, granularity: u64) -> f64 {
        if self.transactions == 0 {
            return 1.0;
        }
        self.total_bytes as f64 / (self.transactions * granularity) as f64
    }
}

/// Coalesces token-ordered table entries into bursts and counts bus
/// transactions of `granularity` bytes (64 B models a DRAM burst).
///
/// # Panics
///
/// Panics if `granularity` is zero.
pub fn plan_bursts<'a>(
    entries: impl Iterator<Item = &'a TableEntry>,
    granularity: u64,
) -> BurstPlan {
    assert!(granularity > 0, "transaction granularity must be positive");
    let mut bursts: Vec<(u64, u64)> = Vec::new();
    let mut total = 0u64;
    for e in entries {
        let start = e.addr.0;
        let len = u64::from(e.size);
        if len == 0 {
            continue;
        }
        total += len;
        match bursts.last_mut() {
            Some((bstart, blen)) if *bstart + *blen == start => *blen += len,
            _ => bursts.push((start, len)),
        }
    }
    let transactions = bursts
        .iter()
        .map(|&(start, len)| {
            let first = start / granularity;
            let last = (start + len - 1) / granularity;
            last - first + 1
        })
        .sum();
    BurstPlan {
        bursts,
        total_bytes: total,
        transactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhysAddr;

    fn entry(addr: u64, size: u32) -> TableEntry {
        TableEntry {
            addr: PhysAddr(addr),
            size,
        }
    }

    #[test]
    fn contiguous_entries_coalesce_to_one_burst() {
        let es = [entry(0, 64), entry(64, 64), entry(128, 64)];
        let plan = plan_bursts(es.iter(), 64);
        assert_eq!(plan.bursts, vec![(0, 192)]);
        assert_eq!(plan.transactions, 3);
        assert_eq!(plan.efficiency(64), 1.0);
        assert_eq!(plan.mean_burst(), 192.0);
    }

    #[test]
    fn gaps_split_bursts() {
        let es = [entry(0, 64), entry(256, 64)];
        let plan = plan_bursts(es.iter(), 64);
        assert_eq!(plan.bursts.len(), 2);
        assert_eq!(plan.total_bytes, 128);
    }

    #[test]
    fn small_scattered_reads_waste_bus() {
        // 8-byte reads scattered across distinct 64B lines: efficiency 1/8.
        let es: Vec<TableEntry> = (0..8).map(|i| entry(i * 640, 8)).collect();
        let plan = plan_bursts(es.iter(), 64);
        assert_eq!(plan.transactions, 8);
        assert!((plan.efficiency(64) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn unaligned_burst_spans_extra_transaction() {
        // 64 bytes starting at offset 32 touches two 64B lines.
        let plan = plan_bursts([entry(32, 64)].iter(), 64);
        assert_eq!(plan.transactions, 2);
    }

    #[test]
    fn empty_plan_is_benign() {
        let plan = plan_bursts([].iter(), 64);
        assert_eq!(plan.total_bytes, 0);
        assert_eq!(plan.mean_burst(), 0.0);
        assert_eq!(plan.efficiency(64), 1.0);
    }

    #[test]
    fn zero_size_entries_skipped() {
        let plan = plan_bursts([entry(0, 0), entry(0, 64)].iter(), 64);
        assert_eq!(plan.bursts, vec![(0, 64)]);
    }
}

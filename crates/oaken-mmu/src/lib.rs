//! Functional model of Oaken's memory management unit (paper §5.2,
//! Figure 10).
//!
//! The MMU manages the quantized KV cache in device memory at *page*
//! granularity, with two management tables per stream:
//!
//! * the **dense table** holds fixed-size transfer entries (the packed
//!   4-bit dense matrix has a predictable per-token size);
//! * the **sparse table** holds variable-size entries (the COO outlier
//!   stream length changes token to token), which is why transfer sizes are
//!   recorded per token.
//!
//! Both map a single virtual address space onto physical pages, and the
//! write layout implements the paper's burst-order rule: key-value vectors
//! are split per attention head and appended *sequentially* to that head's
//! pages, so reading the whole history of one head during generation is a
//! stream of long contiguous bursts.
//!
//! The model is functional rather than cycle-accurate: it tracks page
//! allocation, address translation, per-token transfer sizes, burst
//! coalescing, and fragmentation — the quantities the performance simulator
//! and the Figure 11/13 capacity arguments consume.
//!
//! Pages are **refcounted** ([`PageAllocator::retain`]/[`release`]), which
//! is what makes cross-sequence prefix sharing real at the physical level:
//! a prefix-cache hit retains a whole request's pages
//! ([`MmuSim::retain_request`]), copy-on-write forks share history pages
//! until the next write ([`MmuSim::fork_stream`]), and a departing sharer
//! frees pages only when it was the last owner. The serving property tests
//! re-check the resulting ownership balance (free + private + shared =
//! capacity) after every engine step.
//!
//! The device tier is optionally backed by a **host swap tier**
//! ([`swap::SwapPool`], attached via [`MmuSim::attach_host_tier`]): a
//! request's page table can be frozen to host
//! ([`MmuSim::swap_out_request`]) — device pages free, host pages charge,
//! transfer bytes are accounted — and later rehydrated
//! ([`MmuSim::swap_in_request`]) onto fresh pages with identical
//! per-token sizes and tail headroom. This is what turns the serving
//! engine's preemption from evict-and-recompute into suspend-and-resume;
//! quantization makes the moved bytes 3-4× cheaper than FP16 pages.
//!
//! Under the parallel runtime the MMU is deliberately a **single writer**:
//! quantization fans out across worker threads, but every
//! [`MmuSim::write_token`] happens on the calling thread in the serial
//! item order, so physical page assignment is bit-reproducible for any
//! thread count.
//!
//! [`release`]: PageAllocator::release

pub mod alloc;
pub mod burst;
pub mod fault;
pub mod stream;
pub mod swap;
pub mod table;

pub use alloc::{AllocError, PageAllocator, PageId};
pub use burst::{plan_bursts, BurstPlan};
pub use fault::{FaultInjector, FaultKind, FaultOp, FaultPlan, FaultStats};
pub use stream::{MmuSim, StreamClass, StreamKey, WriteReceipt};
pub use swap::{
    size_checksum, Residency, StreamPayload, SwapError, SwapPool, SwapReceipt, SwapStats,
    TransferPayload,
};
pub use table::{StreamTable, TableEntry};

/// Physical byte address in the device memory's single address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Byte offset addition.
    pub fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

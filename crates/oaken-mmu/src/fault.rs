//! Deterministic fault injection for the memory hierarchy.
//!
//! A [`FaultPlan`] is a *seeded schedule* of injectable faults, not a
//! random one: whether attempt `n` of operation `op` fails is a pure
//! function of `(seed, op, n)`. Two runs with the same plan over the
//! same logical operation sequence inject the identical faults — which
//! is what lets the chaos property tests replay a failing case, and what
//! keeps the engine's degradation paths (retry, backoff, demotion)
//! bit-reproducible at every thread count: callers poll faults at the
//! *pre-check boundary* of each operation, on the single MMU-writer
//! thread, in serial item order.
//!
//! Faults come in two severities, chosen by the same hash:
//!
//! * [`FaultKind::Transient`] — this one attempt fails; the next attempt
//!   of the same operation polls a fresh coin (retry-able);
//! * [`FaultKind::Persistent`] — the operation keeps failing for a burst
//!   of consecutive polls (the plan's `burst` length), modelling a stuck
//!   transfer engine or an exhausted tier that will not recover soon —
//!   retries are futile and the caller must degrade.
//!
//! The hooks are **zero-cost when disabled**: with no plan installed the
//! poll is a single `Option` discriminant check and the engine's output
//! is bit-identical to a build without the feature.

use std::fmt;

/// Injectable operation classes, one attempt-counter stream each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Device page allocation on the append path.
    DeviceAlloc,
    /// Host page allocation when a suspend charges the swap tier.
    HostAlloc,
    /// Device → host transfer during a suspend.
    SwapOut,
    /// Host → device transfer during a resume.
    SwapIn,
}

impl FaultOp {
    /// All operation classes, for stats iteration.
    pub const ALL: [FaultOp; 4] = [
        FaultOp::DeviceAlloc,
        FaultOp::HostAlloc,
        FaultOp::SwapOut,
        FaultOp::SwapIn,
    ];

    fn index(self) -> usize {
        match self {
            FaultOp::DeviceAlloc => 0,
            FaultOp::HostAlloc => 1,
            FaultOp::SwapOut => 2,
            FaultOp::SwapIn => 3,
        }
    }

    /// Per-op salt folded into the hash so the four attempt streams are
    /// independent.
    fn salt(self) -> u64 {
        match self {
            FaultOp::DeviceAlloc => 0x0DE5_1CE0,
            FaultOp::HostAlloc => 0x0057_A110,
            FaultOp::SwapOut => 0x5A00_0007,
            FaultOp::SwapIn => 0x5A00_0001,
        }
    }
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultOp::DeviceAlloc => "device-alloc",
            FaultOp::HostAlloc => "host-alloc",
            FaultOp::SwapOut => "swap-out",
            FaultOp::SwapIn => "swap-in",
        };
        f.write_str(s)
    }
}

/// Severity of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// One attempt fails; an immediate retry polls a fresh coin.
    Transient,
    /// The operation fails for a burst of consecutive polls; retrying
    /// within the burst is futile and callers should degrade.
    Persistent,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Transient => "transient",
            FaultKind::Persistent => "persistent",
        })
    }
}

/// A deterministic, seeded fault schedule (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the schedule; same seed, same faults.
    pub seed: u64,
    /// Injection probability per eligible operation, in permille
    /// (`25` = 2.5% of polls fault).
    pub rate_permille: u16,
    /// Polls a persistent fault keeps failing for (>= 1).
    pub burst: u8,
}

impl FaultPlan {
    /// Default injection rate: 2.5% of polled operations fault.
    pub const DEFAULT_RATE_PERMILLE: u16 = 25;
    /// Default persistent-burst length.
    pub const DEFAULT_BURST: u8 = 3;

    /// A plan with the default rate and burst length.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rate_permille: Self::DEFAULT_RATE_PERMILLE,
            burst: Self::DEFAULT_BURST,
        }
    }

    /// Same plan with a different injection rate (clamped to 1000‰).
    pub fn with_rate_permille(mut self, rate: u16) -> Self {
        self.rate_permille = rate.min(1000);
        self
    }

    /// Reads the process-wide `OAKEN_FAULTS` knob: a decimal seed selects
    /// a default-rate plan, anything else (or unset) selects no plan.
    /// This is the CI hook that runs the whole suite under injected
    /// faults; nothing in the library consults it implicitly — engines
    /// only inject when a plan is passed in explicitly.
    pub fn from_env() -> Option<Self> {
        let v = std::env::var("OAKEN_FAULTS").ok()?;
        v.trim().parse::<u64>().ok().map(Self::new)
    }
}

/// Counters over injected faults (one [`FaultInjector`]'s lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total faults injected (transient + every poll of a burst).
    pub injected: u64,
    /// Transient faults injected.
    pub transient: u64,
    /// Persistent-burst polls failed (each burst counts `burst` times).
    pub persistent: u64,
    /// Injections per operation class, indexed by [`FaultOp::ALL`] order.
    pub by_op: [u64; 4],
}

/// Stateful evaluator of a [`FaultPlan`]: per-op attempt counters plus
/// the remaining length of an in-flight persistent burst.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    attempts: [u64; 4],
    burst_left: [u8; 4],
    stats: FaultStats,
}

/// `splitmix64` finalizer — a well-mixed 64-bit hash of the input.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Creates an injector at the start of `plan`'s schedule.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            attempts: [0; 4],
            burst_left: [0; 4],
            stats: FaultStats::default(),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Polls the schedule for one attempt of `op`: `None` means the
    /// operation proceeds, `Some(kind)` means the caller must fail it
    /// *without mutating any state* (injection sites sit at pre-check
    /// boundaries, so a faulted operation is a no-op).
    pub fn poll(&mut self, op: FaultOp) -> Option<FaultKind> {
        let i = op.index();
        if self.burst_left[i] > 0 {
            self.burst_left[i] -= 1;
            self.record(op, FaultKind::Persistent);
            return Some(FaultKind::Persistent);
        }
        let n = self.attempts[i];
        self.attempts[i] += 1;
        let h = mix(self.plan.seed ^ op.salt().wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (n << 8));
        if (h % 1000) as u16 >= self.plan.rate_permille {
            return None;
        }
        let kind = if (h >> 32) & 1 == 0 {
            FaultKind::Transient
        } else {
            // The current poll is the first failure of the burst.
            self.burst_left[i] = self.plan.burst.max(1) - 1;
            FaultKind::Persistent
        };
        self.record(op, kind);
        Some(kind)
    }

    fn record(&mut self, op: FaultOp, kind: FaultKind) {
        self.stats.injected += 1;
        self.stats.by_op[op.index()] += 1;
        match kind {
            FaultKind::Transient => self.stats.transient += 1,
            FaultKind::Persistent => self.stats.persistent += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let mut a = FaultInjector::new(FaultPlan::new(7));
        let mut b = FaultInjector::new(FaultPlan::new(7));
        for i in 0..4000 {
            let op = FaultOp::ALL[i % 4];
            assert_eq!(a.poll(op), b.poll(op), "attempt {i} diverged");
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn rate_is_roughly_honored() {
        let mut inj = FaultInjector::new(FaultPlan::new(11).with_rate_permille(100));
        let mut injected = 0u64;
        for _ in 0..10_000 {
            if inj.poll(FaultOp::DeviceAlloc).is_some() {
                injected += 1;
            }
        }
        // 10% nominal, persistent bursts push the realized rate up a bit.
        assert!(
            (500..3000).contains(&injected),
            "10k polls at 100 permille injected {injected}"
        );
        assert_eq!(inj.stats().injected, injected);
    }

    #[test]
    fn persistent_bursts_fail_consecutively() {
        let plan = FaultPlan::new(3).with_rate_permille(200);
        let mut inj = FaultInjector::new(plan);
        for _ in 0..100_000 {
            if inj.poll(FaultOp::SwapIn) == Some(FaultKind::Persistent) {
                // The remaining polls of the burst must all fail.
                for j in 1..plan.burst {
                    assert_eq!(
                        inj.poll(FaultOp::SwapIn),
                        Some(FaultKind::Persistent),
                        "burst poll {j} did not fail"
                    );
                }
                return;
            }
        }
        panic!("no persistent fault in 100k polls at 20%");
    }

    #[test]
    fn op_streams_are_independent() {
        let plan = FaultPlan::new(5).with_rate_permille(500);
        let mut solo = FaultInjector::new(plan);
        let solo_seq: Vec<_> = (0..200).map(|_| solo.poll(FaultOp::DeviceAlloc)).collect();
        // Interleaving other ops must not perturb DeviceAlloc's stream.
        let mut mixed = FaultInjector::new(plan);
        let mixed_seq: Vec<_> = (0..200)
            .map(|_| {
                mixed.poll(FaultOp::HostAlloc);
                mixed.poll(FaultOp::SwapOut);
                mixed.poll(FaultOp::DeviceAlloc)
            })
            .collect();
        assert_eq!(solo_seq, mixed_seq);
    }

    #[test]
    fn env_knob_parses_seed() {
        // Avoid touching the process env (tests run threaded): exercise
        // the parse contract through a plan round-trip instead.
        let p = FaultPlan::new(42);
        assert_eq!(p.rate_permille, FaultPlan::DEFAULT_RATE_PERMILLE);
        assert_eq!(p.burst, FaultPlan::DEFAULT_BURST);
        assert_eq!(p.with_rate_permille(2000).rate_permille, 1000);
    }
}

//! The host tier of the two-level KV memory hierarchy: a swap pool that
//! device pages can be *frozen* into and *thawed* back from.
//!
//! Oaken's quantized KV pages are 3-4× smaller than their FP16
//! equivalents, which is exactly what makes swap-based preemption cheap
//! enough to beat evict-and-recompute: moving a sequence's cache to host
//! memory transfers a fraction of the bytes a restart would re-derive
//! through the whole model. The KV-management literature (the tensor-
//! buffer-to-memory-hierarchy and system-aware KV-optimization surveys)
//! identifies this device/host tiering as the production alternative to
//! vLLM's recompute preemption; the two techniques compose, and the
//! serving engine exposes both as [`PreemptPolicy`] choices.
//!
//! The model here is functional, like the rest of the MMU: the host tier
//! tracks page occupancy and transfer bytes (the quantities the serving
//! stats and the preemption benchmark report), while the payload itself is
//! carried by the pool's quantizer streams, which are retained verbatim
//! across a suspend — so a thawed sequence is bit-identical by
//! construction, and the swap machinery only has to keep the *accounting*
//! exact.
//!
//! # Residency state machine
//!
//! ```text
//!            swap_out (begin)          swap_out (complete)
//!   Device ───────────────────▶ InFlight ───────────────────▶ Host
//!      ▲                                                        │
//!      │            swap_in (complete)       swap_in (begin)    │
//!      └──────────────────────── InFlight ◀──────────────────────┘
//! ```
//!
//! Transfers in this functional model are synchronous, so an observer only
//! ever sees `Device` (live streams) or `Host` (frozen); the `InFlight`
//! state exists so an asynchronous transfer engine can be dropped in
//! without changing the contract.
//!
//! [`PreemptPolicy`]: ../../oaken_serving/engine/enum.PreemptPolicy.html

use crate::stream::StreamKey;
use std::collections::HashMap;
use std::fmt;

/// Where a request's pages currently live in the device/host hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Pages are resident in device memory (live streams).
    Device,
    /// Pages are frozen in the host tier.
    Host,
    /// Pages are mid-transfer between the tiers.
    InFlight,
}

/// Swap failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapError {
    /// The MMU has no host tier attached (capacity 0 still counts as a
    /// tier; this means [`MmuSim::attach_host_tier`] was never called).
    ///
    /// [`MmuSim::attach_host_tier`]: crate::MmuSim::attach_host_tier
    NoHostTier,
    /// The host tier cannot hold the request's pages.
    OutOfHostPages {
        /// Pages the swap-out needs.
        needed: u32,
        /// Host pages currently free.
        free: u32,
    },
    /// Device memory cannot hold the thawed request.
    OutOfDevicePages {
        /// Pages the swap-in needs.
        needed: u32,
        /// Device pages currently free.
        free: u32,
    },
    /// The request is already frozen to host.
    AlreadyFrozen {
        /// The offending request.
        request: u32,
    },
    /// The request has no frozen entry to thaw.
    NotFrozen {
        /// The offending request.
        request: u32,
    },
    /// The request owns pages shared with another owner (refcount ≥ 2);
    /// only exclusively owned pages can move tiers.
    SharedPages {
        /// The offending request.
        request: u32,
    },
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::NoHostTier => write!(f, "no host tier attached"),
            SwapError::OutOfHostPages { needed, free } => {
                write!(f, "host tier full: need {needed} pages, {free} free")
            }
            SwapError::OutOfDevicePages { needed, free } => {
                write!(
                    f,
                    "device full on swap-in: need {needed} pages, {free} free"
                )
            }
            SwapError::AlreadyFrozen { request } => {
                write!(f, "request {request} is already frozen to host")
            }
            SwapError::NotFrozen { request } => {
                write!(f, "request {request} has no frozen entry")
            }
            SwapError::SharedPages { request } => {
                write!(
                    f,
                    "request {request} owns shared pages; only private pages can swap"
                )
            }
        }
    }
}

impl std::error::Error for SwapError {}

/// Result of one tier move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwapReceipt {
    /// Pages moved.
    pub pages: u32,
    /// Payload bytes moved (the modeled transfer size — encoded dense +
    /// sparse bytes, not page-rounded).
    pub bytes: u64,
}

impl SwapReceipt {
    /// Component-wise sum (a whole sequence swaps several MMU requests:
    /// its tail plus its pending prompt blocks).
    pub fn merge(&mut self, other: SwapReceipt) {
        self.pages += other.pages;
        self.bytes += other.bytes;
    }
}

/// Cumulative transfer counters of one host tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwapStats {
    /// Completed swap-outs (requests frozen).
    pub swap_outs: u64,
    /// Completed swap-ins (requests thawed).
    pub swap_ins: u64,
    /// Pages moved device → host.
    pub pages_to_host: u64,
    /// Pages moved host → device.
    pub pages_to_device: u64,
    /// Payload bytes moved device → host.
    pub bytes_to_host: u64,
    /// Payload bytes moved host → device.
    pub bytes_to_device: u64,
}

/// One frozen stream: its key plus the per-token payload sizes needed to
/// rebuild its management table (and page layout) bit-compatibly on thaw.
#[derive(Debug, Clone)]
pub(crate) struct FrozenStream {
    pub(crate) key: StreamKey,
    pub(crate) sizes: Vec<u32>,
}

/// A request frozen to host: its streams in deterministic key order, the
/// host pages it occupies, and its residency state.
#[derive(Debug)]
pub(crate) struct FrozenRequest {
    pub(crate) streams: Vec<FrozenStream>,
    pub(crate) pages: u32,
    pub(crate) bytes: u64,
    pub(crate) state: Residency,
}

/// The host tier: page-granular capacity accounting over frozen requests.
///
/// The pool never stores payload bytes here — the functional model keeps
/// those in the quantizer streams — so the swap pool's job is exact
/// occupancy and transfer accounting, plus the per-request residency
/// state machine.
#[derive(Debug)]
pub struct SwapPool {
    capacity: u32,
    used: u32,
    pub(crate) frozen: HashMap<u32, FrozenRequest>,
    stats: SwapStats,
}

impl SwapPool {
    /// Creates a host tier of `capacity` pages (page size is inherited
    /// from the device allocator it is attached to).
    pub fn new(capacity: u32) -> Self {
        Self {
            capacity,
            used: 0,
            frozen: HashMap::new(),
            stats: SwapStats::default(),
        }
    }

    /// Total host pages.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Host pages currently occupied by frozen requests.
    pub fn used_pages(&self) -> u32 {
        self.used
    }

    /// Host pages currently free.
    pub fn free_pages(&self) -> u32 {
        self.capacity - self.used
    }

    /// Requests currently frozen.
    pub fn frozen_requests(&self) -> usize {
        self.frozen.len()
    }

    /// Whether `request` is frozen (or mid-transfer).
    pub fn is_frozen(&self, request: u32) -> bool {
        self.frozen.contains_key(&request)
    }

    /// Residency of a *frozen* request (`None` when the host tier holds no
    /// entry for it; the MMU-level [`residency`](crate::MmuSim::residency)
    /// resolves live streams to [`Residency::Device`]).
    pub fn residency(&self, request: u32) -> Option<Residency> {
        self.frozen.get(&request).map(|f| f.state)
    }

    /// Host pages a frozen request occupies (0 for unknown requests).
    pub fn frozen_pages(&self, request: u32) -> u32 {
        self.frozen.get(&request).map_or(0, |f| f.pages)
    }

    /// Payload bytes a frozen request holds (0 for unknown requests).
    pub fn frozen_bytes(&self, request: u32) -> u64 {
        self.frozen.get(&request).map_or(0, |f| f.bytes)
    }

    /// Cumulative transfer counters.
    pub fn stats(&self) -> SwapStats {
        self.stats
    }

    /// Carries cumulative counters over from a replaced tier (a resize
    /// must not silently zero "cumulative" statistics).
    pub(crate) fn restore_stats(&mut self, stats: SwapStats) {
        self.stats = stats;
    }

    /// Admits a frozen request into the host tier (swap-out completion).
    pub(crate) fn freeze(&mut self, request: u32, entry: FrozenRequest) {
        self.used += entry.pages;
        self.stats.swap_outs += 1;
        self.stats.pages_to_host += u64::from(entry.pages);
        self.stats.bytes_to_host += entry.bytes;
        let prev = self.frozen.insert(request, entry);
        debug_assert!(prev.is_none(), "freeze checked AlreadyFrozen");
    }

    /// Removes a frozen request (swap-in completion or discard). `moved`
    /// says whether the removal transfers bytes back to the device (a
    /// thaw) or drops them (a retired suspended request).
    pub(crate) fn thaw(&mut self, request: u32, moved: bool) -> Option<FrozenRequest> {
        let entry = self.frozen.remove(&request)?;
        self.used -= entry.pages;
        if moved {
            self.stats.swap_ins += 1;
            self.stats.pages_to_device += u64::from(entry.pages);
            self.stats.bytes_to_device += entry.bytes;
        }
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamClass;

    fn entry(pages: u32, bytes: u64) -> FrozenRequest {
        FrozenRequest {
            streams: vec![FrozenStream {
                key: StreamKey {
                    request: 1,
                    layer: 0,
                    head: 0,
                    class: StreamClass::Dense,
                },
                sizes: vec![bytes as u32],
            }],
            pages,
            bytes,
            state: Residency::Host,
        }
    }

    #[test]
    fn occupancy_and_stats_track_freeze_thaw() {
        let mut pool = SwapPool::new(8);
        assert_eq!(pool.free_pages(), 8);
        pool.freeze(1, entry(3, 100));
        assert_eq!(pool.used_pages(), 3);
        assert_eq!(pool.frozen_pages(1), 3);
        assert_eq!(pool.frozen_bytes(1), 100);
        assert_eq!(pool.residency(1), Some(Residency::Host));
        assert!(pool.is_frozen(1));
        assert_eq!(pool.frozen_requests(), 1);

        let thawed = pool.thaw(1, true).expect("frozen");
        assert_eq!(thawed.pages, 3);
        assert_eq!(pool.used_pages(), 0);
        assert!(pool.thaw(1, true).is_none(), "double thaw");

        let s = pool.stats();
        assert_eq!(s.swap_outs, 1);
        assert_eq!(s.swap_ins, 1);
        assert_eq!(s.pages_to_host, 3);
        assert_eq!(s.pages_to_device, 3);
        assert_eq!(s.bytes_to_host, 100);
        assert_eq!(s.bytes_to_device, 100);
    }

    #[test]
    fn discard_drops_bytes_without_counting_a_swap_in() {
        let mut pool = SwapPool::new(4);
        pool.freeze(2, entry(2, 50));
        pool.thaw(2, false).expect("frozen");
        let s = pool.stats();
        assert_eq!(s.swap_outs, 1);
        assert_eq!(s.swap_ins, 0);
        assert_eq!(s.bytes_to_device, 0);
        assert_eq!(pool.used_pages(), 0);
    }

    #[test]
    fn receipts_merge_componentwise() {
        let mut r = SwapReceipt {
            pages: 1,
            bytes: 10,
        };
        r.merge(SwapReceipt { pages: 2, bytes: 5 });
        assert_eq!(
            r,
            SwapReceipt {
                pages: 3,
                bytes: 15
            }
        );
    }
}

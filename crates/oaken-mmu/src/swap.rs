//! The host tier of the two-level KV memory hierarchy: a swap pool that
//! device pages can be *frozen* into and *thawed* back from.
//!
//! Oaken's quantized KV pages are 3-4× smaller than their FP16
//! equivalents, which is exactly what makes swap-based preemption cheap
//! enough to beat evict-and-recompute: moving a sequence's cache to host
//! memory transfers a fraction of the bytes a restart would re-derive
//! through the whole model. The KV-management literature (the tensor-
//! buffer-to-memory-hierarchy and system-aware KV-optimization surveys)
//! identifies this device/host tiering as the production alternative to
//! vLLM's recompute preemption; the two techniques compose, and the
//! serving engine exposes both as [`PreemptPolicy`] choices.
//!
//! The model here is functional, like the rest of the MMU: the host tier
//! tracks page occupancy and transfer bytes (the quantities the serving
//! stats and the preemption benchmark report), while the payload itself is
//! carried by the pool's quantizer streams, which are retained verbatim
//! across a suspend — so a thawed sequence is bit-identical by
//! construction, and the swap machinery only has to keep the *accounting*
//! exact.
//!
//! # Residency state machine
//!
//! ```text
//!            swap_out (begin)          swap_out (complete)
//!   Device ───────────────────▶ InFlight ───────────────────▶ Host
//!      ▲                                                        │
//!      │            swap_in (complete)       swap_in (begin)    │
//!      └──────────────────────── InFlight ◀──────────────────────┘
//! ```
//!
//! Transfers in this functional model are synchronous, so an observer only
//! ever sees `Device` (live streams) or `Host` (frozen); the `InFlight`
//! state exists so an asynchronous transfer engine can be dropped in
//! without changing the contract.
//!
//! [`PreemptPolicy`]: ../../oaken_serving/engine/enum.PreemptPolicy.html

use crate::stream::StreamKey;
use std::collections::HashMap;
use std::fmt;

/// Where a request's pages currently live in the device/host hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Pages are resident in device memory (live streams).
    Device,
    /// Pages are frozen in the host tier.
    Host,
    /// Pages are mid-transfer between the tiers.
    InFlight,
}

/// Swap failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapError {
    /// The MMU has no host tier attached (capacity 0 still counts as a
    /// tier; this means [`MmuSim::attach_host_tier`] was never called).
    ///
    /// [`MmuSim::attach_host_tier`]: crate::MmuSim::attach_host_tier
    NoHostTier,
    /// The host tier cannot hold the request's pages.
    OutOfHostPages {
        /// Pages the swap-out needs.
        needed: u32,
        /// Host pages currently free.
        free: u32,
    },
    /// Device memory cannot hold the thawed request.
    OutOfDevicePages {
        /// Pages the swap-in needs.
        needed: u32,
        /// Device pages currently free.
        free: u32,
    },
    /// The request is already frozen to host.
    AlreadyFrozen {
        /// The offending request.
        request: u32,
    },
    /// The request has no frozen entry to thaw.
    NotFrozen {
        /// The offending request.
        request: u32,
    },
    /// The request owns pages shared with another owner (refcount ≥ 2);
    /// only exclusively owned pages can move tiers.
    SharedPages {
        /// The offending request.
        request: u32,
    },
}

impl fmt::Display for SwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwapError::NoHostTier => write!(f, "no host tier attached"),
            SwapError::OutOfHostPages { needed, free } => {
                write!(f, "host tier full: need {needed} pages, {free} free")
            }
            SwapError::OutOfDevicePages { needed, free } => {
                write!(
                    f,
                    "device full on swap-in: need {needed} pages, {free} free"
                )
            }
            SwapError::AlreadyFrozen { request } => {
                write!(f, "request {request} is already frozen to host")
            }
            SwapError::NotFrozen { request } => {
                write!(f, "request {request} has no frozen entry")
            }
            SwapError::SharedPages { request } => {
                write!(
                    f,
                    "request {request} owns shared pages; only private pages can swap"
                )
            }
        }
    }
}

impl std::error::Error for SwapError {}

/// Result of one tier move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwapReceipt {
    /// Pages moved.
    pub pages: u32,
    /// Payload bytes moved (the modeled transfer size — encoded dense +
    /// sparse bytes, not page-rounded).
    pub bytes: u64,
    /// Position-weighted checksum over the moved per-token sizes
    /// ([`size_checksum`]): the integrity tag the transfer path re-derives
    /// and asserts on thaw, so a truncated or reordered size table fails
    /// loudly instead of rebuilding a garbage page layout.
    pub checksum: u64,
}

impl SwapReceipt {
    /// Component-wise sum (a whole sequence swaps several MMU requests:
    /// its tail plus its pending prompt blocks).
    pub fn merge(&mut self, other: SwapReceipt) {
        self.pages += other.pages;
        self.bytes += other.bytes;
        self.checksum = self.checksum.wrapping_add(other.checksum);
    }
}

/// Order-sensitive checksum over a per-token size table: each size is
/// folded with its 1-based position (`Σ (i+1)·(sizeᵢ+1)`, wrapping), so a
/// truncated, reordered, or resized table disagrees even when the plain
/// byte sum happens to match. The `+1` on the size keeps zero-byte tokens
/// (empty sparse rows) from being invisible to the fold.
pub fn size_checksum<I: IntoIterator<Item = u32>>(sizes: I) -> u64 {
    let mut sum = 0u64;
    for (i, size) in sizes.into_iter().enumerate() {
        sum = sum.wrapping_add((i as u64 + 1).wrapping_mul(u64::from(size) + 1));
    }
    sum
}

/// Cumulative transfer counters of one host tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwapStats {
    /// Completed swap-outs (requests frozen).
    pub swap_outs: u64,
    /// Completed swap-ins (requests thawed).
    pub swap_ins: u64,
    /// Pages moved device → host.
    pub pages_to_host: u64,
    /// Pages moved host → device.
    pub pages_to_device: u64,
    /// Payload bytes moved device → host.
    pub bytes_to_host: u64,
    /// Payload bytes moved host → device.
    pub bytes_to_device: u64,
}

/// One frozen stream: its key plus the per-token payload sizes needed to
/// rebuild its management table (and page layout) bit-compatibly on thaw.
#[derive(Debug, Clone)]
pub(crate) struct FrozenStream {
    pub(crate) key: StreamKey,
    pub(crate) sizes: Vec<u32>,
}

/// A request frozen to host: its streams in deterministic key order, the
/// host pages it occupies, and its residency state.
#[derive(Debug)]
pub(crate) struct FrozenRequest {
    pub(crate) streams: Vec<FrozenStream>,
    pub(crate) pages: u32,
    pub(crate) bytes: u64,
    /// [`size_checksum`] over the streams' size tables in listed order
    /// (one running position counter across the whole request), asserted
    /// on thaw before any page is rebuilt.
    pub(crate) checksum: u64,
    pub(crate) state: Residency,
}

/// One stream inside a [`TransferPayload`]: the coordinates within the
/// request (the request id itself is deliberately absent — the importer
/// assigns its own) plus the full per-token size table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamPayload {
    /// Decoder layer (the exporter's `StreamKey::layer` encoding).
    pub layer: u16,
    /// Attention (KV) head.
    pub head: u16,
    /// Dense or sparse table.
    pub class: crate::stream::StreamClass,
    /// Per-token payload sizes, token order.
    pub sizes: Vec<u32>,
}

/// A self-describing KV transfer: one request's page tables flattened for
/// shipment to another MMU (the prefill→decode handoff of a disaggregated
/// cluster). "Self-describing" means the payload alone — no shared state
/// with the exporter — lets the importer rebuild bit-compatible management
/// tables: stream coordinates, per-token sizes, byte totals, and an
/// integrity checksum all travel together.
///
/// The *payload bytes themselves* are not here for the same reason the
/// host tier never stores them: in this functional model encoded bytes
/// live in the pool's quantizer streams, which the pool-level exporter
/// carries alongside this table. The MMU half is exactly the accounting
/// a real transfer engine would prepend as a header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransferPayload {
    /// Streams in deterministic `(layer, head, class)` order.
    pub streams: Vec<StreamPayload>,
    /// Total payload bytes (Σ sizes) — the wire cost of the KV itself.
    pub bytes: u64,
    /// [`size_checksum`] over all size tables in listed order (one running
    /// position counter), re-derived and asserted by the importer.
    pub checksum: u64,
}

impl TransferPayload {
    /// Seals the payload: recomputes `bytes` and `checksum` from the size
    /// tables currently in `streams`. Call after assembling the streams.
    pub fn seal(&mut self) {
        self.bytes = self
            .streams
            .iter()
            .flat_map(|s| s.sizes.iter())
            .map(|&s| u64::from(s))
            .sum();
        self.checksum = size_checksum(self.streams.iter().flat_map(|s| s.sizes.iter().copied()));
    }

    /// Bytes this transfer occupies on the modeled wire: the KV payload
    /// plus the self-describing header (4 bytes per size-table entry and
    /// an 8-byte descriptor per stream).
    pub fn wire_bytes(&self) -> u64 {
        let header: u64 = self
            .streams
            .iter()
            .map(|s| 8 + 4 * s.sizes.len() as u64)
            .sum();
        self.bytes + header
    }

    /// Total tokens described by the densest table — the per-head dense
    /// stream carries one entry per token, so this is the row count the
    /// importer should expect per head.
    pub fn max_stream_tokens(&self) -> usize {
        self.streams
            .iter()
            .map(|s| s.sizes.len())
            .max()
            .unwrap_or(0)
    }

    /// Pages this payload occupies when packed with the MMU's write rule
    /// (a token never spans pages; a new page opens when the tail cannot
    /// hold it) — the host charge an import needs, computed from the
    /// payload alone so capacity checks never consume it.
    ///
    /// # Panics
    ///
    /// Panics when any carried size exceeds `page_size` (such a payload
    /// could never have been written by an exporter with this page size).
    pub fn pages_needed(&self, page_size: usize) -> u32 {
        let mut pages = 0u32;
        for s in &self.streams {
            let mut tail_used = 0usize;
            let mut opened = false;
            for &size in &s.sizes {
                assert!(
                    size as usize <= page_size,
                    "transfer token payload {size} exceeds page size {page_size}"
                );
                if !opened || tail_used + size as usize > page_size {
                    pages += 1;
                    tail_used = 0;
                    opened = true;
                }
                tail_used += size as usize;
            }
        }
        pages
    }
}

/// The host tier: page-granular capacity accounting over frozen requests.
///
/// The pool never stores payload bytes here — the functional model keeps
/// those in the quantizer streams — so the swap pool's job is exact
/// occupancy and transfer accounting, plus the per-request residency
/// state machine.
#[derive(Debug)]
pub struct SwapPool {
    capacity: u32,
    used: u32,
    pub(crate) frozen: HashMap<u32, FrozenRequest>,
    stats: SwapStats,
}

impl SwapPool {
    /// Creates a host tier of `capacity` pages (page size is inherited
    /// from the device allocator it is attached to).
    pub fn new(capacity: u32) -> Self {
        Self {
            capacity,
            used: 0,
            frozen: HashMap::new(),
            stats: SwapStats::default(),
        }
    }

    /// Total host pages.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Host pages currently occupied by frozen requests.
    pub fn used_pages(&self) -> u32 {
        self.used
    }

    /// Host pages currently free.
    pub fn free_pages(&self) -> u32 {
        self.capacity - self.used
    }

    /// Requests currently frozen.
    pub fn frozen_requests(&self) -> usize {
        self.frozen.len()
    }

    /// Whether `request` is frozen (or mid-transfer).
    pub fn is_frozen(&self, request: u32) -> bool {
        self.frozen.contains_key(&request)
    }

    /// Residency of a *frozen* request (`None` when the host tier holds no
    /// entry for it; the MMU-level [`residency`](crate::MmuSim::residency)
    /// resolves live streams to [`Residency::Device`]).
    pub fn residency(&self, request: u32) -> Option<Residency> {
        self.frozen.get(&request).map(|f| f.state)
    }

    /// Host pages a frozen request occupies (0 for unknown requests).
    pub fn frozen_pages(&self, request: u32) -> u32 {
        self.frozen.get(&request).map_or(0, |f| f.pages)
    }

    /// Payload bytes a frozen request holds (0 for unknown requests).
    pub fn frozen_bytes(&self, request: u32) -> u64 {
        self.frozen.get(&request).map_or(0, |f| f.bytes)
    }

    /// Cumulative transfer counters.
    pub fn stats(&self) -> SwapStats {
        self.stats
    }

    /// Carries cumulative counters over from a replaced tier (a resize
    /// must not silently zero "cumulative" statistics).
    pub(crate) fn restore_stats(&mut self, stats: SwapStats) {
        self.stats = stats;
    }

    /// Admits a frozen request into the host tier (swap-out completion).
    pub(crate) fn freeze(&mut self, request: u32, entry: FrozenRequest) {
        self.used += entry.pages;
        self.stats.swap_outs += 1;
        self.stats.pages_to_host += u64::from(entry.pages);
        self.stats.bytes_to_host += entry.bytes;
        let prev = self.frozen.insert(request, entry);
        debug_assert!(prev.is_none(), "freeze checked AlreadyFrozen");
    }

    /// Removes a frozen request (swap-in completion or discard). `moved`
    /// says whether the removal transfers bytes back to the device (a
    /// thaw) or drops them (a retired suspended request).
    pub(crate) fn thaw(&mut self, request: u32, moved: bool) -> Option<FrozenRequest> {
        let entry = self.frozen.remove(&request)?;
        self.used -= entry.pages;
        if moved {
            self.stats.swap_ins += 1;
            self.stats.pages_to_device += u64::from(entry.pages);
            self.stats.bytes_to_device += entry.bytes;
        }
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamClass;

    fn entry(pages: u32, bytes: u64) -> FrozenRequest {
        FrozenRequest {
            streams: vec![FrozenStream {
                key: StreamKey {
                    request: 1,
                    layer: 0,
                    head: 0,
                    class: StreamClass::Dense,
                },
                sizes: vec![bytes as u32],
            }],
            pages,
            bytes,
            checksum: size_checksum([bytes as u32]),
            state: Residency::Host,
        }
    }

    #[test]
    fn occupancy_and_stats_track_freeze_thaw() {
        let mut pool = SwapPool::new(8);
        assert_eq!(pool.free_pages(), 8);
        pool.freeze(1, entry(3, 100));
        assert_eq!(pool.used_pages(), 3);
        assert_eq!(pool.frozen_pages(1), 3);
        assert_eq!(pool.frozen_bytes(1), 100);
        assert_eq!(pool.residency(1), Some(Residency::Host));
        assert!(pool.is_frozen(1));
        assert_eq!(pool.frozen_requests(), 1);

        let thawed = pool.thaw(1, true).expect("frozen");
        assert_eq!(thawed.pages, 3);
        assert_eq!(pool.used_pages(), 0);
        assert!(pool.thaw(1, true).is_none(), "double thaw");

        let s = pool.stats();
        assert_eq!(s.swap_outs, 1);
        assert_eq!(s.swap_ins, 1);
        assert_eq!(s.pages_to_host, 3);
        assert_eq!(s.pages_to_device, 3);
        assert_eq!(s.bytes_to_host, 100);
        assert_eq!(s.bytes_to_device, 100);
    }

    #[test]
    fn discard_drops_bytes_without_counting_a_swap_in() {
        let mut pool = SwapPool::new(4);
        pool.freeze(2, entry(2, 50));
        pool.thaw(2, false).expect("frozen");
        let s = pool.stats();
        assert_eq!(s.swap_outs, 1);
        assert_eq!(s.swap_ins, 0);
        assert_eq!(s.bytes_to_device, 0);
        assert_eq!(pool.used_pages(), 0);
    }

    #[test]
    fn receipts_merge_componentwise() {
        let mut r = SwapReceipt {
            pages: 1,
            bytes: 10,
            checksum: 7,
        };
        r.merge(SwapReceipt {
            pages: 2,
            bytes: 5,
            checksum: 3,
        });
        assert_eq!(
            r,
            SwapReceipt {
                pages: 3,
                bytes: 15,
                checksum: 10,
            }
        );
    }

    #[test]
    fn size_checksum_detects_truncation_and_reordering() {
        let full = size_checksum([3u32, 5, 7]);
        assert_ne!(full, size_checksum([3u32, 5]), "truncation must move it");
        assert_ne!(full, size_checksum([7u32, 5, 3]), "reorder must move it");
        // Plain byte sums cannot see a reorder; the weighted fold can.
        assert_ne!(size_checksum([1u32, 2]), size_checksum([2u32, 1]));
        // Zero-size tokens still contribute (empty sparse rows are real).
        assert_ne!(size_checksum([0u32]), size_checksum([] as [u32; 0]));
    }

    #[test]
    fn transfer_payload_seals_and_prices_itself() {
        let mut p = TransferPayload {
            streams: vec![
                StreamPayload {
                    layer: 0,
                    head: 0,
                    class: StreamClass::Dense,
                    sizes: vec![16, 16],
                },
                StreamPayload {
                    layer: 0,
                    head: 0,
                    class: StreamClass::Sparse,
                    sizes: vec![3, 0],
                },
            ],
            bytes: 0,
            checksum: 0,
        };
        p.seal();
        assert_eq!(p.bytes, 35);
        assert_eq!(p.checksum, size_checksum([16u32, 16, 3, 0]));
        // Wire = payload + 2 stream descriptors + 4 size entries.
        assert_eq!(p.wire_bytes(), 35 + 2 * 8 + 4 * 4);
        assert_eq!(p.max_stream_tokens(), 2);
    }
}

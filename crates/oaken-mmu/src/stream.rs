//! The MMU simulator: per-(request, layer, head, class) streams appended to
//! physical pages with dense and sparse management tables.
//!
//! Write layout (§5.2): "Key-value vectors generated in the current layer
//! are divided by attention head and written to distinct pages ... when the
//! KV cache for the next token is generated, it is divided similarly and
//! written sequentially, immediately following the previous tokens' KV
//! cache" — each stream owns its pages and appends, so reads burst.

use crate::alloc::{AllocError, PageAllocator, PageId};
use crate::burst::{plan_bursts, BurstPlan};
use crate::fault::{FaultInjector, FaultKind, FaultOp, FaultPlan, FaultStats};
use crate::swap::{FrozenRequest, FrozenStream, Residency, SwapError, SwapPool, SwapReceipt};
use crate::table::{StreamTable, TableEntry};
use crate::PhysAddr;
use std::collections::HashMap;

/// Whether a stream carries dense (packed inlier) or sparse (COO outlier)
/// data — the two management tables of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StreamClass {
    /// Fixed-size packed dense data.
    Dense,
    /// Variable-size COO outlier data.
    Sparse,
}

/// Identifies one KV stream.
///
/// `Ord` exists so tier moves ([`MmuSim::swap_out_request`]) can process a
/// request's streams in a deterministic order independent of hash-map
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamKey {
    /// Serving request id.
    pub request: u32,
    /// Decoder layer.
    pub layer: u16,
    /// Attention (KV) head.
    pub head: u16,
    /// Dense or sparse payload.
    pub class: StreamClass,
}

#[derive(Debug, Default)]
struct Stream {
    table: StreamTable,
    pages: Vec<PageId>,
    /// Bytes used in the last page.
    tail_used: usize,
    /// Copy-on-write marker: the tail page is shared with another stream
    /// (this stream was forked), so the next write must open a fresh page
    /// instead of appending into the shared one.
    cow_tail: bool,
}

/// Result of one token write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReceipt {
    /// Where the token's payload starts.
    pub addr: PhysAddr,
    /// Bytes written.
    pub bytes: u32,
    /// Whether a fresh page had to be allocated.
    pub new_page: bool,
}

/// The MMU simulator: a page allocator plus dense/sparse stream tables,
/// optionally backed by a host swap tier ([`SwapPool`]).
#[derive(Debug)]
pub struct MmuSim {
    allocator: PageAllocator,
    streams: HashMap<StreamKey, Stream>,
    /// The host tier; `None` until [`MmuSim::attach_host_tier`].
    host: Option<SwapPool>,
    /// Installed fault schedule; `None` (the default) disables injection
    /// entirely — [`poll_fault`](Self::poll_fault) is then a single
    /// discriminant check.
    faults: Option<FaultInjector>,
}

impl MmuSim {
    /// Creates an MMU over `num_pages` pages of `page_size` bytes, with no
    /// host tier (swaps fail with [`SwapError::NoHostTier`]).
    pub fn new(num_pages: u32, page_size: usize) -> Self {
        Self {
            allocator: PageAllocator::new(num_pages, page_size),
            streams: HashMap::new(),
            host: None,
            faults: None,
        }
    }

    /// The backing allocator (read-only view).
    pub fn allocator(&self) -> &PageAllocator {
        &self.allocator
    }

    /// Installs a deterministic fault schedule (see [`crate::fault`]).
    /// Replaces any previous schedule, resetting its attempt counters.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultInjector::new(plan));
    }

    /// Removes the fault schedule; subsequent polls always pass.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Whether a fault schedule is installed.
    pub fn faults_active(&self) -> bool {
        self.faults.is_some()
    }

    /// Counters over the faults injected so far (zero when no schedule
    /// was ever installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    /// Polls the installed schedule for one attempt of `op` — `None`
    /// (always, when no schedule is installed) means proceed; `Some`
    /// means the caller must fail the operation without mutating state.
    /// Callers sit at pre-check boundaries, so a faulted operation is a
    /// no-op by construction.
    pub fn poll_fault(&mut self, op: FaultOp) -> Option<FaultKind> {
        self.faults.as_mut()?.poll(op)
    }

    /// Attaches (or resizes) a host tier of `host_pages` pages, enabling
    /// [`swap_out_request`](Self::swap_out_request) /
    /// [`swap_in_request`](Self::swap_in_request). Resizing an existing
    /// tier keeps its cumulative [`SwapStats`](crate::swap::SwapStats)
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if requests are currently frozen (the tier can only be
    /// resized while empty).
    pub fn attach_host_tier(&mut self, host_pages: u32) {
        let prev_stats = match &self.host {
            Some(host) => {
                assert_eq!(
                    host.used_pages(),
                    0,
                    "host tier can only be resized while empty"
                );
                host.stats()
            }
            None => Default::default(),
        };
        let mut tier = SwapPool::new(host_pages);
        tier.restore_stats(prev_stats);
        self.host = Some(tier);
    }

    /// The host tier, when attached (read-only: occupancy, residency,
    /// transfer stats).
    pub fn host_tier(&self) -> Option<&SwapPool> {
        self.host.as_ref()
    }

    /// Residency of `request`'s pages: [`Residency::Host`] (or
    /// [`Residency::InFlight`]) when frozen, [`Residency::Device`] when it
    /// has live streams, `None` when the MMU knows nothing about it.
    pub fn residency(&self, request: u32) -> Option<Residency> {
        if let Some(r) = self.host.as_ref().and_then(|h| h.residency(request)) {
            return Some(r);
        }
        self.streams
            .keys()
            .any(|k| k.request == request)
            .then_some(Residency::Device)
    }

    /// Freezes every stream of `request` to the host tier: the per-token
    /// payload sizes (the management tables) move to host, the device
    /// pages free, and the host tier charges the same page count. The
    /// request's streams become unknown to the device until
    /// [`swap_in_request`](Self::swap_in_request) thaws them.
    ///
    /// A request with *no* streams freezes successfully as an empty entry
    /// (0 pages, 0 bytes) — a planned-but-unwritten prompt block suspends
    /// uniformly with its written siblings.
    ///
    /// # Errors
    ///
    /// [`SwapError::NoHostTier`] without an attached tier,
    /// [`SwapError::AlreadyFrozen`] on a double freeze,
    /// [`SwapError::SharedPages`] when any page has refcount ≥ 2 (shared
    /// pages must stay resident for their other owners), and
    /// [`SwapError::OutOfHostPages`] when the tier is full — all checked
    /// before any state changes, so a failed call is a no-op.
    pub fn swap_out_request(&mut self, request: u32) -> Result<SwapReceipt, SwapError> {
        let host = self.host.as_ref().ok_or(SwapError::NoHostTier)?;
        if host.is_frozen(request) {
            return Err(SwapError::AlreadyFrozen { request });
        }
        let mut keys: Vec<StreamKey> = self
            .streams
            .keys()
            .filter(|k| k.request == request)
            .copied()
            .collect();
        keys.sort_unstable();
        let mut pages = 0u32;
        for k in &keys {
            let s = &self.streams[k];
            for &p in &s.pages {
                if self.allocator.refcount(p) != 1 {
                    return Err(SwapError::SharedPages { request });
                }
            }
            pages += s.pages.len() as u32;
        }
        if pages > host.free_pages() {
            return Err(SwapError::OutOfHostPages {
                needed: pages,
                free: host.free_pages(),
            });
        }
        // All checks passed: the move itself cannot fail.
        let mut entry = FrozenRequest {
            streams: Vec::with_capacity(keys.len()),
            pages,
            bytes: 0,
            checksum: 0,
            state: Residency::InFlight,
        };
        for k in keys {
            let stream = self.streams.remove(&k).expect("key listed above");
            entry.bytes += stream.table.total_bytes();
            for p in stream.pages {
                self.allocator
                    .free(p)
                    .expect("refcount-1 pages hard-free cleanly");
            }
            entry.streams.push(FrozenStream {
                key: k,
                sizes: stream.table.iter().map(|e| e.size).collect(),
            });
        }
        entry.state = Residency::Host;
        entry.checksum = crate::swap::size_checksum(
            entry.streams.iter().flat_map(|fs| fs.sizes.iter().copied()),
        );
        let receipt = SwapReceipt {
            pages: entry.pages,
            bytes: entry.bytes,
            checksum: entry.checksum,
        };
        self.host
            .as_mut()
            .expect("checked above")
            .freeze(request, entry);
        Ok(receipt)
    }

    /// Thaws a frozen request back into device memory: fresh pages are
    /// allocated and each stream's management table is rebuilt by
    /// replaying its recorded per-token sizes in deterministic key order.
    /// Physical page *ids* may differ from before the freeze — the
    /// contract is `PageId` *semantics*: every table entry translates to a
    /// live exclusively-owned page, per-token sizes and tail headroom are
    /// identical, and the page count never exceeds the frozen count.
    ///
    /// # Errors
    ///
    /// [`SwapError::NoHostTier`], [`SwapError::NotFrozen`], or
    /// [`SwapError::OutOfDevicePages`] when the device cannot hold the
    /// frozen page count — checked up front, so a failed call is a no-op
    /// and the request stays frozen.
    pub fn swap_in_request(&mut self, request: u32) -> Result<SwapReceipt, SwapError> {
        let host = self.host.as_ref().ok_or(SwapError::NoHostTier)?;
        let frozen_pages = host
            .residency(request)
            .map(|_| host.frozen_pages(request))
            .ok_or(SwapError::NotFrozen { request })?;
        if frozen_pages > self.allocator.free_pages() {
            return Err(SwapError::OutOfDevicePages {
                needed: frozen_pages,
                free: self.allocator.free_pages(),
            });
        }
        let entry = self
            .host
            .as_mut()
            .expect("checked above")
            .thaw(request, true)
            .expect("residency checked above");
        debug_assert_eq!(
            crate::swap::size_checksum(
                entry.streams.iter().flat_map(|fs| fs.sizes.iter().copied())
            ),
            entry.checksum,
            "frozen size tables of request {request} fail their checksum; \
             refusing to rebuild a corrupted page layout"
        );
        let mut allocated = 0u32;
        let bytes = entry.bytes;
        let checksum = entry.checksum;
        for fs in entry.streams {
            debug_assert!(!self.streams.contains_key(&fs.key), "thaw into live key");
            for size in fs.sizes {
                let receipt = self
                    .write_token(fs.key, size)
                    .expect("pre-checked: replay never exceeds the frozen page count");
                allocated += u32::from(receipt.new_page);
            }
        }
        debug_assert!(
            allocated <= frozen_pages,
            "replay packed into more pages than it froze from"
        );
        Ok(SwapReceipt {
            pages: allocated,
            bytes,
            checksum,
        })
    }

    /// Drops a frozen request without thawing it (a suspended sequence
    /// retired while on host): the host pages free and the entry's bytes
    /// are discarded. Returns the host pages released, or an error when
    /// the request is not frozen.
    ///
    /// # Errors
    ///
    /// [`SwapError::NoHostTier`] or [`SwapError::NotFrozen`].
    pub fn discard_frozen(&mut self, request: u32) -> Result<u32, SwapError> {
        let host = self.host.as_mut().ok_or(SwapError::NoHostTier)?;
        let entry = host
            .thaw(request, false)
            .ok_or(SwapError::NotFrozen { request })?;
        Ok(entry.pages)
    }

    /// The per-token size tables of `request`'s *live* streams, in
    /// deterministic key order — the raw material a pool-level exporter
    /// flattens into a [`crate::swap::TransferPayload`]. Empty for unknown requests.
    pub fn request_stream_sizes(&self, request: u32) -> Vec<(StreamKey, Vec<u32>)> {
        let mut out: Vec<(StreamKey, Vec<u32>)> = self
            .streams
            .iter()
            .filter(|(k, _)| k.request == request)
            .map(|(k, s)| (*k, s.table.iter().map(|e| e.size).collect()))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// Lands a [`crate::swap::TransferPayload`] from another MMU as a frozen entry of
    /// this MMU's host tier under local id `request` — the receive side of
    /// a prefill→decode KV handoff. The imported request behaves exactly
    /// like a locally frozen one: [`swap_in_request`](Self::swap_in_request)
    /// thaws it onto fresh device pages (replaying the carried size tables
    /// through the normal write path), and the page count charged to host
    /// is recomputed here with the same packing rule `write_token` uses,
    /// so accounting never depends on the exporter's page geometry.
    ///
    /// # Errors
    ///
    /// [`SwapError::NoHostTier`], [`SwapError::AlreadyFrozen`] (the local
    /// id is taken), or [`SwapError::OutOfHostPages`] — all checked before
    /// any state changes, so a failed import is a no-op and the caller can
    /// retry later (the cluster's transfer clock does exactly that).
    ///
    /// # Panics
    ///
    /// Panics when the payload fails its own checksum (a corrupted or
    /// truncated transfer must fail loudly, never rebuild garbage tables)
    /// or when any carried size exceeds the page size.
    pub fn import_frozen(
        &mut self,
        request: u32,
        payload: &crate::swap::TransferPayload,
    ) -> Result<SwapReceipt, SwapError> {
        let host = self.host.as_ref().ok_or(SwapError::NoHostTier)?;
        if host.is_frozen(request) || self.streams.keys().any(|k| k.request == request) {
            return Err(SwapError::AlreadyFrozen { request });
        }
        assert_eq!(
            crate::swap::size_checksum(
                payload.streams.iter().flat_map(|s| s.sizes.iter().copied())
            ),
            payload.checksum,
            "transfer payload for request {request} fails its checksum; \
             refusing to import corrupted size tables"
        );
        let pages = payload.pages_needed(self.allocator.page_size());
        let bytes: u64 = payload
            .streams
            .iter()
            .flat_map(|s| s.sizes.iter())
            .map(|&s| u64::from(s))
            .sum();
        if pages > host.free_pages() {
            return Err(SwapError::OutOfHostPages {
                needed: pages,
                free: host.free_pages(),
            });
        }
        let mut streams: Vec<FrozenStream> = payload
            .streams
            .iter()
            .map(|s| FrozenStream {
                key: StreamKey {
                    request,
                    layer: s.layer,
                    head: s.head,
                    class: s.class,
                },
                sizes: s.sizes.clone(),
            })
            .collect();
        streams.sort_unstable_by_key(|fs| fs.key);
        let entry = FrozenRequest {
            checksum: crate::swap::size_checksum(
                streams.iter().flat_map(|fs| fs.sizes.iter().copied()),
            ),
            streams,
            pages,
            bytes,
            state: Residency::Host,
        };
        let receipt = SwapReceipt {
            pages,
            bytes,
            checksum: entry.checksum,
        };
        self.host
            .as_mut()
            .expect("checked above")
            .freeze(request, entry);
        Ok(receipt)
    }

    /// Appends one token's payload to a stream, allocating pages on demand.
    ///
    /// A payload never spans pages in this model (it is split by the caller
    /// per head, and head payloads are far smaller than a page); if the
    /// current page cannot hold it, a new page is opened.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfPages`] when device memory is exhausted —
    /// the OOM signal the serving layer uses for admission control.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the page size.
    pub fn write_token(&mut self, key: StreamKey, bytes: u32) -> Result<WriteReceipt, AllocError> {
        let page_size = self.allocator.page_size();
        assert!(
            bytes as usize <= page_size,
            "token payload {bytes} exceeds page size {page_size}"
        );
        debug_assert!(
            !self.host.as_ref().is_some_and(|h| h.is_frozen(key.request)),
            "write to request {} while it is frozen to host",
            key.request
        );
        let stream = self.streams.entry(key).or_default();
        let mut new_page = false;
        if stream.pages.is_empty()
            || stream.cow_tail
            || stream.tail_used + bytes as usize > page_size
        {
            let page = self.allocator.alloc()?;
            stream.pages.push(page);
            stream.tail_used = 0;
            stream.cow_tail = false;
            new_page = true;
        }
        let tail = *stream.pages.last().expect("page just ensured");
        let addr = self
            .allocator
            .base_addr(tail)
            .offset(stream.tail_used as u64);
        stream.tail_used += bytes as usize;
        stream.table.push(TableEntry { addr, size: bytes });
        Ok(WriteReceipt {
            addr,
            bytes,
            new_page,
        })
    }

    /// The management table of a stream, if it exists.
    pub fn table(&self, key: &StreamKey) -> Option<&StreamTable> {
        self.streams.get(key).map(|s| &s.table)
    }

    /// Translates `(stream, token)` to the physical transfer that fetches
    /// that token's payload — the per-token address lookup the serving
    /// layer's attention reads go through. `None` for unknown streams or
    /// tokens beyond the stream's history.
    pub fn translate(&self, key: &StreamKey, token: usize) -> Option<TableEntry> {
        self.streams
            .get(key)
            .and_then(|s| s.table.get(token))
            .copied()
    }

    /// Free bytes remaining in a stream's tail page: the headroom the next
    /// `write_token` can use before a fresh page must be allocated. `0` for
    /// unknown streams (the first write always opens a page).
    pub fn tail_free(&self, key: &StreamKey) -> usize {
        match self.streams.get(key) {
            Some(s) if !s.pages.is_empty() => self.allocator.page_size() - s.tail_used,
            _ => 0,
        }
    }

    /// Pages currently owned by `request` across all of its streams.
    pub fn request_pages(&self, request: u32) -> u32 {
        self.streams
            .iter()
            .filter(|(k, _)| k.request == request)
            .map(|(_, s)| s.pages.len() as u32)
            .sum()
    }

    /// Bytes actually stored for `request` (sum of its table entries).
    pub fn request_bytes(&self, request: u32) -> u64 {
        self.streams
            .iter()
            .filter(|(k, _)| k.request == request)
            .map(|(_, s)| s.table.total_bytes())
            .sum()
    }

    /// Plans the full-history burst read of a stream (the generation-phase
    /// attention fetch). Returns an empty plan for unknown streams.
    pub fn read_plan(&self, key: &StreamKey, granularity: u64) -> BurstPlan {
        match self.streams.get(key) {
            Some(s) => plan_bursts(s.table.iter(), granularity),
            None => plan_bursts([].iter(), granularity),
        }
    }

    /// Frees every page belonging to `request` (request retirement). The
    /// request's stream tables are removed unconditionally; each page drops
    /// one reference and physically frees only when no other owner (a fork
    /// or a retained sharer) still holds it. Returns the pages actually
    /// freed.
    ///
    /// # Errors
    ///
    /// Propagates over-release errors, which indicate internal corruption.
    pub fn free_request(&mut self, request: u32) -> Result<u32, AllocError> {
        let keys: Vec<StreamKey> = self
            .streams
            .keys()
            .filter(|k| k.request == request)
            .copied()
            .collect();
        let mut freed = 0u32;
        for k in keys {
            let stream = self.streams.remove(&k).expect("key listed above");
            for p in stream.pages {
                freed += u32::from(self.allocator.release(p)?);
            }
        }
        Ok(freed)
    }

    /// Adds one reference to every page owned by `request`'s streams — a
    /// new sharer adopting the request's payload (a prefix-cache hit).
    /// Returns the number of pages retained (0 for an unknown request).
    pub fn retain_request(&mut self, request: u32) -> u32 {
        let mut retained = 0u32;
        for (k, s) in &self.streams {
            if k.request != request {
                continue;
            }
            for &p in &s.pages {
                self.allocator
                    .retain(p)
                    .expect("stream-owned pages are allocated");
                retained += 1;
            }
        }
        retained
    }

    /// Drops one reference from every page owned by `request`'s streams (a
    /// sharer departing). When the last reference goes, the pages free and
    /// the stream tables are removed; while other sharers remain, the
    /// tables stay readable. Returns the pages actually freed.
    ///
    /// Contract: the request must be **whole-request shared** — every page
    /// at the same refcount, which [`retain_request`](Self::retain_request)
    /// preserves and appends break. A request that was written to after a
    /// [`fork_stream`](Self::fork_stream) mixes shared and private pages
    /// and must be retired with [`free_request`](Self::free_request)
    /// instead; releasing it would free its private tail while its tables
    /// stay live, so that misuse is rejected loudly.
    ///
    /// # Panics
    ///
    /// Panics if the request's pages do not share one refcount.
    pub fn release_request(&mut self, request: u32) -> u32 {
        let keys: Vec<StreamKey> = self
            .streams
            .keys()
            .filter(|k| k.request == request)
            .copied()
            .collect();
        let pages: Vec<PageId> = keys
            .iter()
            .flat_map(|k| self.streams[k].pages.iter().copied())
            .collect();
        // Reject mixed-refcount requests before touching any state: a
        // partial release would free a private tail page while the
        // request's tables stay live.
        let uniform = pages
            .windows(2)
            .all(|w| self.allocator.refcount(w[0]) == self.allocator.refcount(w[1]));
        assert!(
            uniform,
            "release_request on mixed-refcount request {request}: \
             forked-then-written requests must use free_request"
        );
        let mut freed = 0u32;
        let mut fully_freed = true;
        for &p in &pages {
            let went = self
                .allocator
                .release(p)
                .expect("stream-owned pages are allocated");
            freed += u32::from(went);
            fully_freed &= went;
        }
        // Uniform refcounts mean either every page freed (last sharer:
        // drop the tables) or none did (tables stay for the remaining
        // sharers).
        if fully_freed {
            for k in keys {
                self.streams.remove(&k);
            }
        }
        freed
    }

    /// Copy-on-write fork: `dst` becomes a new stream sharing every page
    /// (and table entry) `src` has written so far. The shared pages gain
    /// one reference each; `dst`'s tail is marked copy-on-write, so its
    /// next [`write_token`](Self::write_token) opens a fresh private page
    /// while `src` keeps appending into its own tail. Returns the number
    /// of pages now shared, or `None` when `src` is unknown or `dst`
    /// already exists.
    pub fn fork_stream(&mut self, src: &StreamKey, dst: StreamKey) -> Option<u32> {
        if self.streams.contains_key(&dst) {
            return None;
        }
        let (table, pages, tail_used) = {
            let s = self.streams.get(src)?;
            (s.table.clone(), s.pages.clone(), s.tail_used)
        };
        for &p in &pages {
            self.allocator
                .retain(p)
                .expect("stream-owned pages are allocated");
        }
        let shared = pages.len() as u32;
        self.streams.insert(
            dst,
            Stream {
                table,
                pages,
                tail_used,
                cow_tail: true,
            },
        );
        Some(shared)
    }

    /// Physical pages currently referenced by more than one owner.
    pub fn shared_pages(&self) -> u32 {
        self.allocator.shared_pages()
    }

    /// Physical pages with exactly one owner.
    pub fn private_pages(&self) -> u32 {
        self.allocator.private_pages()
    }

    /// Internal fragmentation: allocated-but-unused bytes over allocated
    /// bytes (0.0 when nothing is allocated).
    pub fn internal_fragmentation(&self) -> f64 {
        let page_size = self.allocator.page_size() as u64;
        let mut allocated = 0u64;
        let mut used = 0u64;
        for s in self.streams.values() {
            allocated += s.pages.len() as u64 * page_size;
            used += s.table.total_bytes();
        }
        if allocated == 0 {
            return 0.0;
        }
        1.0 - used as f64 / allocated as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(request: u32, head: u16, class: StreamClass) -> StreamKey {
        StreamKey {
            request,
            layer: 0,
            head,
            class,
        }
    }

    #[test]
    fn sequential_writes_are_contiguous() {
        let mut mmu = MmuSim::new(16, 4096);
        let k = key(1, 0, StreamClass::Dense);
        for _ in 0..10 {
            mmu.write_token(k, 64).unwrap();
        }
        let plan = mmu.read_plan(&k, 64);
        assert_eq!(plan.bursts.len(), 1, "one page, one burst: {plan:?}");
        assert_eq!(plan.total_bytes, 640);
        assert_eq!(plan.efficiency(64), 1.0);
    }

    #[test]
    fn streams_get_distinct_pages() {
        let mut mmu = MmuSim::new(16, 4096);
        let ka = key(1, 0, StreamClass::Dense);
        let kb = key(1, 1, StreamClass::Dense);
        let ra = mmu.write_token(ka, 64).unwrap();
        let rb = mmu.write_token(kb, 64).unwrap();
        assert_ne!(ra.addr, rb.addr, "heads go to distinct pages");
        assert!(ra.new_page && rb.new_page);
    }

    #[test]
    fn variable_sparse_sizes_tracked_in_table() {
        let mut mmu = MmuSim::new(16, 4096);
        let k = key(2, 0, StreamClass::Sparse);
        for size in [7u32, 13, 2, 29] {
            mmu.write_token(k, size).unwrap();
        }
        let table = mmu.table(&k).unwrap();
        let sizes: Vec<u32> = table.iter().map(|e| e.size).collect();
        assert_eq!(sizes, vec![7, 13, 2, 29]);
        assert_eq!(table.total_bytes(), 51);
    }

    #[test]
    fn page_overflow_opens_new_page() {
        let mut mmu = MmuSim::new(16, 128);
        let k = key(1, 0, StreamClass::Dense);
        let r1 = mmu.write_token(k, 100).unwrap();
        let r2 = mmu.write_token(k, 100).unwrap();
        assert!(r1.new_page);
        assert!(r2.new_page, "second write cannot fit in first page");
        // The read plan now has two bursts (pages 0 and 1 are adjacent in
        // this allocator, but the 28-byte gap at the end of page 0 splits
        // the stream).
        let plan = mmu.read_plan(&k, 64);
        assert_eq!(plan.bursts.len(), 2);
    }

    #[test]
    fn oom_surfaces_as_error() {
        let mut mmu = MmuSim::new(1, 128);
        let k = key(1, 0, StreamClass::Dense);
        mmu.write_token(k, 128).unwrap();
        assert!(matches!(
            mmu.write_token(k, 1),
            Err(AllocError::OutOfPages { .. })
        ));
    }

    #[test]
    fn free_request_releases_everything() {
        let mut mmu = MmuSim::new(4, 128);
        for head in 0..4 {
            mmu.write_token(key(7, head, StreamClass::Dense), 64)
                .unwrap();
        }
        assert_eq!(mmu.allocator().free_pages(), 0);
        let freed = mmu.free_request(7).unwrap();
        assert_eq!(freed, 4);
        assert_eq!(mmu.allocator().free_pages(), 4);
        assert!(mmu.table(&key(7, 0, StreamClass::Dense)).is_none());
    }

    #[test]
    fn fragmentation_reflects_partial_pages() {
        let mut mmu = MmuSim::new(4, 100);
        mmu.write_token(key(1, 0, StreamClass::Dense), 25).unwrap();
        // 25 of 100 bytes used → 75% internal fragmentation.
        assert!((mmu.internal_fragmentation() - 0.75).abs() < 1e-9);
        assert_eq!(MmuSim::new(4, 100).internal_fragmentation(), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_payload_rejected() {
        let mut mmu = MmuSim::new(4, 64);
        let _ = mmu.write_token(key(1, 0, StreamClass::Dense), 65);
    }

    #[test]
    fn translate_returns_per_token_transfers() {
        let mut mmu = MmuSim::new(16, 128);
        let k = key(3, 0, StreamClass::Sparse);
        let receipts: Vec<WriteReceipt> = [9u32, 17, 5]
            .iter()
            .map(|&b| mmu.write_token(k, b).unwrap())
            .collect();
        for (t, r) in receipts.iter().enumerate() {
            let e = mmu.translate(&k, t).expect("token written");
            assert_eq!(e.addr, r.addr);
            assert_eq!(e.size, r.bytes);
        }
        assert!(mmu.translate(&k, 3).is_none());
        assert!(mmu.translate(&key(4, 0, StreamClass::Dense), 0).is_none());
    }

    #[test]
    fn tail_free_tracks_page_headroom() {
        let mut mmu = MmuSim::new(16, 100);
        let k = key(1, 0, StreamClass::Dense);
        assert_eq!(mmu.tail_free(&k), 0, "no page before the first write");
        mmu.write_token(k, 30).unwrap();
        assert_eq!(mmu.tail_free(&k), 70);
        mmu.write_token(k, 80).unwrap(); // overflows into a new page
        assert_eq!(mmu.tail_free(&k), 20);
    }

    #[test]
    fn retain_release_request_shares_pages_until_last_owner() {
        let mut mmu = MmuSim::new(8, 128);
        let k = key(10, 0, StreamClass::Dense);
        for _ in 0..4 {
            mmu.write_token(k, 100).unwrap(); // 4 pages
        }
        assert_eq!(mmu.request_pages(10), 4);
        assert_eq!(mmu.shared_pages(), 0);
        // Two additional sharers adopt the request's payload.
        assert_eq!(mmu.retain_request(10), 4);
        assert_eq!(mmu.retain_request(10), 4);
        assert_eq!(mmu.shared_pages(), 4);
        // Departing sharers free nothing while others remain; the tables
        // stay readable.
        assert_eq!(mmu.release_request(10), 0);
        assert!(mmu.table(&k).is_some());
        assert_eq!(mmu.release_request(10), 0);
        assert_eq!(mmu.shared_pages(), 0);
        // The last owner frees everything and drops the tables.
        assert_eq!(mmu.release_request(10), 4);
        assert!(mmu.table(&k).is_none());
        assert_eq!(mmu.allocator().free_pages(), 8);
    }

    #[test]
    fn free_request_releases_shared_pages_without_freeing_them() {
        let mut mmu = MmuSim::new(8, 128);
        let k = key(3, 0, StreamClass::Dense);
        mmu.write_token(k, 64).unwrap();
        mmu.retain_request(3);
        // Hard retirement removes the tables but the page survives for the
        // remaining owner.
        assert_eq!(mmu.free_request(3).unwrap(), 0);
        assert!(mmu.table(&k).is_none());
        assert_eq!(mmu.allocator().free_pages(), 7);
    }

    #[test]
    fn fork_stream_shares_history_and_diverges_on_write() {
        let mut mmu = MmuSim::new(8, 128);
        let src = key(1, 0, StreamClass::Dense);
        for _ in 0..3 {
            mmu.write_token(src, 60).unwrap(); // 2 pages, tail half full
        }
        let dst = key(2, 0, StreamClass::Dense);
        assert_eq!(mmu.fork_stream(&src, dst).unwrap(), 2);
        assert_eq!(mmu.shared_pages(), 2);
        // The fork reads the same history...
        for t in 0..3 {
            assert_eq!(mmu.translate(&src, t), mmu.translate(&dst, t));
        }
        // ...but the next write is copy-on-write: dst opens a private page
        // even though the shared tail has room, while src keeps appending
        // in place.
        let before = mmu.allocator().allocated_pages();
        let rd = mmu.write_token(dst, 10).unwrap();
        assert!(rd.new_page, "forked tail must not be written in place");
        assert_eq!(mmu.allocator().allocated_pages(), before + 1);
        let rs = mmu.write_token(src, 10).unwrap();
        assert!(!rs.new_page, "src still owns its tail");
        assert_ne!(rs.addr, rd.addr);
        // Freeing src releases its references; dst keeps the shared pages.
        mmu.free_request(1).unwrap();
        assert_eq!(mmu.shared_pages(), 0);
        assert!(mmu.translate(&dst, 0).is_some());
    }

    #[test]
    #[should_panic(expected = "mixed-refcount")]
    fn release_request_rejects_forked_then_written_requests() {
        let mut mmu = MmuSim::new(8, 128);
        let src = key(1, 0, StreamClass::Dense);
        mmu.write_token(src, 60).unwrap();
        let dst = key(2, 0, StreamClass::Dense);
        mmu.fork_stream(&src, dst).unwrap();
        // dst now mixes a shared history page (rc 2) with a private tail
        // page (rc 1): releasing it whole-request would corrupt; it must
        // be retired with free_request instead.
        mmu.write_token(dst, 10).unwrap();
        mmu.release_request(2);
    }

    #[test]
    fn fork_stream_rejects_unknown_src_and_existing_dst() {
        let mut mmu = MmuSim::new(4, 128);
        let a = key(1, 0, StreamClass::Dense);
        let b = key(2, 0, StreamClass::Dense);
        assert!(mmu.fork_stream(&a, b).is_none(), "unknown src");
        mmu.write_token(a, 10).unwrap();
        mmu.write_token(b, 10).unwrap();
        assert!(mmu.fork_stream(&a, b).is_none(), "dst exists");
    }

    #[test]
    fn swap_roundtrip_preserves_table_semantics() {
        let mut mmu = MmuSim::new(8, 128);
        mmu.attach_host_tier(8);
        let kd = key(5, 0, StreamClass::Dense);
        let ks = key(5, 1, StreamClass::Sparse);
        for size in [100u32, 60, 60] {
            mmu.write_token(kd, size).unwrap(); // 2 pages, tail 8 free
        }
        mmu.write_token(ks, 17).unwrap();
        let before_pages = mmu.request_pages(5);
        let before_bytes = mmu.request_bytes(5);
        let tail_before = mmu.tail_free(&kd);
        assert_eq!(mmu.residency(5), Some(crate::swap::Residency::Device));

        let out = mmu.swap_out_request(5).unwrap();
        assert_eq!(out.pages, before_pages);
        assert_eq!(out.bytes, before_bytes);
        assert_eq!(mmu.residency(5), Some(crate::swap::Residency::Host));
        assert_eq!(mmu.request_pages(5), 0, "device side forgot the streams");
        assert_eq!(mmu.allocator().free_pages(), 8);
        let host = mmu.host_tier().expect("attached");
        assert_eq!(host.used_pages(), before_pages);
        assert_eq!(host.frozen_bytes(5), before_bytes);

        // Another request takes device pages meanwhile.
        mmu.write_token(key(6, 0, StreamClass::Dense), 50).unwrap();

        let back = mmu.swap_in_request(5).unwrap();
        assert_eq!(back.pages, before_pages, "no-CoW streams replay exactly");
        assert_eq!(back.bytes, before_bytes);
        assert_eq!(mmu.residency(5), Some(crate::swap::Residency::Device));
        assert_eq!(mmu.request_pages(5), before_pages);
        assert_eq!(mmu.request_bytes(5), before_bytes);
        assert_eq!(mmu.tail_free(&kd), tail_before);
        let sizes: Vec<u32> = mmu.table(&kd).unwrap().iter().map(|e| e.size).collect();
        assert_eq!(sizes, vec![100, 60, 60]);
        assert_eq!(mmu.table(&ks).unwrap().len(), 1);
        assert_eq!(mmu.host_tier().unwrap().used_pages(), 0);

        let stats = mmu.host_tier().unwrap().stats();
        assert_eq!(stats.swap_outs, 1);
        assert_eq!(stats.swap_ins, 1);
        assert_eq!(stats.bytes_to_host, before_bytes);
        assert_eq!(stats.bytes_to_device, before_bytes);

        // The thawed stream keeps appending normally.
        mmu.write_token(kd, 8).unwrap();
        assert_eq!(mmu.table(&kd).unwrap().len(), 4);
    }

    #[test]
    fn swap_errors_are_checked_before_any_state_change() {
        let mut mmu = MmuSim::new(4, 128);
        let k = key(1, 0, StreamClass::Dense);
        mmu.write_token(k, 100).unwrap();
        // No tier attached.
        assert_eq!(mmu.swap_out_request(1), Err(SwapError::NoHostTier));
        // Tier too small.
        mmu.attach_host_tier(0);
        assert!(matches!(
            mmu.swap_out_request(1),
            Err(SwapError::OutOfHostPages { needed: 1, free: 0 })
        ));
        assert_eq!(mmu.request_pages(1), 1, "failed swap changed nothing");
        mmu.attach_host_tier(4);
        // Shared pages cannot move tiers.
        mmu.retain_request(1);
        assert_eq!(
            mmu.swap_out_request(1),
            Err(SwapError::SharedPages { request: 1 })
        );
        mmu.release_request(1);
        // Double freeze / thaw of the unknown.
        mmu.swap_out_request(1).unwrap();
        assert_eq!(
            mmu.swap_out_request(1),
            Err(SwapError::AlreadyFrozen { request: 1 })
        );
        assert_eq!(
            mmu.swap_in_request(9),
            Err(SwapError::NotFrozen { request: 9 })
        );
        // Device full on thaw: the request stays frozen.
        for _ in 0..4 {
            mmu.write_token(key(2, 0, StreamClass::Dense), 128).unwrap();
        }
        assert!(matches!(
            mmu.swap_in_request(1),
            Err(SwapError::OutOfDevicePages { needed: 1, free: 0 })
        ));
        assert_eq!(mmu.residency(1), Some(crate::swap::Residency::Host));
        mmu.free_request(2).unwrap();
        assert_eq!(mmu.swap_in_request(1).unwrap().pages, 1);
    }

    #[test]
    fn host_tier_resize_keeps_cumulative_stats() {
        let mut mmu = MmuSim::new(4, 128);
        mmu.attach_host_tier(4);
        mmu.write_token(key(1, 0, StreamClass::Dense), 40).unwrap();
        mmu.swap_out_request(1).unwrap();
        mmu.swap_in_request(1).unwrap();
        let before = mmu.host_tier().unwrap().stats();
        assert_eq!(before.swap_outs, 1);
        mmu.attach_host_tier(16);
        assert_eq!(mmu.host_tier().unwrap().capacity(), 16);
        assert_eq!(
            mmu.host_tier().unwrap().stats(),
            before,
            "resize must not zero cumulative counters"
        );
    }

    #[test]
    fn empty_requests_freeze_and_discard_cleanly() {
        let mut mmu = MmuSim::new(4, 128);
        mmu.attach_host_tier(2);
        // A request with no streams freezes as a 0-page entry.
        let r = mmu.swap_out_request(7).unwrap();
        assert_eq!(
            r,
            SwapReceipt {
                pages: 0,
                bytes: 0,
                checksum: 0
            }
        );
        assert_eq!(mmu.residency(7), Some(crate::swap::Residency::Host));
        assert_eq!(mmu.swap_in_request(7).unwrap().pages, 0);
        assert_eq!(mmu.residency(7), None);
        // Discard releases host pages without a swap-in.
        mmu.write_token(key(3, 0, StreamClass::Dense), 40).unwrap();
        mmu.swap_out_request(3).unwrap();
        assert_eq!(mmu.discard_frozen(3).unwrap(), 1);
        assert_eq!(mmu.host_tier().unwrap().used_pages(), 0);
        // Only request 7's thaw counted as a swap-in; the discard did not.
        assert_eq!(mmu.host_tier().unwrap().stats().swap_ins, 1);
        assert!(matches!(
            mmu.discard_frozen(3),
            Err(SwapError::NotFrozen { request: 3 })
        ));
    }

    #[test]
    fn export_import_roundtrip_rebuilds_tables() {
        use crate::swap::{size_checksum, StreamPayload, TransferPayload};
        // Source MMU: one dense + one sparse stream with uneven sizes.
        let mut src = MmuSim::new(8, 128);
        let kd = key(5, 0, StreamClass::Dense);
        let ks = key(5, 0, StreamClass::Sparse);
        for size in [100u32, 60, 60] {
            src.write_token(kd, size).unwrap();
        }
        for size in [7u32, 0, 29] {
            src.write_token(ks, size).unwrap();
        }
        let sizes = src.request_stream_sizes(5);
        assert_eq!(sizes.len(), 2);
        assert_eq!(sizes[0].0, kd, "dense sorts before sparse");
        let mut payload = TransferPayload {
            streams: sizes
                .iter()
                .map(|(k, sz)| StreamPayload {
                    layer: k.layer,
                    head: k.head,
                    class: k.class,
                    sizes: sz.clone(),
                })
                .collect(),
            bytes: 0,
            checksum: 0,
        };
        payload.seal();
        assert_eq!(payload.bytes, src.request_bytes(5));

        // Destination MMU under a different local id.
        let mut dst = MmuSim::new(8, 128);
        dst.attach_host_tier(8);
        let receipt = dst.import_frozen(9, &payload).unwrap();
        assert_eq!(receipt.bytes, payload.bytes);
        assert_eq!(receipt.checksum, payload.checksum);
        assert_eq!(dst.residency(9), Some(crate::swap::Residency::Host));
        assert_eq!(dst.host_tier().unwrap().used_pages(), receipt.pages);

        let thawed = dst.swap_in_request(9).unwrap();
        assert_eq!(thawed.bytes, payload.bytes);
        let got: Vec<u32> = dst
            .table(&key(9, 0, StreamClass::Dense))
            .unwrap()
            .iter()
            .map(|e| e.size)
            .collect();
        assert_eq!(got, vec![100, 60, 60]);
        let got: Vec<u32> = dst
            .table(&key(9, 0, StreamClass::Sparse))
            .unwrap()
            .iter()
            .map(|e| e.size)
            .collect();
        assert_eq!(got, vec![7, 0, 29]);
        // Same packing rule ⇒ same tail headroom as the source stream.
        assert_eq!(
            dst.tail_free(&key(9, 0, StreamClass::Dense)),
            src.tail_free(&kd)
        );
        // The swap-out receipt's checksum is the same fold the transfer
        // carries.
        let out = src.swap_out_request(5);
        src.attach_host_tier(8);
        assert!(out.is_err(), "no host tier on src yet");
        let out = src.swap_out_request(5).unwrap();
        assert_eq!(out.checksum, size_checksum([100u32, 60, 60, 7, 0, 29]));
    }

    #[test]
    #[should_panic(expected = "checksum")]
    fn corrupted_transfer_fails_loudly_on_import() {
        use crate::swap::{StreamPayload, TransferPayload};
        let mut payload = TransferPayload {
            streams: vec![StreamPayload {
                layer: 0,
                head: 0,
                class: StreamClass::Dense,
                sizes: vec![16, 16, 16],
            }],
            bytes: 0,
            checksum: 0,
        };
        payload.seal();
        // Truncate after sealing: the wire lost a token.
        payload.streams[0].sizes.pop();
        let mut dst = MmuSim::new(4, 128);
        dst.attach_host_tier(4);
        let _ = dst.import_frozen(1, &payload);
    }

    #[test]
    fn import_checks_capacity_and_id_collisions_first() {
        use crate::swap::{StreamPayload, TransferPayload};
        let mut payload = TransferPayload {
            streams: vec![StreamPayload {
                layer: 0,
                head: 0,
                class: StreamClass::Dense,
                sizes: vec![100, 100],
            }],
            bytes: 0,
            checksum: 0,
        };
        payload.seal();
        let mut dst = MmuSim::new(4, 128);
        assert_eq!(dst.import_frozen(1, &payload), Err(SwapError::NoHostTier));
        dst.attach_host_tier(1);
        assert_eq!(
            dst.import_frozen(1, &payload),
            Err(SwapError::OutOfHostPages { needed: 2, free: 1 }),
            "two 100-byte tokens cannot share a 128-byte page"
        );
        dst.attach_host_tier(4);
        // A live local stream under the id blocks the import.
        dst.write_token(key(1, 0, StreamClass::Dense), 10).unwrap();
        assert_eq!(
            dst.import_frozen(1, &payload),
            Err(SwapError::AlreadyFrozen { request: 1 })
        );
        dst.free_request(1).unwrap();
        dst.import_frozen(1, &payload).unwrap();
        assert_eq!(
            dst.import_frozen(1, &payload),
            Err(SwapError::AlreadyFrozen { request: 1 })
        );
    }

    #[test]
    fn request_accounting_sums_streams() {
        let mut mmu = MmuSim::new(16, 128);
        for head in 0..3 {
            mmu.write_token(key(9, head, StreamClass::Dense), 40)
                .unwrap();
        }
        mmu.write_token(key(8, 0, StreamClass::Dense), 40).unwrap();
        assert_eq!(mmu.request_pages(9), 3);
        assert_eq!(mmu.request_bytes(9), 120);
        assert_eq!(mmu.request_pages(7), 0);
        assert_eq!(mmu.request_bytes(7), 0);
    }
}

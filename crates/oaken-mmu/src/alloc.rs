//! Physical page allocator over the device memory's single address space.

use crate::PhysAddr;
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

/// Allocation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The device memory has no free pages left (the OOM condition of
    /// Figures 4/11/13).
    OutOfPages {
        /// Total pages in the device.
        capacity: u32,
    },
    /// A page was freed twice or was never allocated.
    NotAllocated {
        /// The offending page.
        page: PageId,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfPages { capacity } => {
                write!(f, "out of memory: all {capacity} pages allocated")
            }
            AllocError::NotAllocated { page } => {
                write!(f, "page {page:?} is not currently allocated")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// A first-fit (lowest-id-first) physical page allocator with per-page
/// reference counts.
///
/// Lowest-id-first keeps pages of one stream as adjacent as the global
/// allocation pattern allows, which the burst planner rewards. Reference
/// counting is what makes prefix sharing possible one layer up: a page
/// holding a shared prompt's quantized rows is [retained](Self::retain)
/// once per sharer and only returns to the free set when the last sharer
/// [releases](Self::release) it.
#[derive(Debug, Clone)]
pub struct PageAllocator {
    page_size: usize,
    num_pages: u32,
    free: BTreeSet<PageId>,
    /// Reference count per page (0 = free).
    refs: Vec<u32>,
    /// Pages with refcount ≥ 2 (kept incrementally; the shared-vs-private
    /// accounting the serving stats report).
    shared: u32,
}

impl PageAllocator {
    /// Creates an allocator over `num_pages` pages of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn new(num_pages: u32, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            num_pages,
            free: (0..num_pages).map(PageId).collect(),
            refs: vec![0; num_pages as usize],
            shared: 0,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total pages.
    pub fn capacity(&self) -> u32 {
        self.num_pages
    }

    /// Currently free pages.
    pub fn free_pages(&self) -> u32 {
        self.free.len() as u32
    }

    /// Currently allocated pages.
    pub fn allocated_pages(&self) -> u32 {
        self.num_pages - self.free_pages()
    }

    /// Pages whose reference count is at least 2 — physical pages whose
    /// payload is shared by more than one owner (prefix-cache hits).
    pub fn shared_pages(&self) -> u32 {
        self.shared
    }

    /// Allocated pages with a reference count of exactly 1.
    pub fn private_pages(&self) -> u32 {
        self.allocated_pages() - self.shared
    }

    /// Current reference count of a page (0 = free).
    pub fn refcount(&self, page: PageId) -> u32 {
        self.refs.get(page.0 as usize).copied().unwrap_or(0)
    }

    /// Allocates the lowest-numbered free page with a reference count of 1.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfPages`] when the device is full.
    pub fn alloc(&mut self) -> Result<PageId, AllocError> {
        let page = *self.free.iter().next().ok_or(AllocError::OutOfPages {
            capacity: self.num_pages,
        })?;
        self.free.remove(&page);
        self.refs[page.0 as usize] = 1;
        Ok(page)
    }

    /// Adds a reference to an allocated page (a new sharer of its
    /// payload). Returns the new reference count.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] for a free or invalid page.
    pub fn retain(&mut self, page: PageId) -> Result<u32, AllocError> {
        if self.refcount(page) == 0 {
            return Err(AllocError::NotAllocated { page });
        }
        let rc = &mut self.refs[page.0 as usize];
        *rc += 1;
        if *rc == 2 {
            self.shared += 1;
        }
        Ok(*rc)
    }

    /// Drops one reference to a page, returning it to the free set when
    /// the last reference goes. Returns `true` when the page was freed.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] on over-release or an invalid
    /// id.
    pub fn release(&mut self, page: PageId) -> Result<bool, AllocError> {
        if self.refcount(page) == 0 {
            return Err(AllocError::NotAllocated { page });
        }
        let rc = &mut self.refs[page.0 as usize];
        *rc -= 1;
        match *rc {
            0 => {
                self.free.insert(page);
                Ok(true)
            }
            1 => {
                self.shared -= 1;
                Ok(false)
            }
            _ => Ok(false),
        }
    }

    /// Frees an *exclusively owned* page (refcount exactly 1) — the
    /// hard-free used for private streams, where a lingering sharer would
    /// indicate corruption.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] on double-free, an invalid id,
    /// or a page still shared by another owner.
    pub fn free(&mut self, page: PageId) -> Result<(), AllocError> {
        if self.refcount(page) != 1 {
            return Err(AllocError::NotAllocated { page });
        }
        self.refs[page.0 as usize] = 0;
        self.free.insert(page);
        Ok(())
    }

    /// Physical base address of a page.
    pub fn base_addr(&self, page: PageId) -> PhysAddr {
        PhysAddr(u64::from(page.0) * self.page_size as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lowest_first() {
        let mut a = PageAllocator::new(4, 4096);
        assert_eq!(a.alloc().unwrap(), PageId(0));
        assert_eq!(a.alloc().unwrap(), PageId(1));
        assert_eq!(a.free_pages(), 2);
    }

    #[test]
    fn exhaustion_is_oom() {
        let mut a = PageAllocator::new(2, 64);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert_eq!(a.alloc(), Err(AllocError::OutOfPages { capacity: 2 }));
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut a = PageAllocator::new(2, 64);
        let p0 = a.alloc().unwrap();
        let _p1 = a.alloc().unwrap();
        a.free(p0).unwrap();
        assert_eq!(a.alloc().unwrap(), p0);
    }

    #[test]
    fn double_free_rejected() {
        let mut a = PageAllocator::new(2, 64);
        let p = a.alloc().unwrap();
        a.free(p).unwrap();
        assert!(matches!(a.free(p), Err(AllocError::NotAllocated { .. })));
        assert!(matches!(
            a.free(PageId(9)),
            Err(AllocError::NotAllocated { .. })
        ));
    }

    #[test]
    fn retained_pages_survive_release_until_last_owner() {
        let mut a = PageAllocator::new(4, 64);
        let p = a.alloc().unwrap();
        assert_eq!(a.refcount(p), 1);
        assert_eq!(a.shared_pages(), 0);
        assert_eq!(a.retain(p).unwrap(), 2);
        assert_eq!(a.retain(p).unwrap(), 3);
        assert_eq!(a.shared_pages(), 1);
        assert_eq!(a.private_pages(), 0);
        assert!(!a.release(p).unwrap());
        assert!(!a.release(p).unwrap());
        assert_eq!(a.shared_pages(), 0);
        assert_eq!(a.private_pages(), 1);
        assert!(a.release(p).unwrap());
        assert_eq!(a.free_pages(), 4);
        assert!(matches!(a.release(p), Err(AllocError::NotAllocated { .. })));
    }

    #[test]
    fn shared_pages_cannot_be_hard_freed() {
        let mut a = PageAllocator::new(2, 64);
        let p = a.alloc().unwrap();
        a.retain(p).unwrap();
        assert!(matches!(a.free(p), Err(AllocError::NotAllocated { .. })));
        a.release(p).unwrap();
        a.free(p).unwrap();
        assert_eq!(a.free_pages(), 2);
    }

    #[test]
    fn retain_rejects_free_pages() {
        let mut a = PageAllocator::new(2, 64);
        assert!(matches!(
            a.retain(PageId(0)),
            Err(AllocError::NotAllocated { .. })
        ));
        assert!(matches!(
            a.retain(PageId(9)),
            Err(AllocError::NotAllocated { .. })
        ));
    }

    #[test]
    fn base_addresses_are_page_aligned() {
        let a = PageAllocator::new(8, 4096);
        assert_eq!(a.base_addr(PageId(0)), PhysAddr(0));
        assert_eq!(a.base_addr(PageId(3)), PhysAddr(3 * 4096));
    }
}

//! Physical page allocator over the device memory's single address space.

use crate::PhysAddr;
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

/// Allocation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The device memory has no free pages left (the OOM condition of
    /// Figures 4/11/13).
    OutOfPages {
        /// Total pages in the device.
        capacity: u32,
    },
    /// A page was freed twice or was never allocated.
    NotAllocated {
        /// The offending page.
        page: PageId,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfPages { capacity } => {
                write!(f, "out of memory: all {capacity} pages allocated")
            }
            AllocError::NotAllocated { page } => {
                write!(f, "page {page:?} is not currently allocated")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// A first-fit (lowest-id-first) physical page allocator.
///
/// Lowest-id-first keeps pages of one stream as adjacent as the global
/// allocation pattern allows, which the burst planner rewards.
#[derive(Debug, Clone)]
pub struct PageAllocator {
    page_size: usize,
    num_pages: u32,
    free: BTreeSet<PageId>,
}

impl PageAllocator {
    /// Creates an allocator over `num_pages` pages of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn new(num_pages: u32, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            num_pages,
            free: (0..num_pages).map(PageId).collect(),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total pages.
    pub fn capacity(&self) -> u32 {
        self.num_pages
    }

    /// Currently free pages.
    pub fn free_pages(&self) -> u32 {
        self.free.len() as u32
    }

    /// Currently allocated pages.
    pub fn allocated_pages(&self) -> u32 {
        self.num_pages - self.free_pages()
    }

    /// Allocates the lowest-numbered free page.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfPages`] when the device is full.
    pub fn alloc(&mut self) -> Result<PageId, AllocError> {
        let page = *self.free.iter().next().ok_or(AllocError::OutOfPages {
            capacity: self.num_pages,
        })?;
        self.free.remove(&page);
        Ok(page)
    }

    /// Frees a page.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NotAllocated`] on double-free or an invalid id.
    pub fn free(&mut self, page: PageId) -> Result<(), AllocError> {
        if page.0 >= self.num_pages || self.free.contains(&page) {
            return Err(AllocError::NotAllocated { page });
        }
        self.free.insert(page);
        Ok(())
    }

    /// Physical base address of a page.
    pub fn base_addr(&self, page: PageId) -> PhysAddr {
        PhysAddr(u64::from(page.0) * self.page_size as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lowest_first() {
        let mut a = PageAllocator::new(4, 4096);
        assert_eq!(a.alloc().unwrap(), PageId(0));
        assert_eq!(a.alloc().unwrap(), PageId(1));
        assert_eq!(a.free_pages(), 2);
    }

    #[test]
    fn exhaustion_is_oom() {
        let mut a = PageAllocator::new(2, 64);
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert_eq!(a.alloc(), Err(AllocError::OutOfPages { capacity: 2 }));
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut a = PageAllocator::new(2, 64);
        let p0 = a.alloc().unwrap();
        let _p1 = a.alloc().unwrap();
        a.free(p0).unwrap();
        assert_eq!(a.alloc().unwrap(), p0);
    }

    #[test]
    fn double_free_rejected() {
        let mut a = PageAllocator::new(2, 64);
        let p = a.alloc().unwrap();
        a.free(p).unwrap();
        assert!(matches!(a.free(p), Err(AllocError::NotAllocated { .. })));
        assert!(matches!(
            a.free(PageId(9)),
            Err(AllocError::NotAllocated { .. })
        ));
    }

    #[test]
    fn base_addresses_are_page_aligned() {
        let a = PageAllocator::new(8, 4096);
        assert_eq!(a.base_addr(PageId(0)), PhysAddr(0));
        assert_eq!(a.base_addr(PageId(3)), PhysAddr(3 * 4096));
    }
}

//! Property tests for the transformer substrate: attention laws and cache
//! equivalence under arbitrary inputs.

use oaken_model::{attend_one, AttentionShape, ExactCache, KvCacheBackend, Model, ModelConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Attention output is a convex combination of the cached values:
    /// every output coordinate lies within the min/max of that coordinate
    /// across cached positions (per KV head).
    #[test]
    fn attention_is_convex_combination(
        q in prop::collection::vec(-4.0f32..4.0, 8),
        kv in prop::collection::vec(-4.0f32..4.0, 8 * 6),
    ) {
        let shape = AttentionShape { num_heads: 2, num_kv_heads: 2, head_dim: 4, window: None };
        let seq_len = kv.len() / shape.kv_dim() / 2 * 2; // keys + values halves
        let (keys, values) = kv.split_at(kv.len() / 2);
        let seq = keys.len() / shape.kv_dim();
        prop_assume!(seq >= 1);
        let _ = seq_len;
        let out = attend_one(&q, &keys[..seq * 8], &values[..seq * 8], seq, &shape);
        for h in 0..shape.num_heads {
            for c in 0..shape.head_dim {
                let coord = h * shape.head_dim + c;
                let kvh = h; // one-to-one here
                let column: Vec<f32> = (0..seq)
                    .map(|t| values[t * shape.kv_dim() + kvh * shape.head_dim + c])
                    .collect();
                let min = column.iter().cloned().fold(f32::INFINITY, f32::min);
                let max = column.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(
                    out[coord] >= min - 1e-4 && out[coord] <= max + 1e-4,
                    "coord {coord}: {} outside [{min}, {max}]",
                    out[coord]
                );
            }
        }
    }

    /// A sliding window of `seq_len` or larger equals full attention.
    #[test]
    fn window_at_least_seq_is_identity(
        q in prop::collection::vec(-2.0f32..2.0, 4),
        kv in prop::collection::vec(-2.0f32..2.0, 4 * 10),
    ) {
        let shape_full = AttentionShape { num_heads: 1, num_kv_heads: 1, head_dim: 4, window: None };
        let seq = kv.len() / 4 / 2;
        let (keys, values) = kv.split_at(seq * 4);
        let shape_win = AttentionShape { window: Some(seq + 3), ..shape_full };
        let a = attend_one(&q, keys, &values[..seq * 4], seq, &shape_full);
        let b = attend_one(&q, keys, &values[..seq * 4], seq, &shape_win);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    /// The exact cache is a faithful recorder: reads return exactly the
    /// appended rows in order.
    #[test]
    fn exact_cache_is_faithful(
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 8), 1..20),
    ) {
        let mut cache = ExactCache::new();
        cache.reset(1, 8);
        for r in &rows {
            cache.append(0, r, r);
        }
        prop_assert_eq!(cache.seq_len(0), rows.len());
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        prop_assert_eq!(cache.keys(0), &flat[..]);
        prop_assert_eq!(cache.values(0), &flat[..]);
    }
}

/// Deterministic construction: the same (config, seed) always builds the
/// same model, and different seeds differ.
#[test]
fn model_construction_deterministic() {
    let cfg = ModelConfig::llama2_7b().proxy(2, 32);
    let a = Model::synthetic(cfg.clone(), 9);
    let b = Model::synthetic(cfg.clone(), 9);
    let c = Model::synthetic(cfg, 10);
    let mut sa = a.session(Box::new(ExactCache::new()));
    let mut sb = b.session(Box::new(ExactCache::new()));
    let mut sc = c.session(Box::new(ExactCache::new()));
    let la = sa.prefill(&[1, 2, 3]);
    let lb = sb.prefill(&[1, 2, 3]);
    let lc = sc.prefill(&[1, 2, 3]);
    assert_eq!(la, lb);
    assert_ne!(la, lc);
}

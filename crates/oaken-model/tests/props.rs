//! Property tests for the transformer substrate: attention laws, cache
//! equivalence under arbitrary inputs, and bit-exactness of the
//! incremental quantized-cache path against the batch recompute path
//! across random append/read schedules.

use oaken_baselines::{AtomStyle, Fp16Reference, QServeStyle, TenderStyle};
use oaken_core::{KvKind, KvQuantizer, OakenConfig, OakenQuantizer, OfflineProfiler};
use oaken_model::QuantizedCache;
use oaken_model::{
    attend_one, attend_one_fused, AttentionShape, EncodedKv, ExactCache, KernelMode,
    KvCacheBackend, Model, ModelConfig,
};
use proptest::prelude::*;
use std::sync::Arc;

/// KV-like row with occasional outer and inner outliers.
fn kv_row(d: usize, seed: u64) -> Vec<f32> {
    (0..d)
        .map(|i| {
            let u = ((i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed * 1_000_003)
                >> 33) as f32
                / (1u64 << 31) as f32;
            let base = (u - 0.5) * 6.0;
            match i % 23 {
                0 => base * 11.0,
                1 => base * 0.015,
                _ => base,
            }
        })
        .collect()
}

fn profiled_oaken(d: usize, layers: usize) -> OakenQuantizer {
    let config = OakenConfig::default();
    let mut p = OfflineProfiler::new(config.clone(), layers);
    for s in 0..24 {
        for layer in 0..layers {
            for kind in KvKind::ALL {
                p.observe(layer, kind, &kv_row(d.max(128), s * 5 + layer as u64));
            }
        }
    }
    OakenQuantizer::new(config, p.try_finish().unwrap())
}

/// Every method whose streaming path must match the batch path bit-for-bit.
fn token_granular_methods(d: usize, layers: usize) -> Vec<Arc<dyn KvQuantizer>> {
    vec![
        Arc::new(profiled_oaken(d, layers)),
        Arc::new(Fp16Reference::new()),
        Arc::new(AtomStyle::default()),
        Arc::new(QServeStyle::default()),
        Arc::new(TenderStyle::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Attention output is a convex combination of the cached values:
    /// every output coordinate lies within the min/max of that coordinate
    /// across cached positions (per KV head).
    #[test]
    fn attention_is_convex_combination(
        q in prop::collection::vec(-4.0f32..4.0, 8),
        kv in prop::collection::vec(-4.0f32..4.0, 8 * 6),
    ) {
        let shape = AttentionShape { num_heads: 2, num_kv_heads: 2, head_dim: 4, window: None };
        let seq_len = kv.len() / shape.kv_dim() / 2 * 2; // keys + values halves
        let (keys, values) = kv.split_at(kv.len() / 2);
        let seq = keys.len() / shape.kv_dim();
        prop_assume!(seq >= 1);
        let _ = seq_len;
        let out = attend_one(&q, &keys[..seq * 8], &values[..seq * 8], seq, &shape);
        for h in 0..shape.num_heads {
            for c in 0..shape.head_dim {
                let coord = h * shape.head_dim + c;
                let kvh = h; // one-to-one here
                let column: Vec<f32> = (0..seq)
                    .map(|t| values[t * shape.kv_dim() + kvh * shape.head_dim + c])
                    .collect();
                let min = column.iter().cloned().fold(f32::INFINITY, f32::min);
                let max = column.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(
                    out[coord] >= min - 1e-4 && out[coord] <= max + 1e-4,
                    "coord {coord}: {} outside [{min}, {max}]",
                    out[coord]
                );
            }
        }
    }

    /// A sliding window of `seq_len` or larger equals full attention.
    #[test]
    fn window_at_least_seq_is_identity(
        q in prop::collection::vec(-2.0f32..2.0, 4),
        kv in prop::collection::vec(-2.0f32..2.0, 4 * 10),
    ) {
        let shape_full = AttentionShape { num_heads: 1, num_kv_heads: 1, head_dim: 4, window: None };
        let seq = kv.len() / 4 / 2;
        let (keys, values) = kv.split_at(seq * 4);
        let shape_win = AttentionShape { window: Some(seq + 3), ..shape_full };
        let a = attend_one(&q, keys, &values[..seq * 4], seq, &shape_full);
        let b = attend_one(&q, keys, &values[..seq * 4], seq, &shape_win);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    /// The exact cache is a faithful recorder: reads return exactly the
    /// appended rows in order.
    #[test]
    fn exact_cache_is_faithful(
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 8), 1..20),
    ) {
        let mut cache = ExactCache::new();
        cache.reset(1, 8);
        for r in &rows {
            cache.append(0, r, r);
        }
        prop_assert_eq!(cache.seq_len(0), rows.len());
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        prop_assert_eq!(cache.keys(0), &flat[..]);
        prop_assert_eq!(cache.values(0), &flat[..]);
    }

    /// The incremental streaming cache is bit-exact with the batch
    /// recompute path for Oaken and every token-granular baseline, across
    /// random append schedules with interleaved reads (reads at arbitrary
    /// prefix lengths must already agree — not just the final state).
    #[test]
    fn incremental_cache_bit_exact_with_recompute(
        seed in 0u64..1_000,
        tokens in 5usize..40,
        read_every in 1usize..7,
    ) {
        let d = 48;
        let layers = 2;
        for q in token_granular_methods(d, layers) {
            let mut inc = QuantizedCache::new(q.clone());
            let mut rec = QuantizedCache::new_recompute(q.clone());
            inc.reset(layers, d);
            rec.reset(layers, d);
            for t in 0..tokens {
                for layer in 0..layers {
                    let k = kv_row(d, seed * 31 + (t * layers + layer) as u64);
                    let v = kv_row(d, seed * 37 + (t * layers + layer) as u64 + 7_777);
                    inc.append(layer, &k, &v);
                    rec.append(layer, &k, &v);
                }
                if t % read_every == 0 || t + 1 == tokens {
                    for layer in 0..layers {
                        let ik: Vec<u32> = inc.keys(layer).iter().map(|x| x.to_bits()).collect();
                        let rk: Vec<u32> = rec.keys(layer).iter().map(|x| x.to_bits()).collect();
                        prop_assert_eq!(ik, rk, "{} keys diverged at token {}", q.name(), t);
                        let iv: Vec<u32> = inc.values(layer).iter().map(|x| x.to_bits()).collect();
                        let rv: Vec<u32> = rec.values(layer).iter().map(|x| x.to_bits()).collect();
                        prop_assert_eq!(iv, rv, "{} values diverged at token {}", q.name(), t);
                    }
                }
            }
            for layer in 0..layers {
                prop_assert_eq!(inc.seq_len(layer), tokens);
            }
        }
    }

    /// End-to-end: a full decode through the incremental cache produces the
    /// exact same attention outputs (hence logits) as the recompute cache.
    #[test]
    fn decode_logits_identical_between_cache_modes(seed in 0u64..500) {
        let cfg = ModelConfig::llama2_7b().proxy(2, 32);
        let model = Model::synthetic(cfg, 42);
        let q: Arc<dyn KvQuantizer> = Arc::new(profiled_oaken(model.config().kv_dim(), 2));
        let mut inc = model.session(Box::new(QuantizedCache::new(q.clone())));
        let mut rec = model.session(Box::new(QuantizedCache::new_recompute(q)));
        let prompt: Vec<u32> = (0..6).map(|i| ((seed + i * 97) % 64) as u32).collect();
        let a = inc.prefill(&prompt);
        let b = rec.prefill(&prompt);
        let a_bits: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
        let b_bits: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(a_bits, b_bits);
    }
}

/// Deterministic construction: the same (config, seed) always builds the
/// same model, and different seeds differ.
#[test]
fn model_construction_deterministic() {
    let cfg = ModelConfig::llama2_7b().proxy(2, 32);
    let a = Model::synthetic(cfg.clone(), 9);
    let b = Model::synthetic(cfg.clone(), 9);
    let c = Model::synthetic(cfg, 10);
    let mut sa = a.session(Box::new(ExactCache::new()));
    let mut sb = b.session(Box::new(ExactCache::new()));
    let mut sc = c.session(Box::new(ExactCache::new()));
    let la = sa.prefill(&[1, 2, 3]);
    let lb = sb.prefill(&[1, 2, 3]);
    let lc = sc.prefill(&[1, 2, 3]);
    assert_eq!(la, lb);
    assert_ne!(la, lc);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fused quantized-domain kernels' numerical contract: over random
    /// shapes, sequence lengths, windows, and row contents, the fused
    /// output tracks the exact kernels run on the *decoded views of the
    /// same encoded rows* within a tight accumulation-order bound — both
    /// per-coordinate relative error and aggregate SQNR. The stored bits
    /// are identical either way; the only divergence is f32 summation
    /// order inside the kernels.
    #[test]
    fn fused_kernel_is_sqnr_bounded_against_exact(
        kv_heads in 1usize..4,
        group in 1usize..3,
        head_dim_sel in 0usize..2,
        seq_len in 1usize..41,
        window_sel in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let head_dim = [8, 16][head_dim_sel];
        let window = [None, Some(7), Some(21)][window_sel];
        let shape = AttentionShape {
            num_heads: kv_heads * group,
            num_kv_heads: kv_heads,
            head_dim,
            window,
        };
        let d = shape.kv_dim();
        let quant = profiled_oaken(d, 1);
        let mut k_stream = quant.row_stream(d, 0, KvKind::Key).expect("oaken streams");
        let mut v_stream = quant.row_stream(d, 0, KvKind::Value).expect("oaken streams");
        let (mut k_view, mut v_view) = (Vec::new(), Vec::new());
        for t in 0..seq_len as u64 {
            k_stream.append_row(&kv_row(d, seed * 31 + 2 * t), &mut k_view);
            v_stream.append_row(&kv_row(d, seed * 37 + 2 * t + 1), &mut v_view);
        }
        // Exercise both coefficient paths: the stream's decode cache for
        // keys, the kernels' scratch rebuild for values.
        let ek = EncodedKv {
            rows: k_stream.encoded_rows().expect("encoded state"),
            params: k_stream.fused_read_params().expect("fused-capable"),
            plan: k_stream.read_plan(),
        };
        let ev = EncodedKv {
            rows: v_stream.encoded_rows().expect("encoded state"),
            params: v_stream.fused_read_params().expect("fused-capable"),
            plan: None,
        };
        let q = kv_row(shape.q_dim(), seed ^ 0xABCD);

        let exact = attend_one(&q, &k_view, &v_view, seq_len, &shape);
        let fused = attend_one_fused(&q, &ek, &ev, seq_len, &shape);
        prop_assert_eq!(exact.len(), fused.len());

        let scale = exact.iter().fold(0.0f32, |m, x| m.max(x.abs())).max(1e-6);
        let mut signal = 0.0f64;
        let mut noise = 0.0f64;
        for (i, (a, b)) in exact.iter().zip(&fused).enumerate() {
            prop_assert!(b.is_finite(), "fused coordinate {} not finite", i);
            prop_assert!(
                (a - b).abs() / scale < 5e-4,
                "coordinate {}: exact {} fused {} (scale {})", i, a, b, scale
            );
            signal += (*a as f64) * (*a as f64);
            noise += (*a as f64 - *b as f64) * (*a as f64 - *b as f64);
        }
        if noise > 0.0 {
            let sqnr_db = 10.0 * (signal / noise).log10();
            prop_assert!(
                sqnr_db >= 60.0,
                "SQNR {} dB below the fused kernels' 60 dB contract", sqnr_db
            );
        }
    }

    /// End-to-end: a fused-kernel session over the Oaken cache stays
    /// within the same closeness bound of its exact-kernel twin at the
    /// logit level, for random prompts.
    #[test]
    fn fused_session_tracks_exact_session(seed in 0u64..500) {
        let cfg = ModelConfig::llama2_7b().proxy(2, 32);
        let model = Model::synthetic(cfg, 42);
        let q: Arc<dyn KvQuantizer> =
            Arc::new(profiled_oaken(model.config().kv_dim(), 2));
        let mut exact = model.session(Box::new(QuantizedCache::new(q.clone())));
        let mut fused = model.session(Box::new(QuantizedCache::new(q)));
        prop_assert_eq!(fused.set_kernel_mode(KernelMode::Fused), KernelMode::Fused);
        let prompt: Vec<u32> = (0..7).map(|i| ((seed + i * 131) % 64) as u32).collect();
        let a = exact.prefill(&prompt);
        let b = fused.prefill(&prompt);
        let scale = a.iter().fold(0.0f32, |m, x| m.max(x.abs())).max(1e-6);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!(
                (x - y).abs() / scale < 1e-2,
                "logit {} diverged: exact {} fused {}", i, x, y
            );
        }
    }
}

//! Proves the paged pool's **parallel batched append path** is
//! allocation-free in steady state: once buffers have grown to their
//! working capacity, a window of `append_batch` calls on a multi-threaded
//! runtime performs **zero** heap allocations — the fork-join dispatch,
//! the pool's batch scratch, the per-slot row appends, and the MMU page
//! commit all run on reused storage (the software analogue of the
//! hardware engines' fixed SRAM buffers).
//!
//! The pool under test stores exact f32 rows. That choice is deliberate:
//! quantizers whose streams retain per-row *encoded* payloads (Oaken's
//! `FusedVector`s) allocate for the stored state itself on every append —
//! inherent storage growth, not overhead of the append path. Exact
//! storage appends into pre-grown flat buffers, so any allocation observed
//! here would be genuine overhead introduced by the batched/parallel
//! machinery.
//!
//! This file intentionally holds a single test: the counting global
//! allocator must not observe allocations from concurrently running tests.

use oaken_model::{
    BatchAppend, BatchKvCache, ModelConfig, PagedKvPool, PoolBatchView, SeqRowAppend,
};
use oaken_runtime::Runtime;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn kv_row(d: usize, seed: u64) -> Vec<f32> {
    (0..d)
        .map(|i| {
            let u = ((i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed * 7_919)
                >> 33) as f32
                / (1u64 << 31) as f32;
            (u - 0.5) * 6.0
        })
        .collect()
}

#[test]
fn steady_state_parallel_append_batch_makes_zero_allocations() {
    let layers = 2;
    let d = 64;
    let mut cfg = ModelConfig::llama2_7b().proxy(layers, d);
    cfg.num_heads = 2;
    cfg.num_kv_heads = 2;
    // Big pages so the measured window never crosses a page boundary: the
    // point is the append path's own overhead, not page-list growth.
    let mut pool = PagedKvPool::for_model(&cfg, None, 512, 65_536);
    let rt = Runtime::new(4);
    let seqs = [
        pool.alloc_seq(),
        pool.alloc_seq(),
        pool.alloc_seq(),
        pool.alloc_seq(),
    ];

    // Pre-generate every row (input generation is allowed to allocate;
    // the append path is what must not).
    let warm_tokens = 96usize;
    let measured_tokens = 8usize;
    let total = warm_tokens + measured_tokens;
    let rows: Vec<Vec<Vec<f32>>> = (0..total)
        .map(|t| {
            (0..seqs.len() * layers * 2)
                .map(|j| kv_row(d, (t * 97 + j) as u64))
                .collect()
        })
        .collect();
    let row = |t: usize, s: usize, layer: usize, kind: usize| -> &[f32] {
        &rows[t][(s * layers + layer) * 2 + kind]
    };

    // Warm-up: buffers (views, MMU tables, batch scratch) grow to their
    // steady-state capacity, worker threads spawn and park.
    for t in 0..warm_tokens {
        for layer in 0..layers {
            let items = [
                SeqRowAppend {
                    seq: seqs[0],
                    k: row(t, 0, layer, 0),
                    v: row(t, 0, layer, 1),
                },
                SeqRowAppend {
                    seq: seqs[1],
                    k: row(t, 1, layer, 0),
                    v: row(t, 1, layer, 1),
                },
                SeqRowAppend {
                    seq: seqs[2],
                    k: row(t, 2, layer, 0),
                    v: row(t, 2, layer, 1),
                },
                SeqRowAppend {
                    seq: seqs[3],
                    k: row(t, 3, layer, 0),
                    v: row(t, 3, layer, 1),
                },
            ];
            pool.append_batch(&rt, layer, &items).unwrap();
        }
    }

    // Measured window: the batched parallel append path must not allocate.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for t in warm_tokens..total {
        for layer in 0..layers {
            let items = [
                SeqRowAppend {
                    seq: seqs[0],
                    k: row(t, 0, layer, 0),
                    v: row(t, 0, layer, 1),
                },
                SeqRowAppend {
                    seq: seqs[1],
                    k: row(t, 1, layer, 0),
                    v: row(t, 1, layer, 1),
                },
                SeqRowAppend {
                    seq: seqs[2],
                    k: row(t, 2, layer, 0),
                    v: row(t, 2, layer, 1),
                },
                SeqRowAppend {
                    seq: seqs[3],
                    k: row(t, 3, layer, 0),
                    v: row(t, 3, layer, 1),
                },
            ];
            pool.append_batch(&rt, layer, &items).unwrap();
        }
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta,
        0,
        "steady-state parallel append_batch performed {delta} heap allocations \
         over {measured_tokens} tokens x {layers} layers x {} sequences",
        seqs.len()
    );
    // Sanity: the rows actually landed.
    for &s in &seqs {
        assert_eq!(pool.seq_len(s, 0), total);
    }

    // The engine's slot-mapped adapter (`PoolBatchView::append_batch`,
    // the path `forward_batch_on` actually drives) must be equally
    // allocation-free: it translates slots through the accessor form
    // instead of materializing a mapped item list.
    let seq_list: Vec<_> = seqs.to_vec();
    let k0 = kv_row(d, 9_001);
    let v0 = kv_row(d, 9_002);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    {
        let mut view = PoolBatchView::new(&mut pool, &seq_list);
        for layer in 0..layers {
            let items = [
                BatchAppend {
                    slot: 0,
                    k: &k0,
                    v: &v0,
                },
                BatchAppend {
                    slot: 1,
                    k: &k0,
                    v: &v0,
                },
                BatchAppend {
                    slot: 2,
                    k: &k0,
                    v: &v0,
                },
                BatchAppend {
                    slot: 3,
                    k: &k0,
                    v: &v0,
                },
            ];
            view.append_batch(&rt, layer, &items);
        }
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "PoolBatchView::append_batch performed {delta} heap allocations"
    );
    for &s in &seqs {
        assert_eq!(pool.seq_len(s, 0), total + 1);
    }
}

//! Proves the decode-path attention kernels are **allocation-free in
//! steady state**: once an [`AttentionScratch`] and an output buffer have
//! grown to working capacity, a window of `attend_one_into` /
//! `attend_one_fused_into` calls performs **zero** heap allocations — the
//! scores buffer, the per-row decode tables, and the context vector all
//! live in caller-owned reused storage. This is the scratch-reuse
//! guarantee the serial forward pass relies on for every `(token, layer)`
//! step of a decode.
//!
//! This file intentionally holds a single test: the counting global
//! allocator must not observe allocations from concurrently running tests.

use oaken_core::{KvKind, KvQuantizer, OakenConfig, OakenQuantizer, OfflineProfiler};
use oaken_model::{
    attend_one_fused_into, attend_one_into, AttentionScratch, AttentionShape, EncodedKv,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn kv_row(d: usize, seed: u64) -> Vec<f32> {
    (0..d)
        .map(|i| {
            let u = ((i as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(seed * 7_919)
                >> 33) as f32
                / (1u64 << 31) as f32;
            let base = (u - 0.5) * 6.0;
            match i % 19 {
                0 => base * 9.0,
                1 => base * 0.02,
                _ => base,
            }
        })
        .collect()
}

fn oaken(d: usize) -> OakenQuantizer {
    let config = OakenConfig::default();
    let mut p = OfflineProfiler::new(config.clone(), 1);
    for s in 0..24 {
        for kind in KvKind::ALL {
            p.observe(0, kind, &kv_row(d.max(64), s * 3 + 1));
        }
    }
    OakenQuantizer::new(config, p.try_finish().unwrap())
}

#[test]
fn steady_state_attention_kernels_make_zero_allocations() {
    let shape = AttentionShape {
        num_heads: 4,
        num_kv_heads: 2,
        head_dim: 16,
        window: None,
    };
    let d = shape.kv_dim();
    let seq_len = 24usize;
    let q: Vec<f32> = kv_row(shape.q_dim(), 99);

    // Exact-path inputs: flat f32 K/V matrices.
    let mut keys = Vec::new();
    let mut values = Vec::new();
    for t in 0..seq_len as u64 {
        keys.extend(kv_row(d, 2 * t + 1));
        values.extend(kv_row(d, 1_000 + 2 * t));
    }

    // Fused-path inputs: the same rows in encoded form, via the real
    // Oaken row streams (storage growth happens here, during setup).
    let quant = oaken(d);
    let mut k_stream = quant.row_stream(d, 0, KvKind::Key).expect("oaken streams");
    let mut v_stream = quant
        .row_stream(d, 0, KvKind::Value)
        .expect("oaken streams");
    let mut scratch_view = Vec::new();
    for t in 0..seq_len {
        k_stream.append_row(&keys[t * d..(t + 1) * d], &mut scratch_view);
        v_stream.append_row(&values[t * d..(t + 1) * d], &mut scratch_view);
    }
    let ek = EncodedKv {
        rows: k_stream.encoded_rows().expect("oaken keeps encoded rows"),
        params: k_stream.fused_read_params().expect("fused-capable"),
        plan: k_stream.read_plan(),
    };
    let ev = EncodedKv {
        rows: v_stream.encoded_rows().expect("oaken keeps encoded rows"),
        params: v_stream.fused_read_params().expect("fused-capable"),
        plan: v_stream.read_plan(),
    };

    let mut scratch = AttentionScratch::default();
    let mut out = Vec::new();

    // Warm-up: grow the scratch and output to working capacity.
    attend_one_into(&q, &keys, &values, seq_len, &shape, &mut scratch, &mut out);
    attend_one_fused_into(&q, &ek, &ev, seq_len, &shape, &mut scratch, &mut out);

    // Measured window: both kernels, warm buffers, zero allocations.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..32 {
        attend_one_into(&q, &keys, &values, seq_len, &shape, &mut scratch, &mut out);
        attend_one_fused_into(&q, &ek, &ev, seq_len, &shape, &mut scratch, &mut out);
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(out.iter().all(|v| v.is_finite()));
    assert_eq!(
        delta, 0,
        "steady-state attention kernels must not allocate ({delta} allocations in the window)"
    );
}

//! Channel-sharded KV quantization for tensor-parallel ranks.
//!
//! A rank's private [`PagedKvPool`](crate::pool::PagedKvPool) shard stores
//! only its KV heads' channels, but Oaken's quantization scales are
//! **whole-row** min/max reductions (paper §4.3): slicing the row first and
//! quantizing the slice would compute different scales and different bits
//! than the unsharded cache. The sharded stream therefore quantizes the
//! *full* row exactly once — the same arithmetic, the same scratch walk as
//! the 1-rank pool — and then stores only the
//! [`FusedVector::slice_channels`] shard of the encoding. Since min/max
//! reductions are exact and every channel decodes as a pure function of its
//! own code, outlier entry, and the shared scales, the shard's dequantized
//! image is bit-identical to the corresponding channels of the 1-rank
//! cache. (A real rank group would compute partial scales and min/max
//! all-reduce them — an associative, exact reduction with the same result;
//! the forward pass accounts those scale syncs to
//! [`CommStats`](oaken_runtime::CommStats).)
//!
//! Two wrapped streams implement this:
//!
//! * `full` — an inner stream of the full row width, used purely as the
//!   quantization engine. It is reset after every row (sound because the
//!   encoded-capable quantizers this module accepts are stateless per row —
//!   [`KvQuantizer::prefix_deterministic`] methods by construction).
//! * `local` — an inner stream of the shard width that owns the sliced
//!   encoded rows, their [`EncodedReadPlan`], payload accounting, and the
//!   decode path, all via the stream's own `adopt_encoded_rows` and
//!   `decode_rows_into` machinery. Trie blocks sealed from a sharded
//!   stream hold sliced vectors, so prefix adoption also lands here.
//!
//! Quantizers without the encoded-row path cannot be sharded (`row_stream`
//! returns `None`, which the pool's streaming gate turns into a clear
//! construction failure).

use oaken_core::{
    EncodedReadPlan, FusedReadParams, FusedVector, KvKind, KvQuantizer, KvRowStream, OnlineCost,
};
use std::sync::Arc;

/// A [`KvQuantizer`] adaptor that presents a contiguous channel slice
/// `start..start + dim` of a `full_dim`-wide quantizer as a standalone
/// `dim`-wide method — the quantizer a rank's private pool shard runs.
pub(crate) struct ShardedQuantizer {
    inner: Arc<dyn KvQuantizer>,
    /// First sliced channel in the full row.
    start: usize,
    /// Shard width (the wrapped pool's `kv_dim`).
    dim: usize,
    /// Full row width (what append sites must supply).
    full_dim: usize,
}

impl ShardedQuantizer {
    pub(crate) fn new(
        inner: Arc<dyn KvQuantizer>,
        start: usize,
        dim: usize,
        full_dim: usize,
    ) -> Self {
        assert!(start + dim <= full_dim, "shard exceeds full row width");
        Self {
            inner,
            start,
            dim,
            full_dim,
        }
    }
}

impl KvQuantizer for ShardedQuantizer {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn roundtrip_matrix(
        &self,
        _data: &[f32],
        _rows: usize,
        _d: usize,
        _layer: usize,
        _kind: KvKind,
    ) -> Vec<f32> {
        // The pool only reaches the matrix fallback when streaming is
        // unavailable, and sharded pools assert streaming at construction.
        unreachable!("sharded pools always run the streaming path")
    }

    fn effective_bits(&self, rows: usize, d: usize) -> f64 {
        // Nominal estimate at the shard width: the scale metadata is
        // genuinely replicated per rank (each shard stores its own copy),
        // which the inner formula's per-`d` amortization captures.
        self.inner.effective_bits(rows, d)
    }

    fn online_cost(&self) -> OnlineCost {
        self.inner.online_cost()
    }

    fn row_stream(&self, d: usize, layer: usize, kind: KvKind) -> Option<Box<dyn KvRowStream>> {
        assert_eq!(d, self.dim, "shard stream width mismatch");
        let full = self.inner.row_stream(self.full_dim, layer, kind)?;
        // Slicing needs the encoded form; without it there is nothing to
        // shard and the pool must refuse to build.
        full.encoded_rows()?;
        let local = self.inner.row_stream(self.dim, layer, kind)?;
        Some(Box::new(ShardedRowStream {
            full,
            local,
            start: self.start,
            dim: self.dim,
            full_dim: self.full_dim,
            rows: 0,
            scratch: Vec::new(),
        }))
    }

    fn prefix_deterministic(&self) -> bool {
        self.inner.prefix_deterministic()
    }
}

/// The per-`(layer, kind)` stream of a rank's pool shard: quantizes full
/// rows, stores channel slices. See the module docs for the design.
struct ShardedRowStream {
    /// Full-width inner stream: the quantization engine, reset per row.
    full: Box<dyn KvRowStream>,
    /// Shard-width inner stream: owns the sliced rows, plan, payload.
    local: Box<dyn KvRowStream>,
    start: usize,
    dim: usize,
    full_dim: usize,
    rows: usize,
    /// Full-width dequantized image of the row being appended.
    scratch: Vec<f32>,
}

impl ShardedRowStream {
    /// Moves `full`'s single encoded row into `local` as a channel slice
    /// and resets `full` for the next row.
    fn adopt_sliced_row(&mut self) {
        let sliced = {
            let rows = self
                .full
                .encoded_rows()
                .expect("capability checked at stream construction");
            let fv = rows.last().expect("append just pushed a row");
            fv.slice_channels(self.start..self.start + self.dim)
                .expect("shard range validated at construction")
        };
        let ok = self.local.adopt_encoded_rows(std::slice::from_ref(&sliced));
        assert!(ok, "capability checked at stream construction");
        // Stateless-per-row contract: a reset stream is bit-exact with a
        // fresh one, so the engine can be reused for every row.
        self.full.reset();
        self.rows += 1;
    }
}

impl KvRowStream for ShardedRowStream {
    fn append_row(&mut self, row: &[f32], view: &mut Vec<f32>) {
        assert_eq!(row.len(), self.full_dim, "sharded streams take full rows");
        // Canonical full-row roundtrip, then slice the dequantized image:
        // exactly the channels the 1-rank view holds for this shard.
        self.scratch.clear();
        self.full.append_row(row, &mut self.scratch);
        view.extend_from_slice(&self.scratch[self.start..self.start + self.dim]);
        self.adopt_sliced_row();
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn payload_bytes(&self) -> Option<usize> {
        // `local` accounts adopted rows at their actual sliced sizes.
        self.local.payload_bytes()
    }

    fn reset(&mut self) {
        self.full.reset();
        self.local.reset();
        self.rows = 0;
    }

    fn last_row_payload(&self) -> Option<(usize, usize)> {
        self.local.last_row_payload()
    }

    fn encoded_rows(&self) -> Option<&[FusedVector]> {
        self.local.encoded_rows()
    }

    fn append_row_encoded(&mut self, row: &[f32]) -> bool {
        assert_eq!(row.len(), self.full_dim, "sharded streams take full rows");
        if !self.full.append_row_encoded(row) {
            return false;
        }
        self.adopt_sliced_row();
        true
    }

    fn fused_read_params(&self) -> Option<FusedReadParams> {
        self.local.fused_read_params()
    }

    fn read_plan(&self) -> Option<&EncodedReadPlan> {
        self.local.read_plan()
    }

    fn adopt_encoded_rows(&mut self, rows: &[FusedVector]) -> bool {
        // Trie blocks sealed from sharded streams already hold sliced
        // vectors; they adopt straight into the local state.
        if !self.local.adopt_encoded_rows(rows) {
            return false;
        }
        self.rows += rows.len();
        true
    }

    fn decode_rows_into(&self, start: usize, end: usize, out: &mut Vec<f32>) -> bool {
        self.local.decode_rows_into(start, end, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaken_core::{OakenConfig, OakenQuantizer, OfflineProfiler};

    fn test_vector(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let u = ((i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed)
                    >> 33) as f32
                    / (1u64 << 31) as f32;
                (u - 0.5) * if i % 37 == 0 { 24.0 } else { 4.0 }
            })
            .collect()
    }

    fn quantizer(d: usize) -> Arc<dyn KvQuantizer> {
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), 2);
        for s in 0..24 {
            for layer in 0..2 {
                for kind in KvKind::ALL {
                    p.observe(layer, kind, &test_vector(d, s * 5 + layer as u64));
                }
            }
        }
        Arc::new(OakenQuantizer::new(config, p.try_finish().unwrap()))
    }

    #[test]
    fn sharded_stream_views_match_full_stream_slices() {
        let full_dim = 96; // e.g. 6 heads × 16 — split 4 + 2 unevenly.
        let q = quantizer(full_dim);
        for (start, dim) in [(0usize, 64usize), (64, 32), (16, 48)] {
            let sq = ShardedQuantizer::new(q.clone(), start, dim, full_dim);
            let mut sharded = sq.row_stream(dim, 0, KvKind::Key).unwrap();
            let mut reference = q.row_stream(full_dim, 0, KvKind::Key).unwrap();
            let mut sview = Vec::new();
            let mut rview = Vec::new();
            for seed in 0..6 {
                let row = test_vector(full_dim, 1000 + seed);
                sharded.append_row(&row, &mut sview);
                reference.append_row(&row, &mut rview);
            }
            assert_eq!(sharded.rows(), 6);
            assert_eq!(sview.len(), 6 * dim);
            for r in 0..6 {
                for c in 0..dim {
                    assert_eq!(
                        sview[r * dim + c].to_bits(),
                        rview[r * full_dim + start + c].to_bits(),
                        "row {r} channel {c} of shard {start}+{dim}"
                    );
                }
            }
            // Encoded rows are genuine dim-width vectors with the full
            // row's scales.
            let enc = sharded.encoded_rows().unwrap();
            let renc = reference.encoded_rows().unwrap();
            assert_eq!(enc.len(), 6);
            for (s, f) in enc.iter().zip(renc) {
                assert_eq!(s.dim(), dim);
                assert_eq!(s.scales(), f.scales());
            }
        }
    }

    #[test]
    fn sharded_stream_encoded_path_decodes_bit_exact() {
        let full_dim = 80;
        let q = quantizer(full_dim);
        let sq = ShardedQuantizer::new(q.clone(), 32, 48, full_dim);
        let mut sharded = sq.row_stream(48, 1, KvKind::Value).unwrap();
        let mut reference = q.row_stream(full_dim, 1, KvKind::Value).unwrap();
        let mut rview = Vec::new();
        for seed in 0..5 {
            let row = test_vector(full_dim, 7000 + seed);
            assert!(sharded.append_row_encoded(&row));
            reference.append_row(&row, &mut rview);
        }
        // The view-less append kept real payload accounting…
        assert!(sharded.payload_bytes().unwrap() > 0);
        let (dense, _sparse) = sharded.last_row_payload().unwrap();
        assert!(dense > 0);
        // …and the decode escape hatch reproduces the reference slice.
        let mut decoded = Vec::new();
        assert!(sharded.decode_rows_into(0, 5, &mut decoded));
        assert_eq!(decoded.len(), 5 * 48);
        for r in 0..5 {
            for c in 0..48 {
                assert_eq!(
                    decoded[r * 48 + c].to_bits(),
                    rview[r * full_dim + 32 + c].to_bits(),
                    "row {r} channel {c}"
                );
            }
        }
        // Read-plan state tracks the sliced rows.
        assert_eq!(sharded.read_plan().unwrap().rows(), 5);
        assert!(sharded.fused_read_params().is_some());
        // Reset restores a fresh stream.
        sharded.reset();
        assert_eq!(sharded.rows(), 0);
        assert_eq!(sharded.payload_bytes(), Some(0));
    }

    #[test]
    fn sharded_payloads_sum_close_to_full_payload() {
        // Shards store dense + sparse exactly once plus one scale copy per
        // rank; total payload across ranks therefore exceeds the 1-rank
        // payload by exactly (ranks − 1) scale copies per row.
        let full_dim = 128;
        let q = quantizer(full_dim);
        let mut reference = q.row_stream(full_dim, 0, KvKind::Key).unwrap();
        let sq0 = ShardedQuantizer::new(q.clone(), 0, 64, full_dim);
        let sq1 = ShardedQuantizer::new(q.clone(), 64, 64, full_dim);
        let mut s0 = sq0.row_stream(64, 0, KvKind::Key).unwrap();
        let mut s1 = sq1.row_stream(64, 0, KvKind::Key).unwrap();
        let rows = 4;
        for seed in 0..rows {
            let row = test_vector(full_dim, 300 + seed);
            assert!(reference.append_row_encoded(&row));
            assert!(s0.append_row_encoded(&row));
            assert!(s1.append_row_encoded(&row));
        }
        let scale_bytes = 8; // ScaleSet::STORAGE_BITS / 8
        assert_eq!(
            s0.payload_bytes().unwrap() + s1.payload_bytes().unwrap(),
            reference.payload_bytes().unwrap() + rows as usize * scale_bytes
        );
    }
}

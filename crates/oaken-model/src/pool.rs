//! A shared, paged, quantized KV pool serving many concurrent sequences —
//! the software model of Oaken's MMU-managed device memory (§5.2) under a
//! continuous-batching engine.
//!
//! Where [`crate::QuantizedCache`] owns one sequence's KV history,
//! [`PagedKvPool`] multiplexes *all* active sequences over one
//! [`oaken_mmu::PageAllocator`]: every appended token row is quantized
//! incrementally through the per-`(sequence, layer, kind)`
//! [`KvRowStream`](oaken_core::KvRowStream)s, and its encoded payload is
//! laid into fixed-size physical pages — split per attention head into a
//! *dense* stream (packed codes + scales, fixed size per token) and a
//! *sparse* stream (variable COO outlier bytes), exactly the two
//! management tables of Figure 10. The pool therefore makes capacity,
//! fragmentation, and admission **real**: running out of pages is an
//! allocator-level OOM, not an analytic estimate.
//!
//! # Consistency contract
//!
//! * **Bit-exactness** — for methods whose per-row state is offline or
//!   per-token (Oaken, FP16, exact f32, the recompute fallbacks), a
//!   sequence's dequantized views depend only on its own append history:
//!   the pool drives the same `KvRowStream`s as `QuantizedCache`, so any
//!   interleaving of sequences is bit-identical to independent
//!   single-sequence runs (enforced by `oaken-serving`'s engine property
//!   tests). The one deliberate exception: *calibrate-then-freeze*
//!   baselines (Atom/QServe/Tender) keep their frozen calibration when a
//!   slot is recycled — calibration is per-model state shared across
//!   requests in real serving, so a later sequence reusing a slot decodes
//!   with the already-frozen channel order/scales instead of re-warming
//!   on its own first rows.
//! * **Guarded appends** — [`PagedKvPool::append`] checks a conservative
//!   worst-case page bound *before* touching any state and fails cleanly
//!   with [`PoolError::OutOfPages`]; a successful call is atomic for the
//!   `(layer, K, V)` triple. Schedulers should gate whole-token appends
//!   with [`PagedKvPool::pages_possibly_needed`] so a multi-layer forward
//!   pass never stalls mid-token.
//! * **Slot recycling** — retiring a sequence frees its pages immediately
//!   and recycles its stream/view buffers (via
//!   [`KvRowStream::reset`](oaken_core::KvRowStream::reset), which retains
//!   frozen calibration) for the next admitted sequence.
//!
//! # Capacity accounting
//!
//! Admission estimates route through the same bytes-per-token helper as
//! the analytic capacity model ([`ModelConfig::kv_bytes_per_token`], also
//! used by `oaken-accel`'s `SystemModel::max_concurrent_batch`), so the
//! analytic and executed paths cannot drift; the pool then adds the
//! page-rounding the analytic model ignores.

use crate::cache::{BatchKvCache, KindSlot};
use crate::config::ModelConfig;
use oaken_core::{KvKind, KvQuantizer};
use oaken_mmu::{MmuSim, StreamClass, StreamKey};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Handle to one sequence's KV state inside a [`PagedKvPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqId(pub u32);

/// Errors surfaced by the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// Appending could require more pages than the device has free — the
    /// admission/preemption signal.
    OutOfPages {
        /// Worst-case pages the append might need.
        needed: u32,
        /// Pages currently free.
        free: u32,
    },
    /// The sequence handle is unknown (already freed or never allocated).
    UnknownSequence {
        /// The offending handle.
        seq: SeqId,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::OutOfPages { needed, free } => {
                write!(f, "append may need {needed} pages but only {free} are free")
            }
            PoolError::UnknownSequence { seq } => {
                write!(f, "sequence {seq:?} is not active in the pool")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Per-sequence storage: one [`KindSlot`] per `(layer, kind)`, plus a
/// running page count so admission accounting never scans the MMU's
/// global stream map.
struct SeqSlots {
    slots: Vec<[KindSlot; 2]>,
    pages: u32,
}

fn kind_index(kind: KvKind) -> usize {
    match kind {
        KvKind::Key => 0,
        KvKind::Value => 1,
    }
}

/// The shared paged KV pool. See the module docs for the design.
pub struct PagedKvPool {
    quantizer: Option<Arc<dyn KvQuantizer>>,
    num_layers: usize,
    kv_dim: usize,
    kv_heads: usize,
    head_dim: usize,
    /// Nominal KV bytes per token for the whole model — computed through
    /// the shared [`ModelConfig::kv_bytes_per_token`] helper.
    bytes_per_token: u64,
    mmu: MmuSim,
    seqs: HashMap<u32, SeqSlots>,
    recycled: Vec<SeqSlots>,
    next_id: u32,
}

impl fmt::Debug for PagedKvPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagedKvPool")
            .field(
                "quantizer",
                &self.quantizer.as_ref().map_or("exact-f32", |q| q.name()),
            )
            .field("num_layers", &self.num_layers)
            .field("kv_dim", &self.kv_dim)
            .field("active_seqs", &self.seqs.len())
            .field("free_pages", &self.free_pages())
            .finish()
    }
}

impl PagedKvPool {
    /// Creates a pool for `model`'s KV geometry over `num_pages` pages of
    /// `page_size` bytes. `quantizer = None` stores exact f32 rows (the
    /// FP32 reference configuration).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` cannot hold one worst-case per-head row
    /// payload (pages must be at least `4 × head_dim + 16` bytes).
    pub fn for_model(
        model: &ModelConfig,
        quantizer: Option<Arc<dyn KvQuantizer>>,
        num_pages: u32,
        page_size: usize,
    ) -> Self {
        let kv_dim = model.kv_dim();
        let kv_heads = model.num_kv_heads;
        let head_dim = kv_dim / kv_heads;
        let bits = quantizer
            .as_ref()
            .map_or(32.0, |q| q.effective_bits(1, kv_dim));
        let pool = Self {
            quantizer,
            num_layers: model.num_layers,
            kv_dim,
            kv_heads,
            head_dim,
            bytes_per_token: model.kv_bytes_per_token(bits),
            mmu: MmuSim::new(num_pages, page_size),
            seqs: HashMap::new(),
            recycled: Vec::new(),
            next_id: 0,
        };
        assert!(
            pool.dense_row_bound() <= page_size,
            "page size {page_size} cannot hold one per-head row (bound {})",
            pool.dense_row_bound()
        );
        pool
    }

    /// Worst-case dense bytes one appended row can add to a single head's
    /// page stream (f32 storage plus scale/metadata slack) — the guard the
    /// capacity pre-checks use so a checked append can never fail inside
    /// the MMU.
    fn dense_row_bound(&self) -> usize {
        4 * self.head_dim + 16
    }

    /// Worst-case sparse (COO outlier) bytes per head per row: one byte
    /// per element plus metadata slack.
    fn sparse_row_bound(&self) -> usize {
        self.head_dim + 16
    }

    /// Whether the pool's quantizer produces a variable sparse stream
    /// (methods going through the incremental row streams may emit COO
    /// outliers; exact f32 storage never does).
    fn has_sparse(&self) -> bool {
        self.quantizer.is_some()
    }

    /// The backing MMU simulator (read-only): translation tables, burst
    /// plans, and fragmentation statistics over the actual stored sizes.
    pub fn mmu(&self) -> &MmuSim {
        &self.mmu
    }

    /// Total pages in the device.
    pub fn capacity_pages(&self) -> u32 {
        self.mmu.allocator().capacity()
    }

    /// Currently free pages.
    pub fn free_pages(&self) -> u32 {
        self.mmu.allocator().free_pages()
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.mmu.allocator().page_size()
    }

    /// Number of active sequences.
    pub fn active_seqs(&self) -> usize {
        self.seqs.len()
    }

    /// Pages currently owned by a sequence (O(1): tracked per sequence,
    /// not recounted from the MMU's stream map).
    pub fn seq_pages(&self, seq: SeqId) -> u32 {
        self.seqs.get(&seq.0).map_or(0, |s| s.pages)
    }

    /// Nominal KV bytes per token (the shared bytes-per-token figure the
    /// analytic capacity model also uses).
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// Admission estimate: pages a sequence of `tokens` total tokens will
    /// occupy, including the per-stream page rounding the analytic model
    /// ignores. Uses the *nominal* bytes-per-token; the executed footprint
    /// of variable-rate methods can differ slightly, which preemption
    /// absorbs.
    pub fn pages_for_tokens(&self, tokens: usize) -> u64 {
        if tokens == 0 {
            return 0;
        }
        let dense_streams = (2 * self.num_layers * self.kv_heads) as u64;
        let page = self.page_size() as u64;
        // Nominal per-head bytes for the whole sequence, rounded to pages
        // per stream (each head's dense data lives in its own page
        // stream). The nominal bytes-per-token already folds the sparse
        // payload in, which slightly over-counts the dense pages...
        let stream_bytes = (tokens as u64 * self.bytes_per_token).div_ceil(dense_streams);
        let mut pages = dense_streams * stream_bytes.div_ceil(page);
        // ...while each *sparse* stream still pins at least one page of
        // its own once the first outlier lands (the dominant sparse cost:
        // COO bytes per head per token are single digits).
        if self.has_sparse() {
            pages += dense_streams;
        }
        pages
    }

    /// Worst-case pages appending **one token** to `seq` could allocate:
    /// one page for every per-head stream whose tail cannot absorb a
    /// worst-case row. Schedulers sum this over the batch before an
    /// iteration and preempt until it fits in [`PagedKvPool::free_pages`].
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::UnknownSequence`] for a freed handle.
    pub fn pages_possibly_needed(&self, seq: SeqId) -> Result<u32, PoolError> {
        if !self.seqs.contains_key(&seq.0) {
            return Err(PoolError::UnknownSequence { seq });
        }
        let mut needed = 0u32;
        for layer in 0..self.num_layers {
            needed += self.layer_pages_possibly_needed(seq, layer);
        }
        Ok(needed)
    }

    fn layer_pages_possibly_needed(&self, seq: SeqId, layer: usize) -> u32 {
        let mut needed = 0u32;
        for kind in KvKind::ALL {
            for head in 0..self.kv_heads {
                let mut key = self.stream_key(seq, layer, kind, head, StreamClass::Dense);
                if self.mmu.tail_free(&key) < self.dense_row_bound() {
                    needed += 1;
                }
                if self.has_sparse() {
                    key.class = StreamClass::Sparse;
                    if self.mmu.tail_free(&key) < self.sparse_row_bound() {
                        needed += 1;
                    }
                }
            }
        }
        needed
    }

    fn stream_key(
        &self,
        seq: SeqId,
        layer: usize,
        kind: KvKind,
        head: usize,
        class: StreamClass,
    ) -> StreamKey {
        // Key and value streams of one layer are distinct `layer` rows in
        // the management tables: even layers = keys, odd = values.
        StreamKey {
            request: seq.0,
            layer: (2 * layer + kind_index(kind)) as u16,
            head: head as u16,
            class,
        }
    }

    /// Admits a new sequence, reusing a retired sequence's buffers when
    /// available. No pages are allocated until the first append.
    pub fn alloc_seq(&mut self) -> SeqId {
        let id = self.next_id;
        self.next_id += 1;
        let slots = match self.recycled.pop() {
            Some(s) => s,
            None => SeqSlots {
                slots: (0..self.num_layers)
                    .map(|layer| {
                        let mk = |kind: KvKind| {
                            let stream = self
                                .quantizer
                                .as_ref()
                                .and_then(|q| q.row_stream(self.kv_dim, layer, kind));
                            KindSlot::new(stream)
                        };
                        [mk(KvKind::Key), mk(KvKind::Value)]
                    })
                    .collect(),
                pages: 0,
            },
        };
        self.seqs.insert(id, slots);
        SeqId(id)
    }

    /// Retires a sequence: frees every page it owns and recycles its
    /// buffers. Returns the number of freed pages.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::UnknownSequence`] for a double-free.
    pub fn free_seq(&mut self, seq: SeqId) -> Result<u32, PoolError> {
        let mut slots = self
            .seqs
            .remove(&seq.0)
            .ok_or(PoolError::UnknownSequence { seq })?;
        let freed = self
            .mmu
            .free_request(seq.0)
            .expect("pool-owned pages cannot double-free");
        for pair in &mut slots.slots {
            for slot in pair {
                slot.reset_for_reuse();
            }
        }
        slots.pages = 0;
        self.recycled.push(slots);
        Ok(freed)
    }

    /// Appends one token's K/V rows for `(seq, layer)`, quantizing them
    /// incrementally and laying the encoded payload into pages. Atomic:
    /// on `Err` nothing was modified.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownSequence`] for a freed handle,
    /// [`PoolError::OutOfPages`] when the worst-case page bound exceeds
    /// the free pages.
    ///
    /// # Panics
    ///
    /// Panics if the vector widths disagree with the model's `kv_dim`.
    pub fn append(
        &mut self,
        seq: SeqId,
        layer: usize,
        k: &[f32],
        v: &[f32],
    ) -> Result<(), PoolError> {
        assert_eq!(k.len(), self.kv_dim, "key width mismatch");
        assert_eq!(v.len(), self.kv_dim, "value width mismatch");
        if !self.seqs.contains_key(&seq.0) {
            return Err(PoolError::UnknownSequence { seq });
        }
        let needed = self.layer_pages_possibly_needed(seq, layer);
        let free = self.free_pages();
        if needed > free {
            return Err(PoolError::OutOfPages { needed, free });
        }
        for (kind, row) in [(KvKind::Key, k), (KvKind::Value, v)] {
            let (dense, sparse) = self.append_row(seq, layer, kind, row);
            self.write_pages(seq, layer, kind, dense, sparse);
        }
        Ok(())
    }

    /// Appends one row to the `(seq, layer, kind)` slot and returns the
    /// `(dense, sparse)` stored byte sizes of the encoded row.
    fn append_row(
        &mut self,
        seq: SeqId,
        layer: usize,
        kind: KvKind,
        row: &[f32],
    ) -> (usize, usize) {
        let slot = &mut self.seqs.get_mut(&seq.0).expect("checked by caller").slots[layer]
            [kind_index(kind)];
        slot.append(row);
        match &slot.stream {
            Some(stream) => stream.last_row_payload().unwrap_or_else(|| {
                let bits = self
                    .quantizer
                    .as_ref()
                    .expect("streams only exist with a quantizer")
                    .effective_bits(slot.rows, self.kv_dim);
                (((bits * self.kv_dim as f64) / 8.0).ceil() as usize, 0)
            }),
            None => match &self.quantizer {
                // Recompute-fallback methods: nominal stored size.
                Some(q) => {
                    let bits = q.effective_bits(slot.rows, self.kv_dim);
                    (((bits * self.kv_dim as f64) / 8.0).ceil() as usize, 0)
                }
                // Exact f32 storage.
                None => (self.kv_dim * 4, 0),
            },
        }
    }

    /// Lays one encoded row's bytes into the per-head dense/sparse page
    /// streams (the burst-order write layout of §5.2). Byte totals are
    /// split evenly across heads, remainder to the lowest heads.
    fn write_pages(&mut self, seq: SeqId, layer: usize, kind: KvKind, dense: usize, sparse: usize) {
        let mut new_pages = 0u32;
        for (class, total) in [(StreamClass::Dense, dense), (StreamClass::Sparse, sparse)] {
            if total == 0 {
                continue;
            }
            let base = total / self.kv_heads;
            let extra = total % self.kv_heads;
            for head in 0..self.kv_heads {
                let bytes = base + usize::from(head < extra);
                if bytes == 0 {
                    continue;
                }
                let key = self.stream_key(seq, layer, kind, head, class);
                let receipt = self
                    .mmu
                    .write_token(key, bytes as u32)
                    .expect("append pre-checked the worst-case page bound");
                new_pages += u32::from(receipt.new_page);
            }
        }
        if new_pages > 0 {
            self.seqs
                .get_mut(&seq.0)
                .expect("caller validated the sequence")
                .pages += new_pages;
        }
    }

    fn refresh(&mut self, seq: SeqId, layer: usize, kind: KvKind) {
        let kv_dim = self.kv_dim;
        let slot = &mut self
            .seqs
            .get_mut(&seq.0)
            .expect("caller validated the sequence")
            .slots[layer][kind_index(kind)];
        if slot.stream.is_none() && slot.dirty {
            let rows = slot.exact.len() / kv_dim.max(1);
            slot.view = match &self.quantizer {
                Some(q) => q.roundtrip_matrix(&slot.exact, rows, kv_dim, layer, kind),
                None => slot.exact.clone(),
            };
            slot.dirty = false;
        }
    }

    /// Number of cached tokens for `(seq, layer)`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown sequence.
    pub fn seq_len(&self, seq: SeqId, layer: usize) -> usize {
        self.seqs.get(&seq.0).expect("unknown sequence").slots[layer][0].rows
    }

    /// Dequantized `[seq_len × kv_dim]` view of the cached keys.
    ///
    /// # Panics
    ///
    /// Panics on an unknown sequence.
    pub fn keys(&mut self, seq: SeqId, layer: usize) -> &[f32] {
        self.refresh(seq, layer, KvKind::Key);
        &self.seqs.get(&seq.0).expect("unknown sequence").slots[layer][0].view
    }

    /// Dequantized view of the cached values.
    ///
    /// # Panics
    ///
    /// Panics on an unknown sequence.
    pub fn values(&mut self, seq: SeqId, layer: usize) -> &[f32] {
        self.refresh(seq, layer, KvKind::Value);
        &self.seqs.get(&seq.0).expect("unknown sequence").slots[layer][1].view
    }
}

/// Borrowed view pairing a [`PagedKvPool`] with the batch's slot → sequence
/// mapping for one engine iteration, implementing [`BatchKvCache`] for
/// [`crate::Model::forward_batch`].
///
/// Appends panic on pool exhaustion: the scheduler must reserve capacity
/// with [`PagedKvPool::pages_possibly_needed`] (and preempt) *before* the
/// forward pass, so a mid-token allocation failure is an engine bug, not a
/// recoverable condition.
pub struct PoolBatchView<'p> {
    pool: &'p mut PagedKvPool,
    seqs: &'p [SeqId],
}

impl<'p> PoolBatchView<'p> {
    /// Creates a view where batch slot `i` maps to `seqs[i]`.
    pub fn new(pool: &'p mut PagedKvPool, seqs: &'p [SeqId]) -> Self {
        Self { pool, seqs }
    }
}

impl BatchKvCache for PoolBatchView<'_> {
    fn append(&mut self, slot: usize, layer: usize, k: &[f32], v: &[f32]) {
        self.pool
            .append(self.seqs[slot], layer, k, v)
            .expect("scheduler reserves pages before the iteration");
    }

    fn seq_len(&self, slot: usize, layer: usize) -> usize {
        self.pool.seq_len(self.seqs[slot], layer)
    }

    fn keys(&mut self, slot: usize, layer: usize) -> &[f32] {
        self.pool.keys(self.seqs[slot], layer)
    }

    fn values(&mut self, slot: usize, layer: usize) -> &[f32] {
        self.pool.values(self.seqs[slot], layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{KvCacheBackend, QuantizedCache};
    use oaken_core::{OakenConfig, OakenQuantizer, OfflineProfiler};

    fn row(d: usize, seed: u64) -> Vec<f32> {
        (0..d)
            .map(|i| {
                let u = ((i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed * 7919)
                    >> 33) as f32
                    / (1u64 << 31) as f32;
                let base = (u - 0.5) * 6.0;
                match i % 19 {
                    0 => base * 9.0,
                    1 => base * 0.02,
                    _ => base,
                }
            })
            .collect()
    }

    fn tiny_config(layers: usize, kv_heads: usize, head_dim: usize) -> ModelConfig {
        let mut cfg = ModelConfig::llama2_7b().proxy(layers, kv_heads * head_dim);
        cfg.num_heads = kv_heads;
        cfg.num_kv_heads = kv_heads;
        cfg
    }

    fn oaken(d: usize, layers: usize) -> Arc<dyn KvQuantizer> {
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), layers);
        for s in 0..24 {
            for layer in 0..layers {
                for kind in KvKind::ALL {
                    p.observe(layer, kind, &row(d.max(64), s * 3 + layer as u64));
                }
            }
        }
        Arc::new(OakenQuantizer::new(config, p.try_finish().unwrap()))
    }

    #[test]
    fn pool_views_match_quantized_cache_bit_exactly() {
        let layers = 2;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        assert_eq!(cfg.kv_dim(), d);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q.clone()), 256, 4096);
        let mut cache = QuantizedCache::new(q);
        cache.reset(layers, d);
        let seq = pool.alloc_seq();
        for t in 0..20u64 {
            for layer in 0..layers {
                let k = row(d, 2 * t + layer as u64);
                let v = row(d, 1000 + 2 * t + layer as u64);
                pool.append(seq, layer, &k, &v).unwrap();
                cache.append(layer, &k, &v);
            }
            for layer in 0..layers {
                let a: Vec<u32> = pool.keys(seq, layer).iter().map(|x| x.to_bits()).collect();
                let b: Vec<u32> = cache.keys(layer).iter().map(|x| x.to_bits()).collect();
                assert_eq!(a, b, "keys diverged at token {t} layer {layer}");
                let a: Vec<u32> = pool
                    .values(seq, layer)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect();
                let b: Vec<u32> = cache.values(layer).iter().map(|x| x.to_bits()).collect();
                assert_eq!(a, b, "values diverged at token {t} layer {layer}");
            }
        }
        assert_eq!(pool.seq_len(seq, 0), 20);
        assert!(pool.mmu().request_bytes(seq.0) > 0);
    }

    #[test]
    fn interleaved_sequences_do_not_cross_contaminate() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q.clone()), 512, 4096);
        let a = pool.alloc_seq();
        let b = pool.alloc_seq();
        // Interleave appends: a, b, b, a, ...
        let schedule = [0u8, 1, 1, 0, 1, 0, 0, 1, 1, 0];
        let mut counts = [0u64, 0];
        for &who in &schedule {
            let (seq, salt) = if who == 0 { (a, 0) } else { (b, 500) };
            let t = counts[who as usize];
            counts[who as usize] += 1;
            pool.append(seq, 0, &row(d, salt + t), &row(d, salt + 100 + t))
                .unwrap();
        }
        // Reference: each sequence alone in its own cache.
        for (seq, salt, n) in [(a, 0u64, counts[0]), (b, 500, counts[1])] {
            let mut cache = QuantizedCache::new(q.clone());
            cache.reset(layers, d);
            for t in 0..n {
                cache.append(0, &row(d, salt + t), &row(d, salt + 100 + t));
            }
            assert_eq!(pool.keys(seq, 0), cache.keys(0));
            assert_eq!(pool.values(seq, 0), cache.values(0));
        }
    }

    #[test]
    fn exhaustion_is_a_clean_error_and_freeing_recovers() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        // 4 pages of 256 bytes: tiny on purpose.
        let mut pool = PagedKvPool::for_model(&cfg, None, 4, 256);
        let a = pool.alloc_seq();
        let mut appended = 0usize;
        let err = loop {
            match pool.append(a, 0, &row(d, appended as u64), &row(d, appended as u64)) {
                Ok(()) => appended += 1,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, PoolError::OutOfPages { .. }));
        assert!(appended >= 1, "at least one token must fit");
        // The failed append changed nothing.
        assert_eq!(pool.seq_len(a, 0), appended);
        let freed = pool.free_seq(a).unwrap();
        assert!(freed > 0);
        assert_eq!(pool.free_pages(), pool.capacity_pages());
        assert!(matches!(
            pool.free_seq(a),
            Err(PoolError::UnknownSequence { .. })
        ));
        // A recycled slot starts clean.
        let b = pool.alloc_seq();
        assert_eq!(pool.seq_len(b, 0), 0);
        pool.append(b, 0, &row(d, 7), &row(d, 8)).unwrap();
        assert_eq!(pool.seq_len(b, 0), 1);
    }

    #[test]
    fn admission_estimate_brackets_actual_usage() {
        let layers = 2;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q), 4096, 1024);
        let tokens = 64usize;
        let estimate = pool.pages_for_tokens(tokens);
        let seq = pool.alloc_seq();
        for t in 0..tokens {
            for layer in 0..layers {
                pool.append(seq, layer, &row(d, t as u64), &row(d, 900 + t as u64))
                    .unwrap();
            }
        }
        let used = u64::from(pool.mmu().request_pages(seq.0));
        // The nominal estimate must be the right order of magnitude: within
        // 2x of the executed footprint either way (page rounding and the
        // sparse stream split move it, the shared bytes-per-token anchors it).
        assert!(
            estimate <= used * 2 && used <= estimate * 2,
            "estimate {estimate} vs used {used}"
        );
    }

    #[test]
    fn seq_pages_counter_matches_mmu_ground_truth() {
        let layers = 2;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q), 512, 512);
        let a = pool.alloc_seq();
        let b = pool.alloc_seq();
        for t in 0..30u64 {
            for layer in 0..layers {
                pool.append(a, layer, &row(d, t), &row(d, t + 7)).unwrap();
            }
            if t % 3 == 0 {
                pool.append(b, 0, &row(d, 400 + t), &row(d, 500 + t))
                    .unwrap();
            }
            assert_eq!(pool.seq_pages(a), pool.mmu().request_pages(a.0));
            assert_eq!(pool.seq_pages(b), pool.mmu().request_pages(b.0));
        }
        pool.free_seq(a).unwrap();
        assert_eq!(pool.seq_pages(a), 0);
        // A recycled slot starts its counter fresh.
        let c = pool.alloc_seq();
        pool.append(c, 0, &row(d, 1), &row(d, 2)).unwrap();
        assert_eq!(pool.seq_pages(c), pool.mmu().request_pages(c.0));
    }

    #[test]
    fn pages_possibly_needed_is_a_safe_upper_bound() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q), 64, 512);
        let seq = pool.alloc_seq();
        for t in 0..40 {
            let before = pool.mmu().allocator().allocated_pages();
            let bound = pool.pages_possibly_needed(seq).unwrap();
            pool.append(seq, 0, &row(d, t), &row(d, t + 77)).unwrap();
            let grown = pool.mmu().allocator().allocated_pages() - before;
            assert!(grown <= bound, "token {t}: grew {grown} > bound {bound}");
        }
    }
}

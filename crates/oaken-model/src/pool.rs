//! A shared, paged, quantized KV pool serving many concurrent sequences —
//! the software model of Oaken's MMU-managed device memory (§5.2) under a
//! continuous-batching engine.
//!
//! Where [`crate::QuantizedCache`] owns one sequence's KV history,
//! [`PagedKvPool`] multiplexes *all* active sequences over one
//! [`oaken_mmu::PageAllocator`]: every appended token row is quantized
//! incrementally through the per-`(sequence, layer, kind)`
//! [`KvRowStream`](oaken_core::KvRowStream)s, and its encoded payload is
//! laid into fixed-size physical pages — split per attention head into a
//! *dense* stream (packed codes + scales, fixed size per token) and a
//! *sparse* stream (variable COO outlier bytes), exactly the two
//! management tables of Figure 10. The pool therefore makes capacity,
//! fragmentation, and admission **real**: running out of pages is an
//! allocator-level OOM, not an analytic estimate.
//!
//! # Prefix sharing
//!
//! Because Oaken quantizes each row against *offline*-profiled thresholds,
//! a row's encoded bytes are a pure function of the row itself
//! ([`KvQuantizer::prefix_deterministic`]) — identical prompt prefixes
//! produce bit-identical page payloads, and the pool deduplicates them
//! through a [prefix trie](crate::trie) of immutable, refcounted,
//! `block_tokens`-sized blocks:
//!
//! * [`PagedKvPool::alloc_seq_with_prefix`] walks the trie with the new
//!   sequence's prompt, **adopts** every matched full block (refcount up,
//!   pages retained, dequantized views copied — no quantization, and the
//!   caller skips the model forward pass for those tokens too), and plans
//!   private *pending* blocks for the unmatched remainder — the
//!   copy-on-write tail of the prompt;
//! * [`PagedKvPool::append`] **seals** a pending block the moment its last
//!   row lands (all layers, both kinds): the block's page streams become
//!   immutable and enter the trie, or — when a concurrent sequence sealed
//!   the identical block first — are freed and the existing block adopted
//!   (late dedup, with a debug-mode bit-exactness check between the two
//!   independently quantized copies);
//! * [`PagedKvPool::free_seq`] *releases* shared blocks leaf-first instead
//!   of freeing them, so a preempted or retired sharer never invalidates
//!   the others.
//!
//! Sharing is gated on the quantizer reporting itself prefix-deterministic:
//! Oaken, FP16 and exact-f32 pools share; calibrate-then-freeze baselines
//! (Atom/QServe/Tender) and per-channel methods (KIVI/KVQuant) opt out and
//! keep fully private page streams.
//!
//! # Two-tier memory: suspend and resume
//!
//! The device pool is backed by a host swap tier
//! ([`oaken_mmu::SwapPool`], sized via [`PagedKvPool::set_host_pages`]),
//! which turns preemption from evict-and-recompute into
//! suspend-and-resume:
//!
//! * [`PagedKvPool::suspend_seq`] moves a sequence's **private** pages
//!   (tail streams + pending prompt blocks) to host and freezes its
//!   quantizer stream state, views, and prompt plan verbatim; **shared**
//!   trie blocks stay resident with their refcounts held, so no sharer —
//!   including the suspended sequence itself — can lose sealed prefix
//!   bytes;
//! * [`PagedKvPool::resume_seq`] thaws the private streams onto fresh
//!   device pages (identical per-token sizes and tail headroom) and the
//!   sequence continues **bit-exactly** where it left off — the hard
//!   contract the swap-resume property tests enforce against
//!   uninterrupted `Session` runs;
//! * transfer pages/bytes are accounted per move
//!   ([`PagedKvPool::swap_stats`]), and because Oaken's pages hold 4-bit
//!   dense + sparse payloads, the moved bytes are 3-4× smaller than an
//!   FP16 cache would transfer — the reason swap beats recompute even
//!   more clearly under quantization.
//!
//! # Consistency contract
//!
//! * **Bit-exactness** — for methods whose per-row state is offline or
//!   per-token (Oaken, FP16, exact f32, the recompute fallbacks), a
//!   sequence's dequantized views depend only on its own append history:
//!   the pool drives the same `KvRowStream`s as `QuantizedCache`, so any
//!   interleaving of sequences is bit-identical to independent
//!   single-sequence runs (enforced by `oaken-serving`'s engine property
//!   tests). Prefix sharing preserves this: adopted blocks hold exactly
//!   the bytes a private run would have produced, which is what
//!   `prefix_deterministic` asserts. The one deliberate exception:
//!   *calibrate-then-freeze* baselines (Atom/QServe/Tender) keep their
//!   frozen calibration when a slot is recycled — calibration is per-model
//!   state shared across requests in real serving, so a later sequence
//!   reusing a slot decodes with the already-frozen channel order/scales
//!   instead of re-warming on its own first rows.
//! * **Guarded appends** — [`PagedKvPool::append`] checks a conservative
//!   worst-case page bound *before* touching any state and fails cleanly
//!   with [`PoolError::OutOfPages`]; a successful call is atomic for the
//!   `(layer, K, V)` triple. Schedulers should gate whole-token appends
//!   with [`PagedKvPool::pages_possibly_needed`] (or the chunk-sized
//!   [`PagedKvPool::pages_possibly_needed_n`]) so a multi-layer forward
//!   pass never stalls mid-token.
//! * **Slot recycling** — retiring a sequence frees its private pages
//!   immediately, releases its shared blocks, and recycles its
//!   stream/view buffers (via
//!   [`KvRowStream::reset`](oaken_core::KvRowStream::reset), which retains
//!   frozen calibration) for the next admitted sequence.
//!
//! # Capacity accounting
//!
//! Admission estimates route through the same bytes-per-token helper as
//! the analytic capacity model ([`ModelConfig::kv_bytes_per_token`], also
//! used by `oaken-accel`'s `SystemModel::max_concurrent_batch`), so the
//! analytic and executed paths cannot drift; the pool then adds the
//! page-rounding the analytic model ignores. Every physical page is owned
//! by exactly one sequence (tail + pending blocks) or one trie block, and
//! [`PagedKvPool::page_accounting`] exposes the three-way split — free,
//! private, shared — whose sum is always the device capacity.
//!
//! [`KvQuantizer::prefix_deterministic`]: oaken_core::KvQuantizer::prefix_deterministic

use crate::attention::EncodedKv;
use crate::cache::{BatchAppend, BatchKvCache, KernelMode, KindSlot};
use crate::config::ModelConfig;
use crate::trie::{PrefixStats, PrefixTrie, TrieBlock};
use oaken_core::{FusedVector, KvKind, KvQuantizer};
use oaken_mmu::{
    FaultKind, FaultOp, FaultPlan, FaultStats, MmuSim, StreamClass, StreamKey, SwapReceipt,
    SwapStats,
};
use oaken_runtime::{Runtime, UnsafeSlice};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Handle to one sequence's KV state inside a [`PagedKvPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqId(pub u32);

/// Errors surfaced by the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// Appending could require more pages than the device has free — the
    /// admission/preemption signal.
    OutOfPages {
        /// Worst-case pages the append might need.
        needed: u32,
        /// Pages currently free.
        free: u32,
    },
    /// The sequence handle is unknown (already freed or never allocated).
    UnknownSequence {
        /// The offending handle.
        seq: SeqId,
    },
    /// The host tier cannot hold the sequence's private pages — the
    /// swap-based preemption must fall back to evict-and-recompute.
    OutOfHostPages {
        /// Host pages the suspend needs.
        needed: u32,
        /// Host pages currently free.
        free: u32,
    },
    /// The installed [`FaultPlan`] injected a fault at this operation's
    /// pre-check boundary: nothing was mutated. Transient faults are
    /// retry-able; persistent ones keep failing for the plan's burst
    /// length and callers should degrade instead.
    Fault {
        /// The faulted operation class.
        op: FaultOp,
        /// Transient (retry-able) or persistent (degrade).
        kind: FaultKind,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::OutOfPages { needed, free } => {
                write!(f, "append may need {needed} pages but only {free} are free")
            }
            PoolError::UnknownSequence { seq } => {
                write!(f, "sequence {seq:?} is not active in the pool")
            }
            PoolError::OutOfHostPages { needed, free } => {
                write!(
                    f,
                    "suspend needs {needed} host pages but only {free} are free"
                )
            }
            PoolError::Fault { op, kind } => {
                write!(f, "injected {kind} fault on {op}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Result of [`PagedKvPool::alloc_seq_with_prefix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixAlloc {
    /// The admitted sequence.
    pub seq: SeqId,
    /// Leading prompt tokens satisfied from the prefix trie: their K/V
    /// rows are already cached (views pre-filled, pages shared), so the
    /// caller starts feeding the model at this position.
    pub matched_tokens: usize,
}

/// Three-way physical page ownership split of a pool; the components
/// always sum to the device capacity (the refcount invariant the serving
/// property tests re-check after every engine step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAccounting {
    /// Pages on the free list.
    pub free: u32,
    /// Pages owned exclusively by one active sequence (its private tail
    /// plus its not-yet-sealed pending blocks).
    pub private: u32,
    /// Pages owned by sealed trie blocks (each stored once, regardless of
    /// how many sequences reference it).
    pub shared_blocks: u32,
}

impl PageAccounting {
    /// Sum of the three components — must equal the pool capacity.
    pub fn total(&self) -> u32 {
        self.free + self.private + self.shared_blocks
    }
}

/// One slot of a sequence's prompt-block plan.
#[derive(Debug, Clone, Copy)]
enum SeqBlock {
    /// Adopted from (or sealed into) the trie; the sequence holds one
    /// refcount on it.
    Shared(usize),
    /// Still being written privately by this sequence under its own MMU
    /// request id.
    Pending {
        /// MMU request id owning the pending pages.
        mmu: u32,
    },
}

/// The prompt-sharing plan of one sequence.
struct SeqPlan {
    /// The prompt tokens announced at allocation (trie keys).
    prompt: Vec<u32>,
    /// One entry per full prompt block, root-to-leaf. Entries `[..sealed]`
    /// are `Shared`; the rest are `Pending`.
    blocks: Vec<SeqBlock>,
    /// Blocks sealed (or adopted) so far.
    sealed: usize,
}

/// A sequence frozen to the host tier by [`PagedKvPool::suspend_seq`].
struct SuspendedSeq {
    /// The sequence's slots, retained verbatim: quantizer stream state,
    /// dequantized views, row counts, and the prompt-block plan.
    slots: SeqSlots,
    /// Host pages its private streams occupy (the device pages a resume
    /// needs, as an upper bound).
    frozen_pages: u32,
}

/// One sequence's KV state packaged for shipment to another pool — the
/// prefill→decode handoff object of a disaggregated cluster
/// ([`PagedKvPool::export_seq`] / [`PagedKvPool::import_seq`]).
///
/// Two halves travel together, mirroring the repo's functional split:
/// the **payload** (quantizer stream state, dequantized views, row
/// counts — the sequence's internal `SeqSlots`, flattened to fully private
/// form) and the **accounting** (an [`oaken_mmu::TransferPayload`]: the
/// self-describing per-token size tables covering *every* token,
/// adopted prefix rows included, so the importer rebuilds bit-compatible
/// page tables with no shared state). The wire cost the cluster's
/// transfer clock charges is [`KvTransfer::wire_bytes`].
pub struct KvTransfer {
    slots: SeqSlots,
    payload: oaken_mmu::TransferPayload,
}

impl fmt::Debug for KvTransfer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KvTransfer")
            .field("layers", &self.slots.slots.len())
            .field("bytes", &self.payload.bytes)
            .field("checksum", &self.payload.checksum)
            .finish()
    }
}

impl KvTransfer {
    /// The self-describing MMU half: per-stream size tables, byte totals,
    /// and the integrity checksum asserted on import.
    pub fn payload(&self) -> &oaken_mmu::TransferPayload {
        &self.payload
    }

    /// Modeled wire bytes of this transfer: the encoded KV payload plus
    /// the self-describing size-table header.
    pub fn wire_bytes(&self) -> u64 {
        self.payload.wire_bytes()
    }

    /// Tokens cached per `(layer, kind)` slot — the rows the importer's
    /// decode resumes from.
    pub fn tokens(&self) -> usize {
        self.slots.slots.first().map_or(0, |pair| pair[0].rows)
    }
}

/// Per-sequence storage: one [`KindSlot`] per `(layer, kind)`, plus a
/// running private page count so admission accounting never scans the
/// MMU's global stream map.
struct SeqSlots {
    slots: Vec<[KindSlot; 2]>,
    /// Pages owned exclusively by this sequence: tail streams plus pending
    /// (unsealed) blocks. Adopted shared pages are *not* counted here.
    pages: u32,
    /// Prompt-block plan, present when the sequence was admitted through
    /// [`PagedKvPool::alloc_seq_with_prefix`] with sharing enabled.
    plan: Option<SeqPlan>,
}

fn kind_index(kind: KvKind) -> usize {
    match kind {
        KvKind::Key => 0,
        KvKind::Value => 1,
    }
}

/// One sequence's K/V rows within a batched pool append
/// ([`PagedKvPool::append_batch`]).
#[derive(Debug, Clone, Copy)]
pub struct SeqRowAppend<'a> {
    /// The sequence the rows belong to.
    pub seq: SeqId,
    /// The token's key vector.
    pub k: &'a [f32],
    /// The token's value vector.
    pub v: &'a [f32],
}

/// Per-item bookkeeping the parallel quantize phase hands to the serial
/// page-commit phase.
#[derive(Debug, Clone, Copy, Default)]
struct RowRecord {
    /// Rows held by the `(seq, layer)` slots *before* this item appended
    /// (identical for both kinds) — the position the page commit routes by.
    pos: usize,
    /// `(dense, sparse)` encoded byte sizes of the key row.
    key_bytes: (usize, usize),
    /// `(dense, sparse)` encoded byte sizes of the value row.
    value_bytes: (usize, usize),
}

/// Raw pointers to the distinct sequences' slot storage for one batched
/// append — collected serially, dereferenced by exactly one task each.
#[derive(Default)]
struct SlotPtrs(Vec<*mut SeqSlots>);

// SAFETY: the pointers are only alive (and only dereferenced) inside one
// `append_batch` call, each by a single task over a distinct sequence, and
// the pointees (`SeqSlots`) own only `Send` data (`Box<dyn KvRowStream>`
// is `Send` by trait bound).
unsafe impl Send for SlotPtrs {}
unsafe impl Sync for SlotPtrs {}

/// Reusable buffers for [`PagedKvPool::append_batch`] — held by the pool
/// so the steady-state batched append path performs no heap allocations
/// (enforced by `tests/pool_alloc_free.rs`).
#[derive(Default)]
struct BatchScratch {
    /// Consecutive same-sequence runs of the item list:
    /// `(seq id, first item index, item count)`.
    runs: Vec<(u32, usize, usize)>,
    /// One record per item.
    recs: Vec<RowRecord>,
    /// One slot pointer per run.
    ptrs: SlotPtrs,
}

/// Cumulative KV read-path traffic of a pool, split by kernel family —
/// the measurement behind the fused kernels' bandwidth claim: in fused
/// mode the bytes column counts **encoded payload bytes**, in exact mode
/// it counts the dequantized f32 view bytes the kernels actually stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvReadStats {
    /// Encoded rows handed to the fused kernels.
    pub fused_rows: u64,
    /// Encoded payload bytes those rows occupy.
    pub fused_bytes: u64,
    /// Dequantized f32 rows handed to the exact kernels.
    pub exact_rows: u64,
    /// f32 bytes those rows occupy.
    pub exact_bytes: u64,
}

/// Interior-mutable [`KvReadStats`] accumulator: the fused read path
/// borrows the pool shared (`&self` — K and V must coexist), so the
/// counters are relaxed atomics rather than plain fields.
#[derive(Default)]
struct ReadCounters {
    fused_rows: AtomicU64,
    fused_bytes: AtomicU64,
    exact_rows: AtomicU64,
    exact_bytes: AtomicU64,
}

impl ReadCounters {
    fn snapshot(&self) -> KvReadStats {
        KvReadStats {
            fused_rows: self.fused_rows.load(Ordering::Relaxed),
            fused_bytes: self.fused_bytes.load(Ordering::Relaxed),
            exact_rows: self.exact_rows.load(Ordering::Relaxed),
            exact_bytes: self.exact_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Default tokens per shareable prefix block.
pub const DEFAULT_BLOCK_TOKENS: usize = 16;

/// The channel slice a rank-shard pool stores out of the full KV row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PoolShard {
    /// First full-row channel this shard owns.
    pub(crate) start: usize,
    /// Full KV row width appends must supply.
    pub(crate) full_dim: usize,
}

/// The shared paged KV pool. See the module docs for the design.
pub struct PagedKvPool {
    quantizer: Option<Arc<dyn KvQuantizer>>,
    /// When this pool is one tensor-parallel rank's private shard: the
    /// channel slice of the full KV row it stores. Append entry points
    /// then take *full-width* rows (every rank quantizes the full row so
    /// whole-row scales match the 1-rank cache bit-for-bit; see
    /// `crate::sharding`) while all storage, accounting, and reads cover
    /// only the shard's channels.
    shard: Option<PoolShard>,
    num_layers: usize,
    kv_dim: usize,
    kv_heads: usize,
    head_dim: usize,
    /// Nominal KV bytes per token for the whole model — computed through
    /// the shared [`ModelConfig::kv_bytes_per_token`] helper.
    bytes_per_token: u64,
    mmu: MmuSim,
    seqs: HashMap<u32, SeqSlots>,
    /// Sequences suspended to the host tier: their stream/view state is
    /// retained verbatim (which is what makes resume bit-exact), their
    /// private pages live in the MMU's swap pool, and their shared trie
    /// blocks stay adopted (refcounts held) so the payload a resume needs
    /// can never be destroyed underneath them.
    suspended: HashMap<u32, SuspendedSeq>,
    recycled: Vec<SeqSlots>,
    next_id: u32,
    /// Tokens per shareable prefix block.
    block_tokens: usize,
    /// Whether the quantizer permits sharing at all.
    sharing_supported: bool,
    /// Whether sharing is currently enabled (supported and not disabled).
    sharing: bool,
    trie: PrefixTrie,
    /// MMU request ids for blocks count down from the top so they never
    /// collide with sequence ids counting up.
    next_block_mmu: u32,
    stats: PrefixStats,
    /// Whether the quantizer provides incremental row streams (probed once
    /// at construction): streams keep views append-only, the gate for the
    /// parallel forward pass. Exact-f32 pools (no quantizer) also qualify.
    streaming: bool,
    /// Which attention read path sequences admitted to this pool feed
    /// (installed by [`PagedKvPool::set_kernel_mode`] while idle).
    kernel: KernelMode,
    /// Cumulative read-path traffic, split by kernel family.
    reads: ReadCounters,
    /// Reusable scratch for [`PagedKvPool::append_batch`].
    batch: BatchScratch,
}

impl fmt::Debug for PagedKvPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagedKvPool")
            .field(
                "quantizer",
                &self.quantizer.as_ref().map_or("exact-f32", |q| q.name()),
            )
            .field("num_layers", &self.num_layers)
            .field("kv_dim", &self.kv_dim)
            .field("active_seqs", &self.seqs.len())
            .field("suspended_seqs", &self.suspended.len())
            .field("free_pages", &self.free_pages())
            .field("prefix_sharing", &self.sharing)
            .field("trie_blocks", &self.trie.len())
            .finish()
    }
}

impl PagedKvPool {
    /// Creates a pool for `model`'s KV geometry over `num_pages` pages of
    /// `page_size` bytes. `quantizer = None` stores exact f32 rows (the
    /// FP32 reference configuration). Prefix sharing is enabled whenever
    /// the quantizer is prefix-deterministic (always, for exact f32), with
    /// [`DEFAULT_BLOCK_TOKENS`]-token blocks.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` cannot hold one worst-case per-head row
    /// payload (pages must be at least `4 × head_dim + 16` bytes).
    pub fn for_model(
        model: &ModelConfig,
        quantizer: Option<Arc<dyn KvQuantizer>>,
        num_pages: u32,
        page_size: usize,
    ) -> Self {
        let kv_dim = model.kv_dim();
        let kv_heads = model.num_kv_heads;
        let head_dim = kv_dim / kv_heads;
        let bits = quantizer
            .as_ref()
            .map_or(32.0, |q| q.effective_bits(1, kv_dim));
        let sharing_supported = quantizer.as_ref().is_none_or(|q| q.prefix_deterministic());
        // Append-only views require a stream for *every* (layer, kind)
        // slot — `row_stream` is a per-tensor decision, so probe them all
        // rather than assuming layer 0's answer generalizes.
        let streaming = quantizer.as_ref().is_none_or(|q| {
            (0..model.num_layers).all(|l| {
                KvKind::ALL
                    .iter()
                    .all(|&k| q.row_stream(kv_dim, l, k).is_some())
            })
        });
        // Host tier defaults to mirroring the device capacity (host KV
        // memory is at least as large as device memory on real serving
        // nodes); `set_host_pages` resizes or disables it.
        let mut mmu = MmuSim::new(num_pages, page_size);
        mmu.attach_host_tier(num_pages);
        let pool = Self {
            quantizer,
            shard: None,
            num_layers: model.num_layers,
            kv_dim,
            kv_heads,
            head_dim,
            bytes_per_token: model.kv_bytes_per_token(bits),
            mmu,
            seqs: HashMap::new(),
            suspended: HashMap::new(),
            recycled: Vec::new(),
            next_id: 0,
            block_tokens: DEFAULT_BLOCK_TOKENS,
            sharing_supported,
            sharing: sharing_supported,
            trie: PrefixTrie::default(),
            next_block_mmu: u32::MAX,
            stats: PrefixStats::default(),
            streaming,
            kernel: KernelMode::Exact,
            reads: ReadCounters::default(),
            batch: BatchScratch::default(),
        };
        assert!(
            pool.dense_row_bound() <= page_size,
            "page size {page_size} cannot hold one per-head row (bound {})",
            pool.dense_row_bound()
        );
        pool
    }

    /// Creates one tensor-parallel rank's private pool shard: the same
    /// geometry as [`PagedKvPool::for_model`] restricted to the contiguous
    /// KV heads `kv_heads`, over this rank's own `num_pages`.
    ///
    /// The shard's append entry points take **full-width** rows — the rank
    /// quantizes the whole row (Oaken's scales are whole-row min/max, so
    /// this is what keeps shard bits identical to the 1-rank cache) and
    /// stores only its heads' channels. With `quantizer = None` the rows
    /// are sliced directly. Reads ([`PagedKvPool::keys`],
    /// [`PagedKvPool::encoded_kv`]) return shard-width data laid out for a
    /// rank-local attention shape.
    ///
    /// # Panics
    ///
    /// Panics if the head range is empty or out of range, or if a
    /// quantizer is supplied that cannot stream encoded rows (sharding
    /// slices the encoded form; methods without it cannot shard).
    pub fn for_model_shard(
        model: &ModelConfig,
        quantizer: Option<Arc<dyn KvQuantizer>>,
        num_pages: u32,
        page_size: usize,
        kv_heads: std::ops::Range<usize>,
    ) -> Self {
        assert!(
            !kv_heads.is_empty() && kv_heads.end <= model.num_kv_heads,
            "shard heads {kv_heads:?} invalid for {} KV heads",
            model.num_kv_heads
        );
        let head_dim = model.head_dim();
        let group = model.num_heads / model.num_kv_heads;
        let full_dim = model.kv_dim();
        let start = kv_heads.start * head_dim;
        let dim = kv_heads.len() * head_dim;
        // The shard's geometry is the model's, restricted to its heads;
        // `head_dim` is preserved so row bounds and page math carry over.
        let shard_cfg = ModelConfig {
            num_kv_heads: kv_heads.len(),
            num_heads: kv_heads.len() * group,
            d_model: kv_heads.len() * group * head_dim,
            ..model.clone()
        };
        let wrapped = quantizer.map(|q| {
            Arc::new(crate::sharding::ShardedQuantizer::new(
                q, start, dim, full_dim,
            )) as Arc<dyn KvQuantizer>
        });
        let had_quantizer = wrapped.is_some();
        let mut pool = Self::for_model(&shard_cfg, wrapped, num_pages, page_size);
        assert!(
            !had_quantizer || pool.streaming,
            "sharding requires a quantizer with encoded row streams"
        );
        pool.shard = Some(PoolShard { start, full_dim });
        pool
    }

    /// The row width append entry points expect: the full KV row for a
    /// rank-shard pool, this pool's own `kv_dim` otherwise.
    pub fn append_width(&self) -> usize {
        self.shard.map_or(self.kv_dim, |s| s.full_dim)
    }

    /// The full-row channel range this pool stores (`0..kv_dim` for an
    /// unsharded pool).
    pub fn channel_range(&self) -> std::ops::Range<usize> {
        match self.shard {
            Some(s) => s.start..s.start + self.kv_dim,
            None => 0..self.kv_dim,
        }
    }

    /// The wrapped quantizer handle, for building further shards of the
    /// same method.
    pub(crate) fn quantizer_handle(&self) -> Option<Arc<dyn KvQuantizer>> {
        self.quantizer.clone()
    }

    /// Worst-case dense bytes one appended row can add to a single head's
    /// page stream (f32 storage plus scale/metadata slack) — the guard the
    /// capacity pre-checks use so a checked append can never fail inside
    /// the MMU.
    fn dense_row_bound(&self) -> usize {
        4 * self.head_dim + 16
    }

    /// Worst-case sparse (COO outlier) bytes per head per row: one byte
    /// per element plus metadata slack.
    fn sparse_row_bound(&self) -> usize {
        self.head_dim + 16
    }

    /// Whether the pool's quantizer produces a variable sparse stream
    /// (methods going through the incremental row streams may emit COO
    /// outliers; exact f32 storage never does).
    fn has_sparse(&self) -> bool {
        self.quantizer.is_some()
    }

    /// The backing MMU simulator (read-only): translation tables, burst
    /// plans, and fragmentation statistics over the actual stored sizes.
    pub fn mmu(&self) -> &MmuSim {
        &self.mmu
    }

    /// Total pages in the device.
    pub fn capacity_pages(&self) -> u32 {
        self.mmu.allocator().capacity()
    }

    /// Currently free pages.
    pub fn free_pages(&self) -> u32 {
        self.mmu.allocator().free_pages()
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.mmu.allocator().page_size()
    }

    /// Number of active sequences.
    pub fn active_seqs(&self) -> usize {
        self.seqs.len()
    }

    /// Pages owned *exclusively* by a sequence — its private tail streams
    /// plus its unsealed pending blocks (O(1): tracked per sequence, not
    /// recounted from the MMU's stream map). Adopted shared pages are not
    /// included; they are accounted once, under
    /// [`PagedKvPool::shared_block_pages`].
    pub fn seq_pages(&self, seq: SeqId) -> u32 {
        self.seqs.get(&seq.0).map_or(0, |s| s.pages)
    }

    /// Nominal KV bytes per token (the shared bytes-per-token figure the
    /// analytic capacity model also uses).
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// Whether prefix sharing is active.
    pub fn prefix_sharing(&self) -> bool {
        self.sharing
    }

    /// Enables or disables prefix sharing. Disabling (the PR-2 baseline
    /// behaviour, kept for A/B sweeps) always works; enabling is a no-op
    /// when the quantizer is not prefix-deterministic.
    ///
    /// # Panics
    ///
    /// Panics if sequences are active or the trie is non-empty — the
    /// switch is a construction-time choice.
    pub fn set_prefix_sharing(&mut self, enabled: bool) {
        assert!(
            self.seqs.is_empty() && self.trie.len() == 0,
            "prefix sharing can only be toggled on an idle pool"
        );
        self.sharing = enabled && self.sharing_supported;
    }

    /// Selects the attention read path for sequences admitted from now
    /// on, returning the mode actually installed: [`KernelMode::Fused`]
    /// silently downgrades to [`KernelMode::Exact`] when the pool cannot
    /// support it — no quantizer (exact-f32 pools), no streaming path, or
    /// any `(layer, kind)` stream lacking the encoded read path (every
    /// non-Oaken baseline). Under `Fused`, appended rows live **only** in
    /// their encoded form (no dequantized views are materialized), sealed
    /// trie blocks store encoded rows, and attention reads go through
    /// [`PagedKvPool::encoded_kv`].
    ///
    /// # Panics
    ///
    /// Panics if sequences are active or suspended, or the trie is
    /// non-empty — the switch is a construction-time choice.
    pub fn set_kernel_mode(&mut self, kernel: KernelMode) -> KernelMode {
        assert!(
            self.seqs.is_empty() && self.suspended.is_empty() && self.trie.len() == 0,
            "kernel mode can only be installed on an idle pool"
        );
        let capable = self.streaming
            && self.quantizer.as_ref().is_some_and(|q| {
                (0..self.num_layers).all(|l| {
                    KvKind::ALL.iter().all(|&k| {
                        q.row_stream(self.kv_dim, l, k)
                            .is_some_and(|s| s.fused_read_params().is_some())
                    })
                })
            });
        self.kernel = if kernel == KernelMode::Fused && capable {
            KernelMode::Fused
        } else {
            KernelMode::Exact
        };
        // Recycled slots carry the previous mode's flags; drop them so
        // every future sequence starts from a correctly-flagged slot set.
        self.recycled.clear();
        self.kernel
    }

    /// The installed attention read path.
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// Cumulative KV read-path traffic, split by kernel family.
    pub fn kv_read_stats(&self) -> KvReadStats {
        self.reads.snapshot()
    }

    /// Tokens per shareable prefix block.
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }

    /// Sets the prefix-block granularity. Smaller blocks share more of a
    /// partially common prompt but cost more page-rounding per block.
    ///
    /// # Panics
    ///
    /// Panics on zero, or if sequences are active or the trie is
    /// non-empty.
    pub fn set_block_tokens(&mut self, block_tokens: usize) {
        assert!(block_tokens > 0, "blocks must hold at least one token");
        assert!(
            self.seqs.is_empty() && self.trie.len() == 0,
            "block granularity can only change on an idle pool"
        );
        self.block_tokens = block_tokens;
    }

    /// Cumulative prefix-cache counters.
    pub fn prefix_stats(&self) -> PrefixStats {
        self.stats
    }

    /// Pages currently held by sealed trie blocks (each counted once,
    /// however many sequences share it).
    pub fn shared_block_pages(&self) -> u32 {
        self.trie.total_pages()
    }

    /// Sealed blocks currently live in the trie.
    pub fn trie_blocks(&self) -> usize {
        self.trie.len()
    }

    /// Host-tier capacity in pages (same page size as the device tier).
    pub fn host_capacity_pages(&self) -> u32 {
        self.mmu.host_tier().map_or(0, |h| h.capacity())
    }

    /// Host pages currently occupied by suspended sequences.
    pub fn host_pages_used(&self) -> u32 {
        self.mmu.host_tier().map_or(0, |h| h.used_pages())
    }

    /// Host pages currently free — the headroom swap-based preemption
    /// (and the engine's optimistic admission under it) can still use.
    pub fn host_free_pages(&self) -> u32 {
        self.mmu.host_tier().map_or(0, |h| h.free_pages())
    }

    /// Resizes the host tier (0 disables swap-based suspension; suspends
    /// then fail with [`PoolError::OutOfHostPages`] for any sequence that
    /// owns pages). Defaults to the device capacity at construction.
    ///
    /// # Panics
    ///
    /// Panics while sequences are suspended (the tier can only be resized
    /// while empty).
    pub fn set_host_pages(&mut self, pages: u32) {
        assert!(
            self.suspended.is_empty(),
            "host tier can only be resized with no suspended sequences"
        );
        self.mmu.attach_host_tier(pages);
    }

    /// Cumulative device↔host transfer counters.
    pub fn swap_stats(&self) -> SwapStats {
        self.mmu
            .host_tier()
            .map_or_else(SwapStats::default, |h| h.stats())
    }

    /// Installs a deterministic fault schedule on the underlying MMU (see
    /// [`oaken_mmu::fault`]): appends, suspends, and resumes then poll it
    /// at their pre-check boundaries and surface [`PoolError::Fault`]
    /// without mutating any state. No schedule is installed by default
    /// and the hook is a single `Option` check when disabled.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.mmu.install_faults(plan);
    }

    /// Whether a fault schedule is installed. The batched append path
    /// degrades to the serial per-item loop while faults are active, so
    /// the injection schedule is independent of the thread count.
    pub fn faults_active(&self) -> bool {
        self.mmu.faults_active()
    }

    /// Counters over the faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.mmu.fault_stats()
    }

    /// Sequences currently suspended to host.
    pub fn suspended_seqs(&self) -> usize {
        self.suspended.len()
    }

    /// Whether `seq` is currently suspended.
    pub fn is_suspended(&self, seq: SeqId) -> bool {
        self.suspended.contains_key(&seq.0)
    }

    /// Whether `seq` is live on the device tier (allocated, not
    /// suspended, not freed).
    pub fn is_live(&self, seq: SeqId) -> bool {
        self.seqs.contains_key(&seq.0)
    }

    /// Host pages a suspended sequence occupies — also the upper bound on
    /// the device pages [`resume_seq`](Self::resume_seq) will need (0 for
    /// handles that are not suspended).
    pub fn suspended_seq_pages(&self, seq: SeqId) -> u32 {
        self.suspended.get(&seq.0).map_or(0, |s| s.frozen_pages)
    }

    /// The free/private/shared page-ownership split; `total()` always
    /// equals [`PagedKvPool::capacity_pages`].
    pub fn page_accounting(&self) -> PageAccounting {
        PageAccounting {
            free: self.free_pages(),
            private: self.seqs.values().map(|s| s.pages).sum(),
            shared_blocks: self.trie.total_pages(),
        }
    }

    /// Admission estimate: pages a sequence of `tokens` total tokens will
    /// occupy, including the per-stream page rounding the analytic model
    /// ignores. Uses the *nominal* bytes-per-token; the executed footprint
    /// of variable-rate methods can differ slightly, which preemption
    /// absorbs. Callers admitting a prompt with a known trie prefix should
    /// pass only the *non-shared* tokens (`tokens −`
    /// [`PagedKvPool::probe_prefix`]).
    pub fn pages_for_tokens(&self, tokens: usize) -> u64 {
        if tokens == 0 {
            return 0;
        }
        let dense_streams = (2 * self.num_layers * self.kv_heads) as u64;
        let page = self.page_size() as u64;
        // Nominal per-head bytes for the whole sequence, rounded to pages
        // per stream (each head's dense data lives in its own page
        // stream). The nominal bytes-per-token already folds the sparse
        // payload in, which slightly over-counts the dense pages...
        let stream_bytes = (tokens as u64 * self.bytes_per_token).div_ceil(dense_streams);
        let mut pages = dense_streams * stream_bytes.div_ceil(page);
        // ...while each *sparse* stream still pins at least one page of
        // its own once the first outlier lands (the dominant sparse cost:
        // COO bytes per head per token are single digits).
        if self.has_sparse() {
            pages += dense_streams;
        }
        pages
    }

    /// Worst-case pages appending **one token** to `seq` could allocate:
    /// one page for every per-head stream whose tail cannot absorb a
    /// worst-case row. Schedulers sum this over the batch before an
    /// iteration and preempt until it fits in [`PagedKvPool::free_pages`].
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::UnknownSequence`] for a freed handle.
    pub fn pages_possibly_needed(&self, seq: SeqId) -> Result<u32, PoolError> {
        self.pages_possibly_needed_n(seq, 1)
    }

    /// Worst-case pages appending the next `n` tokens to `seq` could
    /// allocate — the chunked-prefill reservation bound: per stream, the
    /// current tail absorbs whole worst-case rows first, then fresh pages
    /// are charged at worst-case rows-per-page packing. Positions are
    /// attributed to the streams they will actually target (pending
    /// prompt blocks, then the private tail).
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::UnknownSequence`] for a freed handle.
    pub fn pages_possibly_needed_n(&self, seq: SeqId, n: usize) -> Result<u32, PoolError> {
        let state = self
            .seqs
            .get(&seq.0)
            .ok_or(PoolError::UnknownSequence { seq })?;
        if n == 0 {
            return Ok(0);
        }
        let mut needed = 0u32;
        for (layer, pair) in state.slots.iter().enumerate() {
            for kind in KvKind::ALL {
                let start = pair[kind_index(kind)].rows;
                for (owner, count) in self.owner_segments(state, seq.0, start, n) {
                    needed += self.stream_set_pages_needed(owner, layer, kind, count);
                }
            }
        }
        Ok(needed)
    }

    /// Worst-case new pages `count` rows of `(layer, kind)` need across
    /// the per-head dense (and sparse) streams of `owner`.
    fn stream_set_pages_needed(&self, owner: u32, layer: usize, kind: KvKind, count: usize) -> u32 {
        let page = self.page_size();
        let mut needed = 0u32;
        for head in 0..self.kv_heads {
            let mut key = self.stream_key(owner, layer, kind, head, StreamClass::Dense);
            needed += rows_to_pages(
                self.mmu.tail_free(&key),
                count,
                self.dense_row_bound(),
                page,
            );
            if self.has_sparse() {
                key.class = StreamClass::Sparse;
                needed += rows_to_pages(
                    self.mmu.tail_free(&key),
                    count,
                    self.sparse_row_bound(),
                    page,
                );
            }
        }
        needed
    }

    /// Splits positions `start .. start + n` into `(mmu_owner, count)`
    /// runs: pending prompt blocks own their token ranges, everything past
    /// the planned blocks lands in the sequence's private tail.
    fn owner_segments(
        &self,
        state: &SeqSlots,
        seq_id: u32,
        start: usize,
        n: usize,
    ) -> Vec<(u32, usize)> {
        let mut segs: Vec<(u32, usize)> = Vec::new();
        for pos in start..start + n {
            let owner = self.owner_for_pos(state, seq_id, pos);
            match segs.last_mut() {
                Some((o, c)) if *o == owner => *c += 1,
                _ => segs.push((owner, 1)),
            }
        }
        segs
    }

    /// The MMU request id the row at `pos` belongs to.
    fn owner_for_pos(&self, state: &SeqSlots, seq_id: u32, pos: usize) -> u32 {
        if let Some(plan) = &state.plan {
            let b = pos / self.block_tokens;
            if b < plan.blocks.len() {
                return match plan.blocks[b] {
                    SeqBlock::Pending { mmu } => mmu,
                    SeqBlock::Shared(_) => {
                        panic!("position {pos} lies in an adopted shared block")
                    }
                };
            }
        }
        seq_id
    }

    fn stream_key(
        &self,
        owner: u32,
        layer: usize,
        kind: KvKind,
        head: usize,
        class: StreamClass,
    ) -> StreamKey {
        // Key and value streams of one layer are distinct `layer` rows in
        // the management tables: even layers = keys, odd = values.
        StreamKey {
            request: owner,
            layer: (2 * layer + kind_index(kind)) as u16,
            head: head as u16,
            class,
        }
    }

    fn fresh_slots(&mut self) -> SeqSlots {
        match self.recycled.pop() {
            Some(s) => s,
            None => SeqSlots {
                slots: (0..self.num_layers)
                    .map(|layer| {
                        let mk = |kind: KvKind| {
                            let stream = self
                                .quantizer
                                .as_ref()
                                .and_then(|q| q.row_stream(self.kv_dim, layer, kind));
                            let mut slot = KindSlot::new(stream);
                            // Capability was verified for every (layer,
                            // kind) when the mode was installed.
                            slot.fused = self.kernel == KernelMode::Fused;
                            slot
                        };
                        [mk(KvKind::Key), mk(KvKind::Value)]
                    })
                    .collect(),
                pages: 0,
                plan: None,
            },
        }
    }

    /// Admits a new sequence with no prompt plan (no prefix sharing),
    /// reusing a retired sequence's buffers when available. No pages are
    /// allocated until the first append.
    pub fn alloc_seq(&mut self) -> SeqId {
        let id = self.next_id;
        self.next_id += 1;
        let slots = self.fresh_slots();
        self.seqs.insert(id, slots);
        SeqId(id)
    }

    /// Leading prompt tokens an [`alloc_seq_with_prefix`] call would
    /// satisfy from the trie right now — the read-only admission probe
    /// (always a multiple of [`PagedKvPool::block_tokens`], and 0 with
    /// sharing disabled). Schedulers subtract this from a request's
    /// footprint so cache-hot requests admit under page pressure that
    /// would stall a cold one.
    ///
    /// [`alloc_seq_with_prefix`]: PagedKvPool::alloc_seq_with_prefix
    pub fn probe_prefix(&self, tokens: &[u32]) -> usize {
        self.walk_prefix(tokens).len() * self.block_tokens
    }

    /// Full prompt blocks `tokens` can plan: at least the final token is
    /// always fed live so the caller gets next-token logits.
    fn planned_blocks(&self, tokens: &[u32]) -> usize {
        if self.sharing {
            tokens.len().saturating_sub(1) / self.block_tokens
        } else {
            0
        }
    }

    /// Trie ids of the longest matched block chain for `tokens`.
    fn walk_prefix(&self, tokens: &[u32]) -> Vec<usize> {
        let planned = self.planned_blocks(tokens);
        let bt = self.block_tokens;
        let mut ids = Vec::new();
        let mut parent = None;
        while ids.len() < planned {
            let b = ids.len();
            match self.trie.child(parent, &tokens[b * bt..(b + 1) * bt]) {
                Some(id) => {
                    ids.push(id);
                    parent = Some(id);
                }
                None => break,
            }
        }
        ids
    }

    /// Admits a new sequence for a known prompt, walking the prefix trie:
    /// every matched full block is **adopted** (refcount bumped, pages
    /// retained, dequantized views copied into the sequence's cache — no
    /// re-quantization), and the unmatched remainder of the prompt is
    /// planned as private pending blocks that will seal as they fill. The
    /// caller must feed tokens starting at `matched_tokens` (the adopted
    /// rows are already cached) and must feed exactly `tokens` for the
    /// prompt span — the trie keys sealed blocks by this announced
    /// content.
    ///
    /// With sharing disabled (or a non-prefix-deterministic quantizer)
    /// this is exactly [`PagedKvPool::alloc_seq`].
    pub fn alloc_seq_with_prefix(&mut self, tokens: &[u32]) -> PrefixAlloc {
        let seq = self.alloc_seq();
        let planned = self.planned_blocks(tokens);
        if planned == 0 {
            return PrefixAlloc {
                seq,
                matched_tokens: 0,
            };
        }
        let matched_ids = self.walk_prefix(tokens);
        let matched = matched_ids.len();
        let bt = self.block_tokens;
        // Adopt every matched block: refcount + page references + views.
        let mut adopted_bytes = 0u64;
        for &id in &matched_ids {
            self.trie.retain(id);
            let block_mmu = self.trie.get(id).mmu;
            self.mmu.retain_request(block_mmu);
            adopted_bytes += self.trie.get(id).bytes;
            let state = self.seqs.get_mut(&seq.0).expect("just allocated");
            let block = self.trie.get(id);
            for (layer, pair) in state.slots.iter_mut().enumerate() {
                for (ki, slot) in pair.iter_mut().enumerate() {
                    if slot.fused {
                        // Fused pools adopt the block's *encoded* rows
                        // into the stream itself, so the stream's encoded
                        // state always covers absolute positions 0..rows
                        // and no f32 image is ever materialized.
                        let rows = &block.encoded[layer][ki];
                        let ok = slot
                            .stream
                            .as_mut()
                            .expect("fused slots are streaming")
                            .adopt_encoded_rows(rows);
                        assert!(ok, "fused slot's stream refused adoption");
                    } else {
                        let rows = &block.views[layer][ki];
                        slot.view.extend_from_slice(rows);
                        if slot.stream.is_none() {
                            // Exact-f32 pools re-materialize views from
                            // `exact` on read; keep it in sync.
                            slot.exact.extend_from_slice(rows);
                        }
                    }
                    slot.rows += bt;
                }
            }
        }
        let mut blocks: Vec<SeqBlock> = matched_ids.into_iter().map(SeqBlock::Shared).collect();
        for _ in matched..planned {
            blocks.push(SeqBlock::Pending {
                mmu: self.fresh_block_mmu(),
            });
        }
        let state = self.seqs.get_mut(&seq.0).expect("just allocated");
        state.plan = Some(SeqPlan {
            prompt: tokens.to_vec(),
            blocks,
            sealed: matched,
        });
        self.stats.trie_hits += matched as u64;
        self.stats.tokens_reused += (matched * bt) as u64;
        self.stats.quant_rows_skipped += (matched * bt * self.num_layers * 2) as u64;
        self.stats.bytes_deduplicated += adopted_bytes;
        PrefixAlloc {
            seq,
            matched_tokens: matched * bt,
        }
    }

    fn fresh_block_mmu(&mut self) -> u32 {
        let id = self.next_block_mmu;
        self.next_block_mmu -= 1;
        assert!(
            self.next_block_mmu > self.next_id,
            "block and sequence id spaces collided"
        );
        id
    }

    /// Retires a sequence: frees its private pages (tail + pending
    /// blocks), releases its shared blocks leaf-first (freeing each only
    /// when the last sharer departs), and recycles its buffers. Returns
    /// the number of physically freed pages.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::UnknownSequence`] for a double-free.
    pub fn free_seq(&mut self, seq: SeqId) -> Result<u32, PoolError> {
        let mut state = self
            .seqs
            .remove(&seq.0)
            .ok_or(PoolError::UnknownSequence { seq })?;
        let mut freed = self
            .mmu
            .free_request(seq.0)
            .expect("pool-owned pages cannot double-free");
        if let Some(plan) = state.plan.take() {
            for block in plan.blocks.into_iter().rev() {
                match block {
                    SeqBlock::Pending { mmu } => {
                        freed += self
                            .mmu
                            .free_request(mmu)
                            .expect("pending pages are exclusively owned");
                    }
                    SeqBlock::Shared(id) => freed += self.release_shared_block(id),
                }
            }
        }
        self.recycle_slots(state);
        Ok(freed)
    }

    /// Drops one sequence's reference on a sealed trie block, freeing its
    /// pages when the last sharer departs. Returns the pages physically
    /// freed.
    fn release_shared_block(&mut self, id: usize) -> u32 {
        let block_mmu = self.trie.get(id).mmu;
        let released = self.mmu.release_request(block_mmu);
        match self.trie.release(id) {
            Some(b) => {
                debug_assert_eq!(released, b.pages, "block page accounting");
                released
            }
            None => {
                debug_assert_eq!(released, 0, "block still shared");
                0
            }
        }
    }

    /// Clears a retired sequence's buffers and keeps them for reuse.
    fn recycle_slots(&mut self, mut state: SeqSlots) {
        for pair in &mut state.slots {
            for slot in pair {
                slot.reset_for_reuse();
            }
        }
        state.pages = 0;
        self.recycled.push(state);
    }

    /// MMU request ids whose pages a sequence owns *exclusively*: its own
    /// tail streams plus its pending (unsealed) prompt blocks — the pages
    /// that move tiers on suspend. Adopted shared blocks are excluded.
    fn private_mmu_ids(state: &SeqSlots, seq_id: u32) -> Vec<u32> {
        let mut ids = vec![seq_id];
        if let Some(plan) = &state.plan {
            for block in &plan.blocks {
                if let SeqBlock::Pending { mmu } = block {
                    ids.push(*mmu);
                }
            }
        }
        ids
    }

    /// Suspends an active sequence to the host tier: its private pages
    /// (tail streams plus pending prompt blocks) swap out through the MMU
    /// — device pages free, host pages charge, transfer bytes are
    /// accounted — while its quantizer stream state, dequantized views,
    /// and prompt-block plan are retained verbatim, which is what makes a
    /// later [`resume_seq`](Self::resume_seq) **bit-exact** by
    /// construction. Shared trie blocks stay resident: the suspended
    /// sequence keeps its refcounts, so a sealed prefix another sequence
    /// is using (or that only this sequence still needs) cannot be
    /// destroyed while it sits on host — releasing them instead would
    /// break the zero-recompute guarantee whenever this sequence was the
    /// last sharer.
    ///
    /// Returns the pages/bytes moved to host. On `Err` nothing changed
    /// and the sequence stays active.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownSequence`] for a freed handle,
    /// [`PoolError::OutOfHostPages`] when the host tier cannot hold the
    /// sequence's private pages (callers fall back to
    /// evict-and-recompute), [`PoolError::Fault`] when the installed
    /// fault schedule fails the host charge or the transfer.
    pub fn suspend_seq(&mut self, seq: SeqId) -> Result<SwapReceipt, PoolError> {
        if !self.seqs.contains_key(&seq.0) {
            return Err(PoolError::UnknownSequence { seq });
        }
        // Suspension charges the host tier and runs a device → host
        // transfer: both are injectable, polled before anything mutates.
        for op in [FaultOp::HostAlloc, FaultOp::SwapOut] {
            if let Some(kind) = self.mmu.poll_fault(op) {
                return Err(PoolError::Fault { op, kind });
            }
        }
        let state = self.seqs.get(&seq.0).expect("checked above");
        let host_free = self.host_free_pages();
        if state.pages > host_free {
            return Err(PoolError::OutOfHostPages {
                needed: state.pages,
                free: host_free,
            });
        }
        let mut state = self.seqs.remove(&seq.0).expect("checked above");
        let mut receipt = SwapReceipt::default();
        for id in Self::private_mmu_ids(&state, seq.0) {
            receipt.merge(
                self.mmu
                    .swap_out_request(id)
                    .expect("host headroom pre-checked; private pages are refcount-1"),
            );
        }
        debug_assert_eq!(receipt.pages, state.pages, "private page accounting");
        state.pages = 0;
        self.suspended.insert(
            seq.0,
            SuspendedSeq {
                slots: state,
                frozen_pages: receipt.pages,
            },
        );
        Ok(receipt)
    }

    /// Resumes a suspended sequence: its private page streams thaw back
    /// into device memory (fresh pages, identical per-token sizes and
    /// tail headroom) and the sequence becomes active again, bit-exactly
    /// where it left off — views, stream calibration, prompt plan, and
    /// adopted shared blocks all untouched by the round trip. Returns the
    /// pages/bytes moved back.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownSequence`] when the handle is not suspended,
    /// [`PoolError::OutOfPages`] when the device lacks the frozen page
    /// count — the sequence then stays on host and the caller retries
    /// after pages free — and [`PoolError::Fault`] when the installed
    /// fault schedule fails the transfer (the sequence also stays on
    /// host; callers retry with backoff, then degrade to a restart).
    pub fn resume_seq(&mut self, seq: SeqId) -> Result<SwapReceipt, PoolError> {
        if !self.suspended.contains_key(&seq.0) {
            return Err(PoolError::UnknownSequence { seq });
        }
        // The resume runs a host → device transfer: injectable, polled
        // before anything mutates (the sequence stays frozen on `Err`).
        if let Some(kind) = self.mmu.poll_fault(FaultOp::SwapIn) {
            return Err(PoolError::Fault {
                op: FaultOp::SwapIn,
                kind,
            });
        }
        let entry = self.suspended.get(&seq.0).expect("checked above");
        let needed = entry.frozen_pages;
        let free = self.free_pages();
        if needed > free {
            return Err(PoolError::OutOfPages { needed, free });
        }
        let mut entry = self.suspended.remove(&seq.0).expect("checked above");
        let mut receipt = SwapReceipt::default();
        for id in Self::private_mmu_ids(&entry.slots, seq.0) {
            receipt.merge(
                self.mmu
                    .swap_in_request(id)
                    .expect("device headroom pre-checked against the frozen page count"),
            );
        }
        entry.slots.pages = receipt.pages;
        self.seqs.insert(seq.0, entry.slots);
        Ok(receipt)
    }

    /// Retires a *suspended* sequence without resuming it: its frozen
    /// entries are discarded (host pages free, no transfer back) and its
    /// shared trie blocks are released leaf-first exactly as
    /// [`free_seq`](Self::free_seq) would. Returns the *device* pages
    /// physically freed (shared blocks whose last sharer this was).
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownSequence`] when the handle is not suspended.
    pub fn drop_suspended_seq(&mut self, seq: SeqId) -> Result<u32, PoolError> {
        let mut entry = self
            .suspended
            .remove(&seq.0)
            .ok_or(PoolError::UnknownSequence { seq })?;
        for id in Self::private_mmu_ids(&entry.slots, seq.0) {
            self.mmu
                .discard_frozen(id)
                .expect("suspended sequences' private ids are frozen");
        }
        let mut freed = 0u32;
        if let Some(plan) = entry.slots.plan.take() {
            for block in plan.blocks.into_iter().rev() {
                match block {
                    // Pending pages were frozen and just discarded.
                    SeqBlock::Pending { .. } => {}
                    SeqBlock::Shared(id) => freed += self.release_shared_block(id),
                }
            }
        }
        self.recycle_slots(entry.slots);
        Ok(freed)
    }

    /// Exports an active sequence as a [`KvTransfer`] and retires it from
    /// this pool — the send side of a prefill→decode handoff.
    ///
    /// The sequence is **flattened to fully private form**: its per-token
    /// size tables are collected across every owner in token order
    /// (adopted shared trie blocks, pending prompt blocks, then the
    /// private tail — per `(layer, kind, head, class)` stream), sealed
    /// into a self-describing [`oaken_mmu::TransferPayload`], and its
    /// slots (quantizer stream state, views, row counts) ship verbatim
    /// with the prompt plan stripped. Flattening is what makes the
    /// transfer self-contained: the importer owes nothing to this pool's
    /// trie, and the slots already hold every adopted row's bytes (exact
    /// mode copies views at adoption; fused mode adopts encoded rows into
    /// the stream itself). The source side then tears down exactly like
    /// [`free_seq`](Self::free_seq): private pages free, shared blocks
    /// release leaf-first.
    ///
    /// Bit-exactness argument: the slots are the same state
    /// [`suspend_seq`](Self::suspend_seq) retains verbatim — no byte is
    /// re-encoded anywhere on the path — so a decode continued from the
    /// imported sequence reproduces the monolithic engine's tokens
    /// exactly.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownSequence`] for a freed or suspended handle (a
    /// failed export changes nothing).
    pub fn export_seq(&mut self, seq: SeqId) -> Result<KvTransfer, PoolError> {
        use std::collections::BTreeMap;
        let state = self
            .seqs
            .get(&seq.0)
            .ok_or(PoolError::UnknownSequence { seq })?;
        // Owners in token order: plan blocks root-to-leaf, then the tail.
        let mut owners: Vec<u32> = Vec::new();
        if let Some(plan) = &state.plan {
            for block in &plan.blocks {
                owners.push(match block {
                    SeqBlock::Shared(id) => self.trie.get(*id).mmu,
                    SeqBlock::Pending { mmu } => *mmu,
                });
            }
        }
        owners.push(seq.0);
        let mut tables: BTreeMap<(u16, u16, StreamClass), Vec<u32>> = BTreeMap::new();
        for owner in owners {
            for (key, sizes) in self.mmu.request_stream_sizes(owner) {
                tables
                    .entry((key.layer, key.head, key.class))
                    .or_default()
                    .extend(sizes);
            }
        }
        let mut payload = oaken_mmu::TransferPayload {
            streams: tables
                .into_iter()
                .map(|((layer, head, class), sizes)| oaken_mmu::StreamPayload {
                    layer,
                    head,
                    class,
                    sizes,
                })
                .collect(),
            bytes: 0,
            checksum: 0,
        };
        payload.seal();
        // Source-side teardown, exactly as free_seq.
        let mut slots = self.seqs.remove(&seq.0).expect("checked above");
        self.mmu
            .free_request(seq.0)
            .expect("pool-owned pages cannot double-free");
        if let Some(plan) = slots.plan.take() {
            for block in plan.blocks.into_iter().rev() {
                match block {
                    SeqBlock::Pending { mmu } => {
                        self.mmu
                            .free_request(mmu)
                            .expect("pending pages are exclusively owned");
                    }
                    SeqBlock::Shared(id) => {
                        self.release_shared_block(id);
                    }
                }
            }
        }
        slots.pages = 0;
        Ok(KvTransfer { slots, payload })
    }

    /// Whether [`import_seq`](Self::import_seq) would accept `transfer`
    /// right now — the capacity pre-flight a cluster's transfer clock
    /// polls before committing a handoff (so a full host tier delays the
    /// transfer instead of dropping it).
    ///
    /// # Errors
    ///
    /// [`PoolError::OutOfHostPages`] when the host tier lacks room for
    /// the payload's page charge.
    pub fn can_import(&self, transfer: &KvTransfer) -> Result<(), PoolError> {
        let needed = transfer.payload.pages_needed(self.page_size());
        let free = self.host_free_pages();
        if needed > free {
            return Err(PoolError::OutOfHostPages { needed, free });
        }
        Ok(())
    }

    /// Imports a [`KvTransfer`] from another pool: the payload lands as a
    /// frozen entry of this pool's **host tier** under a fresh local
    /// sequence id (returned), and the slots park in the suspended map —
    /// the imported sequence is indistinguishable from one
    /// [`suspend_seq`](Self::suspend_seq) froze locally, so the normal
    /// [`resume_seq`](Self::resume_seq) machinery (and the serving
    /// engine's resume queue, with its priority, backoff, and demotion
    /// rules) activates it. The transfer's checksum is asserted before
    /// any state lands (see [`MmuSim::import_frozen`]).
    ///
    /// # Errors
    ///
    /// Returns the transfer back untouched with
    /// [`PoolError::OutOfHostPages`] when the host tier lacks room (the
    /// caller retries later) or [`PoolError::Fault`] when the installed
    /// fault schedule fails the host charge.
    ///
    /// # Panics
    ///
    /// Panics when the transfer's geometry disagrees with this pool
    /// (layer count or kernel mode) — cluster engines must share a model
    /// and kernel configuration — or when the payload fails its checksum.
    #[allow(clippy::result_large_err)]
    pub fn import_seq(
        &mut self,
        transfer: KvTransfer,
    ) -> Result<(SeqId, SwapReceipt), (KvTransfer, PoolError)> {
        assert_eq!(
            transfer.slots.slots.len(),
            self.num_layers,
            "imported sequence's layer count disagrees with this pool"
        );
        for pair in &transfer.slots.slots {
            for slot in pair {
                assert_eq!(
                    slot.fused,
                    self.kernel == KernelMode::Fused,
                    "imported sequence's kernel mode disagrees with this pool"
                );
            }
        }
        // The landing charges the host tier: injectable, polled before
        // anything mutates (the transfer is handed back for a retry).
        if let Some(kind) = self.mmu.poll_fault(FaultOp::HostAlloc) {
            return Err((
                transfer,
                PoolError::Fault {
                    op: FaultOp::HostAlloc,
                    kind,
                },
            ));
        }
        if let Err(e) = self.can_import(&transfer) {
            return Err((transfer, e));
        }
        let id = self.next_id;
        let receipt = match self.mmu.import_frozen(id, &transfer.payload) {
            Ok(r) => r,
            Err(oaken_mmu::SwapError::OutOfHostPages { needed, free }) => {
                return Err((transfer, PoolError::OutOfHostPages { needed, free }))
            }
            Err(e) => panic!("import pre-flight missed {e}"),
        };
        self.next_id += 1;
        let mut slots = transfer.slots;
        slots.pages = 0;
        debug_assert!(slots.plan.is_none(), "exports are flattened");
        self.suspended.insert(
            id,
            SuspendedSeq {
                slots,
                frozen_pages: receipt.pages,
            },
        );
        Ok((SeqId(id), receipt))
    }

    /// Appends one token's K/V rows for `(seq, layer)`, quantizing them
    /// incrementally and laying the encoded payload into pages — pending
    /// prompt-block streams while inside the planned prompt, the private
    /// tail stream afterwards. Atomic: on `Err` nothing was modified.
    /// Completing the last row of a pending block **seals** it into the
    /// prefix trie (see the module docs).
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownSequence`] for a freed handle,
    /// [`PoolError::OutOfPages`] when the worst-case page bound exceeds
    /// the free pages, [`PoolError::Fault`] when the installed fault
    /// schedule fails an allocating append.
    ///
    /// # Panics
    ///
    /// Panics if the vector widths disagree with the model's `kv_dim`.
    pub fn append(
        &mut self,
        seq: SeqId,
        layer: usize,
        k: &[f32],
        v: &[f32],
    ) -> Result<(), PoolError> {
        assert_eq!(k.len(), self.append_width(), "key width mismatch");
        assert_eq!(v.len(), self.append_width(), "value width mismatch");
        let Some(state) = self.seqs.get(&seq.0) else {
            return Err(PoolError::UnknownSequence { seq });
        };
        let mut needed = 0u32;
        for kind in KvKind::ALL {
            let pos = state.slots[layer][kind_index(kind)].rows;
            let owner = self.owner_for_pos(state, seq.0, pos);
            needed += self.stream_set_pages_needed(owner, layer, kind, 1);
        }
        if needed > 0 {
            // The append would allocate: poll the fault schedule before
            // anything mutates (appends that fit the page tails are not
            // allocation events and never fault).
            if let Some(kind) = self.mmu.poll_fault(FaultOp::DeviceAlloc) {
                return Err(PoolError::Fault {
                    op: FaultOp::DeviceAlloc,
                    kind,
                });
            }
        }
        let free = self.free_pages();
        if needed > free {
            return Err(PoolError::OutOfPages { needed, free });
        }
        for (kind, row) in [(KvKind::Key, k), (KvKind::Value, v)] {
            let state = self.seqs.get(&seq.0).expect("checked above");
            let pos = state.slots[layer][kind_index(kind)].rows;
            let owner = self.owner_for_pos(state, seq.0, pos);
            let (dense, sparse) = self.append_row(seq, layer, kind, row);
            self.write_pages(seq, owner, layer, kind, dense, sparse);
        }
        self.seal_completed_blocks(seq);
        Ok(())
    }

    /// Whether appends only *extend* this pool's dequantized views (see
    /// [`BatchKvCache::append_only_views`]): true for exact-f32 pools and
    /// for every quantizer with an incremental row stream, false for the
    /// recompute-on-read fallback.
    pub fn append_only_views(&self) -> bool {
        self.streaming
    }

    /// Worst-case new pages `n` consecutive appends to `(seq, layer)`
    /// could allocate, without heap allocation (the batched-append
    /// pre-check; [`PagedKvPool::pages_possibly_needed_n`] is the
    /// all-layers variant schedulers use).
    fn layer_pages_needed(&self, state: &SeqSlots, seq_id: u32, layer: usize, n: usize) -> u32 {
        let mut needed = 0u32;
        for kind in KvKind::ALL {
            let start = state.slots[layer][kind_index(kind)].rows;
            // Stream owner runs of `start .. start + n`, accumulated
            // without the `owner_segments` scratch vector.
            let mut run: Option<(u32, usize)> = None;
            for pos in start..start + n {
                let owner = self.owner_for_pos(state, seq_id, pos);
                match &mut run {
                    Some((o, c)) if *o == owner => *c += 1,
                    _ => {
                        if let Some((o, c)) = run.take() {
                            needed += self.stream_set_pages_needed(o, layer, kind, c);
                        }
                        run = Some((owner, 1));
                    }
                }
            }
            if let Some((o, c)) = run {
                needed += self.stream_set_pages_needed(o, layer, kind, c);
            }
        }
        needed
    }

    /// Appends one token's K/V rows for `layer` across a whole batch of
    /// sequences — semantically identical to calling
    /// [`PagedKvPool::append`] for each item in order (same state, same
    /// page assignment, same errors), with the quantization work sharded
    /// across `rt`.
    ///
    /// Execution follows the paper's engine/MMU split (§5.2): the many
    /// quantization engines work on independent shards — here, each
    /// sequence's own row streams, the software unit that preserves
    /// bit-exactness — while the MMU stays a **single writer**: a
    /// conservative page bound is checked up front (the pre-reservation),
    /// the parallel phase only quantizes into per-sequence buffers, and
    /// all page allocation happens afterwards on the calling thread in
    /// item order, so physical page assignment is identical to the serial
    /// schedule.
    ///
    /// Items of one sequence must be consecutive (chunked-prefill order);
    /// otherwise, and for a serial `rt` or a batch of one, the call
    /// degrades to the serial loop. After warm-up the batched path
    /// performs no heap allocations (scratch is pool-owned and reused;
    /// enforced by `tests/pool_alloc_free.rs`).
    ///
    /// # Errors
    ///
    /// As [`PagedKvPool::append`]; like the serial loop, items before a
    /// failing item remain applied.
    ///
    /// # Panics
    ///
    /// Panics if any vector width disagrees with the model's `kv_dim`.
    pub fn append_batch(
        &mut self,
        rt: &Runtime,
        layer: usize,
        items: &[SeqRowAppend<'_>],
    ) -> Result<(), PoolError> {
        self.append_batch_with(rt, layer, items.len(), &|i| items[i])
            .map_err(|(_, e)| e)
    }

    /// [`PagedKvPool::append_batch`] over an item *accessor* instead of a
    /// materialized slice, so adapters that only hold a slot→sequence
    /// mapping (the engine's `PoolBatchView`) can feed the batched path
    /// without building a translated item list per call — keeping the
    /// whole engine append path allocation-free in steady state.
    ///
    /// `get(i)` must be pure (it is called more than once per item).
    ///
    /// # Errors
    ///
    /// As [`PagedKvPool::append`], tagged with the index of the failing
    /// item so adapters can contain the failure to one batch slot; like
    /// the serial loop, items before the failing one remain applied and
    /// items after it were not attempted.
    pub fn append_batch_with<'a>(
        &mut self,
        rt: &Runtime,
        layer: usize,
        n_items: usize,
        get: &(dyn Fn(usize) -> SeqRowAppend<'a> + Sync),
    ) -> Result<(), (usize, PoolError)> {
        for i in 0..n_items {
            let it = get(i);
            assert_eq!(it.k.len(), self.append_width(), "key width mismatch");
            assert_eq!(it.v.len(), self.append_width(), "value width mismatch");
        }
        let serial = |pool: &mut Self| -> Result<(), (usize, PoolError)> {
            for i in 0..n_items {
                let it = get(i);
                pool.append(it.seq, layer, it.k, it.v).map_err(|e| (i, e))?;
            }
            Ok(())
        };
        if rt.is_serial() || n_items < 2 || self.mmu.faults_active() {
            // Faults force the serial loop: every item polls the
            // schedule individually in item order, so the injection
            // sequence is identical at every thread count.
            return serial(self);
        }
        // Consecutive same-sequence runs; any irregularity (unknown
        // sequence, a sequence split across non-adjacent runs) falls back
        // to the serial loop, which surfaces errors at the right item.
        self.batch.runs.clear();
        for idx in 0..n_items {
            let it = get(idx);
            match self.batch.runs.last_mut() {
                Some((s, _, len)) if *s == it.seq.0 => *len += 1,
                _ => self.batch.runs.push((it.seq.0, idx, 1)),
            }
        }
        let runs_ok = self
            .batch
            .runs
            .iter()
            .enumerate()
            .all(|(i, &(s, _, _))| self.batch.runs[..i].iter().all(|&(p, _, _)| p != s))
            && self
                .batch
                .runs
                .iter()
                .all(|&(s, _, _)| self.seqs.contains_key(&s));
        if !runs_ok {
            return serial(self);
        }
        // Conservative pre-reservation: worst-case pages for the whole
        // batch at this layer. When it does not fit, the serial loop
        // reproduces the exact per-item failure semantics (its per-item
        // bound is weaker, so it may still make progress).
        let mut needed = 0u32;
        for &(seq_id, _, len) in &self.batch.runs {
            let state = &self.seqs[&seq_id];
            needed += self.layer_pages_needed(state, seq_id, layer, len);
        }
        if needed > self.free_pages() {
            return serial(self);
        }

        // Phase 1 (parallel): quantize every row into its sequence's own
        // streams — one task per run, rows in item order within a run, so
        // each stream sees exactly the serial append order. Only
        // per-sequence state is touched; sizes land in disjoint records.
        self.batch.recs.clear();
        self.batch.recs.resize(n_items, RowRecord::default());
        self.batch.ptrs.0.clear();
        for &(seq_id, _, _) in &self.batch.runs {
            let state = self.seqs.get_mut(&seq_id).expect("validated above");
            self.batch.ptrs.0.push(state as *mut SeqSlots);
        }
        {
            let runs = &self.batch.runs;
            let ptrs = &self.batch.ptrs;
            let recs = UnsafeSlice::new(&mut self.batch.recs);
            let exact_shard = if self.quantizer.is_none() {
                self.shard
            } else {
                None
            };
            let quantizer = self.quantizer.as_deref();
            let kv_dim = self.kv_dim;
            rt.run(runs.len(), |r| {
                let (_, start, len) = runs[r];
                // SAFETY: each run names a distinct live sequence (checked
                // above), so this is the only task touching these slots,
                // and `self.seqs` is not otherwise accessed until the
                // phase completes.
                let state_ptr: *mut SeqSlots = ptrs.0[r];
                let state = unsafe { &mut *state_ptr };
                for idx in start..start + len {
                    let it = get(idx);
                    // SAFETY: `idx` ranges are disjoint across runs.
                    let rec = unsafe { recs.get_mut(idx) };
                    rec.pos = state.slots[layer][0].rows;
                    for (ki, row) in [(0usize, it.k), (1usize, it.v)] {
                        let slot = &mut state.slots[layer][ki];
                        let row = match exact_shard {
                            Some(s) => &row[s.start..s.start + kv_dim],
                            None => row,
                        };
                        slot.append(row);
                        let bytes = encoded_row_payload(slot, quantizer, kv_dim);
                        if ki == 0 {
                            rec.key_bytes = bytes;
                        } else {
                            rec.value_bytes = bytes;
                        }
                    }
                }
            });
        }

        // Phase 2 (serial, item order): lay the encoded bytes into pages
        // and seal any block whose rows are now fully committed — the
        // exact write/seal schedule of the serial loop, so page ids and
        // trie state are bit-identical to it.
        for idx in 0..n_items {
            let it = get(idx);
            let rec = self.batch.recs[idx];
            for (kind, (dense, sparse)) in [
                (KvKind::Key, rec.key_bytes),
                (KvKind::Value, rec.value_bytes),
            ] {
                let state = self.seqs.get(&it.seq.0).expect("validated above");
                let owner = self.owner_for_pos(state, it.seq.0, rec.pos);
                self.write_pages(it.seq, owner, layer, kind, dense, sparse);
            }
            self.seal_ready_blocks(it.seq, Some((layer, rec.pos + 1)));
        }
        Ok(())
    }

    /// Appends one row to the `(seq, layer, kind)` slot and returns the
    /// `(dense, sparse)` stored byte sizes of the encoded row.
    fn append_row(
        &mut self,
        seq: SeqId,
        layer: usize,
        kind: KvKind,
        row: &[f32],
    ) -> (usize, usize) {
        let kv_dim = self.kv_dim;
        // Quantized shards pass the full row through (the stream slices
        // after whole-row quantization); exact shards slice here.
        let exact_shard = if self.quantizer.is_none() {
            self.shard
        } else {
            None
        };
        let quantizer = self.quantizer.as_deref();
        let slot = &mut self.seqs.get_mut(&seq.0).expect("checked by caller").slots[layer]
            [kind_index(kind)];
        let row = match exact_shard {
            Some(s) => &row[s.start..s.start + kv_dim],
            None => row,
        };
        slot.append(row);
        encoded_row_payload(slot, quantizer, kv_dim)
    }

    /// Lays one encoded row's bytes into `owner`'s per-head dense/sparse
    /// page streams (the burst-order write layout of §5.2). Byte totals
    /// are split evenly across heads, remainder to the lowest heads. New
    /// pages are charged to the sequence's private count (pending blocks
    /// stay private until sealed).
    fn write_pages(
        &mut self,
        seq: SeqId,
        owner: u32,
        layer: usize,
        kind: KvKind,
        dense: usize,
        sparse: usize,
    ) {
        let mut new_pages = 0u32;
        for (class, total) in [(StreamClass::Dense, dense), (StreamClass::Sparse, sparse)] {
            if total == 0 {
                continue;
            }
            let base = total / self.kv_heads;
            let extra = total % self.kv_heads;
            for head in 0..self.kv_heads {
                let bytes = base + usize::from(head < extra);
                if bytes == 0 {
                    continue;
                }
                let key = self.stream_key(owner, layer, kind, head, class);
                let receipt = self
                    .mmu
                    .write_token(key, bytes as u32)
                    .expect("append pre-checked the worst-case page bound");
                new_pages += u32::from(receipt.new_page);
            }
        }
        if new_pages > 0 {
            self.seqs
                .get_mut(&seq.0)
                .expect("caller validated the sequence")
                .pages += new_pages;
        }
    }

    /// Seals every pending block whose rows are complete across all
    /// layers and kinds: the block either enters the trie as a new node
    /// (its pages move from private to shared accounting) or — when a
    /// concurrent sequence already sealed the identical block — is freed
    /// and the existing node adopted instead (late dedup).
    fn seal_completed_blocks(&mut self, seq: SeqId) {
        self.seal_ready_blocks(seq, None);
    }

    /// [`seal_completed_blocks`](Self::seal_completed_blocks) with an
    /// optional `(layer, rows)` cap on one layer's committed row count.
    ///
    /// The batched append quantizes a whole iteration's rows before any
    /// page is laid, so during its serial commit phase a layer's
    /// `slot.rows` can run ahead of the rows whose pages exist; sealing a
    /// block then would move a partially-written page range into the
    /// trie. The cap restores the serial invariant: a block seals only
    /// once every one of its rows is page-committed.
    fn seal_ready_blocks(&mut self, seq: SeqId, committed: Option<(usize, usize)>) {
        loop {
            let state = self.seqs.get(&seq.0).expect("caller validated");
            let Some(plan) = &state.plan else {
                return;
            };
            if plan.sealed >= plan.blocks.len() {
                return;
            }
            let boundary = (plan.sealed + 1) * self.block_tokens;
            let complete = state.slots.iter().enumerate().all(|(l, pair)| {
                pair.iter().all(|s| {
                    let rows = match committed {
                        Some((cl, limit)) if cl == l => s.rows.min(limit),
                        _ => s.rows,
                    };
                    rows >= boundary
                })
            });
            if !complete {
                return;
            }
            self.seal_block(seq);
        }
    }

    /// Materialized dequantized rows `[start, end)` of one slot. Streaming
    /// slots keep `view` current on every append; exact-f32 slots hold the
    /// authoritative copy in `exact` (the view is lazily re-cloned).
    fn block_rows(slot: &KindSlot, kv_dim: usize, start: usize, end: usize) -> Vec<f32> {
        let src = if slot.stream.is_some() {
            &slot.view
        } else {
            &slot.exact
        };
        src[start * kv_dim..end * kv_dim].to_vec()
    }

    /// Encoded rows `[start, end)` of one fused slot. Valid because in
    /// fused mode the stream's encoded state covers absolute positions —
    /// prefix adoption feeds the stream rather than a side view.
    fn block_encoded_rows(slot: &KindSlot, start: usize, end: usize) -> Vec<FusedVector> {
        let rows = slot
            .stream
            .as_ref()
            .and_then(|s| s.encoded_rows())
            .expect("fused slots expose encoded rows");
        rows[start..end].to_vec()
    }

    /// Seals the next pending block of `seq` (see
    /// [`seal_completed_blocks`](Self::seal_completed_blocks)).
    fn seal_block(&mut self, seq: SeqId) {
        let bt = self.block_tokens;
        let kv_dim = self.kv_dim;
        let (b, pending_mmu, chunk, parent) = {
            let state = self.seqs.get(&seq.0).expect("caller validated");
            let plan = state.plan.as_ref().expect("caller checked");
            let b = plan.sealed;
            let mmu = match plan.blocks[b] {
                SeqBlock::Pending { mmu } => mmu,
                SeqBlock::Shared(_) => unreachable!("sealed blocks are skipped"),
            };
            let chunk: Box<[u32]> = plan.prompt[b * bt..(b + 1) * bt].into();
            let parent = match b.checked_sub(1) {
                None => None,
                Some(prev) => match plan.blocks[prev] {
                    SeqBlock::Shared(id) => Some(id),
                    SeqBlock::Pending { .. } => unreachable!("blocks seal in order"),
                },
            };
            (b, mmu, chunk, parent)
        };
        let sealed_id = match self.trie.child(parent, &chunk) {
            Some(existing) => {
                // Late dedup: another sequence sealed the identical block
                // first. Prefix determinism says both copies are
                // bit-identical — check it in debug builds — so drop ours
                // and adopt theirs.
                #[cfg(debug_assertions)]
                {
                    let state = self.seqs.get(&seq.0).expect("caller validated");
                    let block = self.trie.get(existing);
                    for (layer, pair) in state.slots.iter().enumerate() {
                        for (ki, slot) in pair.iter().enumerate() {
                            if slot.fused {
                                let ours = Self::block_encoded_rows(slot, b * bt, (b + 1) * bt);
                                debug_assert!(
                                    ours == block.encoded[layer][ki],
                                    "trie hit is not encoding-exact (layer {layer}, kind \
                                     {ki}): quantizer wrongly claims prefix determinism"
                                );
                            } else {
                                let ours = Self::block_rows(slot, kv_dim, b * bt, (b + 1) * bt);
                                let theirs = &block.views[layer][ki];
                                debug_assert!(
                                    ours.iter()
                                        .map(|x| x.to_bits())
                                        .eq(theirs.iter().map(|x| x.to_bits())),
                                    "trie hit is not bit-exact (layer {layer}, kind {ki}): \
                                     quantizer wrongly claims prefix determinism"
                                );
                            }
                        }
                    }
                }
                let freed = self
                    .mmu
                    .free_request(pending_mmu)
                    .expect("pending pages are exclusively owned");
                self.seqs.get_mut(&seq.0).expect("caller validated").pages -= freed;
                self.trie.retain(existing);
                let block_mmu = self.trie.get(existing).mmu;
                self.mmu.retain_request(block_mmu);
                self.stats.seal_dedups += 1;
                self.stats.bytes_deduplicated += self.trie.get(existing).bytes;
                existing
            }
            None => {
                let pages = self.mmu.request_pages(pending_mmu);
                let bytes = self.mmu.request_bytes(pending_mmu);
                let state = self.seqs.get(&seq.0).expect("caller validated");
                // Fused pools seal the encoded rows and never materialize
                // an f32 image; exact pools seal the dequantized views.
                let fused = self.kernel == KernelMode::Fused;
                let views: Vec<[Vec<f32>; 2]> = if fused {
                    state
                        .slots
                        .iter()
                        .map(|_| [Vec::new(), Vec::new()])
                        .collect()
                } else {
                    state
                        .slots
                        .iter()
                        .map(|pair| {
                            [
                                Self::block_rows(&pair[0], kv_dim, b * bt, (b + 1) * bt),
                                Self::block_rows(&pair[1], kv_dim, b * bt, (b + 1) * bt),
                            ]
                        })
                        .collect()
                };
                let mut block = TrieBlock::new(chunk, pending_mmu, pages, bytes, views);
                if fused {
                    block.encoded = state
                        .slots
                        .iter()
                        .map(|pair| {
                            [
                                Self::block_encoded_rows(&pair[0], b * bt, (b + 1) * bt),
                                Self::block_encoded_rows(&pair[1], b * bt, (b + 1) * bt),
                            ]
                        })
                        .collect();
                }
                let id = self.trie.insert(parent, block);
                // The pages move from this sequence's private count to the
                // trie's shared count.
                self.seqs.get_mut(&seq.0).expect("caller validated").pages -= pages;
                id
            }
        };
        let plan = self
            .seqs
            .get_mut(&seq.0)
            .expect("caller validated")
            .plan
            .as_mut()
            .expect("caller checked");
        plan.blocks[b] = SeqBlock::Shared(sealed_id);
        plan.sealed += 1;
    }

    fn refresh(&mut self, seq: SeqId, layer: usize, kind: KvKind) {
        let kv_dim = self.kv_dim;
        let slot = &mut self
            .seqs
            .get_mut(&seq.0)
            .expect("caller validated the sequence")
            .slots[layer][kind_index(kind)];
        if slot.stream.is_none() && slot.dirty {
            let rows = slot.exact.len() / kv_dim.max(1);
            slot.view = match &self.quantizer {
                Some(q) => q.roundtrip_matrix(&slot.exact, rows, kv_dim, layer, kind),
                None => slot.exact.clone(),
            };
            slot.dirty = false;
        }
    }

    /// Number of cached tokens for `(seq, layer)`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown sequence.
    pub fn seq_len(&self, seq: SeqId, layer: usize) -> usize {
        self.seqs.get(&seq.0).expect("unknown sequence").slots[layer][0].rows
    }

    /// Dequantized `[seq_len × kv_dim]` view of the cached keys. In fused
    /// mode this is the exact-path escape hatch: the view is rebuilt
    /// lazily from the encoded rows (attention itself goes through
    /// [`PagedKvPool::encoded_kv`] and never pays this).
    ///
    /// # Panics
    ///
    /// Panics on an unknown sequence.
    pub fn keys(&mut self, seq: SeqId, layer: usize) -> &[f32] {
        self.refresh(seq, layer, KvKind::Key);
        let kv_dim = self.kv_dim;
        let slot = &mut self.seqs.get_mut(&seq.0).expect("unknown sequence").slots[layer][0];
        slot.ensure_view(kv_dim);
        self.reads
            .exact_rows
            .fetch_add(slot.rows as u64, Ordering::Relaxed);
        self.reads
            .exact_bytes
            .fetch_add((slot.rows * kv_dim * 4) as u64, Ordering::Relaxed);
        &slot.view
    }

    /// Dequantized view of the cached values (see [`PagedKvPool::keys`]).
    ///
    /// # Panics
    ///
    /// Panics on an unknown sequence.
    pub fn values(&mut self, seq: SeqId, layer: usize) -> &[f32] {
        self.refresh(seq, layer, KvKind::Value);
        let kv_dim = self.kv_dim;
        let slot = &mut self.seqs.get_mut(&seq.0).expect("unknown sequence").slots[layer][1];
        slot.ensure_view(kv_dim);
        self.reads
            .exact_rows
            .fetch_add(slot.rows as u64, Ordering::Relaxed);
        self.reads
            .exact_bytes
            .fetch_add((slot.rows * kv_dim * 4) as u64, Ordering::Relaxed);
        &slot.view
    }

    /// The `(seq, layer)` K and V tensors in their encoded form — the
    /// fused kernels' read path. `None` unless the pool runs
    /// [`KernelMode::Fused`] (or for an unknown sequence). Takes `&self`
    /// so the key and value tensors can be borrowed together; read
    /// accounting therefore goes through relaxed atomic counters.
    pub fn encoded_kv(&self, seq: SeqId, layer: usize) -> Option<(EncodedKv<'_>, EncodedKv<'_>)> {
        let state = self.seqs.get(&seq.0)?;
        let [key_slot, value_slot] = &state.slots[layer];
        let k = key_slot.encoded()?;
        let v = value_slot.encoded()?;
        let rows = (k.rows.len() + v.rows.len()) as u64;
        let bytes: u64 = [key_slot, value_slot]
            .iter()
            .filter_map(|s| s.stream.as_ref().and_then(|st| st.payload_bytes()))
            .sum::<usize>() as u64;
        self.reads.fused_rows.fetch_add(rows, Ordering::Relaxed);
        self.reads.fused_bytes.fetch_add(bytes, Ordering::Relaxed);
        Some((k, v))
    }

    /// Whether [`encoded_kv`](PagedKvPool::encoded_kv) would serve
    /// `(seq, layer)` — the branch probe, free of read accounting so the
    /// probe-then-read pattern in the model never double-counts.
    pub fn has_encoded_kv(&self, seq: SeqId, layer: usize) -> bool {
        let Some(state) = self.seqs.get(&seq.0) else {
            return false;
        };
        let [key_slot, value_slot] = &state.slots[layer];
        key_slot.encoded().is_some() && value_slot.encoded().is_some()
    }
}

/// `(dense, sparse)` stored byte sizes of a slot's most recently appended
/// row: the stream's actual payload when tracked, the quantizer's nominal
/// estimate otherwise, raw f32 bytes for exact storage.
///
/// A free function (not a `PagedKvPool` method) so the parallel batch
/// append can call it on independently-borrowed slots.
fn encoded_row_payload(
    slot: &KindSlot,
    quantizer: Option<&dyn KvQuantizer>,
    kv_dim: usize,
) -> (usize, usize) {
    match &slot.stream {
        Some(stream) => stream.last_row_payload().unwrap_or_else(|| {
            let bits = quantizer
                .expect("streams only exist with a quantizer")
                .effective_bits(slot.rows, kv_dim);
            (((bits * kv_dim as f64) / 8.0).ceil() as usize, 0)
        }),
        None => match quantizer {
            // Recompute-fallback methods: nominal stored size.
            Some(q) => {
                let bits = q.effective_bits(slot.rows, kv_dim);
                (((bits * kv_dim as f64) / 8.0).ceil() as usize, 0)
            }
            // Exact f32 storage.
            None => (kv_dim * 4, 0),
        },
    }
}

/// Worst-case pages `rows` rows of at most `bound` bytes each need on a
/// stream whose tail page has `tail_free` bytes left: the tail absorbs
/// whole worst-case rows first, fresh pages are charged at worst-case
/// packing (rows never span pages).
fn rows_to_pages(tail_free: usize, rows: usize, bound: usize, page: usize) -> u32 {
    let absorbed = tail_free / bound;
    if absorbed >= rows {
        return 0;
    }
    let per_page = page / bound;
    ((rows - absorbed).div_ceil(per_page)) as u32
}

/// Borrowed view pairing a [`PagedKvPool`] with the batch's slot → sequence
/// mapping for one engine iteration, implementing [`BatchKvCache`] for
/// [`crate::Model::forward_batch`].
///
/// Appends never panic: a failing append — an injected
/// [`PoolError::Fault`], or pool exhaustion despite the scheduler's
/// [`PagedKvPool::pages_possibly_needed_n`] reservation — **poisons** its
/// batch slot instead. A poisoned slot's later appends are skipped (its
/// cached state stays exactly as of the failure, so reads remain
/// self-consistent) while every other slot proceeds untouched; the engine
/// drains [`take_poisoned`](Self::take_poisoned) after the forward pass
/// and quarantines the offending sequences. The poison list is an empty
/// `Vec` on the fault-free path, so the steady state stays
/// allocation-free.
pub struct PoolBatchView<'p> {
    pool: &'p mut PagedKvPool,
    seqs: &'p [SeqId],
    /// `(slot, error)` per poisoned slot, in failure order.
    poisoned: Vec<(usize, PoolError)>,
}

impl<'p> PoolBatchView<'p> {
    /// Creates a view where batch slot `i` maps to `seqs[i]`.
    pub fn new(pool: &'p mut PagedKvPool, seqs: &'p [SeqId]) -> Self {
        Self {
            pool,
            seqs,
            poisoned: Vec::new(),
        }
    }

    /// Whether `slot` failed an append this iteration.
    fn slot_poisoned(&self, slot: usize) -> bool {
        self.poisoned.iter().any(|&(s, _)| s == slot)
    }

    /// Drains the `(slot, error)` pairs of every slot whose append failed
    /// this iteration (empty on the fault-free path). The caller owns the
    /// containment: each poisoned slot's sequence holds a partially
    /// appended token (never sealed into the trie — sealing requires all
    /// layers complete) and must be torn down or restarted.
    pub fn take_poisoned(&mut self) -> Vec<(usize, PoolError)> {
        std::mem::take(&mut self.poisoned)
    }
}

impl BatchKvCache for PoolBatchView<'_> {
    fn append(&mut self, slot: usize, layer: usize, k: &[f32], v: &[f32]) {
        if self.slot_poisoned(slot) {
            return;
        }
        if let Err(e) = self.pool.append(self.seqs[slot], layer, k, v) {
            self.poisoned.push((slot, e));
        }
    }

    fn seq_len(&self, slot: usize, layer: usize) -> usize {
        self.pool.seq_len(self.seqs[slot], layer)
    }

    fn keys(&mut self, slot: usize, layer: usize) -> &[f32] {
        self.pool.keys(self.seqs[slot], layer)
    }

    fn values(&mut self, slot: usize, layer: usize) -> &[f32] {
        self.pool.values(self.seqs[slot], layer)
    }

    fn append_only_views(&self) -> bool {
        self.pool.append_only_views()
    }

    fn encoded_kv(&self, slot: usize, layer: usize) -> Option<(EncodedKv<'_>, EncodedKv<'_>)> {
        self.pool.encoded_kv(self.seqs[slot], layer)
    }

    fn has_encoded_kv(&self, slot: usize, layer: usize) -> bool {
        self.pool.has_encoded_kv(self.seqs[slot], layer)
    }

    fn append_batch(&mut self, rt: &Runtime, layer: usize, items: &[BatchAppend<'_>]) {
        if self.pool.faults_active() || !self.poisoned.is_empty() {
            // Per-item appends: each item polls the fault schedule in
            // item order (thread-count-independent injection) and a
            // failure poisons exactly its own slot.
            for it in items {
                self.append(it.slot, layer, it.k, it.v);
            }
            return;
        }
        // Accessor form: translate slot → sequence on the fly instead of
        // materializing a mapped item list (this adapter sits on the
        // steady-state allocation-free append path).
        let seqs = self.seqs;
        if let Err((i, e)) = self.pool.append_batch_with(rt, layer, items.len(), &|i| {
            let it = &items[i];
            SeqRowAppend {
                seq: seqs[it.slot],
                k: it.k,
                v: it.v,
            }
        }) {
            // Items before `i` were applied, item `i` failed atomically:
            // poison its slot and finish the rest one by one so the
            // failure stays contained to a single sequence.
            self.poisoned.push((items[i].slot, e));
            for it in &items[i + 1..] {
                self.append(it.slot, layer, it.k, it.v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{KvCacheBackend, QuantizedCache};
    use oaken_core::{OakenConfig, OakenQuantizer, OfflineProfiler};

    fn row(d: usize, seed: u64) -> Vec<f32> {
        (0..d)
            .map(|i| {
                let u = ((i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed * 7919)
                    >> 33) as f32
                    / (1u64 << 31) as f32;
                let base = (u - 0.5) * 6.0;
                match i % 19 {
                    0 => base * 9.0,
                    1 => base * 0.02,
                    _ => base,
                }
            })
            .collect()
    }

    fn tiny_config(layers: usize, kv_heads: usize, head_dim: usize) -> ModelConfig {
        let mut cfg = ModelConfig::llama2_7b().proxy(layers, kv_heads * head_dim);
        cfg.num_heads = kv_heads;
        cfg.num_kv_heads = kv_heads;
        cfg
    }

    fn oaken(d: usize, layers: usize) -> Arc<dyn KvQuantizer> {
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), layers);
        for s in 0..24 {
            for layer in 0..layers {
                for kind in KvKind::ALL {
                    p.observe(layer, kind, &row(d.max(64), s * 3 + layer as u64));
                }
            }
        }
        Arc::new(OakenQuantizer::new(config, p.try_finish().unwrap()))
    }

    #[test]
    fn pool_views_match_quantized_cache_bit_exactly() {
        let layers = 2;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        assert_eq!(cfg.kv_dim(), d);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q.clone()), 256, 4096);
        let mut cache = QuantizedCache::new(q);
        cache.reset(layers, d);
        let seq = pool.alloc_seq();
        for t in 0..20u64 {
            for layer in 0..layers {
                let k = row(d, 2 * t + layer as u64);
                let v = row(d, 1000 + 2 * t + layer as u64);
                pool.append(seq, layer, &k, &v).unwrap();
                cache.append(layer, &k, &v);
            }
            for layer in 0..layers {
                let a: Vec<u32> = pool.keys(seq, layer).iter().map(|x| x.to_bits()).collect();
                let b: Vec<u32> = cache.keys(layer).iter().map(|x| x.to_bits()).collect();
                assert_eq!(a, b, "keys diverged at token {t} layer {layer}");
                let a: Vec<u32> = pool
                    .values(seq, layer)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect();
                let b: Vec<u32> = cache.values(layer).iter().map(|x| x.to_bits()).collect();
                assert_eq!(a, b, "values diverged at token {t} layer {layer}");
            }
        }
        assert_eq!(pool.seq_len(seq, 0), 20);
        assert!(pool.mmu().request_bytes(seq.0) > 0);
    }

    #[test]
    fn interleaved_sequences_do_not_cross_contaminate() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q.clone()), 512, 4096);
        let a = pool.alloc_seq();
        let b = pool.alloc_seq();
        // Interleave appends: a, b, b, a, ...
        let schedule = [0u8, 1, 1, 0, 1, 0, 0, 1, 1, 0];
        let mut counts = [0u64, 0];
        for &who in &schedule {
            let (seq, salt) = if who == 0 { (a, 0) } else { (b, 500) };
            let t = counts[who as usize];
            counts[who as usize] += 1;
            pool.append(seq, 0, &row(d, salt + t), &row(d, salt + 100 + t))
                .unwrap();
        }
        // Reference: each sequence alone in its own cache.
        for (seq, salt, n) in [(a, 0u64, counts[0]), (b, 500, counts[1])] {
            let mut cache = QuantizedCache::new(q.clone());
            cache.reset(layers, d);
            for t in 0..n {
                cache.append(0, &row(d, salt + t), &row(d, salt + 100 + t));
            }
            assert_eq!(pool.keys(seq, 0), cache.keys(0));
            assert_eq!(pool.values(seq, 0), cache.values(0));
        }
    }

    #[test]
    fn exhaustion_is_a_clean_error_and_freeing_recovers() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        // 4 pages of 256 bytes: tiny on purpose.
        let mut pool = PagedKvPool::for_model(&cfg, None, 4, 256);
        let a = pool.alloc_seq();
        let mut appended = 0usize;
        let err = loop {
            match pool.append(a, 0, &row(d, appended as u64), &row(d, appended as u64)) {
                Ok(()) => appended += 1,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, PoolError::OutOfPages { .. }));
        assert!(appended >= 1, "at least one token must fit");
        // The failed append changed nothing.
        assert_eq!(pool.seq_len(a, 0), appended);
        let freed = pool.free_seq(a).unwrap();
        assert!(freed > 0);
        assert_eq!(pool.free_pages(), pool.capacity_pages());
        assert!(matches!(
            pool.free_seq(a),
            Err(PoolError::UnknownSequence { .. })
        ));
        // A recycled slot starts clean.
        let b = pool.alloc_seq();
        assert_eq!(pool.seq_len(b, 0), 0);
        pool.append(b, 0, &row(d, 7), &row(d, 8)).unwrap();
        assert_eq!(pool.seq_len(b, 0), 1);
    }

    #[test]
    fn admission_estimate_brackets_actual_usage() {
        let layers = 2;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q), 4096, 1024);
        let tokens = 64usize;
        let estimate = pool.pages_for_tokens(tokens);
        let seq = pool.alloc_seq();
        for t in 0..tokens {
            for layer in 0..layers {
                pool.append(seq, layer, &row(d, t as u64), &row(d, 900 + t as u64))
                    .unwrap();
            }
        }
        let used = u64::from(pool.mmu().request_pages(seq.0));
        // The nominal estimate must be the right order of magnitude: within
        // 2x of the executed footprint either way (page rounding and the
        // sparse stream split move it, the shared bytes-per-token anchors it).
        assert!(
            estimate <= used * 2 && used <= estimate * 2,
            "estimate {estimate} vs used {used}"
        );
    }

    #[test]
    fn seq_pages_counter_matches_mmu_ground_truth() {
        let layers = 2;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q), 512, 512);
        let a = pool.alloc_seq();
        let b = pool.alloc_seq();
        for t in 0..30u64 {
            for layer in 0..layers {
                pool.append(a, layer, &row(d, t), &row(d, t + 7)).unwrap();
            }
            if t % 3 == 0 {
                pool.append(b, 0, &row(d, 400 + t), &row(d, 500 + t))
                    .unwrap();
            }
            assert_eq!(pool.seq_pages(a), pool.mmu().request_pages(a.0));
            assert_eq!(pool.seq_pages(b), pool.mmu().request_pages(b.0));
        }
        pool.free_seq(a).unwrap();
        assert_eq!(pool.seq_pages(a), 0);
        // A recycled slot starts its counter fresh.
        let c = pool.alloc_seq();
        pool.append(c, 0, &row(d, 1), &row(d, 2)).unwrap();
        assert_eq!(pool.seq_pages(c), pool.mmu().request_pages(c.0));
    }

    #[test]
    fn pages_possibly_needed_is_a_safe_upper_bound() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q), 64, 512);
        let seq = pool.alloc_seq();
        for t in 0..40 {
            let before = pool.mmu().allocator().allocated_pages();
            let bound = pool.pages_possibly_needed(seq).unwrap();
            pool.append(seq, 0, &row(d, t), &row(d, t + 77)).unwrap();
            let grown = pool.mmu().allocator().allocated_pages() - before;
            assert!(grown <= bound, "token {t}: grew {grown} > bound {bound}");
        }
    }

    // ------------------------------------------------------------------
    // Prefix-sharing tests
    // ------------------------------------------------------------------

    /// Token-deterministic rows: position `pos` of a prompt always yields
    /// the same K/V vectors (the property the real model provides — K/V at
    /// a position are a function of the token prefix).
    fn kv_for_pos(d: usize, pos: usize) -> (Vec<f32>, Vec<f32>) {
        (row(d, pos as u64), row(d, 5000 + pos as u64))
    }

    fn feed_prompt(
        pool: &mut PagedKvPool,
        seq: SeqId,
        layers: usize,
        d: usize,
        from: usize,
        to: usize,
    ) {
        for pos in from..to {
            let (k, v) = kv_for_pos(d, pos);
            for layer in 0..layers {
                pool.append(seq, layer, &k, &v).unwrap();
            }
        }
    }

    fn assert_balanced(pool: &PagedKvPool) {
        let acc = pool.page_accounting();
        assert_eq!(
            acc.total(),
            pool.capacity_pages(),
            "page accounting must balance: {acc:?}"
        );
    }

    #[test]
    fn adopted_prefix_is_bit_exact_and_dedupes_pages() {
        let layers = 2;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q.clone()), 2048, 512);
        pool.set_block_tokens(4);
        let prompt: Vec<u32> = (0..13).map(|i| 10 + i).collect(); // 3 full blocks + tail

        // First sequence: cold, everything private, blocks seal as filled.
        let a = pool.alloc_seq_with_prefix(&prompt);
        assert_eq!(a.matched_tokens, 0);
        feed_prompt(&mut pool, a.seq, layers, d, 0, prompt.len());
        assert_eq!(pool.trie_blocks(), 3);
        assert_balanced(&pool);
        let pages_after_one = pool.capacity_pages() - pool.free_pages();

        // Second sequence: trie hit on all three blocks.
        let b = pool.alloc_seq_with_prefix(&prompt);
        assert_eq!(b.matched_tokens, 12);
        assert_eq!(pool.seq_len(b.seq, 0), 12, "adopted rows are cached");
        feed_prompt(&mut pool, b.seq, layers, d, 12, prompt.len() + 4);
        assert_balanced(&pool);
        let stats = pool.prefix_stats();
        assert_eq!(stats.trie_hits, 3);
        assert_eq!(stats.tokens_reused, 12);
        assert_eq!(stats.quant_rows_skipped, 12 * layers as u64 * 2);
        assert!(stats.bytes_deduplicated > 0);

        // The sharer consumed far fewer pages than a second private copy:
        // only its tail is new.
        let pages_after_two = pool.capacity_pages() - pool.free_pages();
        assert!(
            pages_after_two - pages_after_one < pages_after_one,
            "sharing must not double the footprint ({pages_after_one} -> {pages_after_two})"
        );

        // Bit-exactness against a private single-sequence cache.
        let mut cache = QuantizedCache::new(q);
        cache.reset(layers, d);
        for pos in 0..prompt.len() + 4 {
            let (k, v) = kv_for_pos(d, pos);
            for layer in 0..layers {
                cache.append(layer, &k, &v);
            }
        }
        for layer in 0..layers {
            let pk: Vec<u32> = pool
                .keys(b.seq, layer)
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let ck: Vec<u32> = cache.keys(layer).iter().map(|x| x.to_bits()).collect();
            assert_eq!(pk, ck, "keys diverged at layer {layer}");
            let pv: Vec<u32> = pool
                .values(b.seq, layer)
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let cv: Vec<u32> = cache.values(layer).iter().map(|x| x.to_bits()).collect();
            assert_eq!(pv, cv, "values diverged at layer {layer}");
        }

        // Freeing the sealer keeps the blocks alive for the sharer.
        pool.free_seq(a.seq).unwrap();
        assert_eq!(pool.trie_blocks(), 3);
        assert_balanced(&pool);
        assert_eq!(pool.seq_len(b.seq, 0), prompt.len() + 4);
        // Freeing the last sharer drains everything.
        pool.free_seq(b.seq).unwrap();
        assert_eq!(pool.trie_blocks(), 0);
        assert_eq!(pool.free_pages(), pool.capacity_pages());
    }

    #[test]
    fn concurrent_prefills_dedup_at_seal() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q), 2048, 512);
        pool.set_block_tokens(4);
        let prompt: Vec<u32> = (0..9).collect(); // 2 full blocks

        // Both sequences admitted before either sealed: both miss.
        let a = pool.alloc_seq_with_prefix(&prompt);
        let b = pool.alloc_seq_with_prefix(&prompt);
        assert_eq!(a.matched_tokens + b.matched_tokens, 0);
        // Interleaved prefill, token by token.
        for pos in 0..prompt.len() {
            let (k, v) = kv_for_pos(d, pos);
            pool.append(a.seq, 0, &k, &v).unwrap();
            pool.append(b.seq, 0, &k, &v).unwrap();
        }
        // Whoever sealed second merged into the first's blocks.
        assert_eq!(pool.trie_blocks(), 2);
        let stats = pool.prefix_stats();
        assert_eq!(stats.seal_dedups, 2);
        assert!(stats.bytes_deduplicated > 0);
        assert_balanced(&pool);
        pool.free_seq(a.seq).unwrap();
        pool.free_seq(b.seq).unwrap();
        assert_eq!(pool.free_pages(), pool.capacity_pages());
        assert_eq!(pool.trie_blocks(), 0);
    }

    #[test]
    fn diverging_prompts_share_only_the_common_blocks() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q), 2048, 512);
        pool.set_block_tokens(4);
        let p1: Vec<u32> = (0..13).collect();
        let mut p2 = p1.clone();
        p2[9] = 99; // diverge inside the third block

        let a = pool.alloc_seq_with_prefix(&p1);
        feed_prompt(&mut pool, a.seq, layers, d, 0, p1.len());
        assert_eq!(pool.trie_blocks(), 3);

        assert_eq!(pool.probe_prefix(&p2), 8, "two common blocks");
        let b = pool.alloc_seq_with_prefix(&p2);
        assert_eq!(b.matched_tokens, 8);
        // Feed the divergent remainder (rows keyed off the divergent
        // tokens so content genuinely differs).
        for pos in 8..p2.len() {
            let (k, v) = kv_for_pos(d, p2[pos] as usize + 1000 * usize::from(pos >= 9));
            pool.append(b.seq, 0, &k, &v).unwrap();
        }
        assert_eq!(
            pool.trie_blocks(),
            4,
            "divergent third block forks the trie"
        );
        assert_balanced(&pool);
        pool.free_seq(b.seq).unwrap();
        assert_eq!(pool.trie_blocks(), 3, "fork released, common chain kept");
        pool.free_seq(a.seq).unwrap();
        assert_eq!(pool.trie_blocks(), 0);
        assert_eq!(pool.free_pages(), pool.capacity_pages());
    }

    /// The sharded batch append must leave the pool in *exactly* the
    /// state of the serial per-item loop: views bit-identical, page
    /// counts equal, blocks sealed into the trie the same way — across
    /// chunked (multi-row) runs, prefix plans, and every thread count.
    #[test]
    fn append_batch_is_bit_identical_to_serial_appends() {
        let layers = 2;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let prompt: Vec<u32> = (0..11).collect();
        for threads in [2usize, 4, 8] {
            let rt = Runtime::new(threads);
            let mut par = PagedKvPool::for_model(&cfg, Some(q.clone()), 2048, 512);
            let mut ser = PagedKvPool::for_model(&cfg, Some(q.clone()), 2048, 512);
            par.set_block_tokens(4);
            ser.set_block_tokens(4);
            let pa = par.alloc_seq_with_prefix(&prompt).seq;
            let sa = ser.alloc_seq_with_prefix(&prompt).seq;
            let pb = par.alloc_seq();
            let sb = ser.alloc_seq();
            // Chunked runs: 3 rows of sequence a, then 2 of sequence b,
            // per layer, repeated — the chunked-prefill batch shape.
            let mut pos_a = 0usize;
            let mut pos_b = 0usize;
            for _round in 0..4 {
                for layer in 0..layers {
                    let rows_a: Vec<(Vec<f32>, Vec<f32>)> =
                        (0..3).map(|j| kv_for_pos(d, pos_a + j)).collect();
                    let rows_b: Vec<(Vec<f32>, Vec<f32>)> =
                        (0..2).map(|j| kv_for_pos(d, 500 + pos_b + j)).collect();
                    let mut items = Vec::new();
                    for (k, v) in &rows_a {
                        items.push(SeqRowAppend { seq: pa, k, v });
                    }
                    for (k, v) in &rows_b {
                        items.push(SeqRowAppend { seq: pb, k, v });
                    }
                    par.append_batch(&rt, layer, &items).unwrap();
                    for (k, v) in &rows_a {
                        ser.append(sa, layer, k, v).unwrap();
                    }
                    for (k, v) in &rows_b {
                        ser.append(sb, layer, k, v).unwrap();
                    }
                }
                pos_a += 3;
                pos_b += 2;
            }
            for layer in 0..layers {
                for (p, s) in [(pa, sa), (pb, sb)] {
                    assert_eq!(par.seq_len(p, layer), ser.seq_len(s, layer));
                    let a: Vec<u32> = par.keys(p, layer).iter().map(|x| x.to_bits()).collect();
                    let b: Vec<u32> = ser.keys(s, layer).iter().map(|x| x.to_bits()).collect();
                    assert_eq!(a, b, "keys diverged ({threads} threads, layer {layer})");
                    let a: Vec<u32> = par.values(p, layer).iter().map(|x| x.to_bits()).collect();
                    let b: Vec<u32> = ser.values(s, layer).iter().map(|x| x.to_bits()).collect();
                    assert_eq!(a, b, "values diverged ({threads} threads, layer {layer})");
                }
            }
            assert_eq!(par.free_pages(), ser.free_pages(), "{threads} threads");
            assert_eq!(par.trie_blocks(), ser.trie_blocks());
            assert_eq!(par.seq_pages(pa), ser.seq_pages(sa));
            assert_eq!(par.seq_pages(pb), ser.seq_pages(sb));
            assert_eq!(par.page_accounting(), ser.page_accounting());
            assert_balanced(&par);
        }
    }

    /// Exhaustion semantics of the batched path match the serial loop:
    /// a batch whose conservative bound does not fit degrades to the
    /// per-item loop and surfaces the same partial-progress error.
    #[test]
    fn append_batch_exhaustion_matches_serial() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let rt = Runtime::new(4);
        let mut par = PagedKvPool::for_model(&cfg, None, 4, 256);
        let mut ser = PagedKvPool::for_model(&cfg, None, 4, 256);
        let p = par.alloc_seq();
        let s = ser.alloc_seq();
        let rows: Vec<(Vec<f32>, Vec<f32>)> = (0..16).map(|t| kv_for_pos(d, t)).collect();
        let mut par_err = None;
        for chunk in rows.chunks(2) {
            let items: Vec<SeqRowAppend<'_>> = chunk
                .iter()
                .map(|(k, v)| SeqRowAppend { seq: p, k, v })
                .collect();
            if let Err(e) = par.append_batch(&rt, 0, &items) {
                par_err = Some(e);
                break;
            }
        }
        let mut ser_err = None;
        for (k, v) in &rows {
            if let Err(e) = ser.append(s, 0, k, v) {
                ser_err = Some(e);
                break;
            }
        }
        assert!(matches!(par_err, Some(PoolError::OutOfPages { .. })));
        assert!(matches!(ser_err, Some(PoolError::OutOfPages { .. })));
        assert_eq!(par.seq_len(p, 0), ser.seq_len(s, 0), "same rows landed");
        assert_eq!(par.free_pages(), ser.free_pages());
    }

    #[test]
    fn sharing_is_gated_on_prefix_determinism() {
        use oaken_baselines_like_calib::CalibLike;
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let pool = PagedKvPool::for_model(&cfg, Some(Arc::new(CalibLike)), 64, 512);
        assert!(
            !pool.prefix_sharing(),
            "calib-prefix methods must not share"
        );
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q), 64, 512);
        assert!(pool.prefix_sharing(), "oaken shares");
        pool.set_prefix_sharing(false);
        let a = pool.alloc_seq_with_prefix(&(0..40).collect::<Vec<u32>>());
        assert_eq!(a.matched_tokens, 0);
    }

    /// A stand-in for a calibrate-then-freeze baseline: correct row
    /// quantization but explicitly *not* prefix-deterministic.
    mod oaken_baselines_like_calib {
        use oaken_core::{KvKind, KvQuantizer, OnlineCost};

        pub struct CalibLike;

        impl KvQuantizer for CalibLike {
            fn name(&self) -> &'static str {
                "calib-like"
            }
            fn roundtrip_matrix(
                &self,
                data: &[f32],
                _rows: usize,
                _d: usize,
                _layer: usize,
                _kind: KvKind,
            ) -> Vec<f32> {
                data.to_vec()
            }
            fn effective_bits(&self, _rows: usize, _d: usize) -> f64 {
                8.0
            }
            fn online_cost(&self) -> OnlineCost {
                OnlineCost::free()
            }
        }
    }

    #[test]
    fn exact_pool_shares_prefixes_too() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let mut pool = PagedKvPool::for_model(&cfg, None, 2048, 512);
        pool.set_block_tokens(4);
        assert!(
            pool.prefix_sharing(),
            "exact f32 is trivially deterministic"
        );
        let prompt: Vec<u32> = (0..9).collect();
        let a = pool.alloc_seq_with_prefix(&prompt);
        feed_prompt(&mut pool, a.seq, layers, d, 0, prompt.len());
        let b = pool.alloc_seq_with_prefix(&prompt);
        assert_eq!(b.matched_tokens, 8);
        feed_prompt(&mut pool, b.seq, layers, d, 8, prompt.len() + 2);
        // The exact path re-materializes views from `exact`; the adopted
        // prefix must survive that.
        let keys = pool.keys(b.seq, 0).to_vec();
        assert_eq!(keys.len(), (prompt.len() + 2) * d);
        let (k0, _) = kv_for_pos(d, 0);
        assert_eq!(&keys[..d], &k0[..], "adopted rows present after refresh");
        assert_balanced(&pool);
        pool.free_seq(a.seq).unwrap();
        pool.free_seq(b.seq).unwrap();
        assert_eq!(pool.free_pages(), pool.capacity_pages());
    }

    #[test]
    fn chunk_reservation_bound_is_safe() {
        let layers = 2;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q), 4096, 512);
        pool.set_block_tokens(4);
        let prompt: Vec<u32> = (0..23).collect();
        let s = pool.alloc_seq_with_prefix(&prompt);
        let mut pos = 0usize;
        for chunk in [3usize, 5, 4, 7, 4] {
            let before = pool.mmu().allocator().allocated_pages();
            let bound = pool.pages_possibly_needed_n(s.seq, chunk).unwrap();
            feed_prompt(&mut pool, s.seq, layers, d, pos, pos + chunk);
            pos += chunk;
            let grown = pool.mmu().allocator().allocated_pages() - before;
            assert!(
                grown <= bound,
                "chunk at {pos}: grew {grown} > bound {bound}"
            );
        }
        assert_balanced(&pool);
    }

    // ------------------------------------------------------------------
    // Suspend/resume (two-tier memory) tests
    // ------------------------------------------------------------------

    #[test]
    fn suspend_resume_roundtrip_is_bit_exact_and_frees_device_pages() {
        let layers = 2;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q.clone()), 2048, 512);
        pool.set_block_tokens(4);
        let prompt: Vec<u32> = (0..10).collect();
        let s = pool.alloc_seq_with_prefix(&prompt);
        feed_prompt(&mut pool, s.seq, layers, d, 0, 7); // mid-prefill: 1 sealed, 1 pending
        let before_free = pool.free_pages();
        let before_private = pool.seq_pages(s.seq);
        assert!(before_private > 0);
        let keys_before: Vec<u32> = pool.keys(s.seq, 0).iter().map(|x| x.to_bits()).collect();

        let out = pool.suspend_seq(s.seq).unwrap();
        assert_eq!(out.pages, before_private, "exactly the private pages move");
        assert!(out.bytes > 0);
        assert_eq!(pool.free_pages(), before_free + before_private);
        assert!(pool.is_suspended(s.seq));
        assert_eq!(pool.suspended_seq_pages(s.seq), before_private);
        assert_eq!(pool.host_pages_used(), before_private);
        assert_balanced(&pool);
        // Suspended handles are not active.
        assert!(matches!(
            pool.append(s.seq, 0, &row(d, 0), &row(d, 0)),
            Err(PoolError::UnknownSequence { .. })
        ));

        let back = pool.resume_seq(s.seq).unwrap();
        assert_eq!(back.pages, before_private, "replay repacks exactly");
        assert_eq!(back.bytes, out.bytes);
        assert_eq!(pool.host_pages_used(), 0);
        assert_eq!(pool.seq_pages(s.seq), before_private);
        assert_balanced(&pool);
        let keys_after: Vec<u32> = pool.keys(s.seq, 0).iter().map(|x| x.to_bits()).collect();
        assert_eq!(keys_after, keys_before, "views survive the round trip");

        // The resumed sequence keeps appending, seals its remaining
        // blocks, and its whole history stays bit-exact with an
        // uninterrupted cache.
        feed_prompt(&mut pool, s.seq, layers, d, 7, prompt.len() + 3);
        assert_eq!(pool.trie_blocks(), 2);
        let mut cache = QuantizedCache::new(q);
        cache.reset(layers, d);
        for pos in 0..prompt.len() + 3 {
            let (k, v) = kv_for_pos(d, pos);
            for layer in 0..layers {
                cache.append(layer, &k, &v);
            }
        }
        for layer in 0..layers {
            let a: Vec<u32> = pool
                .keys(s.seq, layer)
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let b: Vec<u32> = cache.keys(layer).iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "keys diverged after resume (layer {layer})");
            let a: Vec<u32> = pool
                .values(s.seq, layer)
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let b: Vec<u32> = cache.values(layer).iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "values diverged after resume (layer {layer})");
        }
        let stats = pool.swap_stats();
        assert_eq!(stats.swap_outs, 2, "tail + one pending block froze");
        assert_eq!(stats.swap_ins, 2);
        assert_eq!(stats.bytes_to_host, stats.bytes_to_device);
        pool.free_seq(s.seq).unwrap();
        assert_eq!(pool.free_pages(), pool.capacity_pages());
    }

    #[test]
    fn export_import_handoff_is_bit_exact_across_pools() {
        let layers = 2;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut src = PagedKvPool::for_model(&cfg, Some(q.clone()), 2048, 512);
        src.set_block_tokens(4);
        let prompt: Vec<u32> = (0..13).collect();

        // Seal the prefix once, then let the exported sequence adopt it:
        // the export path must flatten shared trie blocks into a fully
        // private payload.
        let warm = src.alloc_seq_with_prefix(&prompt);
        feed_prompt(&mut src, warm.seq, layers, d, 0, prompt.len());
        let s = src.alloc_seq_with_prefix(&prompt);
        assert_eq!(s.matched_tokens, 12, "three blocks adopted");
        feed_prompt(&mut src, s.seq, layers, d, 12, prompt.len() + 2);

        let fed = prompt.len() + 2;
        let transfer = src.export_seq(s.seq).unwrap();
        assert_eq!(transfer.tokens(), fed, "every row ships, adopted included");
        assert!(transfer.wire_bytes() > transfer.payload().bytes);
        // Source side is torn down exactly like free_seq.
        assert!(!src.is_live(s.seq) && !src.is_suspended(s.seq));
        assert!(matches!(
            src.export_seq(s.seq),
            Err(PoolError::UnknownSequence { .. })
        ));
        assert_balanced(&src);
        src.free_seq(warm.seq).unwrap();
        assert_eq!(src.free_pages(), src.capacity_pages());

        // Land on a cold destination pool and resume through the normal
        // suspended-sequence machinery.
        let mut dst = PagedKvPool::for_model(&cfg, Some(q.clone()), 2048, 512);
        dst.set_block_tokens(4);
        dst.can_import(&transfer).unwrap();
        let (seq, receipt) = dst.import_seq(transfer).unwrap();
        assert!(receipt.pages > 0 && receipt.bytes > 0);
        assert!(dst.is_suspended(seq));
        assert_eq!(dst.host_pages_used(), receipt.pages);
        let back = dst.resume_seq(seq).unwrap();
        assert_eq!(back.pages, receipt.pages);
        assert_eq!(back.bytes, receipt.bytes);
        assert_balanced(&dst);

        // The imported history and its continuation are bit-exact with an
        // uninterrupted cache fed the same rows.
        feed_prompt(&mut dst, seq, layers, d, fed, fed + 3);
        let mut cache = QuantizedCache::new(q);
        cache.reset(layers, d);
        for pos in 0..fed + 3 {
            let (k, v) = kv_for_pos(d, pos);
            for layer in 0..layers {
                cache.append(layer, &k, &v);
            }
        }
        for layer in 0..layers {
            let a: Vec<u32> = dst.keys(seq, layer).iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = cache.keys(layer).iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "keys diverged after handoff (layer {layer})");
            let a: Vec<u32> = dst.values(seq, layer).iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = cache.values(layer).iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "values diverged after handoff (layer {layer})");
        }
        dst.free_seq(seq).unwrap();
        assert_eq!(dst.free_pages(), dst.capacity_pages());
    }

    #[test]
    fn rejected_import_hands_the_transfer_back() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut src = PagedKvPool::for_model(&cfg, Some(q.clone()), 2048, 512);
        let s = src.alloc_seq();
        feed_prompt(&mut src, s, layers, d, 0, 12);
        let transfer = src.export_seq(s).unwrap();

        // A destination whose host tier is too small refuses the landing
        // and hands the transfer back for a later retry.
        let mut tiny = PagedKvPool::for_model(&cfg, Some(q.clone()), 2, 256);
        let needed = transfer.payload().pages_needed(tiny.page_size());
        assert!(needed > 2);
        assert!(matches!(
            tiny.can_import(&transfer),
            Err(PoolError::OutOfHostPages { .. })
        ));
        let (transfer, err) = tiny.import_seq(transfer).unwrap_err();
        assert!(matches!(err, PoolError::OutOfHostPages { .. }));
        assert_eq!(tiny.host_pages_used(), 0, "nothing landed");

        // The returned transfer is intact: a roomier pool accepts it.
        let mut dst = PagedKvPool::for_model(&cfg, Some(q), 2048, 512);
        let (seq, _) = dst.import_seq(transfer).unwrap();
        dst.resume_seq(seq).unwrap();
        assert_eq!(dst.seq_len(seq, 0), 12);
    }

    #[test]
    fn suspended_sharer_keeps_trie_blocks_alive() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q), 2048, 512);
        pool.set_block_tokens(4);
        let prompt: Vec<u32> = (0..9).collect();
        let a = pool.alloc_seq_with_prefix(&prompt);
        feed_prompt(&mut pool, a.seq, layers, d, 0, prompt.len());
        assert_eq!(pool.trie_blocks(), 2);
        let b = pool.alloc_seq_with_prefix(&prompt);
        assert_eq!(b.matched_tokens, 8);
        feed_prompt(&mut pool, b.seq, layers, d, 8, prompt.len() + 2);

        // Suspend the sharer, retire the sealer: the blocks must survive
        // on the suspended sequence's refcounts alone.
        pool.suspend_seq(b.seq).unwrap();
        pool.free_seq(a.seq).unwrap();
        assert_eq!(pool.trie_blocks(), 2, "suspended refcounts pin the trie");
        assert_balanced(&pool);

        pool.resume_seq(b.seq).unwrap();
        assert_eq!(pool.seq_len(b.seq, 0), prompt.len() + 2);
        pool.free_seq(b.seq).unwrap();
        assert_eq!(pool.trie_blocks(), 0);
        assert_eq!(pool.free_pages(), pool.capacity_pages());
    }

    #[test]
    fn drop_suspended_seq_releases_host_and_shared_pages() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let q = oaken(d, layers);
        let mut pool = PagedKvPool::for_model(&cfg, Some(q), 2048, 512);
        pool.set_block_tokens(4);
        let prompt: Vec<u32> = (0..9).collect();
        let a = pool.alloc_seq_with_prefix(&prompt);
        feed_prompt(&mut pool, a.seq, layers, d, 0, prompt.len());
        pool.suspend_seq(a.seq).unwrap();
        assert!(pool.host_pages_used() > 0);
        pool.drop_suspended_seq(a.seq).unwrap();
        assert_eq!(pool.host_pages_used(), 0);
        assert_eq!(pool.trie_blocks(), 0, "last sharer's blocks released");
        assert_eq!(pool.free_pages(), pool.capacity_pages());
        assert!(matches!(
            pool.drop_suspended_seq(a.seq),
            Err(PoolError::UnknownSequence { .. })
        ));
        // The swap-in counter must not have moved: bytes were discarded.
        assert_eq!(pool.swap_stats().swap_ins, 0);
    }

    #[test]
    fn suspend_respects_host_capacity_and_resume_respects_device() {
        let layers = 1;
        let d = 64;
        let cfg = tiny_config(layers, 2, 32);
        let mut pool = PagedKvPool::for_model(&cfg, None, 16, 256);
        pool.set_host_pages(2);
        let a = pool.alloc_seq();
        for t in 0..4 {
            pool.append(a, 0, &row(d, t), &row(d, 100 + t)).unwrap();
        }
        let private = pool.seq_pages(a);
        assert!(private > 2, "workload must exceed the tiny host tier");
        let err = pool.suspend_seq(a).unwrap_err();
        assert!(matches!(err, PoolError::OutOfHostPages { .. }), "{err}");
        assert_eq!(pool.seq_pages(a), private, "failed suspend is a no-op");

        pool.set_host_pages(16);
        pool.suspend_seq(a).unwrap();
        // Fill the device so the resume cannot fit.
        let b = pool.alloc_seq();
        let mut t = 0u64;
        while pool
            .append(b, 0, &row(d, 900 + t), &row(d, 990 + t))
            .is_ok()
        {
            t += 1;
        }
        let err = pool.resume_seq(a).unwrap_err();
        assert!(matches!(err, PoolError::OutOfPages { .. }), "{err}");
        assert!(pool.is_suspended(a), "failed resume keeps the seq frozen");
        pool.free_seq(b).unwrap();
        pool.resume_seq(a).unwrap();
        assert_eq!(pool.seq_len(a, 0), 4);
    }

    #[test]
    fn rows_to_pages_bounds() {
        // Tail absorbs two 100-byte rows of a 512-byte page.
        assert_eq!(rows_to_pages(250, 2, 100, 512), 0);
        // Third row opens a page that packs five.
        assert_eq!(rows_to_pages(250, 3, 100, 512), 1);
        assert_eq!(rows_to_pages(0, 11, 100, 512), 3);
        assert_eq!(rows_to_pages(0, 1, 100, 512), 1);
    }
}

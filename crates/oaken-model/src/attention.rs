//! Single-token multi-head attention over the cached KV matrices —
//! the un-batchable activation-activation operation at the heart of the
//! paper's bandwidth argument (§2.2, Figure 2b).
//!
//! Supports multi-head (MHA), grouped-query (GQA), and sliding-window
//! attention as used by the eight evaluation models.

use oaken_tensor::softmax_in_place;

/// Shape parameters for one attention call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionShape {
    /// Query heads.
    pub num_heads: usize,
    /// Key/value heads (divides `num_heads`).
    pub num_kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Sliding-window span, if any.
    pub window: Option<usize>,
}

impl AttentionShape {
    /// Query width, `num_heads × head_dim`.
    pub fn q_dim(&self) -> usize {
        self.num_heads * self.head_dim
    }

    /// KV width, `num_kv_heads × head_dim`.
    pub fn kv_dim(&self) -> usize {
        self.num_kv_heads * self.head_dim
    }

    /// How many query heads share one KV head.
    pub fn group_size(&self) -> usize {
        self.num_heads / self.num_kv_heads.max(1)
    }
}

/// Computes attention for a single query token against `seq_len` cached
/// positions, returning the `[num_heads × head_dim]` context vector
/// (the `C` rows of Figure 2b).
///
/// `keys`/`values` are row-major `[seq_len × kv_dim]`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shape parameters.
pub fn attend_one(
    q: &[f32],
    keys: &[f32],
    values: &[f32],
    seq_len: usize,
    shape: &AttentionShape,
) -> Vec<f32> {
    let hd = shape.head_dim;
    let kv_dim = shape.kv_dim();
    assert_eq!(q.len(), shape.q_dim(), "query width mismatch");
    assert_eq!(keys.len(), seq_len * kv_dim, "key matrix shape mismatch");
    assert_eq!(
        values.len(),
        seq_len * kv_dim,
        "value matrix shape mismatch"
    );

    let start = match shape.window {
        Some(w) => seq_len.saturating_sub(w),
        None => 0,
    };
    let span = seq_len - start;
    let inv_sqrt = 1.0 / (hd as f32).sqrt();
    let group = shape.group_size();

    let mut out = vec![0.0f32; shape.q_dim()];
    let mut scores = vec![0.0f32; span];
    for h in 0..shape.num_heads {
        let kvh = h / group.max(1);
        let q_h = &q[h * hd..(h + 1) * hd];
        for (i, t) in (start..seq_len).enumerate() {
            let k_t = &keys[t * kv_dim + kvh * hd..t * kv_dim + (kvh + 1) * hd];
            scores[i] = q_h.iter().zip(k_t).map(|(&a, &b)| a * b).sum::<f32>() * inv_sqrt;
        }
        softmax_in_place(&mut scores);
        let out_h = &mut out[h * hd..(h + 1) * hd];
        for (i, t) in (start..seq_len).enumerate() {
            let p = scores[i];
            if p == 0.0 {
                continue;
            }
            let v_t = &values[t * kv_dim + kvh * hd..t * kv_dim + (kvh + 1) * hd];
            for (o, &v) in out_h.iter_mut().zip(v_t) {
                *o += p * v;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(heads: usize, kv: usize, hd: usize, window: Option<usize>) -> AttentionShape {
        AttentionShape {
            num_heads: heads,
            num_kv_heads: kv,
            head_dim: hd,
            window,
        }
    }

    #[test]
    fn single_position_returns_its_value() {
        let s = shape(2, 2, 2, None);
        let q = vec![1.0, 0.0, 0.0, 1.0];
        let keys = vec![0.5, 0.5, 0.5, 0.5];
        let values = vec![1.0, 2.0, 3.0, 4.0];
        let out = attend_one(&q, &keys, &values, 1, &s);
        // One position → softmax weight 1 → output = its value.
        assert_eq!(out, values);
    }

    #[test]
    fn attends_to_matching_key() {
        let s = shape(1, 1, 2, None);
        let q = vec![10.0, 0.0];
        // Position 0 key aligned with q, position 1 orthogonal.
        let keys = vec![1.0, 0.0, 0.0, 1.0];
        let values = vec![5.0, 5.0, -5.0, -5.0];
        let out = attend_one(&q, &keys, &values, 2, &s);
        assert!(out[0] > 4.5, "should focus on position 0: {out:?}");
    }

    #[test]
    fn gqa_shares_kv_heads() {
        // 4 query heads, 2 KV heads: heads 0-1 use kv0, heads 2-3 use kv1.
        let s = shape(4, 2, 1, None);
        let q = vec![1.0; 4];
        let keys = vec![1.0, 1.0]; // one token, kv_dim=2
        let values = vec![7.0, 9.0];
        let out = attend_one(&q, &keys, &values, 1, &s);
        assert_eq!(out, vec![7.0, 7.0, 9.0, 9.0]);
    }

    #[test]
    fn sliding_window_ignores_old_tokens() {
        let s = shape(1, 1, 1, Some(2));
        let q = vec![1.0];
        // Three tokens; the first has a huge value but falls outside the
        // window of 2.
        let keys = vec![5.0, 1.0, 1.0];
        let values = vec![1000.0, 1.0, 2.0];
        let out = attend_one(&q, &keys, &values, 3, &s);
        assert!(out[0] < 3.0, "window must exclude token 0: {out:?}");
    }

    #[test]
    fn uniform_keys_average_values() {
        let s = shape(1, 1, 1, None);
        let q = vec![0.0]; // zero query → uniform scores
        let keys = vec![1.0, 2.0, 3.0, 4.0];
        let values = vec![1.0, 2.0, 3.0, 4.0];
        let out = attend_one(&q, &keys, &values, 4, &s);
        assert!((out[0] - 2.5).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "query width mismatch")]
    fn validates_query_width() {
        let s = shape(2, 2, 4, None);
        attend_one(&[0.0; 4], &[0.0; 8], &[0.0; 8], 1, &s);
    }
}

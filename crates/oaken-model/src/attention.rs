//! Single-token multi-head attention over the cached KV matrices —
//! the un-batchable activation-activation operation at the heart of the
//! paper's bandwidth argument (§2.2, Figure 2b).
//!
//! Supports multi-head (MHA), grouped-query (GQA), and sliding-window
//! attention as used by the eight evaluation models.

use oaken_tensor::softmax_in_place;

/// Shape parameters for one attention call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionShape {
    /// Query heads.
    pub num_heads: usize,
    /// Key/value heads (divides `num_heads`).
    pub num_kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Sliding-window span, if any.
    pub window: Option<usize>,
}

impl AttentionShape {
    /// Query width, `num_heads × head_dim`.
    pub fn q_dim(&self) -> usize {
        self.num_heads * self.head_dim
    }

    /// KV width, `num_kv_heads × head_dim`.
    pub fn kv_dim(&self) -> usize {
        self.num_kv_heads * self.head_dim
    }

    /// How many query heads share one KV head.
    pub fn group_size(&self) -> usize {
        self.num_heads / self.num_kv_heads.max(1)
    }
}

/// Computes attention for a single query token against `seq_len` cached
/// positions, returning the `[num_heads × head_dim]` context vector
/// (the `C` rows of Figure 2b).
///
/// `keys`/`values` are row-major `[seq_len × kv_dim]`.
///
/// Internally iterates the KV heads through [`attend_kv_group`], so the
/// serial path and the runtime-sharded path (one task per `(step,
/// kv head)`) execute identical per-head arithmetic — the bit-exactness
/// requirement of the parallel forward pass.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shape parameters.
pub fn attend_one(
    q: &[f32],
    keys: &[f32],
    values: &[f32],
    seq_len: usize,
    shape: &AttentionShape,
) -> Vec<f32> {
    let hd = shape.head_dim;
    assert_eq!(q.len(), shape.q_dim(), "query width mismatch");
    let group = shape.group_size().max(1);
    let mut out = vec![0.0f32; shape.q_dim()];
    let mut scores = Vec::new();
    for kvh in 0..shape.num_kv_heads {
        let out_g = &mut out[kvh * group * hd..(kvh + 1) * group * hd];
        attend_kv_group_into(q, keys, values, seq_len, shape, kvh, out_g, &mut scores);
    }
    out
}

/// Computes the context of the query heads sharing KV head `kv_head` for a
/// single token: the `[group_size × head_dim]` slice of [`attend_one`]'s
/// output covering query heads `kv_head·group .. (kv_head+1)·group`.
///
/// This is the shard unit of the parallel forward pass — each KV head's
/// score/softmax/weighted-sum chain is fully independent, so computing
/// groups in any order (or concurrently) reproduces [`attend_one`]'s bits
/// exactly.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shape parameters or
/// `kv_head >= num_kv_heads`.
pub fn attend_kv_group(
    q: &[f32],
    keys: &[f32],
    values: &[f32],
    seq_len: usize,
    shape: &AttentionShape,
    kv_head: usize,
) -> Vec<f32> {
    assert_eq!(q.len(), shape.q_dim(), "query width mismatch");
    assert!(kv_head < shape.num_kv_heads, "kv head out of range");
    let group = shape.group_size().max(1);
    let mut out = vec![0.0f32; group * shape.head_dim];
    let mut scores = Vec::new();
    attend_kv_group_into(
        q,
        keys,
        values,
        seq_len,
        shape,
        kv_head,
        &mut out,
        &mut scores,
    );
    out
}

/// Shared kernel: attention of one KV head's query group, written into
/// `out_g` (`group_size × head_dim` wide). `scores` is a reusable scratch
/// buffer.
#[allow(clippy::too_many_arguments)]
fn attend_kv_group_into(
    q: &[f32],
    keys: &[f32],
    values: &[f32],
    seq_len: usize,
    shape: &AttentionShape,
    kv_head: usize,
    out_g: &mut [f32],
    scores: &mut Vec<f32>,
) {
    let hd = shape.head_dim;
    let kv_dim = shape.kv_dim();
    assert_eq!(keys.len(), seq_len * kv_dim, "key matrix shape mismatch");
    assert_eq!(
        values.len(),
        seq_len * kv_dim,
        "value matrix shape mismatch"
    );

    let start = match shape.window {
        Some(w) => seq_len.saturating_sub(w),
        None => 0,
    };
    let span = seq_len - start;
    let inv_sqrt = 1.0 / (hd as f32).sqrt();
    let group = shape.group_size().max(1);
    scores.clear();
    scores.resize(span, 0.0);

    for g in 0..group {
        let h = kv_head * group + g;
        let q_h = &q[h * hd..(h + 1) * hd];
        for (i, t) in (start..seq_len).enumerate() {
            let k_t = &keys[t * kv_dim + kv_head * hd..t * kv_dim + (kv_head + 1) * hd];
            scores[i] = q_h.iter().zip(k_t).map(|(&a, &b)| a * b).sum::<f32>() * inv_sqrt;
        }
        softmax_in_place(scores);
        let out_h = &mut out_g[g * hd..(g + 1) * hd];
        for (i, t) in (start..seq_len).enumerate() {
            let p = scores[i];
            if p == 0.0 {
                continue;
            }
            let v_t = &values[t * kv_dim + kv_head * hd..t * kv_dim + (kv_head + 1) * hd];
            for (o, &v) in out_h.iter_mut().zip(v_t) {
                *o += p * v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(heads: usize, kv: usize, hd: usize, window: Option<usize>) -> AttentionShape {
        AttentionShape {
            num_heads: heads,
            num_kv_heads: kv,
            head_dim: hd,
            window,
        }
    }

    #[test]
    fn single_position_returns_its_value() {
        let s = shape(2, 2, 2, None);
        let q = vec![1.0, 0.0, 0.0, 1.0];
        let keys = vec![0.5, 0.5, 0.5, 0.5];
        let values = vec![1.0, 2.0, 3.0, 4.0];
        let out = attend_one(&q, &keys, &values, 1, &s);
        // One position → softmax weight 1 → output = its value.
        assert_eq!(out, values);
    }

    #[test]
    fn attends_to_matching_key() {
        let s = shape(1, 1, 2, None);
        let q = vec![10.0, 0.0];
        // Position 0 key aligned with q, position 1 orthogonal.
        let keys = vec![1.0, 0.0, 0.0, 1.0];
        let values = vec![5.0, 5.0, -5.0, -5.0];
        let out = attend_one(&q, &keys, &values, 2, &s);
        assert!(out[0] > 4.5, "should focus on position 0: {out:?}");
    }

    #[test]
    fn gqa_shares_kv_heads() {
        // 4 query heads, 2 KV heads: heads 0-1 use kv0, heads 2-3 use kv1.
        let s = shape(4, 2, 1, None);
        let q = vec![1.0; 4];
        let keys = vec![1.0, 1.0]; // one token, kv_dim=2
        let values = vec![7.0, 9.0];
        let out = attend_one(&q, &keys, &values, 1, &s);
        assert_eq!(out, vec![7.0, 7.0, 9.0, 9.0]);
    }

    #[test]
    fn sliding_window_ignores_old_tokens() {
        let s = shape(1, 1, 1, Some(2));
        let q = vec![1.0];
        // Three tokens; the first has a huge value but falls outside the
        // window of 2.
        let keys = vec![5.0, 1.0, 1.0];
        let values = vec![1000.0, 1.0, 2.0];
        let out = attend_one(&q, &keys, &values, 3, &s);
        assert!(out[0] < 3.0, "window must exclude token 0: {out:?}");
    }

    #[test]
    fn uniform_keys_average_values() {
        let s = shape(1, 1, 1, None);
        let q = vec![0.0]; // zero query → uniform scores
        let keys = vec![1.0, 2.0, 3.0, 4.0];
        let values = vec![1.0, 2.0, 3.0, 4.0];
        let out = attend_one(&q, &keys, &values, 4, &s);
        assert!((out[0] - 2.5).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "query width mismatch")]
    fn validates_query_width() {
        let s = shape(2, 2, 4, None);
        attend_one(&[0.0; 4], &[0.0; 8], &[0.0; 8], 1, &s);
    }

    /// The per-KV-head shard must be bit-identical to the corresponding
    /// slice of the whole-token attention — the invariant that lets the
    /// parallel forward pass fan groups out across threads.
    #[test]
    fn kv_group_shards_tile_attend_one_bitwise() {
        // GQA shape with awkward values: 4 query heads over 2 KV heads.
        let s = shape(4, 2, 3, Some(5));
        let seq_len = 7;
        let q: Vec<f32> = (0..s.q_dim())
            .map(|i| ((i * 37 + 11) % 23) as f32 / 5.0 - 2.1)
            .collect();
        let keys: Vec<f32> = (0..seq_len * s.kv_dim())
            .map(|i| ((i * 53 + 3) % 31) as f32 / 7.0 - 1.9)
            .collect();
        let values: Vec<f32> = (0..seq_len * s.kv_dim())
            .map(|i| ((i * 29 + 17) % 41) as f32 / 9.0 - 2.3)
            .collect();
        let whole = attend_one(&q, &keys, &values, seq_len, &s);
        let gw = s.group_size() * s.head_dim;
        for kvh in 0..s.num_kv_heads {
            let part = attend_kv_group(&q, &keys, &values, seq_len, &s, kvh);
            let wb: Vec<u32> = whole[kvh * gw..(kvh + 1) * gw]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let pb: Vec<u32> = part.iter().map(|v| v.to_bits()).collect();
            assert_eq!(wb, pb, "kv head {kvh} diverged");
        }
    }
}

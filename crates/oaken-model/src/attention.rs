//! Single-token multi-head attention over the cached KV matrices —
//! the un-batchable activation-activation operation at the heart of the
//! paper's bandwidth argument (§2.2, Figure 2b).
//!
//! Supports multi-head (MHA), grouped-query (GQA), and sliding-window
//! attention as used by the eight evaluation models.
//!
//! Two kernel families share the score/softmax/weighted-sum structure:
//!
//! * the **exact** kernels ([`attend_one`], [`attend_kv_group`] and their
//!   allocation-free `_into` variants) read dequantized f32 KV matrices
//!   and carry the engine's bit-exactness contract;
//! * the **fused** kernels ([`attend_one_fused`],
//!   [`attend_kv_group_fused`]) read [`FusedVector`] rows directly —
//!   integer nibble codes folded through per-row [`RowDecode`]
//!   coefficients, with COO outliers patched into the accumulator — so
//!   attention never needs a materialized f32 view of the cache. Their
//!   numeric contract is SQNR-bounded against the exact kernels (see
//!   `oaken_core::kernel`), and with the `simd` cargo feature the dense
//!   nibble walk runs on an `std::arch` x86-64 SSE2 lane (accumulation
//!   order differs from the scalar walk, so fused bits may change when
//!   the feature is toggled).

use oaken_core::kernel::{EncodedReadPlan, FusedReadParams, OutlierPatch, RowDecode};
use oaken_core::FusedVector;
use oaken_tensor::softmax_in_place;

/// Shape parameters for one attention call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionShape {
    /// Query heads.
    pub num_heads: usize,
    /// Key/value heads (divides `num_heads`).
    pub num_kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Sliding-window span, if any.
    pub window: Option<usize>,
}

impl AttentionShape {
    /// Query width, `num_heads × head_dim`.
    pub fn q_dim(&self) -> usize {
        self.num_heads * self.head_dim
    }

    /// KV width, `num_kv_heads × head_dim`.
    pub fn kv_dim(&self) -> usize {
        self.num_kv_heads * self.head_dim
    }

    /// How many query heads share one KV head.
    pub fn group_size(&self) -> usize {
        self.num_heads / self.num_kv_heads.max(1)
    }
}

/// Reusable scratch buffers for the `_into` kernel variants: the score
/// vector shared by both families plus the per-row decode coefficient
/// tables of the fused kernels. Hold one per decode loop (or per worker)
/// and every attention call after warm-up allocates nothing.
#[derive(Debug, Default)]
pub struct AttentionScratch {
    scores: Vec<f32>,
    key_decodes: Vec<RowDecode>,
    value_decodes: Vec<RowDecode>,
}

impl AttentionScratch {
    /// Splits the scratch into the score buffer plus the decode tables the
    /// fused kernels should read for this call: a tensor's stream-side
    /// cache when [`EncodedKv::decodes`] carries one, the freshly rebuilt
    /// scratch table (filled by `prepare_decodes`) otherwise. Either way
    /// entry `i` decodes row `start + i` of the windowed span.
    fn decode_slices<'s>(
        &'s mut self,
        keys: &EncodedKv<'s>,
        values: &EncodedKv<'s>,
        seq_len: usize,
        shape: &AttentionShape,
    ) -> (&'s mut Vec<f32>, &'s [RowDecode], &'s [RowDecode]) {
        let start = window_start(shape, seq_len);
        let Self {
            scores,
            key_decodes,
            value_decodes,
        } = self;
        let kd = match keys.plan {
            Some(p) => &p.decodes()[start..seq_len],
            None => &key_decodes[..],
        };
        let vd = match values.plan {
            Some(p) => &p.decodes()[start..seq_len],
            None => &value_decodes[..],
        };
        (scores, kd, vd)
    }
}

/// First cached position visible to the query under the shape's sliding
/// window.
fn window_start(shape: &AttentionShape, seq_len: usize) -> usize {
    match shape.window {
        Some(w) => seq_len.saturating_sub(w),
        None => 0,
    }
}

/// Computes attention for a single query token against `seq_len` cached
/// positions, returning the `[num_heads × head_dim]` context vector
/// (the `C` rows of Figure 2b).
///
/// `keys`/`values` are row-major `[seq_len × kv_dim]`.
///
/// Internally iterates the KV heads through [`attend_kv_group`], so the
/// serial path and the runtime-sharded path (one task per `(step,
/// kv head)`) execute identical per-head arithmetic — the bit-exactness
/// requirement of the parallel forward pass.
///
/// Allocating convenience wrapper over [`attend_one_into`].
///
/// # Panics
///
/// Panics if slice lengths disagree with the shape parameters.
pub fn attend_one(
    q: &[f32],
    keys: &[f32],
    values: &[f32],
    seq_len: usize,
    shape: &AttentionShape,
) -> Vec<f32> {
    let mut out = Vec::new();
    let mut scratch = AttentionScratch::default();
    attend_one_into(q, keys, values, seq_len, shape, &mut scratch, &mut out);
    out
}

/// [`attend_one`] writing into caller-owned buffers: `out` is cleared and
/// refilled with the `[num_heads × head_dim]` context vector. Bit-identical
/// to [`attend_one`]; with warm buffers the call allocates nothing — the
/// decode hot path reuses one scratch across every `(token, layer)` step.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shape parameters.
pub fn attend_one_into(
    q: &[f32],
    keys: &[f32],
    values: &[f32],
    seq_len: usize,
    shape: &AttentionShape,
    scratch: &mut AttentionScratch,
    out: &mut Vec<f32>,
) {
    let hd = shape.head_dim;
    assert_eq!(q.len(), shape.q_dim(), "query width mismatch");
    let group = shape.group_size().max(1);
    out.clear();
    out.resize(shape.q_dim(), 0.0);
    for kvh in 0..shape.num_kv_heads {
        let out_g = &mut out[kvh * group * hd..(kvh + 1) * group * hd];
        attend_kv_group_into(
            q,
            keys,
            values,
            seq_len,
            shape,
            kvh,
            out_g,
            &mut scratch.scores,
        );
    }
}

/// Computes the context of the query heads sharing KV head `kv_head` for a
/// single token: the `[group_size × head_dim]` slice of [`attend_one`]'s
/// output covering query heads `kv_head·group .. (kv_head+1)·group`.
///
/// This is the shard unit of the parallel forward pass — each KV head's
/// score/softmax/weighted-sum chain is fully independent, so computing
/// groups in any order (or concurrently) reproduces [`attend_one`]'s bits
/// exactly.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shape parameters or
/// `kv_head >= num_kv_heads`.
pub fn attend_kv_group(
    q: &[f32],
    keys: &[f32],
    values: &[f32],
    seq_len: usize,
    shape: &AttentionShape,
    kv_head: usize,
) -> Vec<f32> {
    assert_eq!(q.len(), shape.q_dim(), "query width mismatch");
    assert!(kv_head < shape.num_kv_heads, "kv head out of range");
    let group = shape.group_size().max(1);
    let mut out = vec![0.0f32; group * shape.head_dim];
    let mut scores = Vec::new();
    attend_kv_group_into(
        q,
        keys,
        values,
        seq_len,
        shape,
        kv_head,
        &mut out,
        &mut scores,
    );
    out
}

/// [`attend_kv_group`] writing into caller-owned buffers: the group's
/// context goes to `out_g` (`group_size × head_dim` wide, fully
/// overwritten), `scores` is reusable scratch. Bit-identical to the
/// allocating wrapper; this is the shard unit the parallel forward pass
/// dispatches.
///
/// # Panics
///
/// Panics if slice lengths disagree with the shape parameters.
#[allow(clippy::too_many_arguments)]
pub fn attend_kv_group_into(
    q: &[f32],
    keys: &[f32],
    values: &[f32],
    seq_len: usize,
    shape: &AttentionShape,
    kv_head: usize,
    out_g: &mut [f32],
    scores: &mut Vec<f32>,
) {
    let hd = shape.head_dim;
    let kv_dim = shape.kv_dim();
    assert_eq!(keys.len(), seq_len * kv_dim, "key matrix shape mismatch");
    assert_eq!(
        values.len(),
        seq_len * kv_dim,
        "value matrix shape mismatch"
    );

    let start = window_start(shape, seq_len);
    let span = seq_len - start;
    let inv_sqrt = 1.0 / (hd as f32).sqrt();
    let group = shape.group_size().max(1);
    out_g.fill(0.0);
    scores.clear();
    scores.resize(span, 0.0);

    for g in 0..group {
        let h = kv_head * group + g;
        let q_h = &q[h * hd..(h + 1) * hd];
        for (i, t) in (start..seq_len).enumerate() {
            let k_t = &keys[t * kv_dim + kv_head * hd..t * kv_dim + (kv_head + 1) * hd];
            scores[i] = q_h.iter().zip(k_t).map(|(&a, &b)| a * b).sum::<f32>() * inv_sqrt;
        }
        softmax_in_place(scores);
        let out_h = &mut out_g[g * hd..(g + 1) * hd];
        for (i, t) in (start..seq_len).enumerate() {
            let p = scores[i];
            if p == 0.0 {
                continue;
            }
            let v_t = &values[t * kv_dim + kv_head * hd..t * kv_dim + (kv_head + 1) * hd];
            for (o, &v) in out_h.iter_mut().zip(v_t) {
                *o += p * v;
            }
        }
    }
}

// ----------------------------------------------------------------------
// Fused quantized-domain kernels
// ----------------------------------------------------------------------

/// Borrowed encoded KV tensor for the fused kernels: at least `seq_len`
/// stored [`FusedVector`] rows plus the tensor's row-independent decode
/// parameters. This is what the paged pool hands out in fused mode — no
/// dequantized f32 image of these rows exists anywhere.
#[derive(Debug, Clone, Copy)]
pub struct EncodedKv<'a> {
    /// Encoded rows, one per cached token.
    pub rows: &'a [FusedVector],
    /// Decode parameters of the `(layer, kind)` tensor the rows belong to.
    pub params: FusedReadParams,
    /// The stream-maintained read plan for these rows (decode
    /// coefficients, flat dense arena, precomputed COO patches; entry `i`
    /// for `rows[i]`, at least `rows.len()` rows when present). `None`
    /// makes the kernels rebuild coefficients into scratch and walk each
    /// row's own buffers — correct but O(seq_len) extra work per call, so
    /// production read paths hand the stream's plan through.
    pub plan: Option<&'a EncodedReadPlan>,
}

/// Fused-kernel analogue of [`attend_one`]: computes the single-token
/// context vector reading `keys`/`values` **directly in their encoded
/// form**. Scores and weighted sums run over the packed 4-bit dense
/// matrix through per-row [`RowDecode`] coefficients, with each COO
/// outlier's contribution patched into the accumulator afterwards.
///
/// Numerically this is SQNR-bounded against [`attend_one`] over the
/// dequantized views (see `oaken_core::kernel`), not bit-exact.
///
/// Allocating convenience wrapper over [`attend_one_fused_into`].
///
/// # Panics
///
/// Panics if `q` disagrees with the shape, fewer than `seq_len` encoded
/// rows are supplied, or a row's width disagrees with `kv_dim`.
pub fn attend_one_fused(
    q: &[f32],
    keys: &EncodedKv<'_>,
    values: &EncodedKv<'_>,
    seq_len: usize,
    shape: &AttentionShape,
) -> Vec<f32> {
    let mut out = Vec::new();
    let mut scratch = AttentionScratch::default();
    attend_one_fused_into(q, keys, values, seq_len, shape, &mut scratch, &mut out);
    out
}

/// [`attend_one_fused`] writing into caller-owned buffers; with warm
/// buffers the call allocates nothing. The per-row decode coefficients are
/// prepared once and shared across every KV head of the token.
///
/// # Panics
///
/// Same conditions as [`attend_one_fused`].
pub fn attend_one_fused_into(
    q: &[f32],
    keys: &EncodedKv<'_>,
    values: &EncodedKv<'_>,
    seq_len: usize,
    shape: &AttentionShape,
    scratch: &mut AttentionScratch,
    out: &mut Vec<f32>,
) {
    let hd = shape.head_dim;
    assert_eq!(q.len(), shape.q_dim(), "query width mismatch");
    let group = shape.group_size().max(1);
    out.clear();
    out.resize(shape.q_dim(), 0.0);
    prepare_decodes(keys, values, seq_len, shape, scratch);
    let (scores, kd, vd) = scratch.decode_slices(keys, values, seq_len, shape);
    for kvh in 0..shape.num_kv_heads {
        let out_g = &mut out[kvh * group * hd..(kvh + 1) * group * hd];
        fused_group_kernel(q, keys, values, seq_len, shape, kvh, out_g, scores, kd, vd);
    }
}

/// Fused-kernel analogue of [`attend_kv_group`]: one KV head's query-group
/// context computed directly over the encoded rows. Shards tile
/// [`attend_one_fused`] bit-exactly, so the parallel forward pass can fan
/// fused groups out across threads exactly like exact ones.
///
/// # Panics
///
/// Same conditions as [`attend_one_fused`], plus
/// `kv_head >= num_kv_heads`.
pub fn attend_kv_group_fused(
    q: &[f32],
    keys: &EncodedKv<'_>,
    values: &EncodedKv<'_>,
    seq_len: usize,
    shape: &AttentionShape,
    kv_head: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; shape.group_size().max(1) * shape.head_dim];
    let mut scratch = AttentionScratch::default();
    attend_kv_group_fused_into(
        q,
        keys,
        values,
        seq_len,
        shape,
        kv_head,
        &mut out,
        &mut scratch,
    );
    out
}

/// [`attend_kv_group_fused`] writing into caller-owned buffers: the
/// group's context goes to `out_g` (`group_size × head_dim` wide, fully
/// overwritten).
///
/// # Panics
///
/// Same conditions as [`attend_kv_group_fused`].
#[allow(clippy::too_many_arguments)]
pub fn attend_kv_group_fused_into(
    q: &[f32],
    keys: &EncodedKv<'_>,
    values: &EncodedKv<'_>,
    seq_len: usize,
    shape: &AttentionShape,
    kv_head: usize,
    out_g: &mut [f32],
    scratch: &mut AttentionScratch,
) {
    assert_eq!(q.len(), shape.q_dim(), "query width mismatch");
    assert!(kv_head < shape.num_kv_heads, "kv head out of range");
    prepare_decodes(keys, values, seq_len, shape, scratch);
    let (scores, kd, vd) = scratch.decode_slices(keys, values, seq_len, shape);
    fused_group_kernel(
        q, keys, values, seq_len, shape, kv_head, out_g, scores, kd, vd,
    );
}

/// Validates row counts and widths once up front so the inner loops can
/// index without checks, and — only for tensors *without* a stream-side
/// decode cache — rebuilds the per-row coefficient tables for the
/// windowed span `start..seq_len` into scratch.
fn prepare_decodes(
    keys: &EncodedKv<'_>,
    values: &EncodedKv<'_>,
    seq_len: usize,
    shape: &AttentionShape,
    scratch: &mut AttentionScratch,
) {
    assert!(
        keys.rows.len() >= seq_len,
        "encoded key rows shorter than seq_len"
    );
    assert!(
        values.rows.len() >= seq_len,
        "encoded value rows shorter than seq_len"
    );
    if let Some(p) = keys.plan {
        assert!(p.rows() >= seq_len, "key read plan shorter than seq_len");
    }
    if let Some(p) = values.plan {
        assert!(p.rows() >= seq_len, "value read plan shorter than seq_len");
    }
    let kv_dim = shape.kv_dim();
    let start = window_start(shape, seq_len);
    scratch.key_decodes.clear();
    scratch.value_decodes.clear();
    for t in start..seq_len {
        assert_eq!(keys.rows[t].dim(), kv_dim, "encoded key row width mismatch");
        assert_eq!(
            values.rows[t].dim(),
            kv_dim,
            "encoded value row width mismatch"
        );
        if keys.plan.is_none() {
            scratch
                .key_decodes
                .push(RowDecode::for_row(&keys.rows[t], &keys.params));
        }
        if values.plan.is_none() {
            scratch
                .value_decodes
                .push(RowDecode::for_row(&values.rows[t], &values.params));
        }
    }
}

/// Shared fused kernel for one KV head's query group. Expects
/// [`prepare_decodes`] validation to have run, and takes the decode
/// tables for the windowed span (entry `i` ↔ row `start + i`) from
/// [`AttentionScratch::decode_slices`].
#[allow(clippy::too_many_arguments)]
fn fused_group_kernel(
    q: &[f32],
    keys: &EncodedKv<'_>,
    values: &EncodedKv<'_>,
    seq_len: usize,
    shape: &AttentionShape,
    kv_head: usize,
    out_g: &mut [f32],
    scores: &mut Vec<f32>,
    key_decodes: &[RowDecode],
    value_decodes: &[RowDecode],
) {
    let hd = shape.head_dim;
    let start = window_start(shape, seq_len);
    let span = seq_len - start;
    let inv_sqrt = 1.0 / (hd as f32).sqrt();
    let group = shape.group_size().max(1);
    let col = kv_head * hd;
    out_g.fill(0.0);
    scores.clear();
    scores.resize(span, 0.0);

    let key_rows = &keys.rows[start..seq_len];
    let value_rows = &values.rows[start..seq_len];
    for g in 0..group {
        let h = kv_head * group + g;
        let q_h = &q[h * hd..(h + 1) * hd];
        match keys.plan {
            Some(p) => fused_dot_plan(q_h, p, start, seq_len, col, key_decodes, inv_sqrt, scores),
            None => {
                for (i, fv) in key_rows.iter().enumerate() {
                    scores[i] = fused_dot(q_h, fv, col, &key_decodes[i]) * inv_sqrt;
                }
            }
        }
        softmax_in_place(scores);
        let out_h = &mut out_g[g * hd..(g + 1) * hd];
        match values.plan {
            Some(p) => fused_axpy_plan(scores, p, start, seq_len, col, value_decodes, out_h),
            None => {
                for (i, fv) in value_rows.iter().enumerate() {
                    let p = scores[i];
                    if p != 0.0 {
                        fused_axpy(p, fv, col, &value_decodes[i], out_h);
                    }
                }
            }
        }
    }
}

/// One scores pass over the plan-cached span `start..seq_len`:
/// `scores[i] = (dense + patches) / sqrt(d)` for row `start + i`. The
/// dense walk streams the plan's flat nibble arena (sequential memory, no
/// per-row pointer chase); the COO patch-up applies the precomputed
/// `(index, delta)` pairs without re-parsing packed bytes. With the
/// AVX-512 lane the whole span runs inside one `#[target_feature]` call
/// and the patch-up follows as a scalar sweep (same per-row expression,
/// patch terms summed before the dense total — a few-ULP reassociation of
/// the same class as the documented feature-toggle variance).
#[allow(clippy::too_many_arguments)]
fn fused_dot_plan(
    q_h: &[f32],
    plan: &EncodedReadPlan,
    start: usize,
    seq_len: usize,
    col: usize,
    decs: &[RowDecode],
    inv_sqrt: f32,
    scores: &mut [f32],
) {
    let stride = plan.dense_stride();
    let arena = &plan.dense_arena()[start * stride..seq_len * stride];
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::dot_block(q_h, arena, stride, col, decs, scores) {
        for (i, s) in scores.iter_mut().enumerate() {
            *s = (*s + patch_dot(q_h, plan.patches_for(start + i), col)) * inv_sqrt;
        }
        return;
    }
    for (i, s) in scores.iter_mut().enumerate() {
        let bytes = &arena[i * stride..(i + 1) * stride];
        let dense = dense_dot(q_h, bytes, col, &decs[i]);
        *s = (dense + patch_dot(q_h, plan.patches_for(start + i), col)) * inv_sqrt;
    }
}

/// One weighted-sum pass over the plan-cached span, mirroring
/// [`fused_dot_plan`]: `out_h += probs[i] · row(start + i)`, zero
/// probabilities skipped.
fn fused_axpy_plan(
    probs: &[f32],
    plan: &EncodedReadPlan,
    start: usize,
    seq_len: usize,
    col: usize,
    decs: &[RowDecode],
    out_h: &mut [f32],
) {
    let stride = plan.dense_stride();
    let arena = &plan.dense_arena()[start * stride..seq_len * stride];
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::axpy_block(probs, arena, stride, col, decs, out_h) {
        for (i, &p) in probs.iter().enumerate() {
            if p != 0.0 {
                patch_axpy(p, plan.patches_for(start + i), col, out_h);
            }
        }
        return;
    }
    for (i, &p) in probs.iter().enumerate() {
        if p == 0.0 {
            continue;
        }
        let bytes = &arena[i * stride..(i + 1) * stride];
        dense_axpy(p, bytes, col, &decs[i], out_h);
        patch_axpy(p, plan.patches_for(start + i), col, out_h);
    }
}

/// Applies a row's precomputed COO corrections to a dot product: the sum
/// of `q_h[index - col] · delta` over patches inside `col .. col + len`.
/// The patch list is index-sorted, so the loop early-exits past the head
/// slice.
#[inline]
fn patch_dot(q_h: &[f32], patches: &[OutlierPatch], col: usize) -> f32 {
    let col = col as u32;
    let end = col + q_h.len() as u32;
    let mut acc = 0.0f32;
    for p in patches {
        if p.index < col {
            continue;
        }
        if p.index >= end {
            break;
        }
        acc += q_h[(p.index - col) as usize] * p.delta;
    }
    acc
}

/// Applies a row's precomputed COO corrections to a weighted sum:
/// `out_h[index - col] += p · delta` for patches inside the head slice.
#[inline]
fn patch_axpy(p: f32, patches: &[OutlierPatch], col: usize, out_h: &mut [f32]) {
    let col = col as u32;
    let end = col + out_h.len() as u32;
    for e in patches {
        if e.index < col {
            continue;
        }
        if e.index >= end {
            break;
        }
        out_h[(e.index - col) as usize] += p * e.delta;
    }
}

/// Quantized-domain dot product of `q_h` against columns
/// `col .. col + q_h.len()` of one encoded row: a dense nibble pass with
/// the row's middle coefficients, then a COO patch-up replacing each
/// in-range outlier's middle contribution with its outlier value. The COO
/// stream is index-sorted, so the patch loop early-exits past the head
/// slice.
fn fused_dot(q_h: &[f32], fv: &FusedVector, col: usize, dec: &RowDecode) -> f32 {
    dense_dot(q_h, fv.dense_bytes(), col, dec) + outlier_dot_patch(q_h, fv, col, dec)
}

/// The COO correction term of [`fused_dot`]: for each in-range outlier,
/// the difference between its outlier reconstruction and the middle value
/// the dense pass already charged, weighted by the query element.
fn outlier_dot_patch(q_h: &[f32], fv: &FusedVector, col: usize, dec: &RowDecode) -> f32 {
    let mut acc = 0.0f32;
    let end = col + q_h.len();
    for e in fv.outliers() {
        if e.index < col {
            continue;
        }
        if e.index >= end {
            break;
        }
        let code = u32::from(fv.dense_code(e.index));
        acc += q_h[e.index - col] * (dec.outlier(e.group, e.high_side, code) - dec.middle(code));
    }
    acc
}

/// Quantized-domain `out_h += p · v[col..col+len]` over one encoded row:
/// dense nibble pass plus COO patch-up, mirroring [`fused_dot`].
fn fused_axpy(p: f32, fv: &FusedVector, col: usize, dec: &RowDecode, out_h: &mut [f32]) {
    dense_axpy(p, fv.dense_bytes(), col, dec, out_h);
    outlier_axpy_patch(p, fv, col, dec, out_h);
}

/// The COO correction of [`fused_axpy`], mirroring [`outlier_dot_patch`].
fn outlier_axpy_patch(p: f32, fv: &FusedVector, col: usize, dec: &RowDecode, out_h: &mut [f32]) {
    let end = col + out_h.len();
    for e in fv.outliers() {
        if e.index < col {
            continue;
        }
        if e.index >= end {
            break;
        }
        let code = u32::from(fv.dense_code(e.index));
        out_h[e.index - col] += p * (dec.outlier(e.group, e.high_side, code) - dec.middle(code));
    }
}

/// Dense nibble `i` of a packed code buffer — the
/// [`FusedVector::dense_bytes`] layout (element `i` in nibble `i`, low
/// nibble first), shared by the per-row buffers and the plan's flat
/// arena.
#[inline]
fn code_at(bytes: &[u8], i: usize) -> u32 {
    let b = bytes[i / 2];
    u32::from(if i.is_multiple_of(2) { b & 0xF } else { b >> 4 })
}

/// Scalar dense-pass dot product — the reference lane the `simd` feature's
/// kernels are tested against.
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), allow(dead_code))]
fn dense_dot_scalar(q_h: &[f32], bytes: &[u8], col: usize, dec: &RowDecode) -> f32 {
    let mut acc = 0.0f32;
    for (j, &qv) in q_h.iter().enumerate() {
        acc += qv * dec.middle(code_at(bytes, col + j));
    }
    acc
}

/// Scalar dense-pass axpy — the reference lane the `simd` feature's
/// kernels are tested against.
#[cfg_attr(all(feature = "simd", target_arch = "x86_64"), allow(dead_code))]
fn dense_axpy_scalar(p: f32, bytes: &[u8], col: usize, dec: &RowDecode, out_h: &mut [f32]) {
    for (j, o) in out_h.iter_mut().enumerate() {
        *o += p * dec.middle(code_at(bytes, col + j));
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
use dense_axpy_scalar as dense_axpy;
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
use dense_dot_scalar as dense_dot;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
use simd::{dense_axpy, dense_dot};

/// `std::arch` lanes for the dense nibble walk, enabled by the `simd`
/// cargo feature on x86-64. With AVX-512F (detected at runtime) sixteen
/// dense codes are unpacked per iteration from one 8-byte load and decoded
/// by a single table permute over the row's
/// [`middle_lut`](RowDecode::middle_lut); otherwise an SSE2 lane unpacks
/// four codes per iteration with the compare/blend decode. Per-element
/// decoded values are bit-identical to the scalar lane in both cases, but
/// the dot product's accumulation order differs (partial sums reduced at
/// the end), so fused outputs may differ by a few ULP when the feature is
/// toggled; the axpy lanes apply the same per-element expression as the
/// scalar walk.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    use super::{code_at, RowDecode};
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    /// One-time CPUID probe for the 512-bit lane.
    fn use_avx512() -> bool {
        static PROBE: OnceLock<bool> = OnceLock::new();
        *PROBE.get_or_init(|| is_x86_feature_detected!("avx512f"))
    }

    pub(super) fn dense_dot(q_h: &[f32], bytes: &[u8], col: usize, dec: &RowDecode) -> f32 {
        if use_avx512() {
            // SAFETY: `use_avx512` verified AVX-512F support on this CPU.
            unsafe { dense_dot_avx512(q_h, bytes, col, dec) }
        } else {
            dense_dot_sse2(q_h, bytes, col, dec)
        }
    }

    pub(super) fn dense_axpy(p: f32, bytes: &[u8], col: usize, dec: &RowDecode, out_h: &mut [f32]) {
        if use_avx512() {
            // SAFETY: `use_avx512` verified AVX-512F support on this CPU.
            unsafe { dense_axpy_avx512(p, bytes, col, dec, out_h) }
        } else {
            dense_axpy_sse2(p, bytes, col, dec, out_h)
        }
    }

    /// Batched dense-dot over a span of the plan's flat nibble arena
    /// (row `i` at `arena[i·stride..]`), or `false` without AVX-512F (the
    /// caller then falls back to the per-row lane). Keeping the row loop
    /// inside one `#[target_feature]` function lets the per-row kernel
    /// inline — no vector-transition call per token row — while the arena
    /// keeps the walk on sequential, prefetchable memory.
    pub(super) fn dot_block(
        q_h: &[f32],
        arena: &[u8],
        stride: usize,
        col: usize,
        decs: &[RowDecode],
        scores: &mut [f32],
    ) -> bool {
        if !use_avx512() {
            return false;
        }
        // SAFETY: `use_avx512` verified AVX-512F support on this CPU.
        unsafe { dot_block_avx512(q_h, arena, stride, col, decs, scores) };
        true
    }

    /// Batched dense-axpy over a span of the plan's arena, or `false`
    /// without AVX-512F; skips zero probabilities like the scalar walk.
    pub(super) fn axpy_block(
        probs: &[f32],
        arena: &[u8],
        stride: usize,
        col: usize,
        decs: &[RowDecode],
        out_h: &mut [f32],
    ) -> bool {
        if !use_avx512() {
            return false;
        }
        // SAFETY: `use_avx512` verified AVX-512F support on this CPU.
        unsafe { axpy_block_avx512(probs, arena, stride, col, decs, out_h) };
        true
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn dot_block_avx512(
        q_h: &[f32],
        arena: &[u8],
        stride: usize,
        col: usize,
        decs: &[RowDecode],
        scores: &mut [f32],
    ) {
        for (i, s) in scores.iter_mut().enumerate() {
            let bytes = &arena[i * stride..(i + 1) * stride];
            // SAFETY: caller upholds the row-width contract checked in
            // `prepare_decodes`; same target features, so this inlines.
            *s = unsafe { dense_dot_avx512(q_h, bytes, col, &decs[i]) };
        }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn axpy_block_avx512(
        probs: &[f32],
        arena: &[u8],
        stride: usize,
        col: usize,
        decs: &[RowDecode],
        out_h: &mut [f32],
    ) {
        for (i, &p) in probs.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let bytes = &arena[i * stride..(i + 1) * stride];
            // SAFETY: as in `dot_block_avx512`.
            unsafe { dense_axpy_avx512(p, bytes, col, &decs[i], out_h) };
        }
    }

    /// Lane selector for the 16-wide walks: the low 8 dwords replicate the
    /// loaded 8-byte word's low half, the high 8 its high half, so the
    /// per-lane shifts `4·(k mod 8)` put nibble `k` in lane `k`.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn nibble_codes(d: u64) -> __m512i {
        let sel = _mm512_set_epi32(1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0);
        let shifts = _mm512_set_epi32(28, 24, 20, 16, 12, 8, 4, 0, 28, 24, 20, 16, 12, 8, 4, 0);
        let dw = _mm512_permutexvar_epi32(sel, _mm512_set1_epi64(d as i64));
        _mm512_and_si512(_mm512_srlv_epi32(dw, shifts), _mm512_set1_epi32(15))
    }

    /// AVX-512F dot: 16 nibbles per iteration, decoded with one
    /// `vpermps` over the row's 16-entry value table.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn dense_dot_avx512(q_h: &[f32], bytes: &[u8], col: usize, dec: &RowDecode) -> f32 {
        let mut acc = 0.0f32;
        let mut j = 0usize;
        // Peel an odd starting column so the vector body is byte-aligned.
        if col % 2 == 1 && !q_h.is_empty() {
            acc += q_h[0] * dec.middle(code_at(bytes, col));
            j = 1;
        }
        // SAFETY: `j + 16 <= q_h.len()` bounds the query loads and — with
        // the row width checked by the caller — the 8-byte nibble reads
        // (`(col + j) / 2 + 8 <= bytes.len()`).
        unsafe {
            let lut = _mm512_loadu_ps(dec.middle_lut.as_ptr());
            let mut vacc = _mm512_setzero_ps();
            while j + 16 <= q_h.len() {
                let d = (bytes.as_ptr().add((col + j) / 2) as *const u64).read_unaligned();
                let vals = _mm512_permutexvar_ps(nibble_codes(d), lut);
                let qv = _mm512_loadu_ps(q_h.as_ptr().add(j));
                vacc = _mm512_fmadd_ps(qv, vals, vacc);
                j += 16;
            }
            acc += _mm512_reduce_add_ps(vacc);
        }
        while j < q_h.len() {
            acc += q_h[j] * dec.middle(code_at(bytes, col + j));
            j += 1;
        }
        acc
    }

    /// AVX-512F axpy: same unpack as the dot, with the scalar lane's
    /// unfused `out += p · v` rounding (separate multiply and add).
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn dense_axpy_avx512(
        p: f32,
        bytes: &[u8],
        col: usize,
        dec: &RowDecode,
        out_h: &mut [f32],
    ) {
        let mut j = 0usize;
        if col % 2 == 1 && !out_h.is_empty() {
            out_h[0] += p * dec.middle(code_at(bytes, col));
            j = 1;
        }
        // SAFETY: as in `dense_dot_avx512`; stores stay within `out_h`
        // because `j + 16 <= out_h.len()`.
        unsafe {
            let lut = _mm512_loadu_ps(dec.middle_lut.as_ptr());
            let pv = _mm512_set1_ps(p);
            while j + 16 <= out_h.len() {
                let d = (bytes.as_ptr().add((col + j) / 2) as *const u64).read_unaligned();
                let vals = _mm512_permutexvar_ps(nibble_codes(d), lut);
                let cur = _mm512_loadu_ps(out_h.as_ptr().add(j));
                _mm512_storeu_ps(
                    out_h.as_mut_ptr().add(j),
                    _mm512_add_ps(cur, _mm512_mul_ps(pv, vals)),
                );
                j += 16;
            }
        }
        while j < out_h.len() {
            out_h[j] += p * dec.middle(code_at(bytes, col + j));
            j += 1;
        }
    }

    fn dense_dot_sse2(q_h: &[f32], bytes: &[u8], col: usize, dec: &RowDecode) -> f32 {
        let mut acc = 0.0f32;
        let mut j = 0usize;
        // Peel an odd starting column so the vector body is byte-aligned.
        if col % 2 == 1 && !q_h.is_empty() {
            acc += q_h[0] * dec.middle(code_at(bytes, col));
            j = 1;
        }
        // SAFETY: SSE2 is baseline on every x86_64 target; loads are
        // unaligned (`loadu`) and `j + 4 <= q_h.len()` bounds the query
        // pointer while `(col + j + 3) / 2 < bytes.len()` (row width
        // checked by the caller) bounds the nibble reads.
        unsafe {
            let step = _mm_set1_ps(dec.mid_step);
            let base_hi = _mm_set1_ps(dec.base_hi);
            let base_lo = _mm_set1_ps(dec.base_lo);
            let c0 = _mm_set1_epi32(dec.c0 as i32);
            let mut vacc = _mm_setzero_ps();
            while j + 4 <= q_h.len() {
                let byte = (col + j) / 2;
                let b0 = i32::from(bytes[byte]);
                let b1 = i32::from(bytes[byte + 1]);
                let codes = _mm_set_epi32(b1 >> 4, b1 & 15, b0 >> 4, b0 & 15);
                let lo_mask = _mm_castsi128_ps(_mm_cmplt_epi32(codes, c0));
                let base = _mm_or_ps(
                    _mm_and_ps(lo_mask, base_lo),
                    _mm_andnot_ps(lo_mask, base_hi),
                );
                let vals = _mm_add_ps(_mm_mul_ps(_mm_cvtepi32_ps(codes), step), base);
                let qv = _mm_loadu_ps(q_h.as_ptr().add(j));
                vacc = _mm_add_ps(vacc, _mm_mul_ps(qv, vals));
                j += 4;
            }
            // Horizontal sum of the four lanes.
            let shuf = _mm_shuffle_ps(vacc, vacc, 0b10_11_00_01);
            let sums = _mm_add_ps(vacc, shuf);
            let high = _mm_movehl_ps(sums, sums);
            acc += _mm_cvtss_f32(_mm_add_ss(sums, high));
        }
        while j < q_h.len() {
            acc += q_h[j] * dec.middle(code_at(bytes, col + j));
            j += 1;
        }
        acc
    }

    fn dense_axpy_sse2(p: f32, bytes: &[u8], col: usize, dec: &RowDecode, out_h: &mut [f32]) {
        let mut j = 0usize;
        if col % 2 == 1 && !out_h.is_empty() {
            out_h[0] += p * dec.middle(code_at(bytes, col));
            j = 1;
        }
        // SAFETY: as in `dense_dot`; stores stay within `out_h` because
        // `j + 4 <= out_h.len()`.
        unsafe {
            let step = _mm_set1_ps(dec.mid_step);
            let base_hi = _mm_set1_ps(dec.base_hi);
            let base_lo = _mm_set1_ps(dec.base_lo);
            let c0 = _mm_set1_epi32(dec.c0 as i32);
            let pv = _mm_set1_ps(p);
            while j + 4 <= out_h.len() {
                let byte = (col + j) / 2;
                let b0 = i32::from(bytes[byte]);
                let b1 = i32::from(bytes[byte + 1]);
                let codes = _mm_set_epi32(b1 >> 4, b1 & 15, b0 >> 4, b0 & 15);
                let lo_mask = _mm_castsi128_ps(_mm_cmplt_epi32(codes, c0));
                let base = _mm_or_ps(
                    _mm_and_ps(lo_mask, base_lo),
                    _mm_andnot_ps(lo_mask, base_hi),
                );
                let vals = _mm_add_ps(_mm_mul_ps(_mm_cvtepi32_ps(codes), step), base);
                let cur = _mm_loadu_ps(out_h.as_ptr().add(j));
                _mm_storeu_ps(
                    out_h.as_mut_ptr().add(j),
                    _mm_add_ps(cur, _mm_mul_ps(pv, vals)),
                );
                j += 4;
            }
        }
        while j < out_h.len() {
            out_h[j] += p * dec.middle(code_at(bytes, col + j));
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(heads: usize, kv: usize, hd: usize, window: Option<usize>) -> AttentionShape {
        AttentionShape {
            num_heads: heads,
            num_kv_heads: kv,
            head_dim: hd,
            window,
        }
    }

    #[test]
    fn single_position_returns_its_value() {
        let s = shape(2, 2, 2, None);
        let q = vec![1.0, 0.0, 0.0, 1.0];
        let keys = vec![0.5, 0.5, 0.5, 0.5];
        let values = vec![1.0, 2.0, 3.0, 4.0];
        let out = attend_one(&q, &keys, &values, 1, &s);
        // One position → softmax weight 1 → output = its value.
        assert_eq!(out, values);
    }

    #[test]
    fn attends_to_matching_key() {
        let s = shape(1, 1, 2, None);
        let q = vec![10.0, 0.0];
        // Position 0 key aligned with q, position 1 orthogonal.
        let keys = vec![1.0, 0.0, 0.0, 1.0];
        let values = vec![5.0, 5.0, -5.0, -5.0];
        let out = attend_one(&q, &keys, &values, 2, &s);
        assert!(out[0] > 4.5, "should focus on position 0: {out:?}");
    }

    #[test]
    fn gqa_shares_kv_heads() {
        // 4 query heads, 2 KV heads: heads 0-1 use kv0, heads 2-3 use kv1.
        let s = shape(4, 2, 1, None);
        let q = vec![1.0; 4];
        let keys = vec![1.0, 1.0]; // one token, kv_dim=2
        let values = vec![7.0, 9.0];
        let out = attend_one(&q, &keys, &values, 1, &s);
        assert_eq!(out, vec![7.0, 7.0, 9.0, 9.0]);
    }

    #[test]
    fn sliding_window_ignores_old_tokens() {
        let s = shape(1, 1, 1, Some(2));
        let q = vec![1.0];
        // Three tokens; the first has a huge value but falls outside the
        // window of 2.
        let keys = vec![5.0, 1.0, 1.0];
        let values = vec![1000.0, 1.0, 2.0];
        let out = attend_one(&q, &keys, &values, 3, &s);
        assert!(out[0] < 3.0, "window must exclude token 0: {out:?}");
    }

    #[test]
    fn uniform_keys_average_values() {
        let s = shape(1, 1, 1, None);
        let q = vec![0.0]; // zero query → uniform scores
        let keys = vec![1.0, 2.0, 3.0, 4.0];
        let values = vec![1.0, 2.0, 3.0, 4.0];
        let out = attend_one(&q, &keys, &values, 4, &s);
        assert!((out[0] - 2.5).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "query width mismatch")]
    fn validates_query_width() {
        let s = shape(2, 2, 4, None);
        attend_one(&[0.0; 4], &[0.0; 8], &[0.0; 8], 1, &s);
    }

    /// The per-KV-head shard must be bit-identical to the corresponding
    /// slice of the whole-token attention — the invariant that lets the
    /// parallel forward pass fan groups out across threads.
    #[test]
    fn kv_group_shards_tile_attend_one_bitwise() {
        // GQA shape with awkward values: 4 query heads over 2 KV heads.
        let s = shape(4, 2, 3, Some(5));
        let seq_len = 7;
        let q: Vec<f32> = (0..s.q_dim())
            .map(|i| ((i * 37 + 11) % 23) as f32 / 5.0 - 2.1)
            .collect();
        let keys: Vec<f32> = (0..seq_len * s.kv_dim())
            .map(|i| ((i * 53 + 3) % 31) as f32 / 7.0 - 1.9)
            .collect();
        let values: Vec<f32> = (0..seq_len * s.kv_dim())
            .map(|i| ((i * 29 + 17) % 41) as f32 / 9.0 - 2.3)
            .collect();
        let whole = attend_one(&q, &keys, &values, seq_len, &s);
        let gw = s.group_size() * s.head_dim;
        for kvh in 0..s.num_kv_heads {
            let part = attend_kv_group(&q, &keys, &values, seq_len, &s, kvh);
            let wb: Vec<u32> = whole[kvh * gw..(kvh + 1) * gw]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let pb: Vec<u32> = part.iter().map(|v| v.to_bits()).collect();
            assert_eq!(wb, pb, "kv head {kvh} diverged");
        }
    }

    /// `attend_one_into` with reused (dirty) buffers must reproduce
    /// `attend_one` bit-for-bit.
    #[test]
    fn into_variant_matches_allocating_variant_bitwise() {
        let s = shape(4, 2, 3, Some(5));
        let seq_len = 7;
        let q: Vec<f32> = (0..s.q_dim()).map(|i| (i as f32) * 0.3 - 1.7).collect();
        let keys: Vec<f32> = (0..seq_len * s.kv_dim())
            .map(|i| ((i * 53 + 3) % 31) as f32 / 7.0 - 1.9)
            .collect();
        let values: Vec<f32> = (0..seq_len * s.kv_dim())
            .map(|i| ((i * 29 + 17) % 41) as f32 / 9.0 - 2.3)
            .collect();
        let fresh = attend_one(&q, &keys, &values, seq_len, &s);
        let mut scratch = AttentionScratch::default();
        let mut out = vec![42.0; 99]; // deliberately dirty and wrong-sized
        scratch.scores.resize(33, 7.0);
        for _ in 0..2 {
            attend_one_into(&q, &keys, &values, seq_len, &s, &mut scratch, &mut out);
            let fb: Vec<u32> = fresh.iter().map(|v| v.to_bits()).collect();
            let ob: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, ob);
        }
    }

    // ------------------------------------------------------------------
    // Fused-kernel tests: quantize real rows through the Oaken pipeline
    // and compare quantized-domain attention against the exact kernels
    // over the dequantized views.
    // ------------------------------------------------------------------

    use oaken_core::{KvKind, OakenConfig, OakenQuantizer, OfflineProfiler};

    fn kv_row(d: usize, seed: u64) -> Vec<f32> {
        (0..d)
            .map(|i| {
                let u = ((i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed.wrapping_mul(0xD1B54A32D192ED03))
                    >> 33) as f32
                    / (1u64 << 31) as f32;
                let base = (u - 0.5) * 4.0;
                match i % 37 {
                    0 => base * 8.0,
                    1 => base * 0.02,
                    _ => base,
                }
            })
            .collect()
    }

    fn oaken(d: usize) -> OakenQuantizer {
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), 1);
        for s in 0..48 {
            for kind in KvKind::ALL {
                p.observe(0, kind, &kv_row(d.max(256), s * 11 + 5));
            }
        }
        OakenQuantizer::new(config, p.try_finish().unwrap())
    }

    /// Quantizes `seq_len` rows, returning the encoded rows and the exact
    /// dequantized view for one kind.
    fn encode_rows(
        q: &OakenQuantizer,
        kind: KvKind,
        seq_len: usize,
        kv_dim: usize,
        seed: u64,
    ) -> (Vec<FusedVector>, Vec<f32>) {
        let mut rows = Vec::new();
        let mut view = Vec::new();
        for t in 0..seq_len {
            let x = kv_row(kv_dim, seed + t as u64 * 131);
            let fv = q.quantize_vector(&x, 0, kind).unwrap();
            view.extend_from_slice(&q.dequantize_vector(&fv, 0, kind).unwrap());
            rows.push(fv);
        }
        (rows, view)
    }

    fn max_rel_err(a: &[f32], b: &[f32]) -> f32 {
        let range = a.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-6);
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs() / range)
            .fold(0.0f32, f32::max)
    }

    #[test]
    fn fused_attention_close_to_exact_over_decoded_views() {
        // GQA + window + odd head_dim to exercise the unaligned column
        // paths of the dense nibble walk.
        for (heads, kv, hd, window) in [(4, 2, 16, None), (6, 3, 5, Some(9)), (2, 2, 32, Some(4))] {
            let s = shape(heads, kv, hd, window);
            let quant = oaken(s.kv_dim());
            let kp = quant.fused_read_params(0, KvKind::Key).unwrap();
            let vp = quant.fused_read_params(0, KvKind::Value).unwrap();
            let seq_len = 13;
            let (krows, kview) = encode_rows(&quant, KvKind::Key, seq_len, s.kv_dim(), 1);
            let (vrows, vview) = encode_rows(&quant, KvKind::Value, seq_len, s.kv_dim(), 2);
            let q: Vec<f32> = kv_row(s.q_dim(), 977);
            let exact = attend_one(&q, &kview, &vview, seq_len, &s);
            let fused = attend_one_fused(
                &q,
                &EncodedKv {
                    rows: &krows,
                    params: kp,
                    plan: None,
                },
                &EncodedKv {
                    rows: &vrows,
                    params: vp,
                    plan: None,
                },
                seq_len,
                &s,
            );
            let err = max_rel_err(&exact, &fused);
            assert!(
                err <= 5e-4,
                "fused diverged from exact: rel err {err} at shape {s:?}"
            );
        }
    }

    /// The fused per-KV-head shard must tile `attend_one_fused` bitwise,
    /// mirroring the exact-path invariant the parallel forward relies on.
    #[test]
    fn fused_group_shards_tile_fused_attend_one_bitwise() {
        let s = shape(4, 2, 6, Some(5));
        let quant = oaken(s.kv_dim());
        let kp = quant.fused_read_params(0, KvKind::Key).unwrap();
        let vp = quant.fused_read_params(0, KvKind::Value).unwrap();
        let seq_len = 7;
        let (krows, _) = encode_rows(&quant, KvKind::Key, seq_len, s.kv_dim(), 5);
        let (vrows, _) = encode_rows(&quant, KvKind::Value, seq_len, s.kv_dim(), 6);
        let keys = EncodedKv {
            rows: &krows,
            params: kp,
            plan: None,
        };
        let values = EncodedKv {
            rows: &vrows,
            params: vp,
            plan: None,
        };
        let q: Vec<f32> = kv_row(s.q_dim(), 311);
        let whole = attend_one_fused(&q, &keys, &values, seq_len, &s);
        let gw = s.group_size() * s.head_dim;
        for kvh in 0..s.num_kv_heads {
            let part = attend_kv_group_fused(&q, &keys, &values, seq_len, &s, kvh);
            let wb: Vec<u32> = whole[kvh * gw..(kvh + 1) * gw]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let pb: Vec<u32> = part.iter().map(|v| v.to_bits()).collect();
            assert_eq!(wb, pb, "fused kv head {kvh} diverged");
        }
    }

    #[test]
    fn fused_sliding_window_ignores_old_tokens() {
        let s = shape(1, 1, 8, Some(2));
        let quant = oaken(s.kv_dim());
        let kp = quant.fused_read_params(0, KvKind::Key).unwrap();
        let vp = quant.fused_read_params(0, KvKind::Value).unwrap();
        let seq_len = 6;
        let (krows, kview) = encode_rows(&quant, KvKind::Key, seq_len, s.kv_dim(), 21);
        let (vrows, vview) = encode_rows(&quant, KvKind::Value, seq_len, s.kv_dim(), 22);
        let q: Vec<f32> = kv_row(s.q_dim(), 555);
        let exact = attend_one(&q, &kview, &vview, seq_len, &s);
        let fused = attend_one_fused(
            &q,
            &EncodedKv {
                rows: &krows,
                params: kp,
                plan: None,
            },
            &EncodedKv {
                rows: &vrows,
                params: vp,
                plan: None,
            },
            seq_len,
            &s,
        );
        assert!(max_rel_err(&exact, &fused) <= 5e-4);
    }

    /// With the `simd` feature on, the SSE2 dense lanes must stay within a
    /// few ULP of the scalar reference, including odd starting columns.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn simd_dense_lanes_match_scalar_reference() {
        let kv_dim = 33; // odd width → odd columns for kv_head 1 when hd=11
        let quant = oaken(kv_dim);
        let kp = quant.fused_read_params(0, KvKind::Key).unwrap();
        for seed in 0..8u64 {
            let x = kv_row(kv_dim, seed * 17 + 3);
            let fv = quant.quantize_vector(&x, 0, KvKind::Key).unwrap();
            let dec = RowDecode::for_row(&fv, &kp);
            for (col, width) in [(0usize, 16usize), (11, 11), (3, 7), (32, 1), (5, 0)] {
                let qv = kv_row(width, seed + 900 + col as u64);
                let simd_dot = simd::dense_dot(&qv, fv.dense_bytes(), col, &dec);
                let scalar_dot = dense_dot_scalar(&qv, fv.dense_bytes(), col, &dec);
                assert!(
                    (simd_dot - scalar_dot).abs() <= scalar_dot.abs().max(1.0) * 1e-5,
                    "dot diverged at col {col}: simd {simd_dot} scalar {scalar_dot}"
                );
                let mut a = vec![0.5f32; width];
                let mut b = a.clone();
                simd::dense_axpy(0.37, fv.dense_bytes(), col, &dec, &mut a);
                dense_axpy_scalar(0.37, fv.dense_bytes(), col, &dec, &mut b);
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() <= 1e-6, "axpy diverged: {x} vs {y}");
                }
            }
        }
    }
}

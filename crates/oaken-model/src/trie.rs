//! The prefix trie behind [`crate::PagedKvPool`]'s cross-sequence KV
//! sharing.
//!
//! Oaken quantizes every KV row against *offline*-profiled thresholds, so a
//! row's encoded bytes are a pure function of the row itself
//! ([`KvQuantizer::prefix_deterministic`](oaken_core::KvQuantizer::prefix_deterministic)).
//! Identical prompt prefixes therefore produce bit-identical dense+COO page
//! payloads, and the pool can store each distinct prefix **once** and let
//! every sequence that starts with it reference the same pages — the
//! vLLM-style prefix-cache lever, but over quantized page streams.
//!
//! The unit of sharing is a **block**: `block_tokens` consecutive prompt
//! tokens whose K/V rows (all layers, both kinds) have been fully written
//! and *sealed* into immutable page streams. Blocks form a trie keyed by
//! token content: a node's children are the distinct next-blocks observed
//! after it. Each block is reference-counted — one count per sequence
//! currently built on it — and its MMU pages carry matching per-page
//! references, so a block's storage survives exactly as long as some
//! sequence needs it and the pool's page accounting stays exact.
//!
//! Sequences always hold *paths* (a block is adopted only together with all
//! its ancestors) and always release leaf-first, which keeps the structural
//! invariant simple: a node with zero references has no children and is
//! removed immediately.

use oaken_core::FusedVector;
use std::collections::HashMap;

/// Cumulative prefix-cache counters of one [`crate::PagedKvPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// Blocks adopted from the trie at allocation time (alloc-time hits:
    /// both the quantization *and* the model forward pass for those tokens
    /// are skipped).
    pub trie_hits: u64,
    /// Pending blocks merged into an existing identical block at seal time
    /// (late dedup between sequences prefilling the same prompt
    /// concurrently: storage is deduplicated, compute was not).
    pub seal_dedups: u64,
    /// Prompt tokens satisfied from the trie at allocation (cumulative).
    pub tokens_reused: u64,
    /// Per-row quantizations skipped thanks to alloc-time hits
    /// (`tokens_reused × layers × 2` kinds).
    pub quant_rows_skipped: u64,
    /// Encoded payload bytes that were *not* re-stored because an
    /// identical block already existed (alloc-time hits + seal dedups).
    pub bytes_deduplicated: u64,
}

/// One sealed, immutable, reference-counted block of `block_tokens` prompt
/// tokens: the trie node.
pub(crate) struct TrieBlock {
    /// The block's token content (the trie edge label leading to it).
    pub tokens: Box<[u32]>,
    /// Parent node, `None` for first-block roots.
    parent: Option<usize>,
    /// Children keyed by their token content.
    children: HashMap<Box<[u32]>, usize>,
    /// Sequences currently built on this block.
    pub refcount: u32,
    /// MMU request id owning the block's page streams.
    pub mmu: u32,
    /// Physical pages the block's streams occupy.
    pub pages: u32,
    /// Encoded payload bytes stored in those pages (dedup accounting).
    pub bytes: u64,
    /// Dequantized rows per layer, `[keys, values]`, each
    /// `[block_tokens × kv_dim]` — what an adopting sequence copies into
    /// its attention view. Empty in a fused-kernel pool, where blocks hold
    /// only [`TrieBlock::encoded`] and no f32 image is ever materialized.
    pub views: Vec<[Vec<f32>; 2]>,
    /// Encoded rows per layer, `[keys, values]`, each `block_tokens` fused
    /// vectors — what an adopting sequence feeds into its streams'
    /// encoded state under [`crate::KernelMode::Fused`]. Empty in an
    /// exact-kernel pool.
    pub encoded: Vec<[Vec<FusedVector>; 2]>,
}

impl TrieBlock {
    /// A freshly sealed block with a single reference (the sealer).
    pub fn new(
        tokens: Box<[u32]>,
        mmu: u32,
        pages: u32,
        bytes: u64,
        views: Vec<[Vec<f32>; 2]>,
    ) -> Self {
        Self {
            tokens,
            parent: None,
            children: HashMap::new(),
            refcount: 1,
            mmu,
            pages,
            bytes,
            views,
            encoded: Vec::new(),
        }
    }
}

/// The trie of sealed blocks. Node ids are slab indices, stable for a
/// block's lifetime.
#[derive(Default)]
pub(crate) struct PrefixTrie {
    nodes: Vec<Option<TrieBlock>>,
    free: Vec<usize>,
    roots: HashMap<Box<[u32]>, usize>,
    /// Total pages held by live blocks.
    pages: u32,
    /// Live block count.
    len: usize,
}

impl PrefixTrie {
    /// The child of `parent` (or root for `None`) whose content is
    /// exactly `chunk`.
    pub fn child(&self, parent: Option<usize>, chunk: &[u32]) -> Option<usize> {
        match parent {
            None => self.roots.get(chunk).copied(),
            Some(p) => self.get(p).children.get(chunk).copied(),
        }
    }

    /// Borrow a live block.
    ///
    /// # Panics
    ///
    /// Panics on a stale id.
    pub fn get(&self, id: usize) -> &TrieBlock {
        self.nodes[id].as_ref().expect("live trie block")
    }

    /// Inserts a sealed block under `parent`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if an identical child already exists (callers must check
    /// [`child`](Self::child) first and adopt instead).
    pub fn insert(&mut self, parent: Option<usize>, mut block: TrieBlock) -> usize {
        block.parent = parent;
        let tokens = block.tokens.clone();
        let id = match self.free.pop() {
            Some(id) => {
                self.nodes[id] = Some(block);
                id
            }
            None => {
                self.nodes.push(Some(block));
                self.nodes.len() - 1
            }
        };
        let displaced = match parent {
            None => self.roots.insert(tokens, id),
            Some(p) => self.nodes[p]
                .as_mut()
                .expect("live parent")
                .children
                .insert(tokens, id),
        };
        assert!(displaced.is_none(), "duplicate block sealed into the trie");
        self.pages += self.get(id).pages;
        self.len += 1;
        id
    }

    /// One more sequence built on `id`.
    pub fn retain(&mut self, id: usize) {
        self.nodes[id].as_mut().expect("live trie block").refcount += 1;
    }

    /// One sequence done with `id`. When the last reference goes the node
    /// is unlinked and returned so the caller can free its MMU pages.
    ///
    /// Sequences release their blocks leaf-first, so a node reaching zero
    /// references never has live children.
    pub fn release(&mut self, id: usize) -> Option<TrieBlock> {
        let node = self.nodes[id].as_mut().expect("live trie block");
        node.refcount -= 1;
        if node.refcount > 0 {
            return None;
        }
        let block = self.nodes[id].take().expect("checked live above");
        assert!(
            block.children.is_empty(),
            "released block still has children — blocks must be released leaf-first"
        );
        match block.parent {
            None => self.roots.remove(&block.tokens),
            Some(p) => self.nodes[p]
                .as_mut()
                .expect("parent outlives child")
                .children
                .remove(&block.tokens),
        };
        self.free.push(id);
        self.pages -= block.pages;
        self.len -= 1;
        Some(block)
    }

    /// Total pages held by live blocks — the "shared" side of the pool's
    /// page accounting.
    pub fn total_pages(&self) -> u32 {
        self.pages
    }

    /// Live blocks in the trie.
    pub fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(tokens: &[u32], mmu: u32, pages: u32) -> TrieBlock {
        TrieBlock::new(tokens.into(), mmu, pages, 64, Vec::new())
    }

    #[test]
    fn paths_share_and_release_leaf_first() {
        let mut t = PrefixTrie::default();
        let a = t.insert(None, block(&[1, 2], 100, 3));
        let b = t.insert(Some(a), block(&[3, 4], 101, 2));
        assert_eq!(t.child(None, &[1, 2]), Some(a));
        assert_eq!(t.child(Some(a), &[3, 4]), Some(b));
        assert_eq!(t.child(Some(a), &[9, 9]), None);
        assert_eq!(t.total_pages(), 5);
        assert_eq!(t.len(), 2);

        // A second sequence adopts the whole path.
        t.retain(a);
        t.retain(b);
        // First sequence departs leaf-first: nothing freed.
        assert!(t.release(b).is_none());
        assert!(t.release(a).is_none());
        assert_eq!(t.len(), 2);
        // Last sequence departs: leaf then root free.
        let freed_b = t.release(b).expect("leaf freed");
        assert_eq!(freed_b.mmu, 101);
        let freed_a = t.release(a).expect("root freed");
        assert_eq!(freed_a.mmu, 100);
        assert_eq!(t.total_pages(), 0);
        assert_eq!(t.len(), 0);
        assert_eq!(t.child(None, &[1, 2]), None);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut t = PrefixTrie::default();
        let a = t.insert(None, block(&[1], 1, 1));
        t.release(a).expect("freed");
        let b = t.insert(None, block(&[2], 2, 1));
        assert_eq!(a, b, "freed slot is reused");
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn duplicate_children_are_rejected() {
        let mut t = PrefixTrie::default();
        t.insert(None, block(&[7], 1, 1));
        t.insert(None, block(&[7], 2, 1));
    }
}

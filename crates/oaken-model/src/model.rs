//! The decoder-only transformer: synthetic construction, and token-by-token
//! inference sessions with pluggable KV cache backends and KV observation
//! hooks for offline profiling.

use crate::attention::{
    attend_kv_group, attend_kv_group_fused, attend_one_fused_into, attend_one_into,
    AttentionScratch, AttentionShape, EncodedKv,
};
use crate::cache::{BatchAppend, BatchKvCache, KernelMode, KvCacheBackend, SingleSlot};
use crate::config::{ModelConfig, Positional};
use crate::ffn::{DenseFfn, FfnWeights};
use crate::synth::{self, SynthParams};
use oaken_core::kernel::{EncodedReadPlan, FusedReadParams};
use oaken_core::{FusedVector, KvKind};
use oaken_runtime::Runtime;
use oaken_tensor::norm::{layernorm, rmsnorm, NormKind};
use oaken_tensor::rope::{apply_rope, DEFAULT_THETA};
use oaken_tensor::Tensor;
use std::collections::HashMap;

/// Weights of one decoder layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Query projection `[d × d]`.
    pub wq: Tensor,
    /// Key projection `[kv_dim × d]`.
    pub wk: Tensor,
    /// Value projection `[kv_dim × d]`.
    pub wv: Tensor,
    /// Output projection `[d × d]`.
    pub wo: Tensor,
    /// Pre-attention norm gain.
    pub attn_norm_w: Vec<f32>,
    /// Pre-attention norm bias (LayerNorm models).
    pub attn_norm_b: Option<Vec<f32>>,
    /// Pre-FFN norm gain.
    pub ffn_norm_w: Vec<f32>,
    /// Pre-FFN norm bias (LayerNorm models).
    pub ffn_norm_b: Option<Vec<f32>>,
    /// Feed-forward weights.
    pub ffn: FfnWeights,
}

/// A complete decoder-only transformer with synthetic weights.
#[derive(Debug, Clone)]
pub struct Model {
    config: ModelConfig,
    embed: Tensor,
    pos_embed: Option<Tensor>,
    layers: Vec<LayerWeights>,
    final_norm_w: Vec<f32>,
    final_norm_b: Option<Vec<f32>>,
    lm_head: Tensor,
}

impl Model {
    /// Builds a model with synthetic weights from `seed`, using the default
    /// [`SynthParams`] calibrated to the paper's KV-distribution
    /// observations.
    pub fn synthetic(config: ModelConfig, seed: u64) -> Self {
        Self::synthetic_with(config, seed, &SynthParams::default())
    }

    /// Builds a model with explicit synthesis parameters.
    pub fn synthetic_with(config: ModelConfig, seed: u64, params: &SynthParams) -> Self {
        let d = config.d_model;
        let kv_dim = config.kv_dim();
        let mut stream = 0u64;
        fn next(seed: u64, stream: &mut u64, rows: usize, cols: usize, scale: f32) -> Tensor {
            *stream += 1;
            synth::dense(&mut synth::stream_rng(seed, *stream), rows, cols, scale)
        }

        let embed = synth::embedding(&mut synth::stream_rng(seed, 9_000), config.vocab_size, d);
        let pos_embed = match config.positional {
            Positional::Learned => Some(synth::dense(
                &mut synth::stream_rng(seed, 9_001),
                config.max_seq_len,
                d,
                0.3,
            )),
            Positional::Rope => None,
        };

        let mut layers = Vec::with_capacity(config.num_layers);
        for l in 0..config.num_layers {
            let scale = synth::layer_scale(l, config.num_layers);
            stream += 1;
            let wk = synth::kv_projection(
                &mut synth::stream_rng(seed, stream),
                kv_dim,
                d,
                scale,
                params,
            );
            stream += 1;
            let value_params = SynthParams {
                outlier_gain: (params.outlier_gain.0 * 0.6, params.outlier_gain.1 * 0.6),
                ..*params
            };
            let wv = synth::kv_projection(
                &mut synth::stream_rng(seed, stream),
                kv_dim,
                d,
                scale * 0.8,
                &value_params,
            );
            let bias = |dim: usize| match config.norm {
                NormKind::Layer => Some(vec![0.0f32; dim]),
                NormKind::Rms => None,
            };
            let ffn = Self::build_ffn(&config, seed, &mut stream);
            layers.push(LayerWeights {
                wq: next(seed, &mut stream, d, d, 1.0),
                wk,
                wv,
                wo: next(seed, &mut stream, d, d, 1.0),
                attn_norm_w: vec![1.0; d],
                attn_norm_b: bias(d),
                ffn_norm_w: vec![1.0; d],
                ffn_norm_b: bias(d),
                ffn,
            });
        }

        let final_norm_b = match config.norm {
            NormKind::Layer => Some(vec![0.0f32; d]),
            NormKind::Rms => None,
        };
        // Slightly sharpened LM head so synthetic generations are
        // predictable enough for perplexity to be a sensitive metric.
        let lm_head = next(seed, &mut stream, config.vocab_size, d, 2.0);
        Self {
            final_norm_w: vec![1.0; d],
            final_norm_b,
            embed,
            pos_embed,
            layers,
            lm_head,
            config,
        }
    }

    fn build_ffn(config: &ModelConfig, seed: u64, stream: &mut u64) -> FfnWeights {
        let d = config.d_model;
        let f = config.ffn_hidden;
        let mut next = |rows: usize, cols: usize| {
            *stream += 1;
            synth::dense(&mut synth::stream_rng(seed, *stream), rows, cols, 1.0)
        };
        let mut dense_ffn = |gated: bool| DenseFfn {
            w_gate: gated.then(|| next(f, d)),
            w_up: next(f, d),
            w_down: next(d, f),
        };
        match config.moe {
            None => FfnWeights::Dense(dense_ffn(config.gated_ffn())),
            Some(moe) => {
                let experts = (0..moe.num_experts)
                    .map(|_| dense_ffn(config.gated_ffn()))
                    .collect();
                FfnWeights::Moe {
                    router: next(moe.num_experts, d),
                    experts,
                    top_k: moe.top_k,
                }
            }
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Per-layer weights (read-only).
    pub fn layers(&self) -> &[LayerWeights] {
        &self.layers
    }

    /// Starts an inference session over the given cache backend.
    pub fn session<'m>(&'m self, mut cache: Box<dyn KvCacheBackend + 'm>) -> Session<'m> {
        cache.reset(self.config.num_layers, self.config.kv_dim());
        Session {
            model: self,
            cache,
            pos: 0,
            observer: None,
        }
    }

    /// Token embedding matrix (read-only; the ranked forward pass
    /// replicates the embedding lookup on every rank).
    pub(crate) fn embed(&self) -> &Tensor {
        &self.embed
    }

    /// Learned positional embedding, when the model uses one.
    pub(crate) fn pos_embed(&self) -> Option<&Tensor> {
        self.pos_embed.as_ref()
    }

    /// Final-norm gain and bias.
    pub(crate) fn final_norm(&self) -> (&[f32], Option<&Vec<f32>>) {
        (&self.final_norm_w, self.final_norm_b.as_ref())
    }

    /// LM head `[vocab × d]` (read-only; ranks shard its rows).
    pub(crate) fn lm_head(&self) -> &Tensor {
        &self.lm_head
    }

    pub(crate) fn norm(&self, x: &[f32], w: &[f32], b: Option<&Vec<f32>>) -> Vec<f32> {
        match self.config.norm {
            NormKind::Rms => rmsnorm(x, w, 1e-5),
            NormKind::Layer => layernorm(x, w, b.map(|v| v.as_slice()).unwrap_or(&[]), 1e-5),
        }
    }

    /// Advances a *batch* of sequence steps and returns the next-token
    /// logits per step, in step order.
    ///
    /// This is the serving engine's iteration primitive: each step names a
    /// batch `slot` of `cache`, the sequence's current position, and the
    /// token to feed. Execution is **layer-major** — all steps pass
    /// through decoder layer `l` before any touches layer `l+1` — so each
    /// layer's weight matrices are streamed from memory once per iteration
    /// and reused across the whole batch, the locality that makes batched
    /// decode profitable (and the software analogue of §5.3's token-level
    /// scheduling, where one core's weight fetch serves many requests).
    ///
    /// A slot may appear in **multiple steps** with consecutive positions
    /// — a *prompt chunk* (Sarathi-style chunked prefill). Within a layer,
    /// steps execute in order, each appending its K/V rows before
    /// attending, so step `j` of a chunk sees the rows of steps `i < j`:
    /// causal attention over the chunk is exactly the arithmetic of
    /// feeding the same tokens one iteration at a time, and the logits of
    /// every step are bit-identical to the token-by-token schedule
    /// (enforced by `chunked_prefill_matches_single_steps_bitwise`).
    ///
    /// Per-sequence arithmetic is *identical* to the single-sequence path:
    /// sequences never mix activations, so a batch of one is bit-exact
    /// with [`Session::advance`], and any interleaving of sequences across
    /// iterations leaves each sequence's logits unchanged (enforced by the
    /// engine's property tests).
    ///
    /// `observer` (if any) sees every freshly generated K/V vector as
    /// `(step_index, layer, kind, vector)`.
    ///
    /// Runs serially; [`Model::forward_batch_on`] is the same pass with
    /// its work sharded across a [`Runtime`].
    ///
    /// # Panics
    ///
    /// Panics if any step's token is outside the vocabulary or its
    /// position exceeds `max_seq_len`; debug builds additionally check
    /// that a slot's steps have strictly consecutive positions.
    pub fn forward_batch(
        &self,
        cache: &mut dyn BatchKvCache,
        steps: &[BatchStep],
        observer: Option<&mut BatchKvObserver<'_>>,
    ) -> Vec<Vec<f32>> {
        self.forward_batch_on(&Runtime::serial(), cache, steps, observer)
    }

    /// [`Model::forward_batch`] with the iteration's work sharded across
    /// `rt` — the parallel serving path, bit-exact with the serial pass
    /// for every thread count (`rt = Runtime::serial()` *is* the serial
    /// pass).
    ///
    /// Three shard axes, mirroring the paper's many parallel engines:
    ///
    /// * **weight sweeps** — every projection (Q/K/V/O, FFN, LM head)
    ///   runs through the row-sharded [`Tensor::matvec_batch_on`], whose
    ///   accumulation chains are row-local;
    /// * **quantize + append** — when the cache's views are append-only
    ///   ([`BatchKvCache::append_only_views`]), the iteration's K/V rows
    ///   are appended through [`BatchKvCache::append_batch`], which the
    ///   paged pool shards per sequence (each slot's row streams are
    ///   independent) while keeping page allocation single-writer;
    /// * **attention** — one task per `(step, KV head)` over per-slot
    ///   snapshots, each sliced to the step's own causal length; group
    ///   outputs merge in `(step, head)` order ([`attend_kv_group`], or
    ///   [`attend_kv_group_fused`] over *encoded* snapshots when the
    ///   cache serves [`KernelMode::Fused`] tensors — no dequantized f32
    ///   image is materialized anywhere on that path).
    ///
    /// When the cache's views are *not* append-only (the KIVI/KVQuant
    /// recompute fallback re-derives scales over the whole prefix on
    /// read) or an observer is attached, attention and appends keep the
    /// serial per-step interleaving — only the weight sweeps shard.
    ///
    /// # Panics
    ///
    /// Same contract as [`Model::forward_batch`].
    pub fn forward_batch_on(
        &self,
        rt: &Runtime,
        cache: &mut dyn BatchKvCache,
        steps: &[BatchStep],
        mut observer: Option<&mut BatchKvObserver<'_>>,
    ) -> Vec<Vec<f32>> {
        let cfg = &self.config;
        for s in steps {
            assert!(
                (s.token as usize) < cfg.vocab_size,
                "token {} outside vocabulary {}",
                s.token,
                cfg.vocab_size
            );
            assert!(
                s.pos < cfg.max_seq_len,
                "sequence exceeds max_seq_len {}",
                cfg.max_seq_len
            );
        }
        #[cfg(debug_assertions)]
        {
            let mut last: HashMap<usize, usize> = HashMap::new();
            for s in steps {
                if let Some(prev) = last.insert(s.slot, s.pos) {
                    debug_assert_eq!(
                        s.pos,
                        prev + 1,
                        "slot {}: chunked steps must have consecutive positions",
                        s.slot
                    );
                }
            }
        }
        // Append-then-attend batching is only bit-exact when appends never
        // rewrite materialized view rows; the observer callback is `FnMut`
        // and must fire in step order, so it also forces the serial path.
        let parallel_attention = !rt.is_serial() && observer.is_none() && cache.append_only_views();
        let d = cfg.d_model;
        let hd = cfg.head_dim();
        let shape = AttentionShape {
            num_heads: cfg.num_heads,
            num_kv_heads: cfg.num_kv_heads,
            head_dim: hd,
            window: cfg.sliding_window,
        };

        let mut xs: Vec<Vec<f32>> = steps
            .iter()
            .map(|s| {
                let mut x = self.embed.row(s.token as usize).to_vec();
                if let Some(pe) = &self.pos_embed {
                    for (xi, pi) in x.iter_mut().zip(pe.row(s.pos)) {
                        *xi += pi;
                    }
                }
                x
            })
            .collect();

        fn as_refs(vs: &[Vec<f32>]) -> Vec<&[f32]> {
            vs.iter().map(|v| v.as_slice()).collect()
        }

        // One scratch for every (step, layer) of the serial attention path:
        // scores and fused decode tables reach steady-state capacity after
        // the first step and never allocate again.
        let mut scratch = AttentionScratch::default();

        for (l, lw) in self.layers.iter().enumerate() {
            // Attention block: one weight sweep per projection serves the
            // whole batch (matvec_batch, row-sharded on `rt`), everything
            // per-sequence stays per-sequence.
            let hs: Vec<Vec<f32>> = xs
                .iter()
                .map(|x| self.norm(x, &lw.attn_norm_w, lw.attn_norm_b.as_ref()))
                .collect();
            let href = as_refs(&hs);
            let mut qs = lw.wq.matvec_batch_on(rt, &href).expect("Wq shape");
            let mut ks = lw.wk.matvec_batch_on(rt, &href).expect("Wk shape");
            let vs = lw.wv.matvec_batch_on(rt, &href).expect("Wv shape");
            let atts: Vec<Vec<f32>> = if parallel_attention {
                self.attend_layer_parallel(rt, cache, steps, l, &mut qs, &mut ks, &vs, &shape)
            } else {
                let mut atts = Vec::with_capacity(steps.len());
                for (i, step) in steps.iter().enumerate() {
                    let (q, k, v) = (&mut qs[i], &mut ks[i], &vs[i]);
                    if cfg.positional == Positional::Rope {
                        for head in q.chunks_mut(hd) {
                            apply_rope(head, step.pos, DEFAULT_THETA);
                        }
                        for head in k.chunks_mut(hd) {
                            apply_rope(head, step.pos, DEFAULT_THETA);
                        }
                    }
                    if let Some(obs) = observer.as_deref_mut() {
                        obs(i, l, KvKind::Key, k);
                        obs(i, l, KvKind::Value, v);
                    }
                    cache.append(step.slot, l, k, v);
                    let seq_len = cache.seq_len(step.slot, l);
                    let mut att = Vec::new();
                    // Probe-then-reborrow: the scrutinee of a single
                    // `match cache.encoded_kv(..)` would hold its borrow
                    // across the arm that needs `cache` mutably.
                    if cache.has_encoded_kv(step.slot, l) {
                        let (ke, ve) = cache.encoded_kv(step.slot, l).expect("probed fused above");
                        attend_one_fused_into(q, &ke, &ve, seq_len, &shape, &mut scratch, &mut att);
                    } else {
                        let keys = cache.keys(step.slot, l).to_vec();
                        let values = cache.values(step.slot, l);
                        attend_one_into(q, &keys, values, seq_len, &shape, &mut scratch, &mut att);
                    }
                    atts.push(att);
                }
                atts
            };
            let attref = as_refs(&atts);
            let projs = lw.wo.matvec_batch_on(rt, &attref).expect("Wo shape");
            for (x, proj) in xs.iter_mut().zip(projs) {
                for (xi, pi) in x.iter_mut().zip(proj) {
                    *xi += pi;
                }
            }

            // FFN block.
            let hs: Vec<Vec<f32>> = xs
                .iter()
                .map(|x| self.norm(x, &lw.ffn_norm_w, lw.ffn_norm_b.as_ref()))
                .collect();
            let href = as_refs(&hs);
            let ys = lw.ffn.forward_batch_on(rt, &href, cfg.activation);
            for (x, y) in xs.iter_mut().zip(ys) {
                for (xi, yi) in x.iter_mut().zip(y) {
                    *xi += yi;
                }
            }
        }

        let hs: Vec<Vec<f32>> = xs
            .iter()
            .map(|x| {
                let h = self.norm(x, &self.final_norm_w, self.final_norm_b.as_ref());
                debug_assert_eq!(h.len(), d);
                h
            })
            .collect();
        let href = as_refs(&hs);
        self.lm_head
            .matvec_batch_on(rt, &href)
            .expect("LM head shape")
    }

    /// One layer's attention block on the parallel path: rope + batched
    /// append (quantization sharded per sequence by the cache), then one
    /// attention task per `(step, KV head)` against per-slot snapshots.
    ///
    /// Bit-exactness with the serial per-step interleaving rests on the
    /// cache's append-only-views guarantee: a step's snapshot sliced to
    /// its own causal length (`seq_len` recorded at its append) contains
    /// exactly the rows the serial path read after that step's append —
    /// later appends only extend the buffers.
    #[allow(clippy::too_many_arguments)]
    fn attend_layer_parallel(
        &self,
        rt: &Runtime,
        cache: &mut dyn BatchKvCache,
        steps: &[BatchStep],
        l: usize,
        qs: &mut [Vec<f32>],
        ks: &mut [Vec<f32>],
        vs: &[Vec<f32>],
        shape: &AttentionShape,
    ) -> Vec<Vec<f32>> {
        let cfg = &self.config;
        let hd = cfg.head_dim();
        let kv_dim = cfg.kv_dim();
        // Phase A (serial, step order): position rotation, then the whole
        // iteration's K/V rows in one batched append. Each step's causal
        // length is its base length plus its occurrence index within the
        // batch — the value the serial path reads right after its append.
        let mut seq_lens = vec![0usize; steps.len()];
        let mut grown: HashMap<usize, usize> = HashMap::new();
        for (i, step) in steps.iter().enumerate() {
            if cfg.positional == Positional::Rope {
                for head in qs[i].chunks_mut(hd) {
                    apply_rope(head, step.pos, DEFAULT_THETA);
                }
                for head in ks[i].chunks_mut(hd) {
                    apply_rope(head, step.pos, DEFAULT_THETA);
                }
            }
            let len = grown
                .entry(step.slot)
                .or_insert_with(|| cache.seq_len(step.slot, l));
            *len += 1;
            seq_lens[i] = *len;
        }
        let items: Vec<BatchAppend<'_>> = steps
            .iter()
            .enumerate()
            .map(|(i, step)| BatchAppend {
                slot: step.slot,
                k: &ks[i],
                v: &vs[i],
            })
            .collect();
        cache.append_batch(rt, l, &items);

        // Phase B (serial): one key/value snapshot per distinct slot; all
        // of a slot's steps slice the same buffers by their own lengths.
        // Fused slots snapshot their *encoded* rows — no f32 image of the
        // cache is materialized anywhere on this path.
        let mut slots: Vec<usize> = steps.iter().map(|s| s.slot).collect();
        slots.sort_unstable();
        slots.dedup();
        let snaps: HashMap<usize, KvSnapshot> = slots
            .into_iter()
            .map(|slot| {
                // Probe-then-reborrow, as on the serial path.
                let snap = if cache.has_encoded_kv(slot, l) {
                    let (ke, ve) = cache.encoded_kv(slot, l).expect("probed fused above");
                    KvSnapshot::Fused {
                        keys: ke.rows.to_vec(),
                        values: ve.rows.to_vec(),
                        key_params: ke.params,
                        value_params: ve.params,
                        key_plan: ke.plan.map(|p| Box::new(p.clone())),
                        value_plan: ve.plan.map(|p| Box::new(p.clone())),
                    }
                } else {
                    let keys = cache.keys(slot, l).to_vec();
                    let values = cache.values(slot, l).to_vec();
                    KvSnapshot::Exact { keys, values }
                };
                (slot, snap)
            })
            .collect();

        // Phase C (parallel): tasks over (step × KV head), merged in
        // (step, head) order.
        let nk = cfg.num_kv_heads.max(1);
        let group_width = shape.group_size().max(1) * hd;
        let groups = rt.map(steps.len() * nk, |t| {
            let (i, kvh) = (t / nk, t % nk);
            // Clamp to what the cache actually holds: a poisoned slot
            // (failed append, see `PoolBatchView`) has fewer rows than
            // the Phase-A prediction; on the fault-free path the two are
            // always equal, so the clamp is bit-exact there.
            match &snaps[&steps[i].slot] {
                KvSnapshot::Exact { keys, values } => {
                    let visible = (seq_lens[i] * kv_dim).min(keys.len());
                    attend_kv_group(
                        &qs[i],
                        &keys[..visible],
                        &values[..visible],
                        visible / kv_dim,
                        shape,
                        kvh,
                    )
                }
                KvSnapshot::Fused {
                    keys,
                    values,
                    key_params,
                    value_params,
                    key_plan,
                    value_plan,
                } => {
                    let visible = seq_lens[i].min(keys.len());
                    attend_kv_group_fused(
                        &qs[i],
                        &EncodedKv {
                            rows: keys,
                            params: *key_params,
                            plan: key_plan.as_deref(),
                        },
                        &EncodedKv {
                            rows: values,
                            params: *value_params,
                            plan: value_plan.as_deref(),
                        },
                        visible,
                        shape,
                        kvh,
                    )
                }
            }
        });
        (0..steps.len())
            .map(|i| {
                let mut out = vec![0.0f32; shape.q_dim()];
                for kvh in 0..nk {
                    out[kvh * group_width..(kvh + 1) * group_width]
                        .copy_from_slice(&groups[i * nk + kvh]);
                }
                out
            })
            .collect()
    }
}

/// One slot's per-layer KV snapshot on the parallel attention path: the
/// dequantized f32 views, or — in fused kernel mode — clones of the
/// encoded rows plus their decode parameters (never touching f32).
enum KvSnapshot {
    Exact {
        keys: Vec<f32>,
        values: Vec<f32>,
    },
    Fused {
        keys: Vec<FusedVector>,
        values: Vec<FusedVector>,
        key_params: FusedReadParams,
        value_params: FusedReadParams,
        // Boxed: the plan is three Vecs plus a stride, which would bloat
        // every Exact snapshot through the enum's size.
        key_plan: Option<Box<EncodedReadPlan>>,
        value_plan: Option<Box<EncodedReadPlan>>,
    },
}

/// Observer for batched forward passes: sees every freshly generated K/V
/// vector as `(step_index, layer, kind, vector)`.
pub type BatchKvObserver<'a> = dyn FnMut(usize, usize, KvKind, &[f32]) + 'a;

/// One sequence's step within a batched forward pass
/// ([`Model::forward_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStep {
    /// Batch slot in the `BatchKvCache`.
    pub slot: usize,
    /// The sequence's current position (tokens cached so far).
    pub pos: usize,
    /// Token to feed.
    pub token: u32,
}

/// Callback observing each freshly generated KV vector before caching:
/// `(layer, kind, vector)`. This is the hook the offline profiler and the
/// Figure 6 distribution probes attach to.
pub type KvObserver<'m> = Box<dyn FnMut(usize, KvKind, &[f32]) + 'm>;

/// A token-by-token inference session.
pub struct Session<'m> {
    model: &'m Model,
    cache: Box<dyn KvCacheBackend + 'm>,
    pos: usize,
    observer: Option<KvObserver<'m>>,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("model", &self.model.config().name)
            .field("pos", &self.pos)
            .finish()
    }
}

impl<'m> Session<'m> {
    /// Attaches a KV observer that sees every new K/V vector.
    pub fn set_kv_observer(&mut self, observer: KvObserver<'m>) {
        self.observer = Some(observer);
    }

    /// Current sequence position (tokens consumed so far).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Mean stored bits per KV element in the backing cache.
    pub fn cache_bits_per_elem(&self) -> f64 {
        self.cache.stored_bits_per_elem()
    }

    /// Selects the attention compute kernel for this session's cache
    /// backend and returns the mode actually installed —
    /// [`KernelMode::Exact`] for backends without a fused read path
    /// (requests are capability-gated, never errors). Must be called
    /// before the first token.
    ///
    /// # Panics
    ///
    /// Panics if any token has already been fed.
    pub fn set_kernel_mode(&mut self, kernel: KernelMode) -> KernelMode {
        assert_eq!(self.pos, 0, "kernel mode must be selected before any token");
        self.cache.set_kernel_mode(kernel)
    }

    /// The cache backend's installed kernel mode.
    pub fn kernel_mode(&self) -> KernelMode {
        self.cache.kernel_mode()
    }

    /// Feeds one token and returns the next-token logits.
    ///
    /// Runs as a batch of one on the shared [`Model::forward_batch`] pass,
    /// so the legacy single-sequence path and the batched serving engine
    /// execute identical arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary or the sequence exceeds
    /// `max_seq_len`.
    pub fn advance(&mut self, token: u32) -> Vec<f32> {
        let step = BatchStep {
            slot: 0,
            pos: self.pos,
            token,
        };
        let mut cache = SingleSlot(&mut *self.cache);
        let mut logits = match &mut self.observer {
            Some(obs) => self.model.forward_batch(
                &mut cache,
                &[step],
                Some(&mut |_slot, l, kind, v| obs(l, kind, v)),
            ),
            None => self.model.forward_batch(&mut cache, &[step], None),
        };
        self.pos += 1;
        logits.pop().expect("one step yields one logits vector")
    }

    /// Feeds a token sequence, returning the logits after the final token.
    ///
    /// # Panics
    ///
    /// Panics on an empty prompt.
    pub fn prefill(&mut self, tokens: &[u32]) -> Vec<f32> {
        assert!(!tokens.is_empty(), "prompt must not be empty");
        let mut logits = Vec::new();
        for &t in tokens {
            logits = self.advance(t);
        }
        logits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{ExactCache, QuantizedCache};
    use oaken_core::{KvQuantizer, OakenConfig, OakenQuantizer, OfflineProfiler};
    use std::sync::Arc;

    fn tiny() -> Model {
        let cfg = ModelConfig::llama2_7b().proxy(2, 32);
        Model::synthetic(cfg, 42)
    }

    fn profiled_row(d: usize, seed: u64) -> Vec<f32> {
        (0..d)
            .map(|i| {
                let u = ((i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed * 7919)
                    >> 33) as f32
                    / (1u64 << 31) as f32;
                let base = (u - 0.5) * 6.0;
                match i % 19 {
                    0 => base * 9.0,
                    1 => base * 0.02,
                    _ => base,
                }
            })
            .collect()
    }

    fn oaken(d: usize, layers: usize) -> Arc<dyn KvQuantizer> {
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), layers);
        for s in 0..24 {
            for layer in 0..layers {
                for kind in KvKind::ALL {
                    p.observe(layer, kind, &profiled_row(d.max(64), s * 3 + layer as u64));
                }
            }
        }
        Arc::new(OakenQuantizer::new(config, p.try_finish().unwrap()))
    }

    #[test]
    fn advance_returns_vocab_logits() {
        let m = tiny();
        let mut s = m.session(Box::new(ExactCache::new()));
        let logits = s.advance(5);
        assert_eq!(logits.len(), m.config().vocab_size);
        assert!(logits.iter().all(|v| v.is_finite()));
        assert_eq!(s.position(), 1);
    }

    #[test]
    fn inference_is_deterministic() {
        let m = tiny();
        let mut s1 = m.session(Box::new(ExactCache::new()));
        let mut s2 = m.session(Box::new(ExactCache::new()));
        let a = s1.prefill(&[1, 2, 3]);
        let b = s2.prefill(&[1, 2, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_contexts_give_different_logits() {
        let m = tiny();
        let mut s1 = m.session(Box::new(ExactCache::new()));
        let mut s2 = m.session(Box::new(ExactCache::new()));
        let a = s1.prefill(&[1, 2, 3]);
        let b = s2.prefill(&[4, 5, 3]);
        assert_ne!(a, b, "context must influence the final logits");
    }

    #[test]
    fn observer_sees_every_layer_and_kind() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let m = tiny();
        let kv_dim = m.config().kv_dim();
        let seen: Rc<RefCell<Vec<(usize, KvKind)>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let mut s = m.session(Box::new(ExactCache::new()));
            let log = Rc::clone(&seen);
            s.set_kv_observer(Box::new(move |l, kind, v| {
                assert_eq!(v.len(), kv_dim);
                log.borrow_mut().push((l, kind));
            }));
            s.advance(1);
        }
        let seen = seen.borrow();
        assert_eq!(seen.len(), 4); // 2 layers × (key + value)
        assert!(seen.contains(&(0, KvKind::Key)));
        assert!(seen.contains(&(1, KvKind::Value)));
    }

    #[test]
    fn opt_proxy_runs_with_learned_positions() {
        let cfg = ModelConfig::opt_6_7b().proxy(2, 32);
        let m = Model::synthetic(cfg, 7);
        let mut s = m.session(Box::new(ExactCache::new()));
        let logits = s.prefill(&[1, 2, 3, 4]);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mixtral_proxy_runs_with_moe() {
        let cfg = ModelConfig::mixtral_8x7b().proxy(2, 32);
        let m = Model::synthetic(cfg, 7);
        let mut s = m.session(Box::new(ExactCache::new()));
        let logits = s.prefill(&[9, 8, 7]);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn rejects_out_of_vocab_tokens() {
        let m = tiny();
        let mut s = m.session(Box::new(ExactCache::new()));
        s.advance(10_000);
    }

    /// Chunked prefill (multiple steps of one slot in a single
    /// `forward_batch` call) must be bit-identical to feeding the same
    /// tokens one call at a time — the property the serving engine's
    /// per-iteration token budget relies on.
    #[test]
    fn chunked_prefill_matches_single_steps_bitwise() {
        use crate::cache::SingleSlot;
        let m = tiny();
        let tokens: Vec<u32> = (0..11).map(|i| (i * 29 + 3) % 256).collect();

        // Reference: one token per call.
        let mut ref_cache = ExactCache::new();
        ref_cache.reset(m.config().num_layers, m.config().kv_dim());
        let mut ref_logits = Vec::new();
        for (pos, &token) in tokens.iter().enumerate() {
            let mut view = SingleSlot(&mut ref_cache);
            let out = m.forward_batch(
                &mut view,
                &[BatchStep {
                    slot: 0,
                    pos,
                    token,
                }],
                None,
            );
            ref_logits.extend(out);
        }

        // Chunked: uneven chunks covering the same positions.
        let mut cache = ExactCache::new();
        cache.reset(m.config().num_layers, m.config().kv_dim());
        let mut logits = Vec::new();
        let mut pos = 0usize;
        for chunk in [1usize, 4, 2, 3, 1] {
            let steps: Vec<BatchStep> = (0..chunk)
                .map(|j| BatchStep {
                    slot: 0,
                    pos: pos + j,
                    token: tokens[pos + j],
                })
                .collect();
            let mut view = SingleSlot(&mut cache);
            logits.extend(m.forward_batch(&mut view, &steps, None));
            pos += chunk;
        }

        assert_eq!(logits.len(), ref_logits.len());
        for (i, (a, b)) in logits.iter().zip(&ref_logits).enumerate() {
            let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
            assert_eq!(ab, bb, "logits diverged at position {i}");
        }
    }

    /// The parallel forward pass (weight sweeps, batched appends, and
    /// step×KV-head attention sharded across a runtime) must be
    /// bit-identical to the serial pass for every thread count — over a
    /// real paged pool with mixed decode steps and prompt chunks.
    #[test]
    fn forward_batch_on_matches_serial_bitwise_over_paged_pool() {
        use crate::pool::{PagedKvPool, PoolBatchView};
        use oaken_runtime::Runtime;

        let m = tiny();
        let cfg = m.config().clone();
        let run = |rt: &Runtime| -> Vec<Vec<f32>> {
            let mut pool = PagedKvPool::for_model(&cfg, None, 4096, 512);
            let seqs = vec![pool.alloc_seq(), pool.alloc_seq(), pool.alloc_seq()];
            assert!(pool.append_only_views(), "exact pool is append-only");
            let mut all = Vec::new();
            // Iteration 1: slot 0 feeds a 3-token chunk, slots 1-2 one
            // token each. Iteration 2: everyone decodes one token.
            let mk = |steps: &[BatchStep], pool: &mut PagedKvPool| {
                let mut view = PoolBatchView::new(pool, &seqs);
                m.forward_batch_on(rt, &mut view, steps, None)
            };
            let it1 = [
                BatchStep {
                    slot: 0,
                    pos: 0,
                    token: 11,
                },
                BatchStep {
                    slot: 0,
                    pos: 1,
                    token: 12,
                },
                BatchStep {
                    slot: 0,
                    pos: 2,
                    token: 13,
                },
                BatchStep {
                    slot: 1,
                    pos: 0,
                    token: 40,
                },
                BatchStep {
                    slot: 2,
                    pos: 0,
                    token: 90,
                },
            ];
            all.extend(mk(&it1, &mut pool));
            let it2 = [
                BatchStep {
                    slot: 0,
                    pos: 3,
                    token: 14,
                },
                BatchStep {
                    slot: 1,
                    pos: 1,
                    token: 41,
                },
                BatchStep {
                    slot: 2,
                    pos: 1,
                    token: 91,
                },
            ];
            all.extend(mk(&it2, &mut pool));
            all
        };
        let serial = run(&Runtime::serial());
        for threads in [2usize, 4, 8] {
            let par = run(&Runtime::new(threads));
            assert_eq!(par.len(), serial.len());
            for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
                let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
                let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
                assert_eq!(ab, bb, "step {i} diverged at {threads} threads");
            }
        }
    }

    /// A fused-kernel session is a drop-in for an exact-kernel session over
    /// the same quantizer: kernel mode installs through the backend trait,
    /// and the logits agree within the fused kernels' accumulation-order
    /// tolerance (the stored bits are identical either way).
    #[test]
    fn session_fused_kernel_tracks_exact_kernel() {
        let m = tiny();
        let cfg = m.config();
        let q = oaken(cfg.kv_dim(), cfg.num_layers);
        let tokens: Vec<u32> = (0..9).map(|i| (i * 37 + 5) % 256).collect();

        let mut exact = m.session(Box::new(QuantizedCache::new(q.clone())));
        assert_eq!(exact.kernel_mode(), KernelMode::Exact);
        let a = exact.prefill(&tokens);

        let mut fused = m.session(Box::new(QuantizedCache::new(q)));
        assert_eq!(fused.set_kernel_mode(KernelMode::Fused), KernelMode::Fused);
        assert_eq!(fused.kernel_mode(), KernelMode::Fused);
        let b = fused.prefill(&tokens);

        let scale = a.iter().fold(0.0f32, |m, x| m.max(x.abs())).max(1e-6);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(y.is_finite(), "fused logit {i} not finite");
            assert!(
                (x - y).abs() / scale < 1e-2,
                "logit {i} diverged: exact {x} fused {y}"
            );
        }

        // Capability gating: a purely-f32 backend ignores the request.
        let mut plain = m.session(Box::new(ExactCache::new()));
        assert_eq!(plain.set_kernel_mode(KernelMode::Fused), KernelMode::Exact);
    }

    /// The parallel forward pass over a *fused* paged pool must stay
    /// bit-identical to the serial fused pass for every thread count, and
    /// the whole run must read encoded rows only (no f32 views).
    #[test]
    fn forward_batch_on_fused_matches_serial_bitwise_over_fused_pool() {
        use crate::cache::KernelMode;
        use crate::pool::{PagedKvPool, PoolBatchView};
        use oaken_runtime::Runtime;

        let mut cfg = ModelConfig::llama2_7b().proxy(2, 64);
        cfg.num_heads = 2;
        cfg.num_kv_heads = 2;
        let m = Model::synthetic(cfg.clone(), 42);
        let q = oaken(cfg.kv_dim(), cfg.num_layers);
        let run = |rt: &Runtime| -> Vec<Vec<f32>> {
            let mut pool = PagedKvPool::for_model(&cfg, Some(q.clone()), 4096, 4096);
            assert_eq!(pool.set_kernel_mode(KernelMode::Fused), KernelMode::Fused);
            let seqs = vec![pool.alloc_seq(), pool.alloc_seq()];
            assert!(pool.append_only_views(), "streaming pool is append-only");
            let mut all = Vec::new();
            let it1: Vec<BatchStep> = (0..3)
                .map(|j| BatchStep {
                    slot: 0,
                    pos: j,
                    token: 11 + j as u32,
                })
                .chain(std::iter::once(BatchStep {
                    slot: 1,
                    pos: 0,
                    token: 40,
                }))
                .collect();
            let it2 = [
                BatchStep {
                    slot: 0,
                    pos: 3,
                    token: 14,
                },
                BatchStep {
                    slot: 1,
                    pos: 1,
                    token: 41,
                },
            ];
            {
                let mut view = PoolBatchView::new(&mut pool, &seqs);
                all.extend(m.forward_batch_on(rt, &mut view, &it1, None));
            }
            {
                let mut view = PoolBatchView::new(&mut pool, &seqs);
                all.extend(m.forward_batch_on(rt, &mut view, &it2, None));
            }
            let reads = pool.kv_read_stats();
            assert!(reads.fused_rows > 0, "fused pool must read encoded rows");
            assert_eq!(reads.exact_rows, 0, "fused pool must not build f32 views");
            all
        };
        let serial = run(&Runtime::serial());
        for threads in [2usize, 4] {
            let par = run(&Runtime::new(threads));
            assert_eq!(par.len(), serial.len());
            for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
                let ab: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
                let bb: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
                assert_eq!(ab, bb, "step {i} diverged at {threads} threads");
            }
        }
    }
}

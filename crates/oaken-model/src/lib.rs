//! A from-scratch decoder-only transformer inference engine — the model
//! substrate for the Oaken reproduction.
//!
//! The paper evaluates KV-cache quantization inside eight real LLMs
//! (Llama2-7/13/70B, OPT-6.7/13/30B, Mistral-7B, Mixtral-8x7B). Pretrained
//! checkpoints are not available in this environment, so this crate
//! provides:
//!
//! * [`ModelConfig`] presets with the **real architectural dimensions** of
//!   all eight models (driving the performance simulator's memory and FLOP
//!   accounting), and
//! * runnable **proxy models** ([`ModelConfig::proxy`]) with synthetic
//!   weights ([`synth`]) calibrated so the proxies' KV caches reproduce the
//!   paper's §4.1 distribution observations (per-layer range variation,
//!   channel-concentrated outliers, input-independence, and discontinuous
//!   exceptions).
//!
//! Every structural feature the paper calls out is implemented: grouped
//! -query attention, sliding-window attention, mixture-of-experts layers,
//! RMSNorm/LayerNorm, SwiGLU/ReLU FFNs, rotary and learned positions.
//!
//! The KV cache is pluggable via [`KvCacheBackend`]: [`ExactCache`] gives
//! the FP32 reference, [`QuantizedCache`] routes storage through any
//! [`KvQuantizer`] so that quantization error propagates through attention
//! into the logits — the mechanism behind every accuracy number in Table 2.
//!
//! For multi-sequence serving, [`pool::PagedKvPool`] shares one paged
//! device memory (backed by `oaken-mmu`'s refcounted allocator) across
//! concurrent sequences — deduplicating common prompt prefixes through
//! the [`trie`] of sealed, refcounted blocks whenever the quantizer is
//! prefix-deterministic — and [`Model::forward_batch`] advances a whole
//! batch of steps per call (one token per decoding sequence, multi-token
//! prompt chunks for prefilling ones), layer-major with batched weight
//! sweeps — bit-exact per sequence with [`Session`].
//! [`Model::forward_batch_on`] is the same pass sharded across an
//! `oaken-runtime` worker pool (rows for the weight sweeps, sequences for
//! quantize+append via [`pool::PagedKvPool::append_batch`], `(step, KV
//! head)` tasks for attention), bit-exact with the serial pass for every
//! thread count.
//!
//! [`KvQuantizer`]: oaken_core::KvQuantizer
//!
//! # Example
//!
//! ```
//! use oaken_model::{ExactCache, Model, ModelConfig};
//!
//! let config = ModelConfig::llama2_7b().proxy(2, 32);
//! let model = Model::synthetic(config, 42);
//! let mut session = model.session(Box::new(ExactCache::new()));
//! let logits = session.prefill(&[1, 2, 3]);
//! assert_eq!(logits.len(), model.config().vocab_size);
//! ```

pub mod attention;
pub mod cache;
pub mod config;
pub mod ffn;
pub mod model;
pub mod pool;
pub mod ranks;
pub mod sampling;
pub(crate) mod sharding;
pub mod synth;
pub mod trie;

pub use attention::{
    attend_kv_group, attend_kv_group_fused, attend_kv_group_fused_into, attend_kv_group_into,
    attend_one, attend_one_fused, attend_one_fused_into, attend_one_into, AttentionScratch,
    AttentionShape, EncodedKv,
};
pub use cache::{
    BatchAppend, BatchKvCache, CacheMode, ExactCache, KernelMode, KvCacheBackend, QuantizedCache,
    SingleSlot,
};
pub use config::{ModelConfig, MoeConfig, Positional};
pub use ffn::{DenseFfn, FfnWeights};
pub use model::{BatchKvObserver, BatchStep, KvObserver, LayerWeights, Model, Session};
pub use oaken_mmu::{FaultKind, FaultOp, FaultPlan, FaultStats, Residency, SwapReceipt, SwapStats};
pub use pool::{
    KvReadStats, KvTransfer, PageAccounting, PagedKvPool, PoolBatchView, PoolError, PrefixAlloc,
    SeqId, SeqRowAppend,
};
pub use ranks::{forward_batch_ranked, RankPlan, RankedPools};
pub use sampling::{sample_greedy, sample_temperature};
pub use synth::SynthParams;
pub use trie::PrefixStats;

//! Token sampling strategies for synthetic data generation.

use oaken_tensor::{argmax, softmax_in_place};
use rand::rngs::StdRng;
use rand::Rng;

/// Greedy (argmax) sampling.
///
/// # Panics
///
/// Panics on empty logits.
pub fn sample_greedy(logits: &[f32]) -> u32 {
    argmax(logits).expect("logits must be non-empty") as u32
}

/// Temperature sampling: softmax(logits / temperature), then draw.
///
/// `temperature <= 0` degenerates to greedy.
///
/// # Panics
///
/// Panics on empty logits.
pub fn sample_temperature(logits: &[f32], temperature: f32, rng: &mut StdRng) -> u32 {
    if temperature <= 0.0 {
        return sample_greedy(logits);
    }
    let mut p: Vec<f32> = logits.iter().map(|&l| l / temperature).collect();
    softmax_in_place(&mut p);
    let draw: f32 = rng.gen();
    let mut acc = 0.0f32;
    for (i, &pi) in p.iter().enumerate() {
        acc += pi;
        if draw <= acc {
            return i as u32;
        }
    }
    (p.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn greedy_picks_max() {
        assert_eq!(sample_greedy(&[0.1, 5.0, 2.0]), 1);
    }

    #[test]
    fn zero_temperature_is_greedy() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sample_temperature(&[0.0, 9.0, 1.0], 0.0, &mut rng), 1);
    }

    #[test]
    fn low_temperature_concentrates_on_max() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = [0.0, 4.0, 1.0];
        let hits = (0..100)
            .filter(|_| sample_temperature(&logits, 0.3, &mut rng) == 1)
            .count();
        assert!(hits > 90, "{hits}");
    }

    #[test]
    fn high_temperature_spreads_mass() {
        let mut rng = StdRng::seed_from_u64(2);
        let logits = [0.0, 1.0, 0.5];
        let mut counts = [0usize; 3];
        for _ in 0..300 {
            counts[sample_temperature(&logits, 50.0, &mut rng) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 50), "{counts:?}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let logits = [1.0, 2.0, 3.0, 0.5];
        let a: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..20)
                .map(|_| sample_temperature(&logits, 1.0, &mut rng))
                .collect()
        };
        let b: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..20)
                .map(|_| sample_temperature(&logits, 1.0, &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }
}

//! Synthetic weight generation, calibrated to reproduce the paper's §4.1
//! KV-distribution observations on the proxy models:
//!
//! * **Observation 1** — per-layer magnitude variation: every layer gets its
//!   own deterministic scale multiplier;
//! * **Observation 3** — channel-concentrated outliers: a few K/V projection
//!   output channels are amplified, so the corresponding KV channels are
//!   consistently large across tokens (the "vertical lines" of Figure 6c);
//! * **Observation 3 (exceptions)** — a sprinkle of heavy-tailed individual
//!   weights produces the discontinuous dots that break pure per-channel
//!   schemes;
//! * **Observation 2** — input-independence falls out naturally: the channel
//!   structure lives in the weights, not the data.

use oaken_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic weight distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthParams {
    /// Base Gaussian std-dev multiplier (scaled by 1/sqrt(fan_in)).
    pub base_scale: f32,
    /// Fraction of K/V projection output channels that are amplified.
    pub outlier_channel_fraction: f64,
    /// Amplification factor range for outlier channels.
    pub outlier_gain: (f32, f32),
    /// Per-entry probability of a heavy-tail "exception" weight.
    pub exception_prob: f64,
    /// Gain applied to exception weights.
    pub exception_gain: f32,
}

impl Default for SynthParams {
    fn default() -> Self {
        Self {
            base_scale: 1.0,
            outlier_channel_fraction: 0.04,
            outlier_gain: (4.0, 10.0),
            exception_prob: 0.01,
            exception_gain: 8.0,
        }
    }
}

/// Layer-dependent scale multiplier implementing Observation 1: KV ranges
/// differ across decoder layers in a model-specific but input-independent
/// way.
pub fn layer_scale(layer: usize, num_layers: usize) -> f32 {
    let x = layer as f32 / num_layers.max(1) as f32;
    // Early layers small, a mid-stack bump, slight growth toward the end —
    // the qualitative shape of Figure 6(a).
    0.6 + 0.8 * (x * 3.1).sin().abs() + 0.5 * x
}

/// Draws an approximately standard-normal value (sum of uniforms).
fn normal(rng: &mut StdRng) -> f32 {
    let s: f32 = (0..6).map(|_| rng.gen::<f32>()).sum();
    (s - 3.0) * (2.0f32).sqrt()
}

/// Generates a dense `[rows × cols]` weight matrix with 1/sqrt(cols)
/// scaling.
pub fn dense(rng: &mut StdRng, rows: usize, cols: usize, scale: f32) -> Tensor {
    let std = scale / (cols as f32).sqrt();
    let data: Vec<f32> = (0..rows * cols).map(|_| normal(rng) * std).collect();
    Tensor::from_vec(data, &[rows, cols]).expect("shape matches data length")
}

/// Generates a K/V projection matrix `[rows × cols]` whose output channels
/// include amplified outlier channels and heavy-tail exceptions.
pub fn kv_projection(
    rng: &mut StdRng,
    rows: usize,
    cols: usize,
    scale: f32,
    params: &SynthParams,
) -> Tensor {
    let mut w = dense(rng, rows, cols, scale * params.base_scale);
    let n_outlier = ((rows as f64 * params.outlier_channel_fraction).round() as usize).min(rows);
    // Deterministically spread outlier channels across the output dim.
    let stride = if n_outlier > 0 {
        rows / n_outlier.max(1)
    } else {
        rows
    };
    let data = w.as_mut_slice();
    for i in 0..n_outlier {
        let ch = (i * stride.max(1) + i * 7) % rows;
        let gain = params.outlier_gain.0
            + rng.gen::<f32>() * (params.outlier_gain.1 - params.outlier_gain.0);
        for c in 0..cols {
            data[ch * cols + c] *= gain;
        }
    }
    for v in data.iter_mut() {
        if rng.gen::<f64>() < params.exception_prob {
            *v *= params.exception_gain;
        }
    }
    w
}

/// Generates an embedding table with mild token-frequency structure (lower
/// token ids get slightly larger norms, like frequent tokens in trained
/// embeddings).
pub fn embedding(rng: &mut StdRng, vocab: usize, d: usize) -> Tensor {
    let mut t = dense(rng, vocab, d, 1.0);
    let data = t.as_mut_slice();
    for tok in 0..vocab {
        let boost = 1.0 + 0.5 / (1.0 + tok as f32 / 16.0);
        for c in 0..d {
            data[tok * d + c] *= boost;
        }
    }
    t
}

/// Creates a deterministic RNG for a (seed, stream) pair so each weight
/// tensor draws from an independent stream.
pub fn stream_rng(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_has_expected_scale() {
        let mut rng = stream_rng(1, 0);
        let w = dense(&mut rng, 64, 256, 1.0);
        let var: f32 = w.as_slice().iter().map(|v| v * v).sum::<f32>() / w.len() as f32;
        // Target variance 1/cols.
        assert!(
            (var * 256.0 - 1.0).abs() < 0.3,
            "normalized var {}",
            var * 256.0
        );
    }

    #[test]
    fn kv_projection_has_outlier_channels() {
        let mut rng = stream_rng(2, 0);
        let params = SynthParams::default();
        let w = kv_projection(&mut rng, 128, 128, 1.0, &params);
        // Per-output-channel norms.
        let mut norms: Vec<f32> = (0..128)
            .map(|r| w.row(r).iter().map(|v| v * v).sum::<f32>().sqrt())
            .collect();
        norms.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // The amplified channels should dominate: top norm several times the
        // median.
        assert!(
            norms[0] > norms[64] * 3.0,
            "top {} vs median {}",
            norms[0],
            norms[64]
        );
    }

    #[test]
    fn layer_scales_vary_across_stack() {
        let scales: Vec<f32> = (0..32).map(|l| layer_scale(l, 32)).collect();
        let min = scales.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = scales.iter().cloned().fold(0.0f32, f32::max);
        assert!(max / min > 1.5, "layers should differ: {min}..{max}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dense(&mut stream_rng(7, 3), 8, 8, 1.0);
        let b = dense(&mut stream_rng(7, 3), 8, 8, 1.0);
        assert_eq!(a, b);
        let c = dense(&mut stream_rng(7, 4), 8, 8, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn embedding_boosts_frequent_tokens() {
        let mut rng = stream_rng(3, 0);
        let e = embedding(&mut rng, 128, 32);
        let norm = |r: usize| e.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
        let early: f32 = (0..8).map(norm).sum();
        let late: f32 = (120..128).map(norm).sum();
        assert!(early > late, "early {early} late {late}");
    }
}

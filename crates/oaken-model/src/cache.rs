//! KV cache backends with pluggable quantization.
//!
//! The model writes each generated token's K/V vector through a
//! [`KvCacheBackend`]; attention reads the (possibly lossy) cached
//! matrices back. [`ExactCache`] stores f32 (the FP32 reference);
//! [`QuantizedCache`] routes all storage through any [`KvQuantizer`]
//! (Oaken or a baseline), so quantization error propagates through
//! attention into the logits exactly as it would on real hardware.

use oaken_core::{KvKind, KvQuantizer};
use std::sync::Arc;

/// Storage backend for the per-layer KV cache.
pub trait KvCacheBackend: Send {
    /// Clears all state and prepares storage for `num_layers` layers of
    /// `kv_dim`-wide vectors.
    fn reset(&mut self, num_layers: usize, kv_dim: usize);

    /// Appends the current token's key and value vectors for `layer`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `layer` is out of range or the vector
    /// width disagrees with `kv_dim`.
    fn append(&mut self, layer: usize, k: &[f32], v: &[f32]);

    /// Number of cached tokens for `layer`.
    fn seq_len(&self, layer: usize) -> usize;

    /// Row-major `[seq_len × kv_dim]` view of the cached keys as the
    /// compute engine sees them (dequantized for lossy backends).
    fn keys(&mut self, layer: usize) -> &[f32];

    /// Row-major view of the cached values.
    fn values(&mut self, layer: usize) -> &[f32];

    /// Mean stored bits per cached element, for capacity accounting.
    fn stored_bits_per_elem(&self) -> f64;
}

#[derive(Debug, Default, Clone)]
struct LayerStore {
    k: Vec<f32>,
    v: Vec<f32>,
}

/// Lossless f32 cache: the "Original" reference configuration.
#[derive(Debug, Default)]
pub struct ExactCache {
    kv_dim: usize,
    layers: Vec<LayerStore>,
}

impl ExactCache {
    /// Creates an empty cache; call [`KvCacheBackend::reset`] before use
    /// (the model session does this automatically).
    pub fn new() -> Self {
        Self::default()
    }
}

impl KvCacheBackend for ExactCache {
    fn reset(&mut self, num_layers: usize, kv_dim: usize) {
        self.kv_dim = kv_dim;
        self.layers = vec![LayerStore::default(); num_layers];
    }

    fn append(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.kv_dim, "key width mismatch");
        assert_eq!(v.len(), self.kv_dim, "value width mismatch");
        let store = &mut self.layers[layer];
        store.k.extend_from_slice(k);
        store.v.extend_from_slice(v);
    }

    fn seq_len(&self, layer: usize) -> usize {
        if self.kv_dim == 0 {
            return 0;
        }
        self.layers[layer].k.len() / self.kv_dim
    }

    fn keys(&mut self, layer: usize) -> &[f32] {
        &self.layers[layer].k
    }

    fn values(&mut self, layer: usize) -> &[f32] {
        &self.layers[layer].v
    }

    fn stored_bits_per_elem(&self) -> f64 {
        32.0
    }
}

#[derive(Debug, Default, Clone)]
struct QuantLayerStore {
    exact_k: Vec<f32>,
    exact_v: Vec<f32>,
    view_k: Vec<f32>,
    view_v: Vec<f32>,
    dirty_k: bool,
    dirty_v: bool,
}

/// A cache that stores all KV data through a [`KvQuantizer`].
///
/// On every read the backend re-materialises the quantized view of any
/// layer whose contents changed. Per-token methods (Oaken) produce
/// identical results to true streaming because rows are independent;
/// per-channel methods (KIVI/KVQuant keys) see mildly *optimistic* scales
/// (recomputed over the full prefix rather than frozen per block), which
/// favours the baselines, never Oaken.
pub struct QuantizedCache {
    quantizer: Arc<dyn KvQuantizer>,
    kv_dim: usize,
    layers: Vec<QuantLayerStore>,
}

impl QuantizedCache {
    /// Creates a cache backed by `quantizer`.
    pub fn new(quantizer: Arc<dyn KvQuantizer>) -> Self {
        Self {
            quantizer,
            kv_dim: 0,
            layers: Vec::new(),
        }
    }

    /// The backing quantizer's name.
    pub fn quantizer_name(&self) -> &'static str {
        self.quantizer.name()
    }

    fn refresh(&mut self, layer: usize, kind: KvKind) {
        let kv_dim = self.kv_dim;
        let store = &mut self.layers[layer];
        let (exact, view, dirty) = match kind {
            KvKind::Key => (&store.exact_k, &mut store.view_k, &mut store.dirty_k),
            KvKind::Value => (&store.exact_v, &mut store.view_v, &mut store.dirty_v),
        };
        if *dirty {
            let rows = exact.len() / kv_dim.max(1);
            *view = self
                .quantizer
                .roundtrip_matrix(exact, rows, kv_dim, layer, kind);
            *dirty = false;
        }
    }
}

impl std::fmt::Debug for QuantizedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedCache")
            .field("quantizer", &self.quantizer.name())
            .field("kv_dim", &self.kv_dim)
            .field("layers", &self.layers.len())
            .finish()
    }
}

impl KvCacheBackend for QuantizedCache {
    fn reset(&mut self, num_layers: usize, kv_dim: usize) {
        self.kv_dim = kv_dim;
        self.layers = vec![QuantLayerStore::default(); num_layers];
    }

    fn append(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.kv_dim, "key width mismatch");
        assert_eq!(v.len(), self.kv_dim, "value width mismatch");
        let store = &mut self.layers[layer];
        store.exact_k.extend_from_slice(k);
        store.exact_v.extend_from_slice(v);
        store.dirty_k = true;
        store.dirty_v = true;
    }

    fn seq_len(&self, layer: usize) -> usize {
        if self.kv_dim == 0 {
            return 0;
        }
        self.layers[layer].exact_k.len() / self.kv_dim
    }

    fn keys(&mut self, layer: usize) -> &[f32] {
        self.refresh(layer, KvKind::Key);
        &self.layers[layer].view_k
    }

    fn values(&mut self, layer: usize) -> &[f32] {
        self.refresh(layer, KvKind::Value);
        &self.layers[layer].view_v
    }

    fn stored_bits_per_elem(&self) -> f64 {
        let rows = self
            .layers
            .first()
            .map_or(1, |l| (l.exact_k.len() / self.kv_dim.max(1)).max(1));
        self.quantizer.effective_bits(rows, self.kv_dim.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaken_core::OnlineCost;

    /// A deliberately terrible quantizer: rounds to integers.
    struct RoundingQuantizer;

    impl KvQuantizer for RoundingQuantizer {
        fn name(&self) -> &'static str {
            "round"
        }
        fn roundtrip_matrix(
            &self,
            data: &[f32],
            _rows: usize,
            _d: usize,
            _layer: usize,
            _kind: KvKind,
        ) -> Vec<f32> {
            data.iter().map(|x| x.round()).collect()
        }
        fn effective_bits(&self, _rows: usize, _d: usize) -> f64 {
            8.0
        }
        fn online_cost(&self) -> OnlineCost {
            OnlineCost::free()
        }
    }

    #[test]
    fn exact_cache_roundtrips() {
        let mut c = ExactCache::new();
        c.reset(2, 4);
        c.append(0, &[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
        c.append(0, &[9.0; 4], &[10.0; 4]);
        assert_eq!(c.seq_len(0), 2);
        assert_eq!(c.seq_len(1), 0);
        assert_eq!(&c.keys(0)[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.values(0)[4..], &[10.0; 4]);
        assert_eq!(c.stored_bits_per_elem(), 32.0);
    }

    #[test]
    fn quantized_cache_applies_quantizer() {
        let mut c = QuantizedCache::new(Arc::new(RoundingQuantizer));
        c.reset(1, 2);
        c.append(0, &[1.4, 2.6], &[0.2, -0.7]);
        assert_eq!(c.keys(0), &[1.0, 3.0]);
        assert_eq!(c.values(0), &[0.0, -1.0]);
        assert_eq!(c.quantizer_name(), "round");
        assert_eq!(c.stored_bits_per_elem(), 8.0);
    }

    #[test]
    fn quantized_cache_refreshes_after_append() {
        let mut c = QuantizedCache::new(Arc::new(RoundingQuantizer));
        c.reset(1, 1);
        c.append(0, &[1.4], &[1.4]);
        assert_eq!(c.keys(0), &[1.0]);
        c.append(0, &[2.6], &[2.6]);
        assert_eq!(c.keys(0), &[1.0, 3.0]);
        assert_eq!(c.seq_len(0), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn append_checks_width() {
        let mut c = ExactCache::new();
        c.reset(1, 4);
        c.append(0, &[1.0], &[1.0]);
    }
}

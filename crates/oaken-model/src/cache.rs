//! KV cache backends with pluggable quantization.
//!
//! The model writes each generated token's K/V vector through a
//! [`KvCacheBackend`]; attention reads the (possibly lossy) cached
//! matrices back. [`ExactCache`] stores f32 (the FP32 reference);
//! [`QuantizedCache`] routes all storage through any [`KvQuantizer`]
//! (Oaken or a baseline), so quantization error propagates through
//! attention into the logits exactly as it would on real hardware.
//!
//! # Incremental cache design
//!
//! Decode is append-only: each generated token contributes one K and one V
//! row per layer, and attention then reads the whole prefix. Oaken's
//! hardware engine (§5.2) therefore quantizes each row **once, when it is
//! written**, and the read path is a pure stream of already-encoded pages.
//! [`QuantizedCache`] mirrors that architecture: for every `(layer, kind)`
//! it asks the quantizer for a [`KvRowStream`] and, when one is available
//! (token-granular methods — Oaken, FP16, Atom, QServe, Tender), each
//! append is O(d): the row is quantized, its encoded form is retained by
//! the stream, and its dequantized image is appended to a materialized
//! view. Reads return the view as-is — no recomputation, no allocation —
//! so a full decode of `n` tokens costs O(n·d) quantization work instead
//! of the O(n²·d) of re-quantizing the prefix on every read.
//!
//! # Per-channel fallback semantics
//!
//! Methods that need statistics over the whole prefix (KIVI and KVQuant:
//! per-channel key scales, whole-tensor topK thresholds, sliding FP16
//! residual windows) cannot append rows immutably; they return no stream
//! and the cache falls back to the legacy behaviour: exact rows are
//! retained and the quantized view of a dirty layer is **fully
//! re-materialized on read** via [`KvQuantizer::roundtrip_matrix`]. The
//! recomputed scales see the complete prefix rather than frozen per-block
//! statistics, which is mildly *optimistic* for those baselines — the
//! approximation favours them, never Oaken. The same path can be forced
//! for every method with [`QuantizedCache::new_recompute`], which is how
//! the decode-scaling benchmark measures the quadratic path the streaming
//! design eliminates.
//!
//! Calibration-based streaming methods (Atom, QServe, Tender) freeze their
//! channel order / smoothing scales / group scales after the first
//! `calib_rows` tokens; during that warm-up the stream recomputes its
//! (tiny) view on each append, after which appends never rewrite history.
//! Streams are bit-exact with the batch path on every prefix — enforced by
//! the property tests in `tests/props.rs`.

use crate::attention::EncodedKv;
use oaken_core::{KvKind, KvQuantizer, KvRowStream};
use std::sync::Arc;

/// Which attention read path the engine runs against a quantized cache.
///
/// * [`Exact`](KernelMode::Exact) — every append materializes the row's
///   dequantized f32 image and attention runs the exact kernels over the
///   views: the bit-exactness reference, unchanged from before fused
///   kernels existed.
/// * [`Fused`](KernelMode::Fused) — appends keep rows **only in their
///   encoded form** and attention runs the quantized-domain kernels
///   ([`crate::attend_one_fused`]) straight over the stored
///   [`oaken_core::FusedVector`]s: resident KV bytes equal the encoded
///   footprint, and reads skip the dequantize-then-dot roundtrip. The
///   numeric contract is SQNR-bounded against `Exact` (see
///   `oaken_core::kernel`), not bit-exact.
///
/// Methods without an encoded form (every non-Oaken baseline) silently
/// keep their exact path under `Fused`; the mode is a capability request,
/// not a guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Materialized f32 views + exact kernels (bit-exact reference).
    #[default]
    Exact,
    /// Quantized-domain kernels over the encoded rows.
    Fused,
}

impl KernelMode {
    /// Parses a CLI/env spelling (`"exact"` / `"fused"`, case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("exact") {
            Some(KernelMode::Exact)
        } else if s.eq_ignore_ascii_case("fused") {
            Some(KernelMode::Fused)
        } else {
            None
        }
    }

    /// The mode selected by the `OAKEN_KERNEL` environment variable
    /// (unset or unrecognized → [`Exact`](KernelMode::Exact)).
    pub fn default_mode() -> Self {
        match std::env::var("OAKEN_KERNEL") {
            Ok(v) => Self::parse(&v).unwrap_or(KernelMode::Exact),
            Err(_) => KernelMode::Exact,
        }
    }

    /// Stable lowercase label for logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            KernelMode::Exact => "exact",
            KernelMode::Fused => "fused",
        }
    }
}

/// Storage backend for the per-layer KV cache.
pub trait KvCacheBackend: Send {
    /// Clears all state and prepares storage for `num_layers` layers of
    /// `kv_dim`-wide vectors.
    fn reset(&mut self, num_layers: usize, kv_dim: usize);

    /// Appends the current token's key and value vectors for `layer`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `layer` is out of range or the vector
    /// width disagrees with `kv_dim`.
    fn append(&mut self, layer: usize, k: &[f32], v: &[f32]);

    /// Number of cached tokens for `layer`.
    fn seq_len(&self, layer: usize) -> usize;

    /// Row-major `[seq_len × kv_dim]` view of the cached keys as the
    /// compute engine sees them (dequantized for lossy backends).
    fn keys(&mut self, layer: usize) -> &[f32];

    /// Row-major view of the cached values.
    fn values(&mut self, layer: usize) -> &[f32];

    /// Mean stored bits per cached element, for capacity accounting.
    fn stored_bits_per_elem(&self) -> f64;

    /// The layer's cached K and V tensors in their **encoded form**, when
    /// this backend runs the fused read path for `layer`. `None` (the
    /// default, and the answer of every purely-f32 backend) sends the
    /// caller to [`keys`](KvCacheBackend::keys) /
    /// [`values`](KvCacheBackend::values) and the exact kernels. Takes
    /// `&self` so both tensors can be borrowed together.
    fn encoded_kv(&self, layer: usize) -> Option<(EncodedKv<'_>, EncodedKv<'_>)> {
        let _ = layer;
        None
    }

    /// Cheap probe: `true` iff [`encoded_kv`](KvCacheBackend::encoded_kv)
    /// would serve `layer`. Split from the read itself so the branch
    /// probe never touches a backend's read accounting.
    fn has_encoded_kv(&self, layer: usize) -> bool {
        self.encoded_kv(layer).is_some()
    }

    /// Requests an attention kernel for this backend, returning the mode
    /// actually installed. The request is a *capability* negotiation, not
    /// a command: backends without a fused read path (the default) ignore
    /// it and stay [`KernelMode::Exact`]. Must be called before any row
    /// is appended.
    fn set_kernel_mode(&mut self, kernel: KernelMode) -> KernelMode {
        let _ = kernel;
        KernelMode::Exact
    }

    /// The backend's installed kernel mode.
    fn kernel_mode(&self) -> KernelMode {
        KernelMode::Exact
    }
}

/// One slot's K/V rows within a batched append
/// ([`BatchKvCache::append_batch`]).
#[derive(Debug, Clone, Copy)]
pub struct BatchAppend<'a> {
    /// Batch slot the rows belong to.
    pub slot: usize,
    /// The token's key vector.
    pub k: &'a [f32],
    /// The token's value vector.
    pub v: &'a [f32],
}

/// A KV cache serving *multiple concurrent sequences*, addressed by a
/// dense batch `slot` index. This is the storage interface the batched
/// forward pass ([`crate::Model::forward_batch`]) drives: slot `i` is the
/// `i`-th sequence of the current iteration's batch.
///
/// Every single-sequence [`KvCacheBackend`] is automatically a
/// `BatchKvCache` with exactly one slot (slot `0`), which is how the
/// legacy [`crate::Session`] runs on the shared forward pass — guaranteeing
/// the batched engine and the single-sequence path execute identical code.
pub trait BatchKvCache {
    /// Appends the current token's K/V vectors for `(slot, layer)`.
    fn append(&mut self, slot: usize, layer: usize, k: &[f32], v: &[f32]);

    /// Number of cached tokens for `(slot, layer)`.
    fn seq_len(&self, slot: usize, layer: usize) -> usize;

    /// Row-major dequantized view of the cached keys for `(slot, layer)`.
    fn keys(&mut self, slot: usize, layer: usize) -> &[f32];

    /// Row-major dequantized view of the cached values for `(slot, layer)`.
    fn values(&mut self, slot: usize, layer: usize) -> &[f32];

    /// Whether an append only *extends* the dequantized views — rows
    /// already materialized are never rewritten by later appends.
    ///
    /// This is the gate for the parallel forward pass: when it holds, the
    /// forward pass may append a whole iteration's rows first and attend
    /// afterwards against length-limited snapshots, with bit-identical
    /// results to the serial append-then-attend interleaving. It holds
    /// for exact f32 storage and for every streaming quantizer (the
    /// [`KvRowStream`] contract); it does **not** hold for the
    /// recompute-on-read fallback (KIVI/KVQuant re-derive scales over the
    /// whole prefix), so the conservative default is `false` and the
    /// forward pass falls back to the serial interleaving.
    fn append_only_views(&self) -> bool {
        false
    }

    /// Appends one iteration's rows for `layer` — semantically identical
    /// to calling [`BatchKvCache::append`] for each item in order. Backends
    /// with independent per-slot storage may shard the quantization work
    /// across `rt`; the default is the serial loop.
    fn append_batch(
        &mut self,
        rt: &oaken_runtime::Runtime,
        layer: usize,
        items: &[BatchAppend<'_>],
    ) {
        let _ = rt;
        for it in items {
            self.append(it.slot, layer, it.k, it.v);
        }
    }

    /// The `(slot, layer)` K and V tensors in their encoded form, when the
    /// backend runs the fused read path for that slot. See
    /// [`KvCacheBackend::encoded_kv`].
    fn encoded_kv(&self, slot: usize, layer: usize) -> Option<(EncodedKv<'_>, EncodedKv<'_>)> {
        let _ = (slot, layer);
        None
    }

    /// Cheap probe: `true` iff [`encoded_kv`](BatchKvCache::encoded_kv)
    /// would serve `(slot, layer)`. Split from the read itself so the
    /// branch probe never touches a backend's read accounting.
    fn has_encoded_kv(&self, slot: usize, layer: usize) -> bool {
        self.encoded_kv(slot, layer).is_some()
    }
}

/// Adapter exposing one single-sequence [`KvCacheBackend`] as a one-slot
/// [`BatchKvCache`] (slot `0`). [`crate::Session`] wraps its backend in
/// this to run on the shared batched forward pass.
pub struct SingleSlot<'a>(pub &'a mut dyn KvCacheBackend);

impl BatchKvCache for SingleSlot<'_> {
    fn append(&mut self, slot: usize, layer: usize, k: &[f32], v: &[f32]) {
        assert_eq!(slot, 0, "single-sequence cache has one slot");
        self.0.append(layer, k, v);
    }

    fn seq_len(&self, slot: usize, layer: usize) -> usize {
        assert_eq!(slot, 0, "single-sequence cache has one slot");
        self.0.seq_len(layer)
    }

    fn keys(&mut self, slot: usize, layer: usize) -> &[f32] {
        assert_eq!(slot, 0, "single-sequence cache has one slot");
        self.0.keys(layer)
    }

    fn values(&mut self, slot: usize, layer: usize) -> &[f32] {
        assert_eq!(slot, 0, "single-sequence cache has one slot");
        self.0.values(layer)
    }

    fn encoded_kv(&self, slot: usize, layer: usize) -> Option<(EncodedKv<'_>, EncodedKv<'_>)> {
        assert_eq!(slot, 0, "single-sequence cache has one slot");
        self.0.encoded_kv(layer)
    }

    fn has_encoded_kv(&self, slot: usize, layer: usize) -> bool {
        assert_eq!(slot, 0, "single-sequence cache has one slot");
        self.0.has_encoded_kv(layer)
    }
}

#[derive(Debug, Default, Clone)]
struct LayerStore {
    k: Vec<f32>,
    v: Vec<f32>,
}

/// Lossless f32 cache: the "Original" reference configuration.
#[derive(Debug, Default)]
pub struct ExactCache {
    kv_dim: usize,
    layers: Vec<LayerStore>,
}

impl ExactCache {
    /// Creates an empty cache; call [`KvCacheBackend::reset`] before use
    /// (the model session does this automatically).
    pub fn new() -> Self {
        Self::default()
    }
}

impl KvCacheBackend for ExactCache {
    fn reset(&mut self, num_layers: usize, kv_dim: usize) {
        self.kv_dim = kv_dim;
        self.layers = vec![LayerStore::default(); num_layers];
    }

    fn append(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.kv_dim, "key width mismatch");
        assert_eq!(v.len(), self.kv_dim, "value width mismatch");
        let store = &mut self.layers[layer];
        store.k.extend_from_slice(k);
        store.v.extend_from_slice(v);
    }

    fn seq_len(&self, layer: usize) -> usize {
        if self.kv_dim == 0 {
            return 0;
        }
        self.layers[layer].k.len() / self.kv_dim
    }

    fn keys(&mut self, layer: usize) -> &[f32] {
        &self.layers[layer].k
    }

    fn values(&mut self, layer: usize) -> &[f32] {
        &self.layers[layer].v
    }

    fn stored_bits_per_elem(&self) -> f64 {
        32.0
    }
}

/// How a [`QuantizedCache`] materializes its dequantized views.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Use each method's [`KvRowStream`] when available: O(d) appends,
    /// zero-cost reads. Methods without a stream use the recompute
    /// fallback automatically.
    Incremental,
    /// Force the legacy batch path for every method: retain exact rows and
    /// re-quantize the whole prefix on each read after an append. Kept for
    /// benchmarking (`oaken-bench`'s decode-scaling comparison) and as the
    /// reference semantics streams must match.
    Recompute,
}

/// Per-(layer, kind) storage: either a live row stream or the fallback's
/// exact copy, plus the materialized dequantized view attention reads.
///
/// Shared between the single-sequence [`QuantizedCache`] and the
/// multi-sequence [`crate::pool::PagedKvPool`], which hold one slot per
/// `(sequence, layer, kind)`.
pub(crate) struct KindSlot {
    pub(crate) stream: Option<Box<dyn KvRowStream>>,
    /// Exact rows (fallback path only).
    pub(crate) exact: Vec<f32>,
    /// Dequantized `[rows × d]` view. In fused mode this stays empty (or
    /// short) — rows live only in the stream's encoded state and the view
    /// is rebuilt lazily by [`KindSlot::ensure_view`] if an exact reader
    /// asks for it.
    pub(crate) view: Vec<f32>,
    /// Fallback only: view is stale relative to `exact`.
    pub(crate) dirty: bool,
    pub(crate) rows: usize,
    /// Appends go through the stream's encoded path, skipping the view.
    /// Only ever true for streams whose quantizer supports the encoded
    /// read path (checked when the mode is installed).
    pub(crate) fused: bool,
}

impl KindSlot {
    pub(crate) fn new(stream: Option<Box<dyn KvRowStream>>) -> Self {
        Self {
            stream,
            exact: Vec::new(),
            view: Vec::new(),
            dirty: false,
            rows: 0,
            fused: false,
        }
    }

    pub(crate) fn append(&mut self, row: &[f32]) {
        self.rows += 1;
        match &mut self.stream {
            Some(stream) => {
                if !(self.fused && stream.append_row_encoded(row)) {
                    stream.append_row(row, &mut self.view);
                }
            }
            None => {
                self.exact.extend_from_slice(row);
                self.dirty = true;
            }
        }
    }

    /// Extends `view` until it covers all `rows` — the exact-path escape
    /// hatch for a fused slot (swap, logit recording, tests that compare
    /// views). A no-op on exact slots, whose appends maintain the view.
    ///
    /// # Panics
    ///
    /// Panics if the slot is fused but its stream cannot decode (ruled out
    /// by the capability check when the mode is installed).
    pub(crate) fn ensure_view(&mut self, d: usize) {
        if let Some(stream) = &self.stream {
            let have = self.view.len() / d.max(1);
            if have < self.rows {
                let ok = stream.decode_rows_into(have, self.rows, &mut self.view);
                assert!(ok, "fused slot's stream lost its decode capability");
            }
        }
    }

    /// Clears the slot's row history (keeping buffers and any frozen
    /// stream calibration) so a retired sequence's storage can be reused
    /// by a new one without reallocating.
    pub(crate) fn reset_for_reuse(&mut self) {
        if let Some(stream) = &mut self.stream {
            stream.reset();
        }
        self.exact.clear();
        self.view.clear();
        self.dirty = false;
        self.rows = 0;
    }

    /// The slot's encoded tensor, when it runs the fused read path and
    /// the stream's encoded state covers every appended row.
    pub(crate) fn encoded(&self) -> Option<EncodedKv<'_>> {
        if !self.fused {
            return None;
        }
        let stream = self.stream.as_ref()?;
        let rows = stream.encoded_rows()?;
        if rows.len() != self.rows {
            return None;
        }
        let params = stream.fused_read_params()?;
        Some(EncodedKv {
            rows,
            params,
            plan: stream.read_plan(),
        })
    }
}

/// A cache that stores all KV data through a [`KvQuantizer`].
///
/// See the module docs for the incremental design and the per-channel
/// fallback semantics.
pub struct QuantizedCache {
    quantizer: Arc<dyn KvQuantizer>,
    mode: CacheMode,
    kernel: KernelMode,
    kv_dim: usize,
    layers: Vec<[KindSlot; 2]>,
}

impl QuantizedCache {
    /// Creates an incremental cache backed by `quantizer` (streaming for
    /// token-granular methods, recompute fallback otherwise).
    pub fn new(quantizer: Arc<dyn KvQuantizer>) -> Self {
        Self::with_mode(quantizer, CacheMode::Incremental)
    }

    /// Creates a cache that always re-quantizes the full prefix on read —
    /// the quadratic legacy path, kept for benchmarking and reference.
    pub fn new_recompute(quantizer: Arc<dyn KvQuantizer>) -> Self {
        Self::with_mode(quantizer, CacheMode::Recompute)
    }

    /// Creates a cache with an explicit materialization mode.
    pub fn with_mode(quantizer: Arc<dyn KvQuantizer>, mode: CacheMode) -> Self {
        Self {
            quantizer,
            mode,
            kernel: KernelMode::Exact,
            kv_dim: 0,
            layers: Vec::new(),
        }
    }

    /// The backing quantizer's name.
    pub fn quantizer_name(&self) -> &'static str {
        self.quantizer.name()
    }

    /// The active materialization mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Selects the attention read path. Takes effect at the next
    /// [`KvCacheBackend::reset`] (the session resets its cache before any
    /// row is appended). [`KernelMode::Fused`] engages per slot only when
    /// the quantizer's streams support the encoded read path; other slots
    /// (and the whole cache in [`CacheMode::Recompute`]) keep the exact
    /// behaviour.
    pub fn set_kernel_mode(&mut self, kernel: KernelMode) {
        self.kernel = kernel;
        for layer in &mut self.layers {
            for slot in layer.iter_mut() {
                assert_eq!(slot.rows, 0, "kernel mode must be set before appends");
                slot.fused = kernel == KernelMode::Fused
                    && slot
                        .stream
                        .as_ref()
                        .is_some_and(|s| s.fused_read_params().is_some());
            }
        }
    }

    /// The requested kernel mode.
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// Whether the `(layer, kind)` slot runs on the streaming path.
    pub fn is_streaming(&self, layer: usize, kind: KvKind) -> bool {
        self.layers[layer][slot_index(kind)].stream.is_some()
    }

    /// Whether the `(layer, kind)` slot actually runs the fused read path.
    pub fn is_fused(&self, layer: usize, kind: KvKind) -> bool {
        self.layers[layer][slot_index(kind)].fused
    }

    fn refresh(&mut self, layer: usize, kind: KvKind) {
        let kv_dim = self.kv_dim;
        let slot = &mut self.layers[layer][slot_index(kind)];
        if slot.stream.is_none() && slot.dirty {
            let rows = slot.exact.len() / kv_dim.max(1);
            slot.view = self
                .quantizer
                .roundtrip_matrix(&slot.exact, rows, kv_dim, layer, kind);
            slot.dirty = false;
        }
    }
}

fn slot_index(kind: KvKind) -> usize {
    match kind {
        KvKind::Key => 0,
        KvKind::Value => 1,
    }
}

impl std::fmt::Debug for QuantizedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedCache")
            .field("quantizer", &self.quantizer.name())
            .field("mode", &self.mode)
            .field("kv_dim", &self.kv_dim)
            .field("layers", &self.layers.len())
            .finish()
    }
}

impl KvCacheBackend for QuantizedCache {
    fn reset(&mut self, num_layers: usize, kv_dim: usize) {
        self.kv_dim = kv_dim;
        let kernel = self.kernel;
        self.layers = (0..num_layers)
            .map(|layer| {
                let mk = |kind: KvKind| {
                    let stream = match self.mode {
                        CacheMode::Incremental => self.quantizer.row_stream(kv_dim, layer, kind),
                        CacheMode::Recompute => None,
                    };
                    let mut slot = KindSlot::new(stream);
                    slot.fused = kernel == KernelMode::Fused
                        && slot
                            .stream
                            .as_ref()
                            .is_some_and(|s| s.fused_read_params().is_some());
                    slot
                };
                [mk(KvKind::Key), mk(KvKind::Value)]
            })
            .collect();
    }

    fn append(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.kv_dim, "key width mismatch");
        assert_eq!(v.len(), self.kv_dim, "value width mismatch");
        let [key_slot, value_slot] = &mut self.layers[layer];
        key_slot.append(k);
        value_slot.append(v);
    }

    fn seq_len(&self, layer: usize) -> usize {
        self.layers[layer][0].rows
    }

    fn keys(&mut self, layer: usize) -> &[f32] {
        self.refresh(layer, KvKind::Key);
        let d = self.kv_dim;
        let slot = &mut self.layers[layer][0];
        slot.ensure_view(d);
        &slot.view
    }

    fn values(&mut self, layer: usize) -> &[f32] {
        self.refresh(layer, KvKind::Value);
        let d = self.kv_dim;
        let slot = &mut self.layers[layer][1];
        slot.ensure_view(d);
        &slot.view
    }

    /// Mean stored bits per element across **all layers and both tensor
    /// kinds, weighted by each slot's actual row count**. Streaming slots
    /// that track their encoded payload report exact stored bytes; other
    /// slots use the quantizer's nominal estimate at their true
    /// `(rows, d)`. An empty cache reports the nominal single-row
    /// estimate.
    fn stored_bits_per_elem(&self) -> f64 {
        let d = self.kv_dim.max(1);
        let mut bits = 0.0f64;
        let mut elems = 0usize;
        for layer in &self.layers {
            for slot in layer {
                if slot.rows == 0 {
                    continue;
                }
                let n = slot.rows * d;
                bits += match slot.stream.as_ref().and_then(|s| s.payload_bytes()) {
                    Some(bytes) => bytes as f64 * 8.0,
                    None => self.quantizer.effective_bits(slot.rows, d) * n as f64,
                };
                elems += n;
            }
        }
        if elems == 0 {
            return self.quantizer.effective_bits(1, d);
        }
        bits / elems as f64
    }

    fn encoded_kv(&self, layer: usize) -> Option<(EncodedKv<'_>, EncodedKv<'_>)> {
        let [key_slot, value_slot] = &self.layers[layer];
        Some((key_slot.encoded()?, value_slot.encoded()?))
    }

    fn set_kernel_mode(&mut self, kernel: KernelMode) -> KernelMode {
        QuantizedCache::set_kernel_mode(self, kernel);
        self.kernel
    }

    fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaken_core::OnlineCost;

    /// A deliberately terrible quantizer: rounds to integers.
    struct RoundingQuantizer;

    impl KvQuantizer for RoundingQuantizer {
        fn name(&self) -> &'static str {
            "round"
        }
        fn roundtrip_matrix(
            &self,
            data: &[f32],
            _rows: usize,
            _d: usize,
            _layer: usize,
            _kind: KvKind,
        ) -> Vec<f32> {
            data.iter().map(|x| x.round()).collect()
        }
        fn effective_bits(&self, _rows: usize, _d: usize) -> f64 {
            8.0
        }
        fn online_cost(&self) -> OnlineCost {
            OnlineCost::free()
        }
    }

    /// Row-bit accounting depends on rows: 16 bits for short prefixes,
    /// 4 for long ones (like KIVI's residual window amortization).
    struct RowDependentBits;

    impl KvQuantizer for RowDependentBits {
        fn name(&self) -> &'static str {
            "rowdep"
        }
        fn roundtrip_matrix(
            &self,
            data: &[f32],
            _rows: usize,
            _d: usize,
            _layer: usize,
            _kind: KvKind,
        ) -> Vec<f32> {
            data.to_vec()
        }
        fn effective_bits(&self, rows: usize, _d: usize) -> f64 {
            if rows >= 4 {
                4.0
            } else {
                16.0
            }
        }
        fn online_cost(&self) -> OnlineCost {
            OnlineCost::free()
        }
    }

    #[test]
    fn exact_cache_roundtrips() {
        let mut c = ExactCache::new();
        c.reset(2, 4);
        c.append(0, &[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
        c.append(0, &[9.0; 4], &[10.0; 4]);
        assert_eq!(c.seq_len(0), 2);
        assert_eq!(c.seq_len(1), 0);
        assert_eq!(&c.keys(0)[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.values(0)[4..], &[10.0; 4]);
        assert_eq!(c.stored_bits_per_elem(), 32.0);
    }

    #[test]
    fn quantized_cache_applies_quantizer() {
        let mut c = QuantizedCache::new(Arc::new(RoundingQuantizer));
        c.reset(1, 2);
        c.append(0, &[1.4, 2.6], &[0.2, -0.7]);
        assert_eq!(c.keys(0), &[1.0, 3.0]);
        assert_eq!(c.values(0), &[0.0, -1.0]);
        assert_eq!(c.quantizer_name(), "round");
        assert_eq!(c.stored_bits_per_elem(), 8.0);
        // No row_stream -> fallback path.
        assert!(!c.is_streaming(0, KvKind::Key));
    }

    #[test]
    fn quantized_cache_refreshes_after_append() {
        let mut c = QuantizedCache::new(Arc::new(RoundingQuantizer));
        c.reset(1, 1);
        c.append(0, &[1.4], &[1.4]);
        assert_eq!(c.keys(0), &[1.0]);
        c.append(0, &[2.6], &[2.6]);
        assert_eq!(c.keys(0), &[1.0, 3.0]);
        assert_eq!(c.seq_len(0), 2);
    }

    #[test]
    fn stored_bits_weight_layers_by_actual_rows() {
        let mut c = QuantizedCache::new(Arc::new(RowDependentBits));
        c.reset(2, 2);
        // Layer 0: 4 rows (4.0 bits); layer 1: 1 row (16.0 bits).
        for i in 0..4 {
            c.append(0, &[i as f32, 0.0], &[0.0, 0.0]);
        }
        c.append(1, &[1.0, 1.0], &[2.0, 2.0]);
        // Elements: layer0 = 4*2*2 = 16 at 4 bits, layer1 = 1*2*2 = 4 at
        // 16 bits -> (16*4 + 4*16) / 20 = 6.4. The old layer-0-only
        // extrapolation would have claimed 4.0.
        let bits = c.stored_bits_per_elem();
        assert!((bits - 6.4).abs() < 1e-9, "{bits}");
    }

    #[test]
    fn empty_quantized_cache_reports_nominal_bits() {
        let mut c = QuantizedCache::new(Arc::new(RoundingQuantizer));
        c.reset(1, 8);
        assert_eq!(c.stored_bits_per_elem(), 8.0);
    }

    #[test]
    fn recompute_mode_disables_streams() {
        use oaken_baselines_test_helpers::oaken_quantizer;
        let q = Arc::new(oaken_quantizer(16, 1));
        let mut inc = QuantizedCache::new(q.clone());
        inc.reset(1, 16);
        assert!(inc.is_streaming(0, KvKind::Key));
        let mut rec = QuantizedCache::new_recompute(q);
        rec.reset(1, 16);
        assert!(!rec.is_streaming(0, KvKind::Key));
        assert_eq!(rec.mode(), CacheMode::Recompute);
    }

    #[test]
    fn incremental_and_recompute_views_are_bit_identical_for_oaken() {
        use oaken_baselines_test_helpers::{oaken_quantizer, test_row};
        let d = 32;
        let q = Arc::new(oaken_quantizer(d, 2));
        let mut inc = QuantizedCache::new(q.clone());
        let mut rec = QuantizedCache::new_recompute(q);
        inc.reset(2, d);
        rec.reset(2, d);
        for t in 0..20 {
            for layer in 0..2 {
                let k = test_row(d, t * 7 + layer as u64);
                let v = test_row(d, t * 13 + layer as u64 + 99);
                inc.append(layer, &k, &v);
                rec.append(layer, &k, &v);
            }
            for layer in 0..2 {
                let a: Vec<u32> = inc.keys(layer).iter().map(|x| x.to_bits()).collect();
                let b: Vec<u32> = rec.keys(layer).iter().map(|x| x.to_bits()).collect();
                assert_eq!(a, b, "keys diverged at token {t} layer {layer}");
                let a: Vec<u32> = inc.values(layer).iter().map(|x| x.to_bits()).collect();
                let b: Vec<u32> = rec.values(layer).iter().map(|x| x.to_bits()).collect();
                assert_eq!(a, b, "values diverged at token {t} layer {layer}");
            }
        }
        // The streaming slots track exact payload bytes.
        let bits = inc.stored_bits_per_elem();
        assert!(bits > 3.0 && bits < 8.0, "{bits}");
    }

    /// Tiny helpers building a profiled Oaken quantizer for cache tests.
    mod oaken_baselines_test_helpers {
        use oaken_core::{KvKind, OakenConfig, OakenQuantizer, OfflineProfiler};

        pub fn test_row(d: usize, seed: u64) -> Vec<f32> {
            (0..d)
                .map(|i| {
                    let u = ((i as u64)
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(seed)
                        >> 33) as f32
                        / (1u64 << 31) as f32;
                    let base = (u - 0.5) * 6.0;
                    match i % 17 {
                        0 => base * 9.0,
                        1 => base * 0.02,
                        _ => base,
                    }
                })
                .collect()
        }

        pub fn oaken_quantizer(d: usize, layers: usize) -> OakenQuantizer {
            let config = OakenConfig::default();
            let mut p = OfflineProfiler::new(config.clone(), layers);
            for s in 0..24 {
                for layer in 0..layers {
                    for kind in KvKind::ALL {
                        p.observe(layer, kind, &test_row(d.max(64), s * 3 + layer as u64));
                    }
                }
            }
            OakenQuantizer::new(config, p.try_finish().unwrap())
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn append_checks_width() {
        let mut c = ExactCache::new();
        c.reset(1, 4);
        c.append(0, &[1.0], &[1.0]);
    }

    #[test]
    fn kernel_mode_parses_and_labels() {
        assert_eq!(KernelMode::parse("exact"), Some(KernelMode::Exact));
        assert_eq!(KernelMode::parse("FUSED"), Some(KernelMode::Fused));
        assert_eq!(KernelMode::parse("turbo"), None);
        assert_eq!(KernelMode::Fused.label(), "fused");
        assert_eq!(KernelMode::default(), KernelMode::Exact);
    }

    /// Fused mode must keep rows encoded-only (no f32 view resident),
    /// expose them through `encoded_kv`, and still produce the exact
    /// view bit-identically when an exact reader asks.
    #[test]
    fn fused_mode_skips_views_and_decodes_lazily() {
        use oaken_baselines_test_helpers::{oaken_quantizer, test_row};
        let d = 32;
        let q = Arc::new(oaken_quantizer(d, 1));
        let mut exact = QuantizedCache::new(q.clone());
        exact.reset(1, d);
        let mut fused = QuantizedCache::new(q);
        fused.set_kernel_mode(KernelMode::Fused);
        fused.reset(1, d);
        assert!(fused.is_fused(0, KvKind::Key));
        for t in 0..12u64 {
            let k = test_row(d, t * 3 + 1);
            let v = test_row(d, t * 5 + 2);
            exact.append(0, &k, &v);
            fused.append(0, &k, &v);
        }
        // No dequantized image resident; encoded rows fully exposed.
        assert!(fused.layers[0][0].view.is_empty());
        assert!(fused.layers[0][1].view.is_empty());
        let (ek, ev) = fused.encoded_kv(0).expect("fused cache exposes encoding");
        assert_eq!(ek.rows.len(), 12);
        assert_eq!(ev.rows.len(), 12);
        assert!(KvCacheBackend::encoded_kv(&exact, 0).is_none());
        // Lazy decode reproduces the exact views bit-for-bit.
        let a: Vec<u32> = exact.keys(0).iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = fused.keys(0).iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b);
        let a: Vec<u32> = exact.values(0).iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = fused.values(0).iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b);
        // And appends after a lazy decode keep both halves consistent.
        let k = test_row(d, 777);
        let v = test_row(d, 778);
        exact.append(0, &k, &v);
        fused.append(0, &k, &v);
        let a: Vec<u32> = exact.keys(0).iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = fused.keys(0).iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b);
    }
}

//! Feed-forward networks: dense (SwiGLU or plain) and sparse
//! mixture-of-experts (Mixtral's top-2 of 8).

use oaken_tensor::activation::Activation;
use oaken_tensor::{softmax_in_place, Tensor};

/// One expert (or the only FFN of a dense layer).
#[derive(Debug, Clone)]
pub struct DenseFfn {
    /// Gate matrix `[ffn_hidden × d]`, present for SwiGLU-style FFNs.
    pub w_gate: Option<Tensor>,
    /// Up-projection `[ffn_hidden × d]`.
    pub w_up: Tensor,
    /// Down-projection `[d × ffn_hidden]`.
    pub w_down: Tensor,
}

impl DenseFfn {
    /// Applies the FFN to one token vector.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes disagree with `x`.
    pub fn forward(&self, x: &[f32], act: Activation) -> Vec<f32> {
        let mut up = self.w_up.matvec(x).expect("up-projection shape");
        match &self.w_gate {
            Some(g) => {
                // SwiGLU: down( act(gate(x)) ⊙ up(x) ).
                let mut gate = g.matvec(x).expect("gate shape");
                act.apply_in_place(&mut gate);
                for (u, g) in up.iter_mut().zip(&gate) {
                    *u *= g;
                }
            }
            None => act.apply_in_place(&mut up),
        }
        self.w_down.matvec(&up).expect("down-projection shape")
    }

    /// Applies the FFN to a batch of token vectors through
    /// [`Tensor::matvec_batch`], bit-exact per vector with
    /// [`DenseFfn::forward`].
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes disagree with the inputs.
    pub fn forward_batch(&self, xs: &[&[f32]], act: Activation) -> Vec<Vec<f32>> {
        self.forward_batch_on(&oaken_runtime::Runtime::serial(), xs, act)
    }

    /// [`DenseFfn::forward_batch`] with its three weight sweeps sharded
    /// across `rt` (row-parallel [`Tensor::matvec_batch_on`]) — bit-exact
    /// with the serial path for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes disagree with the inputs.
    pub fn forward_batch_on(
        &self,
        rt: &oaken_runtime::Runtime,
        xs: &[&[f32]],
        act: Activation,
    ) -> Vec<Vec<f32>> {
        let mut ups = self
            .w_up
            .matvec_batch_on(rt, xs)
            .expect("up-projection shape");
        match &self.w_gate {
            Some(g) => {
                let mut gates = g.matvec_batch_on(rt, xs).expect("gate shape");
                for (up, gate) in ups.iter_mut().zip(&mut gates) {
                    act.apply_in_place(gate);
                    for (u, g) in up.iter_mut().zip(gate.iter()) {
                        *u *= g;
                    }
                }
            }
            None => {
                for up in &mut ups {
                    act.apply_in_place(up);
                }
            }
        }
        let refs: Vec<&[f32]> = ups.iter().map(|v| v.as_slice()).collect();
        self.w_down
            .matvec_batch_on(rt, &refs)
            .expect("down-projection shape")
    }
}

/// The FFN of one decoder layer: dense or mixture-of-experts.
#[derive(Debug, Clone)]
pub enum FfnWeights {
    /// A single dense FFN.
    Dense(DenseFfn),
    /// Router + experts, activating the top-k per token.
    Moe {
        /// Router matrix `[num_experts × d]`.
        router: Tensor,
        /// Expert FFNs.
        experts: Vec<DenseFfn>,
        /// Experts activated per token.
        top_k: usize,
    },
}

impl FfnWeights {
    /// Applies the FFN (dispatching to the routed experts for MoE).
    pub fn forward(&self, x: &[f32], act: Activation) -> Vec<f32> {
        match self {
            FfnWeights::Dense(ffn) => ffn.forward(x, act),
            FfnWeights::Moe {
                router,
                experts,
                top_k,
            } => {
                let mut logits = router.matvec(x).expect("router shape");
                softmax_in_place(&mut logits);
                // Top-k experts by routing weight.
                let mut idx: Vec<usize> = (0..experts.len()).collect();
                idx.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).unwrap());
                let chosen = &idx[..(*top_k).min(experts.len())];
                let norm: f32 = chosen.iter().map(|&i| logits[i]).sum();
                let mut out = vec![0.0f32; x.len()];
                for &e in chosen {
                    let w = if norm > 0.0 { logits[e] / norm } else { 0.0 };
                    let y = experts[e].forward(x, act);
                    for (o, v) in out.iter_mut().zip(y) {
                        *o += w * v;
                    }
                }
                out
            }
        }
    }

    /// Applies the FFN to a batch of vectors, bit-exact per vector with
    /// [`FfnWeights::forward`]. Dense FFNs share one weight sweep across
    /// the batch; MoE layers route per token, so they fall back to
    /// per-vector execution (each token may hit different experts).
    pub fn forward_batch(&self, xs: &[&[f32]], act: Activation) -> Vec<Vec<f32>> {
        self.forward_batch_on(&oaken_runtime::Runtime::serial(), xs, act)
    }

    /// [`FfnWeights::forward_batch`] sharded across `rt`: dense layers
    /// row-shard their weight sweeps; MoE layers run one task per token
    /// (each token's routed expert pass is independent, and results merge
    /// in token order) — bit-exact with the serial path either way.
    pub fn forward_batch_on(
        &self,
        rt: &oaken_runtime::Runtime,
        xs: &[&[f32]],
        act: Activation,
    ) -> Vec<Vec<f32>> {
        match self {
            FfnWeights::Dense(ffn) => ffn.forward_batch_on(rt, xs, act),
            moe @ FfnWeights::Moe { .. } if !rt.is_serial() && xs.len() > 1 => {
                rt.map(xs.len(), |i| moe.forward(xs[i], act))
            }
            moe @ FfnWeights::Moe { .. } => xs.iter().map(|x| moe.forward(x, act)).collect(),
        }
    }

    /// Number of experts whose weights must be resident (1 for dense).
    pub fn num_experts(&self) -> usize {
        match self {
            FfnWeights::Dense(_) => 1,
            FfnWeights::Moe { experts, .. } => experts.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_ffn(d: usize) -> DenseFfn {
        DenseFfn {
            w_gate: None,
            w_up: Tensor::eye(d),
            w_down: Tensor::eye(d),
        }
    }

    #[test]
    fn relu_ffn_clamps_negative() {
        let ffn = identity_ffn(3);
        let out = ffn.forward(&[1.0, -2.0, 3.0], Activation::Relu);
        assert_eq!(out, vec![1.0, 0.0, 3.0]);
    }

    #[test]
    fn gated_ffn_multiplies_gate() {
        let d = 2;
        let ffn = DenseFfn {
            w_gate: Some(Tensor::eye(d)),
            w_up: Tensor::eye(d),
            w_down: Tensor::eye(d),
        };
        let x = vec![2.0, -1.0];
        let out = ffn.forward(&x, Activation::Silu);
        // silu(2)*2, silu(-1)*(-1)
        let silu = |v: f32| v / (1.0 + (-v).exp());
        assert!((out[0] - silu(2.0) * 2.0).abs() < 1e-6);
        assert!((out[1] - -silu(-1.0)).abs() < 1e-6);
    }

    #[test]
    fn moe_routes_to_strongest_expert() {
        let d = 2;
        // Expert 0 doubles, expert 1 negates.
        let double = DenseFfn {
            w_gate: None,
            w_up: Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0], &[2, 2]).unwrap(),
            w_down: Tensor::eye(d),
        };
        let negate = DenseFfn {
            w_gate: None,
            w_up: Tensor::from_vec(vec![-1.0, 0.0, 0.0, -1.0], &[2, 2]).unwrap(),
            w_down: Tensor::eye(d),
        };
        // Router hugely favours expert 0 for positive x[0].
        let router = Tensor::from_vec(vec![100.0, 0.0, -100.0, 0.0], &[2, 2]).unwrap();
        let moe = FfnWeights::Moe {
            router,
            experts: vec![double, negate],
            top_k: 1,
        };
        let out = moe.forward(&[1.0, 1.0], Activation::Relu);
        assert_eq!(out, vec![2.0, 2.0]);
        assert_eq!(moe.num_experts(), 2);
    }

    #[test]
    fn moe_top2_blends_experts() {
        let d = 1;
        let a = DenseFfn {
            w_gate: None,
            w_up: Tensor::from_vec(vec![1.0], &[1, 1]).unwrap(),
            w_down: Tensor::eye(d),
        };
        let b = DenseFfn {
            w_gate: None,
            w_up: Tensor::from_vec(vec![3.0], &[1, 1]).unwrap(),
            w_down: Tensor::eye(d),
        };
        // Equal routing.
        let router = Tensor::from_vec(vec![0.0, 0.0], &[2, 1]).unwrap();
        let moe = FfnWeights::Moe {
            router,
            experts: vec![a, b],
            top_k: 2,
        };
        let out = moe.forward(&[1.0], Activation::Relu);
        assert!((out[0] - 2.0).abs() < 1e-5, "{out:?}");
    }
}

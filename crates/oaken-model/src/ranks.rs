//! Tensor-parallel rank-sharded execution: N engine ranks, each owning a
//! contiguous slice of the KV heads, the matching row shard of every
//! projection matrix, and a **private** [`PagedKvPool`] shard — glued back
//! together by the deterministic all-reduce of `oaken-runtime`'s
//! [`Comm`].
//!
//! This is the software analogue of Oaken's multi-channel deployment
//! (§5.2: one quantization engine per memory channel, each owning its
//! shard of the KV stream): work is partitioned *by ownership* up front,
//! every floating-point accumulation chain lives inside exactly one rank,
//! and the only cross-rank arithmetic is [`Comm::all_reduce`]'s
//! fixed-shape combine tree. Consequences, in the repository's standing
//! bit-exactness discipline:
//!
//! * **Row-sharded projections** (`Wq`/`Wk`/`Wv` by head, `Wo`, FFN and
//!   LM head by [`chunk_range`]) reproduce the unsharded kernels bit for
//!   bit: every output element is computed by exactly one rank with the
//!   serial per-row accumulation chain ([`Tensor::matvec_batch_rows`]),
//!   and the all-reduce's `+0.0` identity passes the owner's bits through
//!   unchanged.
//! * **Attention is head-local**, so each rank attends over its own KV
//!   heads against its own pool shard; the rank outputs are disjoint
//!   q-head slices gathered by one all-reduce per layer.
//! * **Pool shards append full-width rows** (Oaken's scales are whole-row
//!   min/max) and store only their heads' channels; the shard's decoded
//!   views are bitwise slices of the 1-rank views (`sharding` tests), so
//!   rank-local attention reads exactly the bits the unsharded kernel
//!   would have read for those heads.
//!
//! Net: N-rank logits are **bit-exact with the 1-rank engine** in
//! [`KernelMode::Exact`] for every thread count, and identical-within-mode
//! (in fact also bitwise, since sliced fused decode is a bitwise slice of
//! the full fused decode) for [`KernelMode::Fused`].
//!
//! Communication volume is accounted the way a real deployment would pay
//! it: one all-reduce per projection merge (attention gather, `Wo`, FFN
//! hidden, FFN down, and the final logits), plus a per-row scale sync for
//! quantized pools (each rank computes its own K/V channels; only the
//! whole-row min/max scales must be agreed globally).
//!
//! [`KernelMode::Exact`]: crate::cache::KernelMode::Exact
//! [`KernelMode::Fused`]: crate::cache::KernelMode::Fused

use crate::attention::{attend_kv_group, attend_kv_group_fused, AttentionShape, EncodedKv};
use crate::cache::KernelMode;
use crate::config::{ModelConfig, Positional};
use crate::ffn::{DenseFfn, FfnWeights};
use crate::model::{BatchStep, Model};
use crate::pool::{KvReadStats, KvTransfer, PagedKvPool, PoolError, PrefixAlloc, SeqId};
use crate::trie::PrefixStats;
use oaken_core::kernel::{EncodedReadPlan, FusedReadParams};
use oaken_core::FusedVector;
use oaken_mmu::{FaultPlan, FaultStats, SwapReceipt};
use oaken_runtime::{chunk_range, Comm, Runtime};
use oaken_tensor::activation::Activation;
use oaken_tensor::rope::{apply_rope, DEFAULT_THETA};
use oaken_tensor::{softmax_in_place, Tensor};
use std::collections::HashMap;
use std::ops::Range;

/// The static shard-ownership map of a rank count over a model: which
/// contiguous KV heads (and therefore which query heads and which K/V
/// channels) each rank owns. Head ranges come from [`chunk_range`], so
/// odd head counts split as evenly as possible (remainder heads to the
/// low ranks) — `head_ranges_balance_odd_counts` in `oaken-runtime` pins
/// the arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPlan {
    ranks: usize,
    num_kv_heads: usize,
    head_dim: usize,
    group: usize,
    d_model: usize,
}

impl RankPlan {
    /// Builds the ownership map.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= ranks <= cfg.num_kv_heads` (a rank must own at
    /// least one whole KV head — attention is head-local, so heads are
    /// the finest shard unit).
    pub fn new(cfg: &ModelConfig, ranks: usize) -> Self {
        assert!(ranks >= 1, "need at least one rank");
        assert!(
            ranks <= cfg.num_kv_heads,
            "{ranks} ranks cannot shard {} KV heads (each rank owns at least one)",
            cfg.num_kv_heads
        );
        Self {
            ranks,
            num_kv_heads: cfg.num_kv_heads,
            head_dim: cfg.head_dim(),
            group: (cfg.num_heads / cfg.num_kv_heads).max(1),
            d_model: cfg.d_model,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The contiguous KV heads rank `r` owns.
    pub fn kv_heads(&self, r: usize) -> Range<usize> {
        chunk_range(r, self.num_kv_heads, self.ranks)
    }

    /// The K/V row channels rank `r` stores (its heads × `head_dim`).
    pub fn kv_channels(&self, r: usize) -> Range<usize> {
        let h = self.kv_heads(r);
        h.start * self.head_dim..h.end * self.head_dim
    }

    /// The query/attention-output channels rank `r` computes (its heads ×
    /// GQA group × `head_dim`).
    pub fn q_channels(&self, r: usize) -> Range<usize> {
        let h = self.kv_heads(r);
        h.start * self.group * self.head_dim..h.end * self.group * self.head_dim
    }
}

/// The engine side of tensor parallelism: one private [`PagedKvPool`]
/// shard per rank, mutated in lockstep through this façade so sequence
/// ids, trie structure, and suspend/resume state never diverge across
/// ranks.
///
/// Rank 0 is the **lead shard**: it alone carries the fault injectors
/// (so a fault plan fires once per logical operation, not once per rank)
/// and answers the trie/statistics queries that are identical across
/// ranks by construction.
pub struct RankedPools {
    plan: RankPlan,
    pools: Vec<PagedKvPool>,
    peaks: Vec<u32>,
}

impl RankedPools {
    /// Wraps an unsharded pool as the single rank of a 1-rank plan (the
    /// legacy engine path, byte-for-byte).
    pub fn single(cfg: &ModelConfig, pool: PagedKvPool) -> Self {
        Self {
            plan: RankPlan::new(cfg, 1),
            pools: vec![pool],
            peaks: vec![0],
        }
    }

    /// Splits an idle donor pool into `ranks` private shards: device and
    /// host capacity are divided by [`chunk_range`], each shard owns its
    /// plan's KV heads, and the donor's quantizer, block size, sharing
    /// flag, and kernel mode carry over. `ranks <= 1` wraps the donor
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the donor holds live or suspended sequences, if `ranks`
    /// exceeds the model's KV heads, if the split leaves a rank without
    /// pages, or if the donor's quantizer cannot stream encoded rows
    /// (sharding slices the encoded form).
    pub fn split(cfg: &ModelConfig, donor: PagedKvPool, ranks: usize) -> Self {
        if ranks <= 1 {
            return Self::single(cfg, donor);
        }
        assert!(
            donor.active_seqs() == 0 && donor.suspended_seqs() == 0,
            "pool split requires an idle donor pool"
        );
        let plan = RankPlan::new(cfg, ranks);
        let quantizer = donor.quantizer_handle();
        let capacity = donor.capacity_pages() as usize;
        let host = donor.host_capacity_pages() as usize;
        let page_size = donor.page_size();
        let block_tokens = donor.block_tokens();
        let sharing = donor.prefix_sharing();
        let kernel = donor.kernel_mode();
        let pools: Vec<PagedKvPool> = (0..ranks)
            .map(|r| {
                let pages = chunk_range(r, capacity, ranks).len() as u32;
                assert!(
                    pages > 0,
                    "capacity {capacity} leaves rank {r} without pages"
                );
                let mut p = PagedKvPool::for_model_shard(
                    cfg,
                    quantizer.clone(),
                    pages,
                    page_size,
                    plan.kv_heads(r),
                );
                p.set_host_pages(chunk_range(r, host, ranks).len() as u32);
                p.set_block_tokens(block_tokens);
                p.set_prefix_sharing(sharing);
                p.set_kernel_mode(kernel);
                p
            })
            .collect();
        Self {
            plan,
            pools,
            peaks: vec![0; ranks],
        }
    }

    /// The ownership map.
    pub fn plan(&self) -> &RankPlan {
        &self.plan
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.pools.len()
    }

    /// The lead (rank 0) shard — the one carrying fault injectors and
    /// answering rank-invariant queries.
    pub fn lead(&self) -> &PagedKvPool {
        &self.pools[0]
    }

    /// Mutable lead shard.
    pub fn lead_mut(&mut self) -> &mut PagedKvPool {
        &mut self.pools[0]
    }

    /// All rank shards, rank order.
    pub fn ranks(&self) -> &[PagedKvPool] {
        &self.pools
    }

    /// All rank shards, mutable.
    pub fn ranks_mut(&mut self) -> &mut [PagedKvPool] {
        &mut self.pools
    }

    /// Whether the shards store quantized streams (drives the scale-sync
    /// accounting of the ranked forward pass).
    pub(crate) fn quantized(&self) -> bool {
        self.pools[0].quantizer_handle().is_some()
    }

    /// Allocates a sequence on every rank, probing the prefix trie; the
    /// rank pools allocate in lockstep, so the ids and trie matches must
    /// agree (asserted — a divergence would mean the façade was bypassed).
    pub fn alloc_seq_with_prefix(&mut self, tokens: &[u32]) -> PrefixAlloc {
        let first = self.pools[0].alloc_seq_with_prefix(tokens);
        for p in &mut self.pools[1..] {
            let a = p.alloc_seq_with_prefix(tokens);
            assert_eq!(
                a.seq, first.seq,
                "rank pools allocate sequence ids in lockstep"
            );
            assert_eq!(
                a.matched_tokens, first.matched_tokens,
                "rank tries agree on shared prefixes"
            );
        }
        first
    }

    /// Trie probe (rank-invariant: every rank seals the same token
    /// blocks, only the stored bytes differ).
    pub fn probe_prefix(&self, tokens: &[u32]) -> usize {
        self.pools[0].probe_prefix(tokens)
    }

    /// Frees a live sequence on every rank; returns the total pages
    /// released across shards (first error wins, but every rank is still
    /// torn down — containment over early exit).
    pub fn free_seq(&mut self, seq: SeqId) -> Result<u32, PoolError> {
        let mut total = 0u32;
        let mut err = None;
        for p in &mut self.pools {
            match p.free_seq(seq) {
                Ok(n) => total += n,
                Err(e) => err = err.or(Some(e)),
            }
        }
        err.map_or(Ok(total), Err)
    }

    /// Drops a suspended sequence's host pages on every rank.
    pub fn drop_suspended_seq(&mut self, seq: SeqId) -> Result<u32, PoolError> {
        let mut total = 0u32;
        let mut err = None;
        for p in &mut self.pools {
            match p.drop_suspended_seq(seq) {
                Ok(n) => total += n,
                Err(e) => err = err.or(Some(e)),
            }
        }
        err.map_or(Ok(total), Err)
    }

    /// Suspends a sequence to the host tier **atomically across shards**:
    /// followers first, the lead shard last — the lead carries the fault
    /// injectors, so its verdict arrives while every follower can still
    /// be rolled back (resumed) without touching the fault schedule. On
    /// any failure the already-suspended shards are resumed and the error
    /// is returned; on success every shard is frozen and the summed
    /// receipt comes back.
    pub fn suspend_seq(&mut self, seq: SeqId) -> Result<SwapReceipt, PoolError> {
        if self.pools.len() == 1 {
            return self.pools[0].suspend_seq(seq);
        }
        let mut done: Vec<usize> = Vec::new();
        let mut total = SwapReceipt::default();
        for r in (1..self.pools.len()).chain([0]) {
            match self.pools[r].suspend_seq(seq) {
                Ok(receipt) => {
                    total.merge(receipt);
                    done.push(r);
                }
                Err(e) => {
                    for &d in &done {
                        self.pools[d]
                            .resume_seq(seq)
                            .expect("rolling back a follower suspend cannot fault");
                    }
                    return Err(e);
                }
            }
        }
        Ok(total)
    }

    /// Resumes a suspended sequence on every rank, lead shard first (its
    /// injectors get the only say before any follower thaws); follower
    /// resumes are headroom-pre-checked by the engine and fault-free by
    /// construction, so a follower failure rolls the resumed shards back
    /// to the host tier and surfaces the error.
    pub fn resume_seq(&mut self, seq: SeqId) -> Result<SwapReceipt, PoolError> {
        let mut done: Vec<usize> = Vec::new();
        let mut total = SwapReceipt::default();
        for r in 0..self.pools.len() {
            match self.pools[r].resume_seq(seq) {
                Ok(receipt) => {
                    total.merge(receipt);
                    done.push(r);
                }
                Err(e) => {
                    for &d in done.iter().rev() {
                        self.pools[d]
                            .suspend_seq(seq)
                            .expect("re-freezing a just-resumed shard cannot fail");
                    }
                    return Err(e);
                }
            }
        }
        Ok(total)
    }

    /// Device pages a suspended sequence needs on rank `r` to resume.
    pub fn suspended_seq_pages(&self, r: usize, seq: SeqId) -> u32 {
        self.pools[r].suspended_seq_pages(seq)
    }

    /// Exports a sequence from every rank as one [`KvTransfer`] per
    /// shard, in rank order — the send side of a cross-engine handoff.
    /// Export is teardown (each shard frees the sequence), so it probes
    /// the lead shard's liveness first and otherwise changes nothing;
    /// past that probe the per-rank exports are infallible.
    pub fn export_seq(&mut self, seq: SeqId) -> Result<Vec<KvTransfer>, PoolError> {
        if !self.pools[0].is_live(seq) {
            return Err(PoolError::UnknownSequence { seq });
        }
        Ok(self
            .pools
            .iter_mut()
            .map(|p| {
                p.export_seq(seq)
                    .expect("rank pools hold sequences in lockstep")
            })
            .collect())
    }

    /// Whether every rank can land its shard of `transfers` right now
    /// (the cluster's transfer clock polls this before committing).
    pub fn can_import(&self, transfers: &[KvTransfer]) -> Result<(), PoolError> {
        assert_eq!(
            transfers.len(),
            self.pools.len(),
            "a transfer carries one shard per rank"
        );
        for (p, t) in self.pools.iter().zip(transfers) {
            p.can_import(t)?;
        }
        Ok(())
    }

    /// Imports one [`KvTransfer`] per rank (produced by
    /// [`export_seq`](Self::export_seq) on a pool fleet with the same
    /// rank count), landing each shard in its rank's host tier under one
    /// lockstep sequence id. Every rank's capacity is pre-checked before
    /// any shard lands, so a rejection hands the transfers back untouched
    /// — there is no partial import to roll back.
    #[allow(clippy::type_complexity, clippy::result_large_err)]
    pub fn import_seq(
        &mut self,
        transfers: Vec<KvTransfer>,
    ) -> Result<(SeqId, SwapReceipt), (Vec<KvTransfer>, PoolError)> {
        if let Err(e) = self.can_import(&transfers) {
            return Err((transfers, e));
        }
        let mut total = SwapReceipt::default();
        let mut id = None;
        let mut pending = transfers.into_iter();
        for r in 0..self.pools.len() {
            let t = pending.next().expect("length asserted above");
            match self.pools[r].import_seq(t) {
                Ok((seq, receipt)) => {
                    match id {
                        None => id = Some(seq),
                        Some(first) => assert_eq!(
                            seq, first,
                            "rank pools assign imported sequence ids in lockstep"
                        ),
                    }
                    total.merge(receipt);
                }
                Err((t, e)) => {
                    // Only the lead shard carries fault injectors, and it
                    // imports first — no follower state to unwind, and the
                    // untouched shards hand straight back.
                    assert!(
                        r == 0 && id.is_none(),
                        "follower imports cannot fail past the capacity pre-check"
                    );
                    let mut back = vec![t];
                    back.extend(pending);
                    return Err((back, e));
                }
            }
        }
        Ok((id.expect("at least one rank"), total))
    }

    /// Installs a fault plan on the **lead shard only**: one logical
    /// operation polls the schedule once, exactly like the 1-rank engine,
    /// and the shard orderings above guarantee followers never see a
    /// half-applied operation.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.pools[0].install_faults(plan);
    }

    /// Lead-shard fault counters (followers have no injectors).
    pub fn fault_stats(&self) -> FaultStats {
        self.pools[0].fault_stats()
    }

    /// Requests a kernel mode on every rank; returns the mode actually
    /// installed (capability-gated identically on every shard — they wrap
    /// the same quantizer).
    pub fn set_kernel_mode(&mut self, kernel: KernelMode) -> KernelMode {
        let mut installed = kernel;
        for p in &mut self.pools {
            installed = p.set_kernel_mode(kernel);
        }
        installed
    }

    /// The installed attention read path.
    pub fn kernel_mode(&self) -> KernelMode {
        self.pools[0].kernel_mode()
    }

    /// Prefix-cache counters (lead-shard view; hit/token/row counts are
    /// rank-invariant, byte counters are the lead shard's slice).
    pub fn prefix_stats(&self) -> PrefixStats {
        self.pools[0].prefix_stats()
    }

    /// Pages held by sealed shared blocks, summed across shards.
    pub fn shared_block_pages(&self) -> u32 {
        self.pools.iter().map(|p| p.shared_block_pages()).sum()
    }

    /// Total device capacity across shards.
    pub fn capacity_pages(&self) -> u32 {
        self.pools.iter().map(|p| p.capacity_pages()).sum()
    }

    /// Total free device pages across shards.
    pub fn free_pages(&self) -> u32 {
        self.pools.iter().map(|p| p.free_pages()).sum()
    }

    /// Pages currently allocated across all shards.
    pub fn pages_in_use(&self) -> u32 {
        self.pools
            .iter()
            .map(|p| p.capacity_pages() - p.free_pages())
            .sum()
    }

    /// KV read-path traffic summed across shards.
    pub fn kv_read_stats(&self) -> KvReadStats {
        let mut total = KvReadStats::default();
        for p in &self.pools {
            let s = p.kv_read_stats();
            total.fused_rows += s.fused_rows;
            total.fused_bytes += s.fused_bytes;
            total.exact_rows += s.exact_rows;
            total.exact_bytes += s.exact_bytes;
        }
        total
    }

    /// Folds the current per-rank page occupancy into the running peaks
    /// (called once per engine iteration, after the forward pass).
    pub fn note_page_peaks(&mut self) {
        for (p, peak) in self.pools.iter().zip(&mut self.peaks) {
            *peak = (*peak).max(p.capacity_pages() - p.free_pages());
        }
    }

    /// Peak allocated pages per rank over the run so far.
    pub fn page_peaks(&self) -> &[u32] {
        &self.peaks
    }
}

impl std::fmt::Debug for RankedPools {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedPools")
            .field("ranks", &self.pools.len())
            .field("free_pages", &self.free_pages())
            .field("peaks", &self.peaks)
            .finish()
    }
}

/// One rank's per-layer KV snapshot on the ranked attention path —
/// shard-width clone of the rank pool's rows (see `KvSnapshot` on the
/// unsharded parallel path).
enum RankSnap {
    Exact {
        keys: Vec<f32>,
        values: Vec<f32>,
    },
    Fused {
        keys: Vec<FusedVector>,
        values: Vec<FusedVector>,
        key_params: FusedReadParams,
        value_params: FusedReadParams,
        key_plan: Option<Box<EncodedReadPlan>>,
        value_plan: Option<Box<EncodedReadPlan>>,
    },
}

/// Computes each rank's rows of `w · x` per input, without merging:
/// `shards[r][s]` holds rows `rows_of(r)` of input `s`'s product, in the
/// serial kernel's exact bits ([`Tensor::matvec_batch_rows`]). Ranks run
/// as parallel tasks on `rt` — each rank's rows are a self-contained
/// accumulation chain, so scheduling is unobservable.
fn rank_rows<F>(rt: &Runtime, n: usize, w: &Tensor, xs: &[&[f32]], rows_of: F) -> Vec<Vec<Vec<f32>>>
where
    F: Fn(usize) -> Range<usize> + Sync,
{
    rt.map(n, |r| {
        w.matvec_batch_rows(xs, rows_of(r))
            .expect("rank row shard shape")
    })
}

/// Scatters per-rank compact row shards into zero-padded full-width
/// buffers (`xs.len() × m` per rank) and merges them with one
/// [`Comm::all_reduce`]: every output element is owned by exactly one
/// rank, so the reduce is a bit-exact gather (the `+0.0` identity passes
/// the owner's bits through). Returns the full-width products.
fn reduce_row_shards(
    comm: &mut Comm,
    shards: &[Vec<Vec<f32>>],
    n_inputs: usize,
    m: usize,
    rows_of: impl Fn(usize) -> Range<usize>,
) -> Vec<Vec<f32>> {
    let n = shards.len();
    let mut parts: Vec<Vec<f32>> = vec![vec![0.0f32; n_inputs * m]; n];
    for (r, outs) in shards.iter().enumerate() {
        let rows = rows_of(r);
        for (s, out) in outs.iter().enumerate() {
            parts[r][s * m + rows.start..s * m + rows.end].copy_from_slice(out);
        }
    }
    let mut refs: Vec<&mut [f32]> = parts.iter_mut().map(|p| p.as_mut_slice()).collect();
    comm.all_reduce(&mut refs);
    (0..n_inputs)
        .map(|s| parts[0][s * m..(s + 1) * m].to_vec())
        .collect()
}

/// Row-sharded matvec + all-reduce in one step: each rank computes its
/// `rows_of(rank)` rows, the shards gather through the reduce tree.
fn sharded_matvec<F>(
    rt: &Runtime,
    comm: &mut Comm,
    w: &Tensor,
    xs: &[&[f32]],
    m: usize,
    rows_of: F,
) -> Vec<Vec<f32>>
where
    F: Fn(usize) -> Range<usize> + Sync,
{
    let n = comm.num_ranks();
    let shards = rank_rows(rt, n, w, xs, &rows_of);
    reduce_row_shards(comm, &shards, xs.len(), m, rows_of)
}

/// The FFN hidden activation, row-sharded over the hidden dimension:
/// each rank computes its rows of `up` (and `gate`), applies the
/// activation and the gating product **locally** (elementwise, so shard
/// bits equal full-vector bits), and the shards gather through one
/// all-reduce. Returns the full hidden vector per input.
fn sharded_hidden(
    rt: &Runtime,
    comm: &mut Comm,
    ffn: &DenseFfn,
    xs: &[&[f32]],
    hidden: usize,
    act: Activation,
) -> Vec<Vec<f32>> {
    let n = comm.num_ranks();
    let shards: Vec<Vec<Vec<f32>>> = rt.map(n, |r| {
        let rows = chunk_range(r, hidden, n);
        let mut ups = ffn
            .w_up
            .matvec_batch_rows(xs, rows.clone())
            .expect("up-projection shard shape");
        match &ffn.w_gate {
            Some(g) => {
                let mut gates = g.matvec_batch_rows(xs, rows).expect("gate shard shape");
                for (up, gate) in ups.iter_mut().zip(&mut gates) {
                    act.apply_in_place(gate);
                    for (u, gv) in up.iter_mut().zip(gate.iter()) {
                        *u *= gv;
                    }
                }
            }
            None => {
                for up in &mut ups {
                    act.apply_in_place(up);
                }
            }
        }
        ups
    });
    reduce_row_shards(comm, &shards, xs.len(), hidden, |r| {
        chunk_range(r, hidden, n)
    })
}

/// One dense FFN application sharded across ranks: hidden rows on each
/// rank (one all-reduce), then down-projection rows (a second). Bit-exact
/// per input with [`DenseFfn::forward_batch_on`] — and, for a single
/// input, with the serial [`DenseFfn::forward`] (the lone-vector kernel
/// path is shared).
fn sharded_dense_ffn(
    rt: &Runtime,
    comm: &mut Comm,
    ffn: &DenseFfn,
    xs: &[&[f32]],
    d: usize,
    hidden: usize,
    act: Activation,
) -> Vec<Vec<f32>> {
    let n = comm.num_ranks();
    let hs = sharded_hidden(rt, comm, ffn, xs, hidden, act);
    let href: Vec<&[f32]> = hs.iter().map(|v| v.as_slice()).collect();
    sharded_matvec(rt, comm, &ffn.w_down, &href, d, |r| chunk_range(r, d, n))
}

/// One MoE layer sharded across ranks: the router's expert rows are
/// chunked across ranks and gathered once for the whole batch; softmax,
/// top-k selection, and the routed accumulation are replicated (pure
/// elementwise/ordering work on identical bits), and each chosen expert
/// runs as a rank-sharded dense FFN. Bit-exact per token with
/// [`FfnWeights::forward`].
#[allow(clippy::too_many_arguments)]
fn sharded_moe(
    rt: &Runtime,
    comm: &mut Comm,
    router: &Tensor,
    experts: &[DenseFfn],
    top_k: usize,
    xs: &[&[f32]],
    d: usize,
    hidden: usize,
    act: Activation,
) -> Vec<Vec<f32>> {
    let n = comm.num_ranks();
    let num_experts = experts.len();
    let all_logits = sharded_matvec(rt, comm, router, xs, num_experts, |r| {
        chunk_range(r, num_experts, n)
    });
    xs.iter()
        .zip(all_logits)
        .map(|(x, mut logits)| {
            softmax_in_place(&mut logits);
            let mut idx: Vec<usize> = (0..num_experts).collect();
            idx.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).unwrap());
            let chosen = &idx[..top_k.min(num_experts)];
            let norm: f32 = chosen.iter().map(|&i| logits[i]).sum();
            let mut out = vec![0.0f32; x.len()];
            for &e in chosen {
                let w = if norm > 0.0 { logits[e] / norm } else { 0.0 };
                let ys = sharded_dense_ffn(rt, comm, &experts[e], &[x], d, hidden, act);
                for (o, v) in out.iter_mut().zip(&ys[0]) {
                    *o += w * v;
                }
            }
            out
        })
        .collect()
}

/// The rank-sharded batched forward pass: [`Model::forward_batch_on`]'s
/// arithmetic executed as `comm.num_ranks()` cooperating ranks over
/// private pool shards, merged by deterministic all-reduces. Returns the
/// per-step logits and the batch slots whose append failed mid-forward
/// (the engine quarantines those exactly like the 1-rank poison path).
///
/// Per decoder layer the ranks communicate four times (attention gather,
/// `Wo` merge, FFN hidden merge, FFN down merge — MoE layers pay the
/// router merge plus two per routed expert instead), plus one logits
/// merge per forward; quantized pools additionally account a whole-row
/// scale sync per appended K/V row.
///
/// # Panics
///
/// Panics if `comm` and `pools` disagree on the rank count, on the same
/// shape violations as [`Model::forward_batch_on`], or if a follower
/// shard diverges from the lead (a façade-bypass bug).
pub fn forward_batch_ranked(
    model: &Model,
    rt: &Runtime,
    comm: &mut Comm,
    pools: &mut RankedPools,
    seqs: &[SeqId],
    steps: &[BatchStep],
) -> (Vec<Vec<f32>>, Vec<(usize, PoolError)>) {
    let cfg = model.config();
    let n = comm.num_ranks();
    assert_eq!(n, pools.num_ranks(), "comm and pools agree on rank count");
    for s in steps {
        assert!(
            (s.token as usize) < cfg.vocab_size,
            "token {} outside vocabulary {}",
            s.token,
            cfg.vocab_size
        );
        assert!(
            s.pos < cfg.max_seq_len,
            "sequence exceeds max_seq_len {}",
            cfg.max_seq_len
        );
    }
    #[cfg(debug_assertions)]
    {
        let mut last: HashMap<usize, usize> = HashMap::new();
        for s in steps {
            if let Some(prev) = last.insert(s.slot, s.pos) {
                debug_assert_eq!(
                    s.pos,
                    prev + 1,
                    "slot {}: chunked steps must have consecutive positions",
                    s.slot
                );
            }
        }
    }

    let plan = pools.plan().clone();
    let d = cfg.d_model;
    let hd = cfg.head_dim();
    let kv_dim = cfg.kv_dim();
    let nk = cfg.num_kv_heads;
    let group_width = plan.group * hd;
    let quantized = pools.quantized();
    // Global KV head → (owning rank, rank-local head index).
    let mut owner = vec![(0usize, 0usize); nk];
    for r in 0..n {
        for (local, kvh) in plan.kv_heads(r).enumerate() {
            owner[kvh] = (r, local);
        }
    }
    let shapes: Vec<AttentionShape> = (0..n)
        .map(|r| AttentionShape {
            num_heads: plan.kv_heads(r).len() * plan.group,
            num_kv_heads: plan.kv_heads(r).len(),
            head_dim: hd,
            window: cfg.sliding_window,
        })
        .collect();

    // Embedding is replicated on every rank (it feeds every shard).
    let mut xs: Vec<Vec<f32>> = steps
        .iter()
        .map(|s| {
            let mut x = model.embed().row(s.token as usize).to_vec();
            if let Some(pe) = model.pos_embed() {
                for (xi, pi) in x.iter_mut().zip(pe.row(s.pos)) {
                    *xi += pi;
                }
            }
            x
        })
        .collect();

    fn as_refs(vs: &[Vec<f32>]) -> Vec<&[f32]> {
        vs.iter().map(|v| v.as_slice()).collect()
    }

    let mut poisoned: Vec<(usize, PoolError)> = Vec::new();

    for (l, lw) in model.layers().iter().enumerate() {
        // Attention block. Norms are replicated; the three projections
        // are row-sharded by head ownership and *stay rank-local* — only
        // the attention outputs are gathered.
        let hs: Vec<Vec<f32>> = xs
            .iter()
            .map(|x| model.norm(x, &lw.attn_norm_w, lw.attn_norm_b.as_ref()))
            .collect();
        let href = as_refs(&hs);
        let mut q_parts = rank_rows(rt, n, &lw.wq, &href, |r| plan.q_channels(r));
        let k_parts = rank_rows(rt, n, &lw.wk, &href, |r| plan.kv_channels(r));
        let v_parts = rank_rows(rt, n, &lw.wv, &href, |r| plan.kv_channels(r));

        // Assemble the full-width K/V rows every rank appends: Oaken's
        // whole-row min/max scales need global agreement, which a real
        // deployment pays as a tiny per-row scale sync (accounted below);
        // the channel payloads themselves stay rank-local in the pools.
        let mut ks: Vec<Vec<f32>> = vec![vec![0.0f32; kv_dim]; steps.len()];
        let mut vs: Vec<Vec<f32>> = vec![vec![0.0f32; kv_dim]; steps.len()];
        for r in 0..n {
            let ch = plan.kv_channels(r);
            for i in 0..steps.len() {
                ks[i][ch.clone()].copy_from_slice(&k_parts[r][i]);
                vs[i][ch.clone()].copy_from_slice(&v_parts[r][i]);
            }
        }
        if quantized {
            // One (min, max) pair per appended K and V row.
            comm.account_sync(2 * steps.len() as u64, 2);
        }

        // Rope is head-local: each rank rotates its own query heads, and
        // the assembled K rows rotate whole heads in place — the same
        // bits as the unsharded path's full-width rotation.
        if cfg.positional == Positional::Rope {
            for (i, step) in steps.iter().enumerate() {
                for part in q_parts.iter_mut() {
                    for head in part[i].chunks_mut(hd) {
                        apply_rope(head, step.pos, DEFAULT_THETA);
                    }
                }
                for head in ks[i].chunks_mut(hd) {
                    apply_rope(head, step.pos, DEFAULT_THETA);
                }
            }
        }

        // Causal lengths, predicted exactly like the unsharded parallel
        // path (rank-invariant: every shard appends the same steps).
        let mut seq_lens = vec![0usize; steps.len()];
        let mut grown: HashMap<usize, usize> = HashMap::new();
        for (i, step) in steps.iter().enumerate() {
            let len = grown
                .entry(step.slot)
                .or_insert_with(|| pools.lead().seq_len(seqs[step.slot], l));
            *len += 1;
            seq_lens[i] = *len;
        }

        // Appends, serial in step order, lead shard first per step: the
        // lead's injectors give the only fault verdict, and a failure
        // poisons the slot before any follower stores the row — so a
        // quarantined teardown is the only cross-shard divergence that
        // can ever exist, and it removes the sequence everywhere.
        for (i, step) in steps.iter().enumerate() {
            if poisoned.iter().any(|&(s, _)| s == step.slot) {
                continue;
            }
            let seq = seqs[step.slot];
            if let Err(e) = pools.ranks_mut()[0].append(seq, l, &ks[i], &vs[i]) {
                poisoned.push((step.slot, e));
                continue;
            }
            let mut failed = None;
            for r in 1..n {
                if let Err(e) = pools.ranks_mut()[r].append(seq, l, &ks[i], &vs[i]) {
                    failed = Some(e);
                    break;
                }
            }
            if let Some(e) = failed {
                poisoned.push((step.slot, e));
            }
        }

        // Per-rank snapshots of each distinct slot (shard-width rows).
        let mut slots: Vec<usize> = steps.iter().map(|s| s.slot).collect();
        slots.sort_unstable();
        slots.dedup();
        let mut snaps: Vec<HashMap<usize, RankSnap>> = Vec::with_capacity(n);
        for r in 0..n {
            let pool = &mut pools.ranks_mut()[r];
            let mut map = HashMap::with_capacity(slots.len());
            for &slot in &slots {
                let seq = seqs[slot];
                let snap = if pool.has_encoded_kv(seq, l) {
                    let (ke, ve) = pool.encoded_kv(seq, l).expect("probed fused above");
                    RankSnap::Fused {
                        keys: ke.rows.to_vec(),
                        values: ve.rows.to_vec(),
                        key_params: ke.params,
                        value_params: ve.params,
                        key_plan: ke.plan.map(|p| Box::new(p.clone())),
                        value_plan: ve.plan.map(|p| Box::new(p.clone())),
                    }
                } else {
                    RankSnap::Exact {
                        keys: pool.keys(seq, l).to_vec(),
                        values: pool.values(seq, l).to_vec(),
                    }
                };
                map.insert(slot, snap);
            }
            snaps.push(map);
        }

        // One attention task per (step, global KV head), exactly the
        // unsharded decomposition — each task just runs on its owner
        // rank's shard with the rank-local shape. Head-local arithmetic
        // makes the group outputs bit-identical to the 1-rank kernel.
        let groups = rt.map(steps.len() * nk, |t| {
            let (i, kvh) = (t / nk, t % nk);
            let (r, local) = owner[kvh];
            let shape_r = &shapes[r];
            let kv_dim_r = shape_r.kv_dim();
            let q = &q_parts[r][i];
            match &snaps[r][&steps[i].slot] {
                RankSnap::Exact { keys, values } => {
                    let visible = (seq_lens[i] * kv_dim_r).min(keys.len());
                    attend_kv_group(
                        q,
                        &keys[..visible],
                        &values[..visible],
                        visible / kv_dim_r,
                        shape_r,
                        local,
                    )
                }
                RankSnap::Fused {
                    keys,
                    values,
                    key_params,
                    value_params,
                    key_plan,
                    value_plan,
                } => {
                    let visible = seq_lens[i].min(keys.len());
                    attend_kv_group_fused(
                        q,
                        &EncodedKv {
                            rows: keys,
                            params: *key_params,
                            plan: key_plan.as_deref(),
                        },
                        &EncodedKv {
                            rows: values,
                            params: *value_params,
                            plan: value_plan.as_deref(),
                        },
                        visible,
                        shape_r,
                        local,
                    )
                }
            }
        });

        // Gather the disjoint q-head slices: one all-reduce per layer.
        let mut parts: Vec<Vec<f32>> = vec![vec![0.0f32; steps.len() * d]; n];
        for i in 0..steps.len() {
            for kvh in 0..nk {
                let (r, _) = owner[kvh];
                parts[r][i * d + kvh * group_width..i * d + (kvh + 1) * group_width]
                    .copy_from_slice(&groups[i * nk + kvh]);
            }
        }
        let mut refs: Vec<&mut [f32]> = parts.iter_mut().map(|p| p.as_mut_slice()).collect();
        comm.all_reduce(&mut refs);
        let atts: Vec<Vec<f32>> = (0..steps.len())
            .map(|i| parts[0][i * d..(i + 1) * d].to_vec())
            .collect();

        let attref = as_refs(&atts);
        let projs = sharded_matvec(rt, comm, &lw.wo, &attref, d, |r| chunk_range(r, d, n));
        for (x, proj) in xs.iter_mut().zip(projs) {
            for (xi, pi) in x.iter_mut().zip(proj) {
                *xi += pi;
            }
        }

        // FFN block.
        let hs: Vec<Vec<f32>> = xs
            .iter()
            .map(|x| model.norm(x, &lw.ffn_norm_w, lw.ffn_norm_b.as_ref()))
            .collect();
        let href = as_refs(&hs);
        let ys = match &lw.ffn {
            FfnWeights::Dense(ffn) => {
                sharded_dense_ffn(rt, comm, ffn, &href, d, cfg.ffn_hidden, cfg.activation)
            }
            FfnWeights::Moe {
                router,
                experts,
                top_k,
            } => sharded_moe(
                rt,
                comm,
                router,
                experts,
                *top_k,
                &href,
                d,
                cfg.ffn_hidden,
                cfg.activation,
            ),
        };
        for (x, y) in xs.iter_mut().zip(ys) {
            for (xi, yi) in x.iter_mut().zip(y) {
                *xi += yi;
            }
        }
    }

    let (fw, fb) = model.final_norm();
    let hs: Vec<Vec<f32>> = xs.iter().map(|x| model.norm(x, fw, fb)).collect();
    let href = as_refs(&hs);
    let logits = sharded_matvec(rt, comm, model.lm_head(), &href, cfg.vocab_size, |r| {
        chunk_range(r, cfg.vocab_size, n)
    });
    (logits, poisoned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolBatchView;
    use crate::sampling::sample_greedy;
    use oaken_core::{KvKind, KvQuantizer, OakenConfig, OakenQuantizer, OfflineProfiler};
    use std::sync::Arc;

    fn row(d: usize, seed: u64) -> Vec<f32> {
        (0..d)
            .map(|i| {
                let u = ((i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed * 7919)
                    >> 33) as f32
                    / (1u64 << 31) as f32;
                let base = (u - 0.5) * 6.0;
                match i % 19 {
                    0 => base * 9.0,
                    1 => base * 0.02,
                    _ => base,
                }
            })
            .collect()
    }

    fn oaken(d: usize, layers: usize) -> Arc<dyn KvQuantizer> {
        let config = OakenConfig::default();
        let mut p = OfflineProfiler::new(config.clone(), layers);
        for s in 0..24 {
            for layer in 0..layers {
                for kind in KvKind::ALL {
                    p.observe(layer, kind, &row(d.max(64), s * 3 + layer as u64));
                }
            }
        }
        Arc::new(OakenQuantizer::new(config, p.try_finish().unwrap()))
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// Drives `iters` engine-style iterations (a prompt chunk, then
    /// greedy decode) over two interleaved sequences through both the
    /// unsharded parallel forward and the ranked forward, comparing every
    /// step's logits bitwise.
    fn assert_ranked_matches_unsharded(
        cfg: &ModelConfig,
        quantizer: Option<Arc<dyn KvQuantizer>>,
        ranks: usize,
        threads: usize,
        kernel: KernelMode,
        iters: usize,
    ) {
        let model = Model::synthetic(cfg.clone(), 42);
        let rt = Runtime::new(threads);

        let mut ref_pool = PagedKvPool::for_model(cfg, quantizer.clone(), 512, 4096);
        ref_pool.set_kernel_mode(kernel);
        let donor = {
            let mut p = PagedKvPool::for_model(cfg, quantizer, 512, 4096);
            p.set_kernel_mode(kernel);
            p
        };
        let mut pools = RankedPools::split(cfg, donor, ranks);
        let mut comm = Comm::new(ranks);

        let ref_seqs = vec![ref_pool.alloc_seq(), ref_pool.alloc_seq()];
        let seqs = vec![
            pools.alloc_seq_with_prefix(&[]).seq,
            pools.alloc_seq_with_prefix(&[]).seq,
        ];
        assert_eq!(ref_seqs, seqs, "reference and ranked ids align");

        let mut pos = [0usize; 2];
        let mut last = [1u32, 7u32];
        for it in 0..iters {
            // First iteration feeds a 3-token chunk to slot 0; afterwards
            // every slot advances one token.
            let mut steps = Vec::new();
            for slot in 0..2usize {
                let chunk = if it == 0 && slot == 0 { 3 } else { 1 };
                for j in 0..chunk {
                    let token = (last[slot] + j as u32 * 11) % cfg.vocab_size as u32;
                    steps.push(BatchStep {
                        slot,
                        pos: pos[slot] + j,
                        token,
                    });
                }
                pos[slot] += chunk;
            }

            let want = {
                let mut view = PoolBatchView::new(&mut ref_pool, &ref_seqs);
                model.forward_batch_on(&rt, &mut view, &steps, None)
            };
            let (got, poisons) =
                forward_batch_ranked(&model, &rt, &mut comm, &mut pools, &seqs, &steps);
            assert!(poisons.is_empty(), "fault-free run poisons nothing");
            assert_eq!(want.len(), got.len());
            for (s, (w, g)) in want.iter().zip(&got).enumerate() {
                assert_eq!(
                    bits(w),
                    bits(g),
                    "iter {it} step {s}: ranked logits diverged ({ranks} ranks, {threads} threads, {kernel:?})"
                );
            }
            for slot in 0..2usize {
                let slot_last = steps
                    .iter()
                    .rposition(|s| s.slot == slot)
                    .expect("every slot stepped");
                last[slot] = sample_greedy(&got[slot_last]);
            }
        }
        assert!(
            comm.stats().allreduce_calls > 0,
            "ranked forward reduces at least once per layer"
        );
    }

    fn dense_cfg() -> ModelConfig {
        // 8 KV heads / head_dim 8 — rank counts 2, 3 (uneven), 4 all fit.
        ModelConfig::llama2_7b().proxy(2, 64)
    }

    #[test]
    fn exact_pools_match_unsharded_bitwise() {
        for ranks in [2, 3, 4] {
            for threads in [1, 4] {
                assert_ranked_matches_unsharded(
                    &dense_cfg(),
                    None,
                    ranks,
                    threads,
                    KernelMode::Exact,
                    4,
                );
            }
        }
    }

    #[test]
    fn quantized_pools_match_unsharded_bitwise() {
        let cfg = dense_cfg();
        let q = oaken(cfg.kv_dim(), cfg.num_layers);
        for ranks in [2, 4] {
            for threads in [1, 4] {
                assert_ranked_matches_unsharded(
                    &cfg,
                    Some(q.clone()),
                    ranks,
                    threads,
                    KernelMode::Exact,
                    4,
                );
            }
        }
    }

    #[test]
    fn fused_kernels_match_unsharded_bitwise() {
        // Sliced fused decode is a bitwise slice of the full fused decode
        // (kernel tests), so fused ranked logits match the fused 1-rank
        // pass exactly — not merely within tolerance.
        let cfg = dense_cfg();
        let q = oaken(cfg.kv_dim(), cfg.num_layers);
        for ranks in [2, 3] {
            assert_ranked_matches_unsharded(&cfg, Some(q.clone()), ranks, 4, KernelMode::Fused, 4);
        }
    }

    #[test]
    fn moe_layers_match_unsharded_bitwise() {
        // Mixtral proxy: 2 KV heads (GQA 4), 8 experts top-2.
        let cfg = ModelConfig::mixtral_8x7b().proxy(2, 32);
        assert!(cfg.moe.is_some(), "mixtral proxy keeps its experts");
        assert_ranked_matches_unsharded(&cfg, None, 2, 4, KernelMode::Exact, 3);
    }

    #[test]
    fn comm_accounting_counts_reduces_and_scale_syncs() {
        let cfg = dense_cfg();
        let q = oaken(cfg.kv_dim(), cfg.num_layers);
        let model = Model::synthetic(cfg.clone(), 42);
        let rt = Runtime::serial();
        let donor = PagedKvPool::for_model(&cfg, Some(q), 256, 4096);
        let mut pools = RankedPools::split(&cfg, donor, 2);
        let mut comm = Comm::new(2);
        let seqs = vec![pools.alloc_seq_with_prefix(&[]).seq];
        let steps = vec![BatchStep {
            slot: 0,
            pos: 0,
            token: 5,
        }];
        let (_, poisons) = forward_batch_ranked(&model, &rt, &mut comm, &mut pools, &seqs, &steps);
        assert!(poisons.is_empty());
        // 4 reduces per dense layer + 1 logits reduce.
        assert_eq!(
            comm.stats().allreduce_calls,
            (cfg.num_layers * 4 + 1) as u64
        );
        // Scale syncs moved bytes beyond the reduces alone.
        assert!(comm.stats().sync_calls >= (2 * cfg.num_layers) as u64);
        assert!(comm.stats().bytes_moved > 0);
    }

    #[test]
    fn suspend_and_resume_stay_atomic_across_shards() {
        let cfg = dense_cfg();
        let q = oaken(cfg.kv_dim(), cfg.num_layers);
        let model = Model::synthetic(cfg.clone(), 42);
        let rt = Runtime::serial();
        let donor = PagedKvPool::for_model(&cfg, Some(q), 256, 4096);
        let mut pools = RankedPools::split(&cfg, donor, 3);
        let mut comm = Comm::new(3);
        let seqs = vec![pools.alloc_seq_with_prefix(&[]).seq];

        let mut feed = 3u32;
        for pos in 0..4usize {
            let steps = vec![BatchStep {
                slot: 0,
                pos,
                token: feed,
            }];
            let (logits, _) =
                forward_batch_ranked(&model, &rt, &mut comm, &mut pools, &seqs, &steps);
            feed = sample_greedy(&logits[0]);
        }
        let before: Vec<Vec<u32>> = (0..3)
            .map(|r| bits(pools.ranks_mut()[r].keys(seqs[0], 0)))
            .collect();

        let receipt = pools.suspend_seq(seqs[0]).expect("suspend fits host tiers");
        assert!(receipt.bytes > 0);
        for p in pools.ranks() {
            assert!(p.is_suspended(seqs[0]), "every shard froze");
        }
        let back = pools.resume_seq(seqs[0]).expect("resume fits device");
        assert_eq!(back.bytes, receipt.bytes, "round trip moves the same bytes");
        for (r, want) in before.iter().enumerate() {
            assert_eq!(
                &bits(pools.ranks_mut()[r].keys(seqs[0], 0)),
                want,
                "rank {r} resumed bit-exactly"
            );
        }

        // The next forward continues bit-exactly from the thawed state.
        let steps = vec![BatchStep {
            slot: 0,
            pos: 4,
            token: feed,
        }];
        let (_, poisons) = forward_batch_ranked(&model, &rt, &mut comm, &mut pools, &seqs, &steps);
        assert!(poisons.is_empty());
        assert!(pools.free_seq(seqs[0]).is_ok());
        assert_eq!(pools.free_pages(), pools.capacity_pages());
    }

    #[test]
    fn page_peaks_track_per_rank_occupancy() {
        let cfg = dense_cfg();
        let model = Model::synthetic(cfg.clone(), 42);
        let rt = Runtime::serial();
        let donor = PagedKvPool::for_model(&cfg, None, 90, 4096);
        let mut pools = RankedPools::split(&cfg, donor, 4);
        let mut comm = Comm::new(4);
        // Uneven capacity split: 90 pages over 4 ranks → 23/23/22/22.
        let caps: Vec<u32> = pools.ranks().iter().map(|p| p.capacity_pages()).collect();
        assert_eq!(caps, vec![23, 23, 22, 22]);
        let seqs = vec![pools.alloc_seq_with_prefix(&[]).seq];
        for pos in 0..3usize {
            let steps = vec![BatchStep {
                slot: 0,
                pos,
                token: 9,
            }];
            forward_batch_ranked(&model, &rt, &mut comm, &mut pools, &seqs, &steps);
            pools.note_page_peaks();
        }
        assert_eq!(pools.page_peaks().len(), 4);
        assert!(
            pools.page_peaks().iter().all(|&p| p > 0),
            "every rank allocated pages: {:?}",
            pools.page_peaks()
        );
    }
}

//! Model configurations: presets for the eight LLMs of the paper's
//! evaluation (§6.1) with their public architectural dimensions, plus
//! scaled-down *proxy* variants that preserve every structural feature
//! (GQA ratio, sliding window, MoE, norm/activation/positional choices) so
//! the accuracy experiments can actually run on CPU.
//!
//! The full-size presets drive the performance simulator's memory and FLOP
//! accounting; the proxies drive real inference.

use oaken_tensor::activation::Activation;
use oaken_tensor::norm::NormKind;
use serde::{Deserialize, Serialize};

/// Positional-encoding scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Positional {
    /// Rotary embeddings applied to Q/K (Llama2, Mistral, Mixtral).
    Rope,
    /// Learned absolute position embeddings (OPT).
    Learned,
}

/// Mixture-of-experts configuration (Mixtral).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Total experts per layer.
    pub num_experts: usize,
    /// Experts activated per token.
    pub top_k: usize,
}

/// Architecture description of a decoder-only transformer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name ("Llama2-7B", ...).
    pub name: String,
    /// Decoder layer count.
    pub num_layers: usize,
    /// Hidden size.
    pub d_model: usize,
    /// Query heads.
    pub num_heads: usize,
    /// Key/value heads (`< num_heads` ⇒ grouped-query attention).
    pub num_kv_heads: usize,
    /// Feed-forward hidden size (per expert, for MoE).
    pub ffn_hidden: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Normalisation kind.
    pub norm: NormKind,
    /// FFN activation (SiLU ⇒ gated/SwiGLU, ReLU/GELU ⇒ plain 2-matrix).
    pub activation: Activation,
    /// Positional scheme.
    pub positional: Positional,
    /// Sliding-window attention span (Mistral, Mixtral).
    pub sliding_window: Option<usize>,
    /// Mixture-of-experts configuration, if any.
    pub moe: Option<MoeConfig>,
    /// Maximum sequence length supported.
    pub max_seq_len: usize,
}

impl ModelConfig {
    /// Head dimension, `d_model / num_heads`.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.num_heads
    }

    /// KV hidden size per token per layer, `num_kv_heads × head_dim`.
    pub fn kv_dim(&self) -> usize {
        self.num_kv_heads * self.head_dim()
    }

    /// Whether the FFN uses a gate matrix (SwiGLU-style).
    pub fn gated_ffn(&self) -> bool {
        self.activation == Activation::Silu
    }

    /// Total parameter count.
    pub fn param_count(&self) -> u64 {
        let d = self.d_model as u64;
        let kv = self.kv_dim() as u64;
        let v = self.vocab_size as u64;
        let f = self.ffn_hidden as u64;
        let ffn_mats: u64 = if self.gated_ffn() { 3 } else { 2 };
        let ffn_per_expert = ffn_mats * d * f;
        let ffn = match self.moe {
            Some(m) => m.num_experts as u64 * ffn_per_expert + d * m.num_experts as u64,
            None => ffn_per_expert,
        };
        let attn = d * d + 2 * d * kv + d * d; // Wq, Wk, Wv, Wo
        let norms = match self.norm {
            NormKind::Rms => 2 * d,
            NormKind::Layer => 4 * d, // weight + bias, two norms
        };
        let per_layer = attn + ffn + norms;
        let embed = v * d;
        let pos = match self.positional {
            Positional::Learned => self.max_seq_len as u64 * d,
            Positional::Rope => 0,
        };
        let head = v * d + d; // LM head + final norm
        embed + pos + self.num_layers as u64 * per_layer + head
    }

    /// Weight bytes at the given storage precision.
    pub fn weight_bytes(&self, bits_per_param: f64) -> u64 {
        (self.param_count() as f64 * bits_per_param / 8.0).ceil() as u64
    }

    /// KV cache bytes per token at the given storage precision
    /// (`2 × layers × kv_dim × bits/8`).
    pub fn kv_bytes_per_token(&self, bits_per_elem: f64) -> u64 {
        (2.0 * self.num_layers as f64 * self.kv_dim() as f64 * bits_per_elem / 8.0).ceil() as u64
    }

    /// Effective attention span at `seq_len` given any sliding window.
    pub fn attention_span(&self, seq_len: usize) -> usize {
        match self.sliding_window {
            Some(w) => seq_len.min(w),
            None => seq_len,
        }
    }

    /// FLOPs for one decode step (one token, generation phase), counting
    /// multiply-accumulate as 2 ops, at context length `ctx`.
    pub fn decode_flops(&self, ctx: usize) -> f64 {
        let d = self.d_model as f64;
        let kv = self.kv_dim() as f64;
        let f = self.ffn_hidden as f64;
        let span = self.attention_span(ctx) as f64;
        let ffn_mats: f64 = if self.gated_ffn() { 3.0 } else { 2.0 };
        let active_experts = self.moe.map_or(1.0, |m| m.top_k as f64);
        let per_layer = 2.0 * (d * d + 2.0 * d * kv + d * d)   // projections
            + 2.0 * 2.0 * span * d                              // QK^T and SV
            + active_experts * ffn_mats * 2.0 * d * f; // FFN
        self.num_layers as f64 * per_layer + 2.0 * d * self.vocab_size as f64
    }

    /// A scaled-down proxy preserving all structural features, suitable for
    /// real CPU inference in the accuracy experiments. `layers` and `d`
    /// control the proxy size; head counts keep the original GQA ratio.
    pub fn proxy(&self, layers: usize, d: usize) -> ModelConfig {
        let heads = 8.min(self.num_heads);
        let gqa_ratio = (self.num_heads / self.num_kv_heads).max(1);
        let kv_heads = (heads / gqa_ratio).max(1);
        ModelConfig {
            name: format!("{}-proxy", self.name),
            num_layers: layers,
            d_model: d,
            num_heads: heads,
            num_kv_heads: kv_heads,
            ffn_hidden: d * self.ffn_hidden / self.d_model,
            vocab_size: 256,
            norm: self.norm,
            activation: self.activation,
            positional: self.positional,
            sliding_window: self.sliding_window.map(|_| 64),
            moe: self.moe,
            max_seq_len: 512,
        }
    }

    // ----- paper model presets -------------------------------------------

    /// Llama2-7B: 32 layers, d=4096, 32 heads, MHA, SwiGLU.
    pub fn llama2_7b() -> Self {
        Self::llama("Llama2-7B", 32, 4096, 32, 32, 11008)
    }

    /// Llama2-13B: 40 layers, d=5120, 40 heads, MHA.
    pub fn llama2_13b() -> Self {
        Self::llama("Llama2-13B", 40, 5120, 40, 40, 13824)
    }

    /// Llama2-70B: 80 layers, d=8192, 64 heads, 8 KV heads (GQA).
    pub fn llama2_70b() -> Self {
        Self::llama("Llama2-70B", 80, 8192, 64, 8, 28672)
    }

    fn llama(
        name: &str,
        layers: usize,
        d: usize,
        heads: usize,
        kv_heads: usize,
        ffn: usize,
    ) -> Self {
        ModelConfig {
            name: name.to_owned(),
            num_layers: layers,
            d_model: d,
            num_heads: heads,
            num_kv_heads: kv_heads,
            ffn_hidden: ffn,
            vocab_size: 32_000,
            norm: NormKind::Rms,
            activation: Activation::Silu,
            positional: Positional::Rope,
            sliding_window: None,
            moe: None,
            max_seq_len: 4096,
        }
    }

    /// OPT-6.7B: 32 layers, d=4096, 32 heads, LayerNorm + ReLU + learned pos.
    pub fn opt_6_7b() -> Self {
        Self::opt("OPT-6.7B", 32, 4096, 32, 16384)
    }

    /// OPT-13B: 40 layers, d=5120, 40 heads.
    pub fn opt_13b() -> Self {
        Self::opt("OPT-13B", 40, 5120, 40, 20480)
    }

    /// OPT-30B: 48 layers, d=7168, 56 heads.
    pub fn opt_30b() -> Self {
        Self::opt("OPT-30B", 48, 7168, 56, 28672)
    }

    fn opt(name: &str, layers: usize, d: usize, heads: usize, ffn: usize) -> Self {
        ModelConfig {
            name: name.to_owned(),
            num_layers: layers,
            d_model: d,
            num_heads: heads,
            num_kv_heads: heads,
            ffn_hidden: ffn,
            vocab_size: 50_272,
            norm: NormKind::Layer,
            activation: Activation::Relu,
            positional: Positional::Learned,
            sliding_window: None,
            moe: None,
            max_seq_len: 2048,
        }
    }

    /// Mistral-7B: GQA (8 KV heads) + sliding-window attention (4096).
    pub fn mistral_7b() -> Self {
        ModelConfig {
            name: "Mistral-7B".to_owned(),
            num_layers: 32,
            d_model: 4096,
            num_heads: 32,
            num_kv_heads: 8,
            ffn_hidden: 14336,
            vocab_size: 32_000,
            norm: NormKind::Rms,
            activation: Activation::Silu,
            positional: Positional::Rope,
            sliding_window: Some(4096),
            moe: None,
            max_seq_len: 32_768,
        }
    }

    /// Mixtral-8x7B: Mistral base + 8-expert top-2 MoE FFN.
    pub fn mixtral_8x7b() -> Self {
        ModelConfig {
            moe: Some(MoeConfig {
                num_experts: 8,
                top_k: 2,
            }),
            name: "Mixtral-8x7B".to_owned(),
            ..Self::mistral_7b()
        }
    }

    /// All eight paper models in Table 2 order.
    pub fn paper_models() -> Vec<ModelConfig> {
        vec![
            Self::llama2_7b(),
            Self::llama2_13b(),
            Self::llama2_70b(),
            Self::opt_6_7b(),
            Self::opt_13b(),
            Self::opt_30b(),
            Self::mistral_7b(),
            Self::mixtral_8x7b(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama2_7b_param_count_close_to_nominal() {
        let p = ModelConfig::llama2_7b().param_count() as f64 / 1e9;
        assert!((6.4..7.1).contains(&p), "{p}B");
    }

    #[test]
    fn llama2_70b_uses_gqa() {
        let c = ModelConfig::llama2_70b();
        assert_eq!(c.num_kv_heads, 8);
        assert_eq!(c.head_dim(), 128);
        assert_eq!(c.kv_dim(), 1024);
        let p = c.param_count() as f64 / 1e9;
        assert!((64.0..72.0).contains(&p), "{p}B");
    }

    #[test]
    fn opt_30b_param_count() {
        let p = ModelConfig::opt_30b().param_count() as f64 / 1e9;
        assert!((28.0..32.0).contains(&p), "{p}B");
    }

    #[test]
    fn mixtral_param_count_counts_all_experts() {
        let p = ModelConfig::mixtral_8x7b().param_count() as f64 / 1e9;
        assert!((44.0..48.5).contains(&p), "{p}B");
    }

    #[test]
    fn llama2_7b_kv_bytes_per_token_fp16() {
        // Known value: 2 × 32 layers × 4096 × 2 bytes = 512 KiB/token.
        let b = ModelConfig::llama2_7b().kv_bytes_per_token(16.0);
        assert_eq!(b, 2 * 32 * 4096 * 2);
    }

    #[test]
    fn gqa_shrinks_kv_cache() {
        let mha = ModelConfig::llama2_7b().kv_bytes_per_token(16.0) as f64
            / ModelConfig::llama2_7b().num_layers as f64;
        let gqa = ModelConfig::mistral_7b().kv_bytes_per_token(16.0) as f64
            / ModelConfig::mistral_7b().num_layers as f64;
        assert!((mha / gqa - 4.0).abs() < 0.01, "expected 4× reduction");
    }

    #[test]
    fn sliding_window_caps_attention_span() {
        let c = ModelConfig::mistral_7b();
        assert_eq!(c.attention_span(1000), 1000);
        assert_eq!(c.attention_span(10_000), 4096);
        assert_eq!(ModelConfig::llama2_7b().attention_span(10_000), 10_000);
    }

    #[test]
    fn proxy_preserves_structure() {
        let p = ModelConfig::llama2_70b().proxy(4, 64);
        assert_eq!(p.num_heads / p.num_kv_heads, 8); // GQA ratio preserved
        assert_eq!(p.norm, NormKind::Rms);
        let p = ModelConfig::opt_6_7b().proxy(4, 64);
        assert_eq!(p.positional, Positional::Learned);
        assert_eq!(p.activation, Activation::Relu);
        let p = ModelConfig::mixtral_8x7b().proxy(2, 32);
        assert!(p.moe.is_some());
        assert!(p.sliding_window.is_some());
    }

    #[test]
    fn decode_flops_scale_with_context() {
        let c = ModelConfig::llama2_7b();
        assert!(c.decode_flops(4096) > c.decode_flops(1));
        // Roughly 2×params at tiny context.
        let ratio = c.decode_flops(1) / (2.0 * c.param_count() as f64);
        assert!((0.7..1.3).contains(&ratio), "{ratio}");
    }

    #[test]
    fn paper_models_all_distinct() {
        let models = ModelConfig::paper_models();
        assert_eq!(models.len(), 8);
        let mut names: Vec<_> = models.iter().map(|m| m.name.clone()).collect();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}

//! Property tests for the baseline quantizers: every method must be
//! shape-preserving, finite, bounded by the input's dynamic range, and
//! exact on constants.

use oaken_baselines::{
    f16_roundtrip, AtomStyle, Fp16Reference, KiviStyle, KvQuantStyle, QServeStyle, TenderStyle,
};
use oaken_core::{KvKind, KvQuantizer};
use proptest::prelude::*;

fn methods() -> Vec<Box<dyn KvQuantizer>> {
    vec![
        Box::new(Fp16Reference::new()),
        Box::new(KvQuantStyle::default()),
        Box::new(KiviStyle::default()),
        Box::new(AtomStyle::default()),
        Box::new(QServeStyle::default()),
        Box::new(TenderStyle::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrips_preserve_shape_and_bounds(
        v in prop::collection::vec(-100.0f32..100.0, 8..256),
        rows in 1usize..4,
    ) {
        // Trim to a rows×d matrix.
        let d = (v.len() / rows).max(1);
        let data = &v[..rows * d];
        let absmax = data.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        for m in methods() {
            for kind in KvKind::ALL {
                let out = m.roundtrip_matrix(data, rows, d, 0, kind);
                prop_assert_eq!(out.len(), data.len(), "{}", m.name());
                for &y in &out {
                    prop_assert!(y.is_finite(), "{} produced {}", m.name(), y);
                    prop_assert!(
                        y.abs() <= absmax * 1.26 + 1e-3,
                        "{} overshot: |{}| > {}",
                        m.name(), y, absmax
                    );
                }
            }
        }
    }

    #[test]
    fn constant_matrices_are_fixed_points(c in -50.0f32..50.0, n in 4usize..64) {
        let data = vec![c; n * 2];
        for m in methods() {
            let out = m.roundtrip_matrix(&data, 2, n, 0, KvKind::Value);
            for &y in &out {
                // A constant has zero quantization range; every method must
                // reconstruct it to FP16 precision or better.
                prop_assert!(
                    (y - f16_roundtrip(c)).abs() <= c.abs() / 256.0 + 1e-3,
                    "{}: {} -> {}",
                    m.name(), c, y
                );
            }
        }
    }

    #[test]
    fn effective_bits_below_fp16(rows in 8usize..2048, d in 64usize..4096) {
        for m in methods() {
            let eb = m.effective_bits(rows, d);
            prop_assert!(eb > 0.0, "{}", m.name());
            if m.name() != "fp16" && rows > 256 {
                prop_assert!(eb < 16.0, "{} claims {eb} bits", m.name());
            }
        }
    }

    #[test]
    fn f16_roundtrip_is_idempotent(x in -6.0e4f32..6.0e4) {
        let once = f16_roundtrip(x);
        let twice = f16_roundtrip(once);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }
}

//! QServe-style baseline: SmoothQuant-style per-channel smoothing followed
//! by channel reordering and per-group INT4 quantization.
//!
//! Smoothing divides each channel by `mag_c^alpha` before quantization (and
//! multiplies back after), shrinking inter-channel magnitude spread so the
//! shared per-group scale fits better. Accuracy still trails outlier-aware
//! schemes on distributions with *intra*-channel exceptions (Observation 3),
//! matching QServe's Table 2 position: better than Tender/Atom, worse than
//! Oaken/KIVI/KVQuant.

use crate::common::{
    quantize_groups_row_into, CalibratedRowKernel, CalibratedStream, ChannelOrder,
};
use oaken_core::{KvKind, KvQuantizer, KvRowStream, OnlineCost};

/// Configuration and implementation of the QServe-style baseline.
#[derive(Debug, Clone, Copy)]
pub struct QServeStyle {
    /// Channels per quantization group after reordering.
    pub group: usize,
    /// Dense bit-width.
    pub bits: u8,
    /// Smoothing exponent `alpha` in `[0, 1]`.
    pub alpha: f32,
    /// Rows used to calibrate the smoothing scales and channel order —
    /// the real system calibrates *offline* on sample prompts and folds
    /// the scales into weights, so they cannot adapt to the live data.
    pub calib_rows: usize,
}

impl QServeStyle {
    /// Creates a configuration.
    pub fn new(group: usize, bits: u8, alpha: f32) -> Self {
        Self {
            group,
            bits,
            alpha,
            calib_rows: 4,
        }
    }
}

impl Default for QServeStyle {
    fn default() -> Self {
        Self::new(128, 4, 0.5)
    }
}

impl QServeStyle {
    /// Computes the per-channel smoothing factors from a `[rows × d]`
    /// calibration prefix: `s_c = max(|x_c|)^alpha` (1.0 for silent
    /// channels).
    fn smoothing_scales(&self, calib: &[f32], rows: usize, d: usize) -> Vec<f32> {
        let mut smooth = vec![0.0f32; d];
        for r in 0..rows {
            for c in 0..d {
                smooth[c] = smooth[c].max(calib[r * d + c].abs());
            }
        }
        for s in &mut smooth {
            *s = if *s > 0.0 { s.powf(self.alpha) } else { 1.0 };
        }
        smooth
    }

    /// Quantize-dequantizes one row through the frozen smoothing scales and
    /// channel order, appending `d` values to `view`. Shared by the batch
    /// and streaming paths so they agree bit-for-bit.
    #[allow(clippy::too_many_arguments)]
    fn quantize_row_with(
        &self,
        row: &[f32],
        smooth: &[f32],
        order: &ChannelOrder,
        smoothed: &mut Vec<f32>,
        permuted: &mut Vec<f32>,
        qrow: &mut Vec<f32>,
        view: &mut Vec<f32>,
    ) {
        let d = row.len();
        smoothed.clear();
        smoothed.extend(row.iter().zip(smooth).map(|(&x, &s)| x / s));
        permuted.clear();
        order.permute_row_into(smoothed, permuted);
        qrow.clear();
        quantize_groups_row_into(permuted, self.group.min(d), self.bits, qrow);
        let start = view.len();
        view.resize(start + d, 0.0);
        order.unpermute_row_into(qrow, &mut view[start..]);
        for (v, &s) in view[start..].iter_mut().zip(smooth) {
            *v *= s;
        }
    }
}

impl KvQuantizer for QServeStyle {
    fn name(&self) -> &'static str {
        "qserve"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        _layer: usize,
        _kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        // Per-channel smoothing factors s_c = max(|x_c|)^alpha over the
        // calibration prefix only — offline calibration cannot see the
        // live values, so intra-channel "exceptions" (Observation 3) fall
        // outside the calibrated scales.
        let calib = self.calib_rows.clamp(1, rows);
        let smooth = self.smoothing_scales(&data[..calib * d], calib, d);
        let smoothed_calib: Vec<f32> = data[..calib * d]
            .iter()
            .enumerate()
            .map(|(i, &x)| x / smooth[i % d])
            .collect();
        let order = ChannelOrder::calibrate(&smoothed_calib, calib, d);

        let mut out = Vec::with_capacity(rows * d);
        let (mut smoothed, mut permuted, mut qrow) = (Vec::new(), Vec::new(), Vec::new());
        for r in 0..rows {
            self.quantize_row_with(
                &data[r * d..(r + 1) * d],
                &smooth,
                &order,
                &mut smoothed,
                &mut permuted,
                &mut qrow,
                &mut out,
            );
        }
        out
    }

    fn effective_bits(&self, _rows: usize, d: usize) -> f64 {
        f64::from(self.bits) + 32.0 / self.group as f64 + 32.0 / d.max(1) as f64
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost {
            quant_flops_per_elem: 3.0, // smoothing mul + scale + round
            dequant_flops_per_elem: 3.0,
            sort_nlogn: false,
            channel_reorder: true,
            gpu_divergence_penalty: 1.2, // uniform INT4 kernels, low divergence
        }
    }

    fn row_stream(&self, d: usize, _layer: usize, _kind: KvKind) -> Option<Box<dyn KvRowStream>> {
        Some(Box::new(CalibratedStream::new(
            QServeKernel {
                cfg: *self,
                smooth: vec![1.0; d],
                order: ChannelOrder::identity(d),
                smoothed: Vec::with_capacity(d),
                permuted: Vec::with_capacity(d),
                qrow: Vec::with_capacity(d),
            },
            d,
        )))
    }
}

/// Streaming QServe kernel: smoothing scales and channel order freeze after
/// `calib_rows` tokens (folded into weights offline in the real system);
/// per-row group quantization is row-independent afterwards.
struct QServeKernel {
    cfg: QServeStyle,
    smooth: Vec<f32>,
    order: ChannelOrder,
    smoothed: Vec<f32>,
    permuted: Vec<f32>,
    qrow: Vec<f32>,
}

impl CalibratedRowKernel for QServeKernel {
    fn calib_rows(&self) -> usize {
        self.cfg.calib_rows
    }

    fn roundtrip_prefix(&self, data: &[f32], rows: usize, d: usize) -> Vec<f32> {
        self.cfg.roundtrip_matrix(data, rows, d, 0, KvKind::Key)
    }

    fn freeze(&mut self, calib: &[f32], rows: usize, d: usize) {
        self.smooth = self.cfg.smoothing_scales(calib, rows, d);
        let smoothed_calib: Vec<f32> = calib
            .iter()
            .enumerate()
            .map(|(i, &x)| x / self.smooth[i % d])
            .collect();
        self.order = ChannelOrder::calibrate(&smoothed_calib, rows, d);
    }

    fn process_row(&mut self, row: &[f32], view: &mut Vec<f32>) {
        self.cfg.quantize_row_with(
            row,
            &self.smooth,
            &self.order,
            &mut self.smoothed,
            &mut self.permuted,
            &mut self.qrow,
            view,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::quantize_groups_per_row;

    fn spread_channels(rows: usize, d: usize) -> Vec<f32> {
        (0..rows * d)
            .map(|i| {
                let c = i % d;
                let base = ((i * 2246822519u64 as usize) % 2048) as f32 / 256.0 - 4.0;
                base * (1.0 + (c % 13) as f32)
            })
            .collect()
    }

    #[test]
    fn smoothing_beats_plain_groups_on_spread_channels() {
        let (rows, d) = (16, 384);
        let data = spread_channels(rows, d);
        let qs = QServeStyle::default();
        let smoothed = qs.roundtrip_matrix(&data, rows, d, 0, KvKind::Key);
        let plain = quantize_groups_per_row(&data, rows, d, 128, 4);
        let mse = |out: &[f32]| {
            data.iter()
                .zip(out)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(mse(&smoothed) < mse(&plain));
    }

    #[test]
    fn effective_bits_match_paper() {
        let eb = QServeStyle::default().effective_bits(1024, 4096);
        assert!((4.2..4.35).contains(&eb), "{eb}");
    }

    #[test]
    fn handles_zero_channels() {
        let qs = QServeStyle::default();
        let data = vec![0.0f32; 4 * 32];
        let out = qs.roundtrip_matrix(&data, 4, 32, 0, KvKind::Value);
        assert!(out.iter().all(|&v| v == 0.0));
    }
}

//! QServe-style baseline: SmoothQuant-style per-channel smoothing followed
//! by channel reordering and per-group INT4 quantization.
//!
//! Smoothing divides each channel by `mag_c^alpha` before quantization (and
//! multiplies back after), shrinking inter-channel magnitude spread so the
//! shared per-group scale fits better. Accuracy still trails outlier-aware
//! schemes on distributions with *intra*-channel exceptions (Observation 3),
//! matching QServe's Table 2 position: better than Tender/Atom, worse than
//! Oaken/KIVI/KVQuant.

use crate::common::{quantize_groups_per_row, ChannelOrder};
use oaken_core::{KvKind, KvQuantizer, OnlineCost};

/// Configuration and implementation of the QServe-style baseline.
#[derive(Debug, Clone, Copy)]
pub struct QServeStyle {
    /// Channels per quantization group after reordering.
    pub group: usize,
    /// Dense bit-width.
    pub bits: u8,
    /// Smoothing exponent `alpha` in `[0, 1]`.
    pub alpha: f32,
    /// Rows used to calibrate the smoothing scales and channel order —
    /// the real system calibrates *offline* on sample prompts and folds
    /// the scales into weights, so they cannot adapt to the live data.
    pub calib_rows: usize,
}

impl QServeStyle {
    /// Creates a configuration.
    pub fn new(group: usize, bits: u8, alpha: f32) -> Self {
        Self {
            group,
            bits,
            alpha,
            calib_rows: 4,
        }
    }
}

impl Default for QServeStyle {
    fn default() -> Self {
        Self::new(128, 4, 0.5)
    }
}

impl KvQuantizer for QServeStyle {
    fn name(&self) -> &'static str {
        "qserve"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        _layer: usize,
        _kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        // Per-channel smoothing factors s_c = max(|x_c|)^alpha over the
        // calibration prefix only — offline calibration cannot see the
        // live values, so intra-channel "exceptions" (Observation 3) fall
        // outside the calibrated scales.
        let calib = self.calib_rows.clamp(1, rows);
        let mut smooth = vec![0.0f32; d];
        for r in 0..calib {
            for c in 0..d {
                smooth[c] = smooth[c].max(data[r * d + c].abs());
            }
        }
        for s in &mut smooth {
            *s = if *s > 0.0 { s.powf(self.alpha) } else { 1.0 };
        }
        let smoothed: Vec<f32> = data
            .iter()
            .enumerate()
            .map(|(i, &x)| x / smooth[i % d])
            .collect();

        let order = ChannelOrder::calibrate(&smoothed[..calib * d], calib, d);
        let permuted = order.permute(&smoothed, rows, d);
        let quant = quantize_groups_per_row(&permuted, rows, d, self.group.min(d), self.bits);
        let unperm = order.unpermute(&quant, rows, d);
        unperm
            .iter()
            .enumerate()
            .map(|(i, &x)| x * smooth[i % d])
            .collect()
    }

    fn effective_bits(&self, _rows: usize, d: usize) -> f64 {
        f64::from(self.bits) + 32.0 / self.group as f64 + 32.0 / d.max(1) as f64
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost {
            quant_flops_per_elem: 3.0, // smoothing mul + scale + round
            dequant_flops_per_elem: 3.0,
            sort_nlogn: false,
            channel_reorder: true,
            gpu_divergence_penalty: 1.2, // uniform INT4 kernels, low divergence
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread_channels(rows: usize, d: usize) -> Vec<f32> {
        (0..rows * d)
            .map(|i| {
                let c = i % d;
                let base = ((i * 2246822519u64 as usize) % 2048) as f32 / 256.0 - 4.0;
                base * (1.0 + (c % 13) as f32)
            })
            .collect()
    }

    #[test]
    fn smoothing_beats_plain_groups_on_spread_channels() {
        let (rows, d) = (16, 384);
        let data = spread_channels(rows, d);
        let qs = QServeStyle::default();
        let smoothed = qs.roundtrip_matrix(&data, rows, d, 0, KvKind::Key);
        let plain = quantize_groups_per_row(&data, rows, d, 128, 4);
        let mse = |out: &[f32]| {
            data.iter()
                .zip(out)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(mse(&smoothed) < mse(&plain));
    }

    #[test]
    fn effective_bits_match_paper() {
        let eb = QServeStyle::default().effective_bits(1024, 4096);
        assert!((4.2..4.35).contains(&eb), "{eb}");
    }

    #[test]
    fn handles_zero_channels() {
        let qs = QServeStyle::default();
        let data = vec![0.0f32; 4 * 32];
        let out = qs.roundtrip_matrix(&data, 4, 32, 0, KvKind::Value);
        assert!(out.iter().all(|&v| v == 0.0));
    }
}

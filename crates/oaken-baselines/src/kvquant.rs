//! KVQuant-style baseline: per-vector quantization with *online topK*
//! outlier detection, outliers kept in FP16 dense-and-sparse storage.
//!
//! Granularity follows the published method: keys are quantized
//! per-channel (their outlier structure is channel-aligned), values
//! per-token. The top `outlier_fraction` of magnitudes in each tensor stay
//! FP16 in a sparse layout costing 23 bits/entry (16 value + 6 index +
//! 1 group), which is precisely the overhead Oaken's fused encoding
//! eliminates (§4.5).
//!
//! The accuracy of this scheme is the best of all baselines — and its
//! [`OnlineCost`] the worst, because the topK selection runs during
//! inference (`sort_nlogn`) and the mixed-precision layout divides GPU
//! warps.
//!
//! KVQuant is **not token-granular**: the topK outlier threshold is a
//! quantile of the whole tensor and keys quantize per-channel, both of
//! which shift as the prefix grows. The method therefore does not implement
//! `KvQuantizer::row_stream`, and the serving cache uses its documented
//! full-recompute fallback (which favours the baseline — its threshold and
//! scales always see the complete prefix).
//!
//! [`OnlineCost`]: oaken_core::OnlineCost

use crate::common::quantize_per_channel;
use crate::half_float::f16_roundtrip;
use oaken_core::{KvKind, KvQuantizer, OnlineCost, UniformQuantizer};
use oaken_tensor::quantile;

/// Configuration and implementation of the KVQuant-style baseline.
#[derive(Debug, Clone, Copy)]
pub struct KvQuantStyle {
    /// Fraction of values (by magnitude) kept as FP16 outliers.
    pub outlier_fraction: f64,
    /// Dense bit-width.
    pub bits: u8,
}

impl KvQuantStyle {
    /// The configuration matching the paper's Table 2 effective bitwidth
    /// (~4.8): 4-bit dense + ~4% FP16 outliers at 23 bits each.
    pub fn new(outlier_fraction: f64, bits: u8) -> Self {
        Self {
            outlier_fraction,
            bits,
        }
    }
}

impl Default for KvQuantStyle {
    fn default() -> Self {
        Self::new(0.04, 4)
    }
}

impl KvQuantizer for KvQuantStyle {
    fn name(&self) -> &'static str {
        "kvquant"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        _layer: usize,
        kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        // Online topK: find the magnitude threshold isolating the outliers.
        let mags: Vec<f32> = data.iter().map(|x| x.abs()).collect();
        let thr = quantile(&mags, 1.0 - self.outlier_fraction).unwrap_or(f32::INFINITY);

        // Inliers quantized at the method's granularity with outliers
        // masked out of the scale computation; outliers pass through FP16.
        let masked: Vec<f32> = data
            .iter()
            .map(|&x| if x.abs() > thr { 0.0 } else { x })
            .collect();
        let dense = match kind {
            KvKind::Key => quantize_per_channel(&masked, rows, d, self.bits),
            KvKind::Value => {
                let mut out = Vec::with_capacity(masked.len());
                for r in 0..rows {
                    let row = &masked[r * d..(r + 1) * d];
                    let q = UniformQuantizer::from_values(row, self.bits).expect("valid bit-width");
                    out.extend(row.iter().map(|&x| q.dequantize(q.quantize(x))));
                }
                out
            }
        };
        data.iter()
            .zip(dense)
            .map(|(&x, dq)| if x.abs() > thr { f16_roundtrip(x) } else { dq })
            .collect()
    }

    fn effective_bits(&self, rows: usize, d: usize) -> f64 {
        // Dense bits + 23-bit sparse entries + per-channel FP16 scale pair
        // amortized over the token dimension.
        let scale_overhead = 32.0 / rows.max(1) as f64;
        f64::from(self.bits) + self.outlier_fraction * 23.0 + scale_overhead
            - self.outlier_fraction * f64::from(self.bits)
            + 32.0 / d.max(1) as f64
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost {
            quant_flops_per_elem: 4.0,
            dequant_flops_per_elem: 2.0,
            sort_nlogn: true, // online topK per tensor
            channel_reorder: false,
            gpu_divergence_penalty: 6.0, // FP16 scatter/gather mixed precision
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_like(rows: usize, d: usize) -> Vec<f32> {
        (0..rows * d)
            .map(|i| {
                let c = i % d;
                let base = ((i * 48271) % 65536) as f32 / 65536.0 - 0.5;
                // A few big channels, like real keys.
                if c.is_multiple_of(97) {
                    base * 40.0
                } else {
                    base * 4.0
                }
            })
            .collect()
    }

    #[test]
    fn outliers_kept_fp16_exact_to_half_precision() {
        let q = KvQuantStyle::default();
        let (rows, d) = (16, 256);
        let mut data = kv_like(rows, d);
        data[37] = 120.0;
        let out = q.roundtrip_matrix(&data, rows, d, 0, KvKind::Key);
        assert!((out[37] - 120.0).abs() < 0.1, "got {}", out[37]);
    }

    #[test]
    fn accuracy_better_than_naive_per_tensor() {
        let q = KvQuantStyle::default();
        let (rows, d) = (32, 256);
        let data = kv_like(rows, d);
        let out = q.roundtrip_matrix(&data, rows, d, 0, KvKind::Key);
        let mse: f32 = data
            .iter()
            .zip(&out)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / data.len() as f32;
        // Naive: single 4-bit scale over everything.
        let naive_q = UniformQuantizer::from_values(&data, 4).unwrap();
        let naive_mse: f32 = data
            .iter()
            .map(|&x| {
                let r = naive_q.dequantize(naive_q.quantize(x));
                (x - r) * (x - r)
            })
            .sum::<f32>()
            / data.len() as f32;
        assert!(mse < naive_mse / 4.0, "mse={mse} naive={naive_mse}");
    }

    #[test]
    fn effective_bits_in_paper_range() {
        let q = KvQuantStyle::default();
        let eb = q.effective_bits(1024, 4096);
        assert!((4.6..5.2).contains(&eb), "{eb}");
    }

    #[test]
    fn online_cost_requires_sorting() {
        assert!(KvQuantStyle::default().online_cost().sort_nlogn);
    }

    #[test]
    fn values_path_quantizes_per_token() {
        let q = KvQuantStyle::default();
        let (rows, d) = (4, 64);
        let data = kv_like(rows, d);
        let out = q.roundtrip_matrix(&data, rows, d, 0, KvKind::Value);
        assert_eq!(out.len(), data.len());
        assert!(out.iter().all(|v| v.is_finite()));
    }
}

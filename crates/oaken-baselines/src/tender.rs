//! Tender-style baseline: channels are decomposed into groups of similar
//! magnitude via indirect indexing, and each group's scale is a
//! *power-of-two multiple* of a shared tensor scale, so requantization
//! between groups reduces to bit-shifts (the paper's "tensor decomposition
//! and runtime requantization").
//!
//! The channel decomposition **and the group scales are calibrated offline**
//! from the first `calib_rows` tokens and frozen afterwards — matching
//! Tender's offline-built indirect index tables, and making the method
//! token-granular: with frozen scales every row quantizes independently, so
//! the incremental cache path appends in O(d). Live values that exceed the
//! calibrated range saturate, which is part of the accuracy cost Table 2
//! charges the method.
//!
//! The power-of-two constraint plus coarse per-group granularity gives
//! Tender the lowest effective bitwidth (≈4.07) *and* the worst accuracy of
//! the Table 2 baselines — it trades precision for hardware simplicity in
//! the opposite direction from Oaken.

use crate::common::{CalibratedRowKernel, CalibratedStream, ChannelOrder};
use oaken_core::{KvKind, KvQuantizer, KvRowStream, OnlineCost, UniformQuantizer};

/// Configuration and implementation of the Tender-style baseline.
#[derive(Debug, Clone, Copy)]
pub struct TenderStyle {
    /// Number of magnitude-decomposed channel groups.
    pub num_groups: usize,
    /// Dense bit-width.
    pub bits: u8,
    /// Rows used to calibrate the channel decomposition (offline indirect
    /// index tables in the real system).
    pub calib_rows: usize,
}

impl TenderStyle {
    /// Creates a configuration.
    pub fn new(num_groups: usize, bits: u8) -> Self {
        Self {
            num_groups,
            bits,
            calib_rows: 4,
        }
    }
}

impl Default for TenderStyle {
    fn default() -> Self {
        Self::new(8, 4)
    }
}

impl TenderStyle {
    /// Width of each magnitude-decomposed channel group over `d` channels.
    fn group_width(&self, d: usize) -> usize {
        d.div_ceil(self.num_groups.max(1))
    }

    /// Builds the frozen per-group quantizers from the *permuted*
    /// calibration prefix: one symmetric base scale for the whole tensor,
    /// each group a power-of-two shift of it.
    fn group_quantizers(
        &self,
        permuted_calib: &[f32],
        rows: usize,
        d: usize,
    ) -> Vec<UniformQuantizer> {
        let absmax = permuted_calib.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let group_width = self.group_width(d);
        let mut quants = Vec::new();
        for g in 0..self.num_groups.max(1) {
            let c0 = g * group_width;
            if c0 >= d {
                break;
            }
            let c1 = ((g + 1) * group_width).min(d);
            // Group magnitude → nearest power-of-two fraction of absmax.
            let mut gmax = 0.0f32;
            for r in 0..rows {
                for c in c0..c1 {
                    gmax = gmax.max(permuted_calib[r * d + c].abs());
                }
            }
            let scale = if gmax > 0.0 && absmax > 0.0 {
                let ratio = gmax / absmax;
                // Round the exponent up so the group range is covered.
                absmax * 2.0f32.powi(ratio.log2().ceil() as i32)
            } else {
                absmax.max(1e-12)
            };
            quants.push(UniformQuantizer::new(-scale, scale, self.bits).expect("valid bit-width"));
        }
        quants
    }

    /// Quantize-dequantizes one permuted row through the frozen group
    /// quantizers, appending `permuted.len()` values. Shared by the batch
    /// and streaming paths so they agree bit-for-bit.
    fn quantize_permuted_row(
        &self,
        permuted: &[f32],
        quants: &[UniformQuantizer],
        out: &mut Vec<f32>,
    ) {
        let group_width = self.group_width(permuted.len());
        for (c, &x) in permuted.iter().enumerate() {
            let q = &quants[c / group_width];
            out.push(q.dequantize(q.quantize(x)));
        }
    }
}

impl KvQuantizer for TenderStyle {
    fn name(&self) -> &'static str {
        "tender"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        _layer: usize,
        _kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        let calib = self.calib_rows.clamp(1, rows);
        let order = ChannelOrder::calibrate(&data[..calib * d], calib, d);
        let permuted_calib = order.permute(&data[..calib * d], calib, d);
        let quants = self.group_quantizers(&permuted_calib, calib, d);

        let mut out = vec![0.0f32; rows * d];
        let mut permuted = Vec::with_capacity(d);
        let mut qrow = Vec::with_capacity(d);
        for r in 0..rows {
            permuted.clear();
            order.permute_row_into(&data[r * d..(r + 1) * d], &mut permuted);
            qrow.clear();
            self.quantize_permuted_row(&permuted, &quants, &mut qrow);
            order.unpermute_row_into(&qrow, &mut out[r * d..(r + 1) * d]);
        }
        out
    }

    fn effective_bits(&self, rows: usize, d: usize) -> f64 {
        // Per-group exponents are 4-bit shifts; one FP16 base scale per
        // tensor. Both amortize to almost nothing.
        f64::from(self.bits)
            + (self.num_groups as f64 * 4.0 + 16.0) / (rows.max(1) * d.max(1)) as f64
            + 0.07 // indirect index metadata per channel (paper: 4.07)
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost {
            quant_flops_per_elem: 1.5, // shift-based requantization is cheap
            dequant_flops_per_elem: 1.5,
            sort_nlogn: false,
            channel_reorder: true, // indirect indexing
            gpu_divergence_penalty: 1.2,
        }
    }

    fn row_stream(&self, d: usize, _layer: usize, _kind: KvKind) -> Option<Box<dyn KvRowStream>> {
        Some(Box::new(CalibratedStream::new(
            TenderKernel {
                cfg: *self,
                order: ChannelOrder::identity(d),
                quants: Vec::new(),
                permuted: Vec::with_capacity(d),
                qrow: Vec::with_capacity(d),
            },
            d,
        )))
    }
}

/// Streaming Tender kernel: the channel decomposition and power-of-two
/// group scales freeze after `calib_rows` tokens (offline index tables in
/// the real system); frozen-state appends are O(d) and bit-exact with the
/// batch path.
struct TenderKernel {
    cfg: TenderStyle,
    order: ChannelOrder,
    quants: Vec<UniformQuantizer>,
    permuted: Vec<f32>,
    qrow: Vec<f32>,
}

impl CalibratedRowKernel for TenderKernel {
    fn calib_rows(&self) -> usize {
        self.cfg.calib_rows
    }

    fn roundtrip_prefix(&self, data: &[f32], rows: usize, d: usize) -> Vec<f32> {
        self.cfg.roundtrip_matrix(data, rows, d, 0, KvKind::Key)
    }

    fn freeze(&mut self, calib: &[f32], rows: usize, d: usize) {
        self.order = ChannelOrder::calibrate(calib, rows, d);
        let permuted_calib = self.order.permute(calib, rows, d);
        self.quants = self.cfg.group_quantizers(&permuted_calib, rows, d);
    }

    fn process_row(&mut self, row: &[f32], view: &mut Vec<f32>) {
        self.permuted.clear();
        self.order.permute_row_into(row, &mut self.permuted);
        self.qrow.clear();
        self.cfg
            .quantize_permuted_row(&self.permuted, &self.quants, &mut self.qrow);
        let start = view.len();
        view.resize(start + row.len(), 0.0);
        self.order
            .unpermute_row_into(&self.qrow, &mut view[start..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, d: usize) -> Vec<f32> {
        (0..rows * d)
            .map(|i| {
                let c = i % d;
                (((i * 16807) % 4096) as f32 / 512.0 - 4.0) * (1.0 + (c % 7) as f32)
            })
            .collect()
    }

    #[test]
    fn roundtrip_is_lossy_but_bounded() {
        let t = TenderStyle::default();
        let (rows, d) = (8, 128);
        let data = sample(rows, d);
        let out = t.roundtrip_matrix(&data, rows, d, 0, KvKind::Key);
        let absmax = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= absmax / 4.0, "a={a} b={b}");
        }
    }

    #[test]
    fn lowest_effective_bits_of_all() {
        let eb = TenderStyle::default().effective_bits(1024, 4096);
        assert!((4.0..4.2).contains(&eb), "{eb}");
    }

    #[test]
    fn worse_than_fine_grained_quant() {
        use crate::common::quantize_groups_per_row;
        let (rows, d) = (16, 256);
        let data = sample(rows, d);
        let t = TenderStyle::default();
        let tender_out = t.roundtrip_matrix(&data, rows, d, 0, KvKind::Key);
        let fine = quantize_groups_per_row(&data, rows, d, 32, 4);
        let mse = |out: &[f32]| {
            data.iter()
                .zip(out)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(mse(&tender_out) > mse(&fine));
    }

    #[test]
    fn single_group_degenerates_to_per_tensor() {
        let t = TenderStyle::new(1, 4);
        let (rows, d) = (4, 32);
        let data = sample(rows, d);
        let out = t.roundtrip_matrix(&data, rows, d, 0, KvKind::Value);
        assert_eq!(out.len(), data.len());
    }
}

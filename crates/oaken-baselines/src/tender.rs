//! Tender-style baseline: channels are decomposed into groups of similar
//! magnitude via indirect indexing, and each group's scale is a
//! *power-of-two multiple* of a shared tensor scale, so requantization
//! between groups reduces to bit-shifts (the paper's "tensor decomposition
//! and runtime requantization").
//!
//! The power-of-two constraint plus coarse per-group granularity gives
//! Tender the lowest effective bitwidth (≈4.07) *and* the worst accuracy of
//! the Table 2 baselines — it trades precision for hardware simplicity in
//! the opposite direction from Oaken.

use crate::common::ChannelOrder;
use oaken_core::{KvKind, KvQuantizer, OnlineCost, UniformQuantizer};

/// Configuration and implementation of the Tender-style baseline.
#[derive(Debug, Clone, Copy)]
pub struct TenderStyle {
    /// Number of magnitude-decomposed channel groups.
    pub num_groups: usize,
    /// Dense bit-width.
    pub bits: u8,
    /// Rows used to calibrate the channel decomposition (offline indirect
    /// index tables in the real system).
    pub calib_rows: usize,
}

impl TenderStyle {
    /// Creates a configuration.
    pub fn new(num_groups: usize, bits: u8) -> Self {
        Self {
            num_groups,
            bits,
            calib_rows: 4,
        }
    }
}

impl Default for TenderStyle {
    fn default() -> Self {
        Self::new(8, 4)
    }
}

impl KvQuantizer for TenderStyle {
    fn name(&self) -> &'static str {
        "tender"
    }

    fn roundtrip_matrix(
        &self,
        data: &[f32],
        rows: usize,
        d: usize,
        _layer: usize,
        _kind: KvKind,
    ) -> Vec<f32> {
        assert_eq!(data.len(), rows * d, "matrix data/shape mismatch");
        let calib = self.calib_rows.clamp(1, rows);
        let order = ChannelOrder::calibrate(&data[..calib * d], calib, d);
        let permuted = order.permute(data, rows, d);

        // One symmetric base scale for the whole tensor; each group gets a
        // power-of-two shift of it.
        let absmax = permuted.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let group_width = d.div_ceil(self.num_groups.max(1));
        let mut out = vec![0.0f32; rows * d];
        for g in 0..self.num_groups.max(1) {
            let c0 = g * group_width;
            if c0 >= d {
                break;
            }
            let c1 = ((g + 1) * group_width).min(d);
            // Group magnitude → nearest power-of-two fraction of absmax.
            let mut gmax = 0.0f32;
            for r in 0..rows {
                for c in c0..c1 {
                    gmax = gmax.max(permuted[r * d + c].abs());
                }
            }
            let scale = if gmax > 0.0 && absmax > 0.0 {
                let ratio = gmax / absmax;
                // Round the exponent up so the group range is covered.
                absmax * 2.0f32.powi(ratio.log2().ceil() as i32)
            } else {
                absmax.max(1e-12)
            };
            let q = UniformQuantizer::new(-scale, scale, self.bits).expect("valid bit-width");
            for r in 0..rows {
                for c in c0..c1 {
                    let x = permuted[r * d + c];
                    out[r * d + c] = q.dequantize(q.quantize(x));
                }
            }
        }
        order.unpermute(&out, rows, d)
    }

    fn effective_bits(&self, rows: usize, d: usize) -> f64 {
        // Per-group exponents are 4-bit shifts; one FP16 base scale per
        // tensor. Both amortize to almost nothing.
        f64::from(self.bits)
            + (self.num_groups as f64 * 4.0 + 16.0) / (rows.max(1) * d.max(1)) as f64
            + 0.07 // indirect index metadata per channel (paper: 4.07)
    }

    fn online_cost(&self) -> OnlineCost {
        OnlineCost {
            quant_flops_per_elem: 1.5, // shift-based requantization is cheap
            dequant_flops_per_elem: 1.5,
            sort_nlogn: false,
            channel_reorder: true, // indirect indexing
            gpu_divergence_penalty: 1.2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, d: usize) -> Vec<f32> {
        (0..rows * d)
            .map(|i| {
                let c = i % d;
                (((i * 16807) % 4096) as f32 / 512.0 - 4.0) * (1.0 + (c % 7) as f32)
            })
            .collect()
    }

    #[test]
    fn roundtrip_is_lossy_but_bounded() {
        let t = TenderStyle::default();
        let (rows, d) = (8, 128);
        let data = sample(rows, d);
        let out = t.roundtrip_matrix(&data, rows, d, 0, KvKind::Key);
        let absmax = data.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        for (a, b) in data.iter().zip(&out) {
            assert!((a - b).abs() <= absmax / 4.0, "a={a} b={b}");
        }
    }

    #[test]
    fn lowest_effective_bits_of_all() {
        let eb = TenderStyle::default().effective_bits(1024, 4096);
        assert!((4.0..4.2).contains(&eb), "{eb}");
    }

    #[test]
    fn worse_than_fine_grained_quant() {
        use crate::common::quantize_groups_per_row;
        let (rows, d) = (16, 256);
        let data = sample(rows, d);
        let t = TenderStyle::default();
        let tender_out = t.roundtrip_matrix(&data, rows, d, 0, KvKind::Key);
        let fine = quantize_groups_per_row(&data, rows, d, 32, 4);
        let mse = |out: &[f32]| {
            data.iter()
                .zip(out)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        assert!(mse(&tender_out) > mse(&fine));
    }

    #[test]
    fn single_group_degenerates_to_per_tensor() {
        let t = TenderStyle::new(1, 4);
        let (rows, d) = (4, 32);
        let data = sample(rows, d);
        let out = t.roundtrip_matrix(&data, rows, d, 0, KvKind::Value);
        assert_eq!(out.len(), data.len());
    }
}

//! Minimal IEEE 754 binary16 conversion, used to model FP16 storage without
//! an external crate.
//!
//! Round-to-nearest-even on the f32→f16 path; exact on the way back.

/// Converts an `f32` to its nearest binary16 bit pattern
/// (round-to-nearest-even, with overflow to infinity and flush of
/// sub-binary16-subnormal magnitudes to signed zero).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf/NaN.
        let nan_payload = if frac != 0 { 0x0200 } else { 0 };
        return sign | 0x7C00 | nan_payload;
    }
    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        return sign | 0x7C00; // overflow → inf
    }
    if e >= -14 {
        // Normal f16.
        let mut mant = frac >> 13;
        let rest = frac & 0x1FFF;
        // Round to nearest even.
        if rest > 0x1000 || (rest == 0x1000 && (mant & 1) == 1) {
            mant += 1;
        }
        let mut he = (e + 15) as u32;
        if mant == 0x400 {
            mant = 0;
            he += 1;
            if he >= 31 {
                return sign | 0x7C00;
            }
        }
        return sign | ((he as u16) << 10) | (mant as u16);
    }
    if e >= -24 {
        // Subnormal f16.
        let shift = (-14 - e) as u32; // 1..=10
        let mant_full = (frac | 0x0080_0000) >> (13 + shift);
        let rest_mask = (1u32 << (13 + shift)) - 1;
        let rest = (frac | 0x0080_0000) & rest_mask;
        let half = 1u32 << (12 + shift);
        let mut mant = mant_full;
        if rest > half || (rest == half && (mant & 1) == 1) {
            mant += 1;
        }
        return sign | (mant as u16);
    }
    sign // underflow → signed zero
}

/// Converts a binary16 bit pattern back to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1F;
    let mant = u32::from(h) & 0x3FF;
    let bits = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: value = (mant/1024)·2^-14; normalize to 1.m form.
            let mut e = -14i32;
            let mut m = mant;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x3FF;
            sign | (((e + 127) as u32) << 23) | (m << 13)
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (mant << 13)
    } else {
        sign | ((exp + 112) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Rounds an `f32` through binary16 precision, modelling FP16 storage.
#[inline]
pub fn f16_roundtrip(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers() {
        for i in -512..=512 {
            let x = i as f32;
            assert_eq!(f16_roundtrip(x), x, "{x}");
        }
    }

    #[test]
    fn relative_error_bounded() {
        // binary16 has 11 significand bits → rel. error ≤ 2^-11.
        let mut x = 1e-3f32;
        while x < 6.0e4 {
            let r = f16_roundtrip(x);
            assert!(((r - x) / x).abs() <= 1.0 / 2048.0 + 1e-7, "{x} -> {r}");
            x *= 1.37;
        }
    }

    #[test]
    fn signs_preserved() {
        assert_eq!(f16_roundtrip(-2.5), -2.5);
        assert!(f16_roundtrip(-0.0).is_sign_negative());
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(f16_roundtrip(1e6).is_infinite());
        assert!(f16_roundtrip(-1e6).is_infinite());
        assert!(f16_roundtrip(-1e6) < 0.0);
    }

    #[test]
    fn tiny_values_flush_to_zero() {
        assert_eq!(f16_roundtrip(1e-9), 0.0);
        // But f16 subnormals survive.
        let sub = 3.0e-6f32;
        let r = f16_roundtrip(sub);
        assert!(r > 0.0 && (r - sub).abs() / sub < 0.2);
    }

    #[test]
    fn nan_stays_nan() {
        assert!(f16_roundtrip(f32::NAN).is_nan());
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // f16::MAX
        assert_eq!(f16_bits_to_f32(0x3C00), 1.0);
        assert_eq!(f16_bits_to_f32(0x7BFF), 65504.0);
    }
}
